//! End-to-end integration: the full pipeline from profiling to placement
//! to simulation, spanning every crate.

use pocolo::prelude::*;
use pocolo_core::fit::{fit_indirect_utility, FitOptions};
use pocolo_simserver::power::PowerDrawModel;

#[test]
fn full_pipeline_profile_fit_place_simulate() {
    // 1. Profile + fit everything.
    let fitted = FittedCluster::fit(&ProfilerConfig::default());
    assert_eq!(fitted.lc().len(), 4);
    assert_eq!(fitted.be().len(), 4);

    // 2. Place with the LP solver (the paper's choice).
    let placement = fitted.placement(Policy::Pocolo { solver: Solver::Lp });
    let mut seen = placement.clone();
    seen.sort_by_key(|a| a.name());
    seen.dedup();
    assert_eq!(seen.len(), 4, "each BE app placed exactly once");

    // 3. Simulate the placed cluster through a short sweep.
    let config = ExperimentConfig {
        dwell_s: 4.0,
        ..ExperimentConfig::default()
    };
    let result = run_experiment_with(Policy::Pocolo { solver: Solver::Lp }, &config, &fitted);
    assert_eq!(result.pairs.len(), 4);
    for pair in &result.pairs {
        assert!(
            pair.metrics.be_throughput_avg > 0.0,
            "{}+{} should make progress",
            pair.lc,
            pair.be
        );
        assert!(
            pair.metrics.power_utilization() <= 1.05,
            "{} exceeds its cap on average",
            pair.lc
        );
        assert!(pair.metrics.duration_s > 30.0);
    }
}

#[test]
fn paper_pairings_survive_the_full_stack() {
    let fitted = FittedCluster::fit(&ProfilerConfig::default());
    let placement = fitted.placement(Policy::Pocolo {
        solver: Solver::Hungarian,
    });
    // LC order is img-dnn, sphinx, xapian, tpcc.
    assert_eq!(placement[0], BeApp::Lstm, "lstm pairs with img-dnn");
    assert_eq!(placement[1], BeApp::Graph, "graph pairs with sphinx");
    assert!(
        matches!(placement[2], BeApp::Rnn | BeApp::Pbzip),
        "xapian hosts rnn or pbzip"
    );
    assert!(
        matches!(placement[3], BeApp::Rnn | BeApp::Pbzip),
        "tpcc hosts rnn or pbzip"
    );
}

#[test]
fn lp_and_hungarian_agree_end_to_end() {
    let fitted = FittedCluster::fit(&ProfilerConfig::default());
    let lp = fitted.placement(Policy::Pocolo { solver: Solver::Lp });
    let hungarian = fitted.placement(Policy::Pocolo {
        solver: Solver::Hungarian,
    });
    assert_eq!(lp, hungarian);
}

#[test]
fn fitted_models_roundtrip_through_json() {
    let machine = MachineSpec::xeon_e5_2650();
    let power = PowerDrawModel::new(machine.clone());
    let space = machine.resource_space();
    let truth = LcModel::for_app(LcApp::Xapian, machine);
    let samples = profile_lc(&truth, &power, &space, &ProfilerConfig::default());
    let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default()).unwrap();

    let json = pocolo_json::to_string(&fitted.utility);
    let back: IndirectUtility = pocolo_json::typed_from_str(&json).unwrap();
    assert_eq!(fitted.utility, back);

    // And the demand solution of the deserialized model matches.
    let a = fitted.utility.demand(Watts(120.0)).unwrap();
    let b = back.demand(Watts(120.0)).unwrap();
    assert_eq!(a.amounts(), b.amounts());
}

#[test]
fn experiment_results_serialize() {
    let config = ExperimentConfig {
        dwell_s: 2.0,
        ..ExperimentConfig::default()
    };
    let fitted = FittedCluster::fit(&config.profiler);
    let result = run_experiment_with(Policy::Pom { seed: 5 }, &config, &fitted);
    let json = pocolo_json::to_string_pretty(&result);
    assert!(json.contains("POM"));
    let back: ExperimentResult = pocolo_json::typed_from_str(&json).unwrap();
    // JSON float round-trips can lose an ULP; compare structurally with a
    // tolerance on the aggregates.
    assert_eq!(result.policy, back.policy);
    assert_eq!(result.pairs.len(), back.pairs.len());
    for (a, b) in result.pairs.iter().zip(&back.pairs) {
        assert_eq!(a.lc, b.lc);
        assert_eq!(a.be, b.be);
        assert!((a.metrics.be_throughput_avg - b.metrics.be_throughput_avg).abs() < 1e-9);
    }
    assert!(
        (result.summary.avg_power_utilization - back.summary.avg_power_utilization).abs() < 1e-9
    );
}

#[test]
fn table2_constants_match_paper() {
    let machine = MachineSpec::xeon_e5_2650();
    let expect = [
        (LcApp::ImgDnn, 3500.0, 20.0, 133.0),
        (LcApp::Sphinx, 10.0, 3030.0, 182.0),
        (LcApp::Xapian, 4000.0, 4.020, 154.0),
        (LcApp::TpcC, 8000.0, 707.0, 133.0),
    ];
    for (app, peak, slo, watts) in expect {
        let m = LcModel::for_app(app, machine.clone());
        assert_eq!(m.peak_load_rps(), peak, "{app} peak load");
        assert_eq!(m.slo_p99_ms(), slo, "{app} SLO");
        assert!(
            (m.provisioned_power().0 - watts).abs() < 1.0,
            "{app} peak power {} vs {watts}",
            m.provisioned_power()
        );
    }
}

#[test]
fn heterogeneous_machines_work_end_to_end() {
    use pocolo_cluster::{PerfMatrixBuilder, ServerProfile};
    use pocolo_core::Frequency;
    // A bigger, next-generation box alongside the paper's Xeon.
    let xeon = MachineSpec::xeon_e5_2650();
    let big = MachineSpec::new(
        "hypothetical-16c",
        16,
        Frequency(1.4),
        Frequency(2.8),
        24,
        45.0,
        512,
        Watts(60.0),
        Watts(190.0),
    )
    .unwrap();

    let mut servers = Vec::new();
    for machine in [xeon.clone(), big] {
        let power = pocolo_simserver::power::PowerDrawModel::new(machine.clone());
        let space = machine.resource_space();
        let truth = LcModel::for_app(LcApp::Xapian, machine);
        let samples = profile_lc(&truth, &power, &space, &ProfilerConfig::default());
        let fitted = pocolo_core::fit::fit_indirect_utility(
            &space,
            &samples,
            &pocolo_core::fit::FitOptions::default(),
        )
        .unwrap();
        servers.push(ServerProfile {
            label: format!("xapian@{}c", space.descriptor(0).max()),
            utility: fitted.utility,
            power_cap: truth.provisioned_power(),
            peak_load: truth.peak_load_rps(),
        });
    }
    // Two BE candidates fitted on the Xeon.
    let power = pocolo_simserver::power::PowerDrawModel::new(xeon.clone());
    let space = xeon.resource_space();
    let bes: Vec<(String, IndirectUtility)> = [BeApp::Graph, BeApp::Lstm]
        .iter()
        .map(|&app| {
            let truth = BeModel::for_app(app, xeon.clone());
            let samples = profile_be(&truth, &power, &space, &ProfilerConfig::default());
            let fitted = pocolo_core::fit::fit_indirect_utility(
                &space,
                &samples,
                &pocolo_core::fit::FitOptions::default(),
            )
            .unwrap();
            (app.name().to_string(), fitted.utility)
        })
        .collect();

    let matrix = PerfMatrixBuilder::new().build(&bes, &servers).unwrap();
    assert_eq!(matrix.rows(), 2);
    assert_eq!(matrix.cols(), 2);
    for r in 0..2 {
        // The bigger machine leaves more spare capacity at every load.
        assert!(matrix.value(r, 1) > matrix.value(r, 0), "row {r}: {matrix}");
    }
    let assignment = pocolo_cluster::assign::solve(&matrix, Solver::Hungarian).unwrap();
    assert_eq!(assignment.pairs.len(), 2);
}

//! Failure injection: the control loops must protect the SLO even when the
//! models they plan with are wrong, the meter is noisy, or the load
//! misbehaves.

use pocolo::prelude::*;
use pocolo_core::{CobbDouglas, IndirectUtility, PowerModel};
use pocolo_sim::ServerSim;
use pocolo_simserver::power::PowerDrawModel;
use pocolo_simserver::MachineSpec;

/// Builds a deliberately corrupted fitted model: performance overestimated
/// by `perf_scale` (the manager will think the app needs fewer resources
/// than it does).
fn corrupted_fit(app: LcApp, perf_scale: f64) -> (LcModel, IndirectUtility) {
    let machine = MachineSpec::xeon_e5_2650();
    let truth = LcModel::for_app(app, machine.clone());
    let power = PowerDrawModel::new(machine.clone());
    let space = machine.resource_space();
    let samples = profile_lc(&truth, &power, &space, &ProfilerConfig::default());
    let fit = pocolo_core::fit::fit_indirect_utility(
        &space,
        &samples,
        &pocolo_core::fit::FitOptions::default(),
    )
    .unwrap();
    let perf = fit.utility.performance_model();
    let corrupted = CobbDouglas::new(perf.alpha0() * perf_scale, perf.alphas().to_vec()).unwrap();
    let power_model: PowerModel = fit.utility.power_model().clone();
    (
        truth,
        IndirectUtility::new(space, corrupted, power_model).unwrap(),
    )
}

fn run_server(
    truth: LcModel,
    fitted: IndirectUtility,
    load_frac: f64,
    seconds: usize,
) -> ServerSim {
    let cap = truth.provisioned_power();
    let mut sim = ServerSim::new(
        truth,
        fitted,
        None,
        LcPolicy::PowerOptimized,
        LoadTrace::Constant(load_frac),
        cap,
        0.02,
        99,
    );
    for s in 0..seconds {
        sim.on_manager_tick(s as f64);
        for _ in 0..10 {
            sim.on_capper_tick(0.1);
        }
    }
    sim
}

#[test]
fn feedback_rescues_slo_from_an_optimistic_model() {
    // The fitted model claims the app is 40% faster than it is: the pure
    // analytic allocation would violate the SLO, but the latency-slack
    // feedback grows the margin until the SLO holds.
    let (truth, fitted) = corrupted_fit(LcApp::Xapian, 1.4);
    let sim = run_server(truth, fitted, 0.6, 25);
    let slack = sim.lc_slack();
    assert!(
        slack >= 0.0,
        "feedback should have rescued the SLO, slack = {slack}"
    );
    // And it converged: violations were transient.
    assert!(sim.metrics().lc_violation_frac < 0.5);
}

#[test]
fn pessimistic_model_wastes_resources_but_never_slo() {
    let (truth, fitted) = corrupted_fit(LcApp::Sphinx, 0.6);
    let sim = run_server(truth, fitted, 0.5, 20);
    assert!(sim.lc_slack() >= 0.0);
    assert_eq!(sim.metrics().lc_violation_frac, 0.0);
}

#[test]
fn extreme_meter_noise_still_respects_cap_on_average() {
    let machine = MachineSpec::xeon_e5_2650();
    let truth = LcModel::for_app(LcApp::ImgDnn, machine.clone());
    let power = PowerDrawModel::new(machine.clone());
    let space = machine.resource_space();
    let samples = profile_lc(&truth, &power, &space, &ProfilerConfig::default());
    let fitted = pocolo_core::fit::fit_indirect_utility(
        &space,
        &samples,
        &pocolo_core::fit::FitOptions::default(),
    )
    .unwrap()
    .utility;
    let cap = truth.provisioned_power();
    let be = BeModel::for_app(BeApp::Pbzip, machine);
    let mut sim = ServerSim::new(
        truth,
        fitted,
        Some(be),
        LcPolicy::PowerOptimized,
        LoadTrace::Constant(0.3),
        cap,
        0.10, // ±10% meter error
        7,
    );
    for s in 0..40 {
        sim.on_manager_tick(s as f64);
        for _ in 0..10 {
            sim.on_capper_tick(0.1);
        }
    }
    let util = sim.metrics().power_utilization();
    assert!(
        util < 1.05,
        "average power {util} should stay near the cap despite meter noise"
    );
    assert!(sim.metrics().be_throughput_avg > 0.0);
}

#[test]
fn load_spike_recovers_within_seconds() {
    let machine = MachineSpec::xeon_e5_2650();
    let truth = LcModel::for_app(LcApp::TpcC, machine.clone());
    let power = PowerDrawModel::new(machine.clone());
    let space = machine.resource_space();
    let fitted = pocolo_core::fit::fit_indirect_utility(
        &space,
        &profile_lc(&truth, &power, &space, &ProfilerConfig::default()),
        &pocolo_core::fit::FitOptions::default(),
    )
    .unwrap()
    .utility;
    let cap = truth.provisioned_power();
    // 0.2 load for 20 s, instant spike to 0.85 for 20 s.
    let trace = LoadTrace::Steps(vec![(20.0, 0.2), (20.0, 0.85)]);
    let mut sim = ServerSim::new(
        truth,
        fitted,
        Some(BeModel::for_app(BeApp::Rnn, machine)),
        LcPolicy::PowerOptimized,
        trace,
        cap,
        0.01,
        3,
    );
    let mut first_ok_after_spike = None;
    for s in 0..40 {
        sim.on_manager_tick(s as f64);
        for _ in 0..10 {
            sim.on_capper_tick(0.1);
        }
        if s >= 20 && first_ok_after_spike.is_none() && sim.lc_slack() >= 0.0 {
            first_ok_after_spike = Some(s - 20);
        }
    }
    let recovery = first_ok_after_spike.expect("SLO must recover after the spike");
    assert!(
        recovery <= 5,
        "recovery took {recovery} s; the 1 s control loop should fix a spike within a few epochs"
    );
    assert!(sim.lc_slack() >= 0.0);
}

#[test]
fn convexity_screen_accepts_all_paper_workloads() {
    // §V-G: the framework requires convex preferences. All eight ground
    // truths (CES with saturation) must pass the screen.
    let machine = MachineSpec::xeon_e5_2650();
    let power = PowerDrawModel::new(machine.clone());
    let space = machine.resource_space();
    let cfg = ProfilerConfig {
        perf_noise: 0.0,
        power_noise: 0.0,
        ..ProfilerConfig::default()
    };
    for app in LcApp::ALL {
        let truth = LcModel::for_app(app, machine.clone());
        let samples = profile_lc(&truth, &power, &space, &cfg);
        let report = pocolo_core::fit::check_convexity(&space, &samples, 0.02).unwrap();
        assert!(report.is_suitable(0.05), "{app}: {report:?}");
    }
    for app in BeApp::ALL {
        let truth = BeModel::for_app(app, machine.clone());
        let samples = profile_be(&truth, &power, &space, &cfg);
        let report = pocolo_core::fit::check_convexity(&space, &samples, 0.02).unwrap();
        assert!(report.is_suitable(0.05), "{app}: {report:?}");
    }
}

#[test]
fn workload_drift_triggers_a_better_replacement() {
    use pocolo_cluster::PerfMatrixBuilder;
    use pocolo_core::fit::{FitOptions, OnlineFitter};

    // Day 0: fit everything and place.
    let fitted = FittedCluster::fit(&ProfilerConfig::default());
    let servers = fitted.server_profiles();
    let mut bes = fitted.be_profiles();
    let builder = PerfMatrixBuilder::new();
    let matrix0 = builder.build(&bes, &servers).unwrap();
    let placement0 = pocolo_cluster::assign::solve(&matrix0, Solver::Hungarian).unwrap();
    let graph_row = bes.iter().position(|(n, _)| n == "graph").unwrap();
    let sphinx_col = matrix0
        .col_labels()
        .iter()
        .position(|l| l == "sphinx")
        .unwrap();
    assert_eq!(placement0.server_for(graph_row), Some(sphinx_col));

    // The "graph" job finishes and its slot is reused by a cache-hungry
    // phase (lstm-like behaviour). Telemetry keeps flowing into an online
    // fitter...
    let machine = MachineSpec::xeon_e5_2650();
    let power = pocolo_simserver::power::PowerDrawModel::new(machine.clone());
    let space = machine.resource_space();
    let mut fitter = OnlineFitter::new(space.clone(), FitOptions::default(), 240, 40);
    // Old-phase samples first.
    let old_truth = BeModel::for_app(BeApp::Graph, machine.clone());
    for s in profile_be(&old_truth, &power, &space, &ProfilerConfig::default()) {
        fitter.ingest(s);
    }
    let drift_before = fitter.max_drift().unwrap_or(0.0);
    // New-phase samples flood the window.
    let new_truth = BeModel::for_app(BeApp::Lstm, machine.clone());
    let cfg = ProfilerConfig {
        seed: 0xD21F7,
        ..ProfilerConfig::default()
    };
    for s in profile_be(&new_truth, &power, &space, &cfg) {
        fitter.ingest(s);
    }
    // ...and the drift signal fires.
    let drift_after = fitter.max_drift().unwrap();
    assert!(
        drift_after > drift_before + 0.2,
        "phase change must register as preference drift: {drift_before} -> {drift_after}"
    );

    // Re-place with the refreshed model: the drifted app no longer belongs
    // on sphinx, and the refreshed placement beats keeping the stale one.
    bes[graph_row].1 = fitter.model().unwrap().utility.clone();
    let matrix1 = builder.build(&bes, &servers).unwrap();
    let placement1 = pocolo_cluster::assign::solve(&matrix1, Solver::Hungarian).unwrap();
    assert_ne!(
        placement1.server_for(graph_row),
        Some(sphinx_col),
        "a cache-hungry app should leave the ways-starved sphinx server"
    );
    let stale_total = matrix1.assignment_value(&placement0.pairs);
    assert!(
        placement1.total > stale_total,
        "re-placement {} must beat the stale placement {}",
        placement1.total,
        stale_total
    );
}

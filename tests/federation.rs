//! Federation acceptance tests: under pinned multi-region chaos seeds,
//! the federated placer strictly beats region-isolated baselines, never
//! breaches a cap, and survives a leader kill with a bit-identical
//! report.

use pocolo::prelude::*;

fn with_faults(regions: usize, seed: u64, scenario: RegionScenario) -> FederationScenario {
    let mut sc = FederationScenario::pinned(regions, seed);
    sc.faults = Some(RegionFaultSpec {
        scenario,
        seed: Some(seed),
    });
    sc
}

#[test]
fn federated_strictly_beats_isolated_across_pinned_seeds() {
    // Several pinned worlds, both fault scenarios: the federated placer
    // must win on BOTH planned utility and SLO-violation fraction, with
    // zero cap violations on either side. Not one cherry-picked seed.
    for (regions, seed, scenario) in [
        (3, 42, RegionScenario::RegionBrownout),
        (4, 7, RegionScenario::RegionBrownout),
        (3, 11, RegionScenario::RegionChaos),
        (5, 23, RegionScenario::RegionChaos),
    ] {
        let fed = with_faults(regions, seed, scenario);
        let mut iso = fed.clone();
        iso.federated = false;
        let (fed_r, iso_r) = (fed.run(), iso.run());
        assert!(
            fed_r.utility > iso_r.utility,
            "seed {seed}/{regions}r {scenario:?}: federated utility {} ≤ isolated {}",
            fed_r.utility,
            iso_r.utility
        );
        assert!(
            fed_r.slo_violation_frac < iso_r.slo_violation_frac,
            "seed {seed}/{regions}r {scenario:?}: federated slo {} ≥ isolated {}",
            fed_r.slo_violation_frac,
            iso_r.slo_violation_frac
        );
        assert_eq!(fed_r.cap_violations, 0, "federated breached a cap");
        assert_eq!(iso_r.cap_violations, 0, "isolated breached a cap");
        assert!(fed_r.migrations > 0, "the win must come from failover");
    }
}

#[test]
fn leader_kill_mid_run_is_bit_identical_to_the_reference() {
    // The chaos plan kills the leader replica while the first brownout
    // is in effect. With the decision log replicated synchronously, the
    // promoted follower must continue the exact decision stream: every
    // report field but the promotion history matches bit-for-bit.
    for seed in [5u64, 11, 23] {
        let reference = with_faults(4, seed, RegionScenario::RegionChaos);
        let mut killed = reference.clone();
        killed.kill_leader = true;
        let (ref_r, kill_r) = (reference.run(), killed.run());
        assert!(
            !kill_r.promotions.is_empty(),
            "seed {seed}: a follower must be promoted"
        );
        assert!(ref_r.promotions.is_empty());
        assert_eq!(kill_r.decision_digest, ref_r.decision_digest, "seed {seed}");
        assert_eq!(kill_r.decision_log, ref_r.decision_log, "seed {seed}");
        assert_eq!(
            kill_r.utility.to_bits(),
            ref_r.utility.to_bits(),
            "seed {seed}: utility diverged"
        );
        assert_eq!(
            kill_r.slo_violation_frac.to_bits(),
            ref_r.slo_violation_frac.to_bits(),
            "seed {seed}: slo diverged"
        );
        assert_eq!(kill_r.final_version, ref_r.final_version);
        assert_eq!(kill_r.migrations, ref_r.migrations);
    }
}

#[test]
fn reports_are_bit_identical_at_any_parallelism() {
    let serial = {
        let mut sc = with_faults(4, 9, RegionScenario::RegionChaos);
        sc.kill_leader = true;
        sc
    };
    let mut auto = serial.clone();
    auto.parallelism = Parallelism::Auto;
    let mut four = serial.clone();
    four.parallelism = Parallelism::Fixed(4);
    let base = serial.run();
    assert_eq!(base, auto.run(), "auto parallelism diverged");
    assert_eq!(base, four.run(), "fixed(4) parallelism diverged");
}

#[test]
fn migrations_ride_the_warm_start_path_and_settle() {
    // After the brownout clears, hysteresis must keep the fleet from
    // thrashing: total migrations stay a small multiple of the decision
    // epochs, not one per epoch per app.
    let fed = with_faults(4, 42, RegionScenario::RegionBrownout);
    let r = fed.run();
    let epochs = r.ticks / FederationConfig::default().decide_period;
    assert!(r.migrations > 0);
    assert!(
        r.migrations < epochs * 2,
        "{} migrations over {epochs} epochs looks like thrash",
        r.migrations
    );
    // And the decision log replays: every line is a valid FedLogEntry
    // with contiguous versions.
    let mut expect = 0u64;
    for line in &r.decision_log {
        let v = pocolo_json::from_str(line).expect("log line parses");
        let entry = pocolo::core::federation::FedLogEntry::from_json(&v).expect("log line decodes");
        expect += 1;
        assert_eq!(entry.version, expect, "log versions must be contiguous");
    }
    assert_eq!(expect, r.final_version);
}

//! Control-plane acceptance tests: the [`PocoloController`]'s mode
//! transitions must be observable through the [`DecisionRecord`] stream,
//! and the full `ServerSim` backend must actuate re-admission decisions
//! exactly as the [`BeGuard`] schedules them.

use pocolo::core::fit::{fit_indirect_utility, FitOptions};
use pocolo::prelude::*;
use pocolo::simserver::power::PowerDrawModel;

fn fitted_utility(app: LcApp) -> (LcModel, IndirectUtility) {
    let machine = MachineSpec::xeon_e5_2650();
    let truth = LcModel::for_app(app, machine.clone());
    let power = PowerDrawModel::new(machine.clone());
    let space = machine.resource_space();
    let samples =
        pocolo::workloads::profiler::profile_lc(&truth, &power, &space, &ProfilerConfig::default());
    let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default())
        .unwrap()
        .utility;
    (truth, fitted)
}

fn controller(armed: bool) -> PocoloController {
    let (_, fitted) = fitted_utility(LcApp::Sphinx);
    let manager = ServerManager::new(fitted, LcPolicy::PowerOptimized, ManagerConfig::default());
    let mut ctl = PocoloController::new(manager);
    if armed {
        ctl.arm_resilience(ResilienceParams {
            governor: GovernorConfig::default(),
            eviction_patience_ticks: 2,
            backoff: ReadmissionBackoff::new(4.0, 2.0, 64.0),
            readmit_pause_s: 2.0,
        });
    }
    ctl
}

fn input(load_rps: f64) -> ControlInput {
    ControlInput {
        now_s: 1.0,
        observed_load_rps: load_rps,
        observed_slack: Some(0.3),
        measured_power: None,
        effective_cap: Watts(100.0),
        brownout: false,
        rapl_throttled: false,
        telemetry_frozen: false,
        be_present: true,
        be_draw_estimate: Watts(10.0),
        max_counts: (16, 20),
    }
}

#[test]
fn frozen_telemetry_blinds_a_resilient_controller() {
    let mut ctl = controller(true);
    let decision = ctl.decide(&ControlInput {
        telemetry_frozen: true,
        observed_slack: Some(0.9), // stale: analytically this would trim
        ..input(400.0)
    });
    assert_eq!(decision.mode, ControlMode::Degraded);
    assert_eq!(ctl.mode(), ControlMode::Degraded);
    assert_eq!(
        decision.record.slack, None,
        "a frozen slack reading must not be consumed"
    );
    // Blind incremental fallback: with no prior counts it holds the full
    // machine rather than trusting the stale trim signal.
    assert_eq!(
        decision.primary,
        PrimaryDirective::Resize {
            cores: 16,
            ways: 20
        }
    );
    assert_eq!(decision.record.budget_w, None);
}

#[test]
fn naive_controller_consumes_stale_telemetry_and_stays_normal() {
    let mut ctl = controller(false);
    let decision = ctl.decide(&ControlInput {
        telemetry_frozen: true,
        ..input(400.0)
    });
    assert_eq!(decision.mode, ControlMode::Normal);
    assert_eq!(
        decision.record.slack,
        Some(0.3),
        "the naive path keeps trusting the frozen reading"
    );
}

#[test]
fn governor_arms_on_measured_overdraw_and_reports_governed() {
    let mut ctl = controller(true);
    // Brownout, meter over the comfort target (88 W of 100 W): arms and
    // switches to meter-calibrated budgeted sizing in the same epoch.
    let decision = ctl.decide(&ControlInput {
        brownout: true,
        measured_power: Some(Watts(95.0)),
        ..input(400.0)
    });
    assert_eq!(decision.mode, ControlMode::Governed);
    assert!(decision.record.governor_armed);
    assert!(!decision.record.escalated);
    assert!(
        decision.record.budget_w.is_some(),
        "an armed governor must hand the planner a watt budget"
    );
    // Below the target afterwards: armed is a latch, not a level.
    let calm = ctl.decide(&ControlInput {
        brownout: true,
        measured_power: Some(Watts(50.0)),
        ..input(400.0)
    });
    assert_eq!(calm.mode, ControlMode::Governed);
    assert!(calm.record.governor_armed);
}

#[test]
fn slo_violation_escalates_to_distress_until_the_brownout_lifts() {
    let mut ctl = controller(true);
    let distressed = ctl.decide(&ControlInput {
        brownout: true,
        measured_power: Some(Watts(95.0)),
        observed_slack: Some(-0.1),
        ..input(400.0)
    });
    assert_eq!(distressed.mode, ControlMode::Distress);
    assert!(distressed.record.escalated);
    // Sticky: recovered slack does not de-escalate mid-brownout.
    let recovered = ctl.decide(&ControlInput {
        brownout: true,
        measured_power: Some(Watts(50.0)),
        observed_slack: Some(0.5),
        ..input(400.0)
    });
    assert_eq!(recovered.mode, ControlMode::Distress);
    // The lift disarms both latches and control returns to Normal.
    ctl.on_brownout_lift();
    let after = ctl.decide(&input(400.0));
    assert_eq!(after.mode, ControlMode::Normal);
    assert!(!after.record.governor_armed && !after.record.escalated);
}

#[test]
fn duck_flag_is_reported_while_the_rapl_ceiling_is_depressed() {
    let mut ctl = controller(true);
    // Escalate first so the 0.98 target sits above the release band.
    ctl.decide(&ControlInput {
        brownout: true,
        measured_power: Some(Watts(99.0)),
        observed_slack: Some(-0.1),
        ..input(400.0)
    });
    let ducked = ctl.decide(&ControlInput {
        brownout: true,
        rapl_throttled: true,
        measured_power: Some(Watts(99.0)),
        observed_slack: Some(-0.1),
        ..input(400.0)
    });
    assert!(ducked.record.ducked);
    let released = ctl.decide(&ControlInput {
        brownout: true,
        rapl_throttled: false,
        measured_power: Some(Watts(99.0)),
        observed_slack: Some(-0.1),
        ..input(400.0)
    });
    assert!(!released.record.ducked, "duck is per-step, not latched");
}

#[test]
fn heracles_controller_grows_blind_and_trims_on_headroom() {
    let (_, fitted) = fitted_utility(LcApp::Sphinx);
    let manager = ServerManager::new(fitted, LcPolicy::PowerOptimized, ManagerConfig::default());
    let mut ctl = HeraclesController::new(manager);
    // Ample verified headroom (slack > high_slack = 0.5): trim one of each.
    let trim = ctl.decide(&ControlInput {
        observed_slack: Some(0.9),
        ..input(400.0)
    });
    assert_eq!(
        trim.primary,
        PrimaryDirective::Resize {
            cores: 15,
            ways: 19
        }
    );
    assert_eq!(trim.mode, ControlMode::Normal);
    assert_eq!(trim.record.budget_w, None, "Heracles never prices watts");
    // No reading at all: grow conservatively (naive Heracles is not
    // armed, so the stale-telemetry distrust stays off and mode is
    // Normal even while frozen).
    let grow = ctl.decide(&ControlInput {
        observed_slack: None,
        telemetry_frozen: true,
        ..input(400.0)
    });
    assert_eq!(grow.mode, ControlMode::Normal);
}

/// End-to-end re-admission: a crash parks the co-runner, a persistent
/// telemetry freeze keeps every backed-off re-admission attempt failing
/// (the wait doubling each time), and only after the thaw does the
/// co-runner return — paying the warm-up pause.
#[test]
fn persistent_fault_blocks_readmission_until_the_thaw() {
    let machine = MachineSpec::xeon_e5_2650();
    let (truth, fitted) = fitted_utility(LcApp::Sphinx);
    let cap = truth.provisioned_power();
    let be_truth = BeModel::for_app(BeApp::Graph, machine);
    let mut sim = ServerSim::new(
        truth,
        fitted,
        Some(be_truth),
        LcPolicy::PowerOptimized,
        LoadTrace::Constant(0.4),
        cap,
        0.01,
        42,
    )
    .with_resilience(ResilienceConfig::default(), 0)
    .with_decision_log();

    let run = |sim: &mut ServerSim, from_s: usize, to_s: usize| {
        for s in from_s..to_s {
            sim.on_manager_tick(s as f64);
            for _ in 0..10 {
                sim.on_capper_tick(0.1);
            }
        }
    };

    run(&mut sim, 0, 10);
    assert!(
        sim.be_truth().is_some(),
        "co-runner healthy before the crash"
    );

    sim.apply_fault(&ServerFaultAction::Crash, 10.0);
    assert!(sim.be_truth().is_none(), "the crash parks the co-runner");
    assert_eq!(sim.metrics().evictions, 1);

    // Rejoin under a telemetry dropout that outlives every backoff step:
    // 15 → 23 → 39 → 71 → 135 s (4 s base, doubling, 64 s ceiling).
    sim.apply_fault(&ServerFaultAction::Recover, 11.0);
    sim.apply_fault(&ServerFaultAction::FreezeTelemetry { until_s: 1e9 }, 11.0);
    run(&mut sim, 12, 100);
    assert!(
        sim.be_truth().is_none(),
        "a faulted server must keep refusing re-admission"
    );
    assert!(
        sim.decision_records()
            .iter()
            .any(|r| r.mode == ControlMode::Degraded),
        "the freeze must be visible as Degraded mode in the trace"
    );

    sim.apply_fault(&ServerFaultAction::Thaw, 100.0);
    run(&mut sim, 100, 140);
    assert!(
        sim.be_truth().is_some(),
        "the thawed server re-admits once the backed-off attempt is due"
    );
    let last = sim.decision_records().last().unwrap();
    assert_eq!(last.mode, ControlMode::Normal);
}

//! The paper's headline ordering, asserted end-to-end: POColo ≥ POM >
//! Random on best-effort throughput, with SLO adherence throughout and the
//! baseline capping far more often.

use pocolo::prelude::*;

fn runs() -> (ExperimentResult, ExperimentResult, ExperimentResult) {
    let config = ExperimentConfig {
        dwell_s: 8.0,
        ..ExperimentConfig::default()
    };
    let fitted = FittedCluster::fit(&config.profiler);
    (
        run_experiment_with(Policy::Random { seed: 3 }, &config, &fitted),
        run_experiment_with(Policy::Pom { seed: 3 }, &config, &fitted),
        run_experiment_with(Policy::Pocolo { solver: Solver::Lp }, &config, &fitted),
    )
}

#[test]
fn throughput_ordering_and_slo() {
    let (random, pom, pocolo) = runs();

    // Fig. 12 shape: POM beats Random; POColo beats POM.
    assert!(
        pom.summary.avg_be_throughput > random.summary.avg_be_throughput * 1.02,
        "POM {} should clearly beat Random {}",
        pom.summary.avg_be_throughput,
        random.summary.avg_be_throughput
    );
    assert!(
        pocolo.summary.avg_be_throughput > pom.summary.avg_be_throughput,
        "POColo {} should beat POM {}",
        pocolo.summary.avg_be_throughput,
        pom.summary.avg_be_throughput
    );

    // The paper's magnitudes (+8% POM, +18% POColo) should be in range.
    let pom_gain = pom.summary.avg_be_throughput / random.summary.avg_be_throughput - 1.0;
    let pocolo_gain = pocolo.summary.avg_be_throughput / random.summary.avg_be_throughput - 1.0;
    assert!(
        (0.04..0.40).contains(&pom_gain),
        "POM gain {pom_gain} outside plausible band"
    );
    assert!(
        (0.10..0.45).contains(&pocolo_gain),
        "POColo gain {pocolo_gain} outside plausible band"
    );

    // SLO: violations are transient (load-step edges), never sustained.
    for r in [&random, &pom, &pocolo] {
        assert!(
            r.summary.worst_violation_frac < 0.25,
            "{} violates SLO {}% of the time",
            r.policy,
            100.0 * r.summary.worst_violation_frac
        );
    }

    // Fig. 13 mechanism: the baseline needs power capping far more often.
    assert!(
        random.summary.avg_capping_frac > 3.0 * pom.summary.avg_capping_frac,
        "Random capping {} should dwarf POM {}",
        random.summary.avg_capping_frac,
        pom.summary.avg_capping_frac
    );

    // Energy per unit of work improves under the power-aware policies.
    assert!(
        pom.summary.energy_per_throughput < random.summary.energy_per_throughput,
        "POM energy/work should improve on Random"
    );
    assert!(
        pocolo.summary.energy_per_throughput < pom.summary.energy_per_throughput,
        "POColo energy/work should improve on POM"
    );
}

#[test]
fn tco_ordering_matches_fig15() {
    let (random, pom, pocolo) = runs();
    let model = TcoModel::default();
    let scenario = |r: &ExperimentResult, cap: Option<f64>| Scenario {
        name: r.policy.clone(),
        provisioned_per_server: Watts(cap.unwrap_or_else(|| {
            r.pairs.iter().map(|p| p.metrics.power_cap.0).sum::<f64>() / r.pairs.len() as f64
        })),
        avg_power_per_server: Watts(
            r.pairs.iter().map(|p| p.metrics.avg_power().0).sum::<f64>() / r.pairs.len() as f64,
        ),
        relative_throughput: (0.5 + r.summary.avg_be_throughput)
            / (0.5 + random.summary.avg_be_throughput),
    };
    let nocap = model.monthly_cost(&scenario(&random, Some(185.0))).total();
    let base = model.monthly_cost(&scenario(&random, None)).total();
    let pom_c = model.monthly_cost(&scenario(&pom, None)).total();
    let pocolo_c = model.monthly_cost(&scenario(&pocolo, None)).total();
    assert!(pocolo_c < pom_c, "POColo TCO {pocolo_c} < POM {pom_c}");
    assert!(pom_c < base, "POM TCO {pom_c} < Random {base}");
    assert!(base < nocap, "right-sizing beats overprovisioning");
    let saving = 1.0 - pocolo_c / nocap;
    assert!(
        saving > 0.05,
        "POColo should save >5% vs Random(NoCap), got {saving}"
    );
}

//! Acceptance test for the traffic engine's online-refit loop: under a
//! seeded flash-crowd × brownout (surge) scenario, adopting online refits
//! must yield strictly fewer SLO-violating requests than the
//! frozen-offline-fit baseline.
//!
//! Both runs are fully deterministic — seeded generators, seeded queues,
//! seeded fault plans — so the comparison is exact, not statistical. The
//! two runs also deliberately use different shard counts: their batch
//! digests must still agree, which exercises the shard/merge contract at
//! engine scale for free.

use pocolo::prelude::*;

fn config(online_fit: bool, shards: usize) -> TrafficConfig {
    let mut cfg = TrafficConfig::new("flashcrowd:7".parse::<TrafficSpec>().unwrap());
    // Sized for test runtime: ~150k users keep generation under a couple
    // of seconds while still pushing ~18M requests through the loop.
    cfg.users = 150_000;
    cfg.ticks = 12;
    cfg.shards = shards;
    cfg.online_fit = online_fit;
    cfg.faults = Some("surge:7".parse::<FaultSpec>().unwrap());
    cfg
}

#[test]
fn online_refit_beats_frozen_fit_under_surge() {
    let frozen = pocolo::traffic::run_traffic(&config(false, 1));
    let online = pocolo::traffic::run_traffic(&config(true, 8));

    // Identical traffic reached both runs: same request stream
    // bit-for-bit, despite the different shard counts.
    assert_eq!(frozen.digest, online.digest);
    assert_eq!(frozen.requests, online.requests);
    assert!(frozen.requests > 10_000_000, "requests {}", frozen.requests);

    // The surge overloads the fleet either way…
    assert!(
        frozen.slo_violation_frac > 0.0,
        "the surge scenario must actually cause violations"
    );
    // …but adopting online refits recovers capacity: strictly fewer
    // violating requests than the frozen baseline.
    assert!(
        online.slo_violation_frac < frozen.slo_violation_frac,
        "online {} vs frozen {}",
        online.slo_violation_frac,
        frozen.slo_violation_frac
    );

    // The improvement came through the refit → replan machinery, not by
    // accident: models refit, drift triggered incremental repairs.
    assert!(online.refits > 0);
    assert!(online.replans > 0);
    // The frozen baseline ingests telemetry too (same loop cost) but
    // never adopts, so it reports no replans.
    assert_eq!(frozen.replans, 0);
    assert_eq!(frozen.migrations, 0);
}

#[test]
fn traffic_report_is_deterministic_and_serializable() {
    let a = pocolo::traffic::run_traffic(&config(true, 4));
    let b = pocolo::traffic::run_traffic(&config(true, 4));
    assert_eq!(a.slo_violation_frac, b.slo_violation_frac);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.refits, b.refits);
    assert_eq!(a.replans, b.replans);
    assert_eq!(a.slots, b.slots);

    // The serialized report carries no wall-clock fields, so identical
    // runs produce byte-identical JSON (the CI shard gate relies on it).
    let ja = pocolo_json::to_string_pretty(&a);
    let jb = pocolo_json::to_string_pretty(&b);
    assert_eq!(ja, jb);
    assert!(ja.contains("\"digest\""));
    assert!(!ja.contains("gen_seconds"));
}

//! Wire-path acceptance tests: the distributed runtime must *reproduce*
//! the in-process engine, not merely resemble it.
//!
//! The seeded `{pocolo, random} × {no-fault, brownout}` grid runs over
//! real loopback TCP — cluster daemon, four agent processes-worth of
//! threads, length-prefixed JSON frames — and every run's placement
//! assignments and epoch-level metrics must equal the in-process
//! engine's field-for-field. A separate test kills one agent mid-run and
//! checks the full failure path: lease expiry → degraded fallback →
//! idempotent re-registration → completion without a panic or a violated
//! power cap.

use std::time::Duration;

use pocolo::net::{run_demo, DemoConfig};
use pocolo::prelude::*;

fn demo(policy: Policy, faults: Option<&str>) -> DemoConfig {
    let experiment = ExperimentConfig {
        dwell_s: 2.0,
        seed: 1,
        faults: faults.map(|s| s.parse().expect("fault spec parses")),
        ..ExperimentConfig::default()
    };
    DemoConfig::new(policy, experiment)
}

#[track_caller]
fn assert_parity(policy: Policy, faults: Option<&str>) {
    let report = run_demo(&demo(policy, faults)).expect("loopback run completes");
    assert_eq!(report.placement.len(), 4, "paper cluster is four servers");
    assert!(
        report.parity(),
        "wire path diverged from the in-process engine for {:?} faults {:?}:\n wire: {:?}\n in-process: {:?}",
        policy,
        faults,
        report.wire.summary,
        report.in_process.summary,
    );
    assert!(report.degraded_slots.is_empty(), "clean run never degrades");
    assert_eq!(report.reregistrations, 0);
}

#[test]
fn wire_parity_pocolo_clean() {
    assert_parity(
        Policy::Pocolo {
            solver: Solver::Hungarian,
        },
        None,
    );
}

#[test]
fn wire_parity_pocolo_brownout() {
    assert_parity(
        Policy::Pocolo {
            solver: Solver::Hungarian,
        },
        Some("brownout:1"),
    );
}

#[test]
fn wire_parity_random_clean() {
    assert_parity(Policy::Random { seed: 1 }, None);
}

#[test]
fn wire_parity_random_brownout() {
    assert_parity(Policy::Random { seed: 1 }, Some("brownout:1"));
}

#[test]
fn killed_agent_degrades_and_rejoins_without_violating_the_cap() {
    let mut config = demo(
        Policy::Pocolo {
            solver: Solver::Hungarian,
        },
        Some("brownout:1"),
    );
    config.kill_after_epochs = Some(3);
    config.lease_ttl = Duration::from_millis(150);
    let report = run_demo(&config).expect("failure path completes cleanly");

    let dead = report.killed.as_ref().expect("one agent was killed");
    assert!(!dead.completed);
    assert_eq!(dead.epochs, 3, "kill switch fired after three epochs");
    // Lease expiry flipped the slot, and the same identity reclaimed it.
    assert!(
        report.degraded_slots.contains(&dead.server),
        "killed slot {} missing from degraded history {:?}",
        dead.server,
        report.degraded_slots
    );
    assert!(report.reregistrations >= 1, "rejoin was a re-registration");
    // Every slot still delivered final metrics (the daemon's result is
    // only assembled once all four are done)...
    assert_eq!(report.wire.pairs.len(), 4);
    // ...the degraded re-run reproduced the in-process degraded
    // projection bit-for-bit...
    assert!(
        report.degraded_parity(),
        "degraded slot diverged from its in-process reference"
    );
    // ...and no slot ran hotter than the in-process engine's cap
    // guarantee allows — the wire path added no cap violation.
    assert!(
        report.cap_respected(),
        "a slot exceeded its in-process reference peak: {:?}",
        report
            .wire
            .pairs
            .iter()
            .map(|p| (p.metrics.peak_power, p.metrics.power_cap))
            .collect::<Vec<_>>()
    );
    // The degraded slot re-ran under the blind incremental controller, so
    // the healthy slots must still match the in-process engine exactly.
    for (i, (wire, inproc)) in report
        .wire
        .pairs
        .iter()
        .zip(report.in_process.pairs.iter())
        .enumerate()
    {
        assert_eq!(wire.lc, inproc.lc, "slot {i} primary label");
        assert_eq!(wire.be, inproc.be, "slot {i} placement");
        if i != dead.server {
            assert_eq!(wire.metrics, inproc.metrics, "healthy slot {i} metrics");
        }
    }
}

//! Property-based tests on cross-crate invariants, driven by proptest.

use pocolo::prelude::*;
use pocolo_core::fit::{fit_indirect_utility, FitOptions, ProfileSample};
use pocolo_core::{CobbDouglas, PowerModel, ResourceSpace};
use pocolo_simserver::power::PowerDrawModel;
use proptest::prelude::*;

/// Strategy: a well-formed Cobb-Douglas indirect utility over the standard
/// cores/ways space.
fn arb_utility() -> impl Strategy<Value = IndirectUtility> {
    (
        0.5f64..500.0, // alpha0
        0.05f64..1.2,  // alpha cores
        0.05f64..1.2,  // alpha ways
        10.0f64..80.0, // static watts
        0.5f64..10.0,  // watts/core
        0.1f64..3.0,   // watts/way
    )
        .prop_map(|(a0, ac, aw, ps, pc, pw)| {
            let space = ResourceSpace::cores_and_ways();
            let perf = CobbDouglas::new(a0, vec![ac, aw]).expect("valid in range");
            let power = PowerModel::new(Watts(ps), vec![pc, pw]).expect("valid in range");
            IndirectUtility::new(space, perf, power).expect("dimensions agree")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The analytic demand never exceeds the budget and beats every point
    /// of a random feasible sample.
    #[test]
    fn demand_is_budget_feasible_and_optimal(
        utility in arb_utility(),
        budget_frac in 0.05f64..1.0,
        probe_c in 1u32..=12,
        probe_w in 1u32..=20,
    ) {
        let lo = utility.min_feasible_power();
        let hi = utility.max_power();
        let budget = lo + (hi - lo) * budget_frac;
        let solution = utility.demand_solution(budget).expect("budget >= min");
        prop_assert!(solution.power <= budget + Watts(1e-6));

        let amounts = [probe_c as f64, probe_w as f64];
        let probe_power = utility.power_model().power_of_amounts(&amounts).unwrap();
        if probe_power <= budget {
            let probe_perf = utility.performance_model().evaluate_amounts(&amounts).unwrap();
            prop_assert!(
                probe_perf <= solution.utility * (1.0 + 1e-9),
                "feasible probe beats the analytic optimum"
            );
        }
    }

    /// Inverting the indirect utility is consistent: the least power for a
    /// reachable target actually reaches it.
    #[test]
    fn min_power_for_is_consistent(
        utility in arb_utility(),
        target_frac in 0.05f64..0.95,
    ) {
        let best = utility.value(utility.max_power()).unwrap();
        let target = best * target_frac;
        let p = utility.min_power_for(target).expect("target under the max");
        let achieved = utility.value(p).unwrap();
        prop_assert!(achieved >= target * (1.0 - 1e-6));
        // And a slightly smaller budget cannot reach it (when not clamped
        // at the feasibility floor).
        if p > utility.min_feasible_power() + Watts(1e-3) {
            let under = utility.value(p - Watts(1e-3)).unwrap();
            prop_assert!(under <= target * (1.0 + 1e-3));
        }
    }

    /// Fitting recovers a ground-truth Cobb-Douglas model exactly from
    /// noiseless samples, end to end through the profiling sample type.
    #[test]
    fn fit_recovers_ground_truth(utility in arb_utility()) {
        let space = utility.space().clone();
        let mut samples = Vec::new();
        for c in (1..=12u32).step_by(2) {
            for w in (2..=20u32).step_by(3) {
                let amounts = vec![c as f64, w as f64];
                let perf = utility.performance_model().evaluate_amounts(&amounts).unwrap();
                let power = utility.power_model().power_of_amounts(&amounts).unwrap();
                let alloc = space.allocation(amounts).unwrap();
                samples.push(ProfileSample::best_effort(alloc, perf, power));
            }
        }
        let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default()).unwrap();
        let alphas = fitted.utility.performance_model().alphas();
        let truth = utility.performance_model().alphas();
        prop_assert!((alphas[0] - truth[0]).abs() < 1e-6);
        prop_assert!((alphas[1] - truth[1]).abs() < 1e-6);
        prop_assert!(fitted.performance_r2 > 0.999999);
        prop_assert!(fitted.power_r2 > 0.999999);
    }

    /// The power capper always settles a server under its cap when the cap
    /// is reachable at the floor allocation.
    #[test]
    fn capper_always_settles_under_reachable_cap(
        be_idx in 0usize..4,
        lc_idx in 0usize..4,
        load in 0.1f64..0.9,
    ) {
        let machine = MachineSpec::xeon_e5_2650();
        let power = PowerDrawModel::new(machine.clone());
        let lc = LcModel::for_app(LcApp::ALL[lc_idx], machine.clone());
        let be = BeModel::for_app(BeApp::ALL[be_idx], machine.clone());
        let cap = lc.provisioned_power();

        let mut server = pocolo_simserver::SimServer::new(machine.clone(), cap);
        let (lc_alloc, be_alloc) = pocolo_manager::partition(
            &machine, 6, 10, machine.freq_max(), machine.freq_max());
        server.install(TenantRole::Primary, lc_alloc).unwrap();
        server.install(TenantRole::Secondary, be_alloc.unwrap()).unwrap();
        let capper = PowerCapper::default();
        let load_rps = load * lc.peak_load_rps();

        let mut last = Watts::ZERO;
        for _ in 0..200 {
            let lc_a = *server.allocation(TenantRole::Primary).unwrap();
            let be_a = *server.allocation(TenantRole::Secondary).unwrap();
            let total = power.server_power([
                lc.power_draw(load_rps, &lc_a, &power),
                be.power_draw(&be_a, &power),
            ]);
            last = total;
            capper.step(&mut server, total).unwrap();
        }
        // Either settled under the cap, or the secondary is at its floors
        // (primary draw alone exceeds the cap - impossible here since the
        // primary holds a half-machine allocation).
        prop_assert!(
            last <= cap * 1.01,
            "settled power {last} exceeds cap {cap}"
        );
    }

    /// Partitioning is always isolating and exhaustive, whatever the
    /// requested primary size.
    #[test]
    fn partition_is_safe(c in 0u32..20, w in 0u32..30) {
        let machine = MachineSpec::xeon_e5_2650();
        let (lc, be) = pocolo_manager::partition(
            &machine, c, w, machine.freq_max(), machine.freq_max());
        prop_assert!(lc.validate(&machine).is_ok());
        if let Some(be) = be {
            prop_assert!(be.validate(&machine).is_ok());
            prop_assert!(lc.is_disjoint_from(&be));
            prop_assert_eq!(lc.cores.count() + be.cores.count(), 12);
            prop_assert_eq!(lc.ways.count() + be.ways.count(), 20);
        }
    }

    /// Assignment solvers agree on arbitrary matrices (LP == Hungarian ==
    /// exhaustive), and random never beats them.
    #[test]
    fn solvers_agree_on_arbitrary_matrices(
        values in proptest::collection::vec(
            proptest::collection::vec(0.0f64..10.0, 4), 4),
        seed in 0u64..1000,
    ) {
        let matrix = PerfMatrix::new(
            (0..4).map(|i| format!("be{i}")).collect(),
            (0..4).map(|j| format!("lc{j}")).collect(),
            values,
        ).unwrap();
        let h = pocolo_cluster::assign::solve(&matrix, Solver::Hungarian).unwrap();
        let l = pocolo_cluster::assign::solve(&matrix, Solver::Lp).unwrap();
        let e = pocolo_cluster::assign::solve(&matrix, Solver::Exhaustive).unwrap();
        let r = pocolo_cluster::assign::solve(&matrix, Solver::Random { seed }).unwrap();
        prop_assert!((h.total - e.total).abs() < 1e-6);
        prop_assert!((l.total - e.total).abs() < 1e-6);
        prop_assert!(r.total <= e.total + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// OLS recovers arbitrary linear models exactly from noiseless data.
    #[test]
    fn ols_recovers_linear_models(
        intercept in -100.0f64..100.0,
        b1 in -10.0f64..10.0,
        b2 in -10.0f64..10.0,
    ) {
        let xs: Vec<Vec<f64>> = (0..24)
            .map(|i| vec![(i % 6) as f64, (i / 6) as f64 * 1.7])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| intercept + b1 * r[0] + b2 * r[1])
            .collect();
        let fit = pocolo_core::fit::ols(&xs, &ys).unwrap();
        prop_assert!((fit.intercept - intercept).abs() < 1e-6);
        prop_assert!((fit.coefficients[0] - b1).abs() < 1e-7);
        prop_assert!((fit.coefficients[1] - b2).abs() < 1e-7);
    }

    /// Indifference curves round-trip: every traced point reproduces the
    /// target performance, and points are strictly downward-sloping.
    #[test]
    fn indifference_curves_are_exact_and_convex(
        utility in arb_utility(),
        target_frac in 0.1f64..0.8,
    ) {
        use pocolo_core::curves::indifference_curve;
        let perf = utility.performance_model();
        // Only meaningful when both exponents are positive.
        prop_assume!(perf.alphas().iter().all(|&a| a > 0.02));
        let best = perf.evaluate_amounts(&[12.0, 20.0]).unwrap();
        let worst = perf.evaluate_amounts(&[1.0, 1.0]).unwrap();
        let target = worst + (best - worst) * target_frac;
        let base = utility.space().min_allocation();
        let curve = indifference_curve(perf, &base, 0, 1, target, 16).unwrap();
        for &(c, w) in &curve {
            let v = perf.evaluate_amounts(&[c, w]).unwrap();
            prop_assert!((v - target).abs() / target < 1e-6);
        }
        for pair in curve.windows(2) {
            prop_assert!(pair[1].1 < pair[0].1, "curve must slope downward");
        }
    }

    /// The max-min fair solver never produces a worse bottleneck than the
    /// total-optimal solver.
    #[test]
    fn fairness_dominates_on_the_bottleneck(
        values in proptest::collection::vec(
            proptest::collection::vec(0.01f64..1.0, 4), 4),
    ) {
        let matrix = PerfMatrix::new(
            (0..4).map(|i| format!("be{i}")).collect(),
            (0..4).map(|j| format!("lc{j}")).collect(),
            values,
        ).unwrap();
        let min_of = |a: &pocolo_cluster::Assignment| {
            a.pairs.iter().map(|&(r, c)| matrix.value(r, c)).fold(f64::INFINITY, f64::min)
        };
        let total = pocolo_cluster::assign::solve(&matrix, Solver::Hungarian).unwrap();
        let fair = pocolo_cluster::assign::solve(&matrix, Solver::MaxMinFair).unwrap();
        prop_assert!(min_of(&fair) >= min_of(&total) - 1e-9);
        prop_assert!(fair.total <= total.total + 1e-9);
    }

    /// The spare split is always disjoint, exhaustive and validated,
    /// whatever the preferences.
    #[test]
    fn spatial_split_invariants(
        lc_c in 1u32..=10,
        lc_w in 1u32..=18,
        w1 in 0.01f64..1.0,
        w2 in 0.01f64..1.0,
    ) {
        use pocolo_manager::spatial::split_spare;
        let machine = MachineSpec::xeon_e5_2650();
        let prefs = vec![
            PreferenceVector::from_raw(vec![w1, 1.0 - w1.min(0.99)]),
            PreferenceVector::from_raw(vec![w2, 1.0 - w2.min(0.99)]),
        ];
        let parts = split_spare(&machine, lc_c, lc_w, Frequency(2.2), &prefs);
        if parts.is_empty() {
            // Legitimate only when the spare box cannot give 1+1 to both.
            prop_assert!(12 - lc_c < 2 || 20 - lc_w < 2);
        } else {
            prop_assert_eq!(parts.len(), 2);
            prop_assert!(parts[0].is_disjoint_from(&parts[1]));
            let c: u32 = parts.iter().map(|p| p.cores.count()).sum();
            let w: u32 = parts.iter().map(|p| p.ways.count()).sum();
            prop_assert_eq!(c, 12 - lc_c);
            prop_assert_eq!(w, 20 - lc_w);
            for p in &parts {
                prop_assert!(p.validate(&machine).is_ok());
            }
        }
    }

    /// P² stays within a bounded error of the exact quantile on uniform
    /// streams of any scale.
    #[test]
    fn p2_tracks_exact_quantile(scale in 0.001f64..1000.0, seed in 0u64..50) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut est = P2Quantile::new(0.9);
        let mut all = Vec::new();
        for _ in 0..4000 {
            let x = rng.gen_range(0.0..scale);
            est.observe(x);
            all.push(x);
        }
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = all[(0.9 * (all.len() - 1) as f64) as usize];
        let got = est.estimate().unwrap();
        prop_assert!(
            (got - exact).abs() < 0.05 * scale,
            "p90 {got} vs exact {exact} at scale {scale}"
        );
    }
}

//! End-to-end fault-injection acceptance tests: the degraded-mode
//! response must beat the naive one under a brownout, and every faulted
//! run must replay bit-identically from its seed at any parallelism.

use pocolo::prelude::*;

fn faulted_config(scenario: FaultScenario, seed: u64, resilience: bool) -> ExperimentConfig {
    ExperimentConfig {
        dwell_s: 4.0,
        faults: Some(FaultSpec {
            scenario,
            seed: Some(seed),
        }),
        resilience,
        ..ExperimentConfig::default()
    }
}

#[test]
fn degraded_mode_beats_naive_response_under_brownout() {
    let fitted = FittedCluster::fit(&ProfilerConfig::default());
    let policy = Policy::Pocolo {
        solver: Solver::Hungarian,
    };
    let naive = run_experiment_with(
        policy,
        &faulted_config(FaultScenario::Brownout, 1, false),
        &fitted,
    );
    let resilient = run_experiment_with(
        policy,
        &faulted_config(FaultScenario::Brownout, 1, true),
        &fitted,
    );
    assert!(
        naive.summary.slo_violation_frac_during_fault > 0.0,
        "the brownout should actually hurt the naive path"
    );
    assert!(
        resilient.summary.slo_violation_frac_during_fault
            < naive.summary.slo_violation_frac_during_fault,
        "degraded mode must violate the SLO strictly less under the brownout: \
         resilient {} vs naive {}",
        resilient.summary.slo_violation_frac_during_fault,
        naive.summary.slo_violation_frac_during_fault
    );
    assert!(
        resilient.summary.worst_violation_frac < naive.summary.worst_violation_frac,
        "degraded mode must lower the whole-run violation fraction too: \
         resilient {} vs naive {}",
        resilient.summary.worst_violation_frac,
        naive.summary.worst_violation_frac
    );
    assert!(
        resilient.summary.time_to_recover_s < naive.summary.time_to_recover_s,
        "degraded mode must recover faster: resilient {} s vs naive {} s",
        resilient.summary.time_to_recover_s,
        naive.summary.time_to_recover_s
    );
}

#[test]
fn crash_scenario_recovers_and_counts_evictions() {
    let fitted = FittedCluster::fit(&ProfilerConfig::default());
    let policy = Policy::Pocolo {
        solver: Solver::Hungarian,
    };
    let r = run_experiment_with(
        policy,
        &faulted_config(FaultScenario::Crash, 2, true),
        &fitted,
    );
    assert!(
        r.summary.evictions >= 1,
        "the crash must evict the victim's co-runner"
    );
    assert!(
        r.summary.time_to_recover_s > 0.0,
        "the victim should be observed recovering after it rejoins"
    );
    assert!(
        r.summary.slo_violation_frac_during_fault > 0.0,
        "downtime counts as SLO violation"
    );
}

#[test]
fn faulted_runs_replay_bit_identically_at_any_parallelism() {
    let fitted = FittedCluster::fit(&ProfilerConfig::default());
    let policy = Policy::Pocolo {
        solver: Solver::Hungarian,
    };
    for scenario in FaultScenario::ALL {
        let serial_cfg = ExperimentConfig {
            dwell_s: 3.0,
            parallelism: Parallelism::Serial,
            ..faulted_config(scenario, 7, true)
        };
        let fanned_cfg = ExperimentConfig {
            parallelism: Parallelism::Fixed(4),
            ..serial_cfg.clone()
        };
        let serial = run_experiment_with(policy, &serial_cfg, &fitted);
        let fanned = run_experiment_with(policy, &fanned_cfg, &fitted);
        assert_eq!(
            serial,
            fanned,
            "{} must be bit-identical between Serial and Fixed(4)",
            scenario.name()
        );
    }
}

#[test]
fn fault_spec_parsing_roundtrips_through_the_prelude() {
    let spec: FaultSpec = "brownout:42".parse().unwrap();
    assert_eq!(spec.scenario, FaultScenario::Brownout);
    assert_eq!(spec.seed, Some(42));
    assert_eq!(spec.to_string(), "brownout:42");
    let bare: FaultSpec = "chaos".parse().unwrap();
    assert_eq!(bare.seed, None);
    assert!("meteor".parse::<FaultSpec>().is_err());

    // The plan a scenario draws is a pure function of its seed.
    let a = FaultScenario::Chaos.plan(9, 40.0, 4);
    let b = FaultScenario::Chaos.plan(9, 40.0, 4);
    assert_eq!(a.events().len(), b.events().len());
    for (x, y) in a.events().iter().zip(b.events()) {
        assert_eq!(x.at_s, y.at_s);
    }
}

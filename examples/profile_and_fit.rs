//! The modelling pipeline in isolation: sweep allocations on the simulated
//! server, watch the indifference-curve geometry emerge, and inspect how
//! the slack filter protects the fit.
//!
//! ```text
//! cargo run --release -p pocolo --example profile_and_fit
//! ```

use pocolo::prelude::*;
use pocolo_core::curves::{expansion_path, indifference_curve};
use pocolo_core::fit::{fit_indirect_utility, FitOptions};
use pocolo_simserver::power::PowerDrawModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineSpec::xeon_e5_2650();
    let power = PowerDrawModel::new(machine.clone());
    let space = machine.resource_space();
    let truth = LcModel::for_app(LcApp::Sphinx, machine.clone());

    // Profile at several operating points, including one past saturation —
    // the kind of polluted sample real telemetry contains.
    let cfg = ProfilerConfig {
        operating_points: vec![0.6, 0.8, 1.0, 1.05],
        ..ProfilerConfig::default()
    };
    let samples = pocolo_workloads::profiler::profile_lc(&truth, &power, &space, &cfg);
    println!("{} raw samples (incl. saturated ones)", samples.len());

    // Fit once with the paper's 10% slack guard, once without.
    let guarded = fit_indirect_utility(&space, &samples, &FitOptions::default())?;
    let unguarded = fit_indirect_utility(
        &space,
        &samples,
        &FitOptions {
            min_latency_slack: -10.0,
            ..FitOptions::default()
        },
    )?;
    println!(
        "guarded fit:   {} samples, perf R² {:.3}",
        guarded.samples_used, guarded.performance_r2
    );
    println!(
        "unguarded fit: {} samples, perf R² {:.3}",
        unguarded.samples_used, unguarded.performance_r2
    );

    // Trace an indifference curve at 50% load and its least-power point.
    let peak = truth.peak_load_rps();
    let base = space.min_allocation();
    let curve = indifference_curve(
        guarded.utility.performance_model(),
        &base,
        0,
        1,
        0.5 * peak,
        10,
    )?;
    println!("\niso-load curve @50%: (cores, ways) pairs");
    for (c, w) in &curve {
        println!(
            "  ({c:5.2}, {w:5.2})  power {}",
            guarded.utility.power_model().power_of_amounts(&[*c, *w])?
        );
    }

    // The expansion path: where the server manager walks as load changes.
    let targets: Vec<f64> = (1..=9).map(|i| 0.1 * i as f64 * peak).collect();
    let path = expansion_path(&guarded.utility, &targets)?;
    println!("\nleast-power expansion path:");
    for p in &path {
        println!(
            "  load {:5.0} rps -> {} @ {}",
            p.target, p.allocation, p.power
        );
    }
    Ok(())
}

//! Capacity planning with the TCO model: how aggressive power
//! under-provisioning and power-aware colocation translate into monthly
//! dollars at warehouse scale (the paper's §V-F analysis, interactive).
//!
//! ```text
//! cargo run --release -p pocolo --example capacity_planning
//! ```

use pocolo::prelude::*;

fn main() {
    let model = TcoModel::default();
    println!(
        "reference deployment: {:.0} servers, ${}/server, ${}/W, {:.1}¢/kWh, PUE {}",
        model.servers,
        model.server_cost_usd,
        model.power_infra_usd_per_watt,
        model.energy_usd_per_kwh * 100.0,
        model.pue
    );

    // Sweep the provisioning question: what does each watt of provisioned
    // capacity cost per month, and when does right-sizing pay off?
    println!("\nprovisioning sweep (throughput and draw held at baseline):");
    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>12}",
        "provisioned", "servers $M", "infra $M", "energy $M", "total $M"
    );
    for watts in [135.0, 150.0, 165.0, 185.0, 210.0] {
        let cost = model.monthly_cost(&Scenario {
            name: format!("{watts} W"),
            provisioned_per_server: Watts(watts),
            avg_power_per_server: Watts(130.0),
            relative_throughput: 1.0,
        });
        println!(
            "{:>12} W {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            watts,
            cost.server_usd / 1e6,
            cost.power_infra_usd / 1e6,
            cost.energy_usd / 1e6,
            cost.total() / 1e6
        );
    }

    // The colocation question: every percent of extra throughput per server
    // removes servers (and their watts) at iso-work.
    println!("\ncolocation benefit sweep (relative cluster throughput):");
    println!(
        "{:>12} {:>12} {:>14}",
        "throughput", "total $M", "saving vs 1.0"
    );
    let base = model
        .monthly_cost(&Scenario {
            name: "base".into(),
            provisioned_per_server: Watts(150.0),
            avg_power_per_server: Watts(140.0),
            relative_throughput: 1.0,
        })
        .total();
    for rel in [1.0, 1.05, 1.10, 1.18, 1.30] {
        let cost = model
            .monthly_cost(&Scenario {
                name: format!("{rel:.2}x"),
                provisioned_per_server: Watts(150.0),
                avg_power_per_server: Watts(140.0),
                relative_throughput: rel,
            })
            .total();
        println!(
            "{:>11.2}x {:>12.2} {:>13.1}%",
            rel,
            cost / 1e6,
            100.0 * (1.0 - cost / base)
        );
    }
    println!("\n(the paper's POColo lands at ~1.18x throughput with right-sized power)");
}

//! Time-sharing the best-effort slot among a queue of jobs (the §V-G
//! extension): FCFS vs shortest-job-first on a simulated server whose BE
//! throughput varies with the primary's diurnal load.
//!
//! ```text
//! cargo run --release -p pocolo --example be_job_queue
//! ```

use pocolo::prelude::*;
use pocolo_manager::queue::{BeJob, BeQueue, QueueDiscipline};
use pocolo_sim::ServerSim;

fn run(discipline: QueueDiscipline) -> (usize, f64) {
    let fitted = FittedCluster::fit(&ProfilerConfig::default());
    let (_, truth, fit) = &fitted.lc()[2]; // xapian
    let be_truth = fitted.be()[2].1.clone(); // graph ground truth drives power
    let mut sim = ServerSim::new(
        truth.clone(),
        fit.clone(),
        Some(be_truth),
        LcPolicy::PowerOptimized,
        LoadTrace::diurnal(0.1, 0.9, 240.0),
        truth.provisioned_power(),
        0.01,
        5,
    );

    // A burst of BE jobs arrives at t=0 with mixed sizes (work =
    // throughput-seconds).
    let mut queue = BeQueue::new(discipline);
    let sizes = [12.0, 3.0, 25.0, 6.0, 1.5, 9.0, 4.0, 18.0];
    for (i, &work) in sizes.iter().enumerate() {
        queue.submit(BeJob::new(i as u64, format!("job{i}"), work, 0.0));
    }

    let mut t = 0.0;
    while !queue.is_empty() && t < 600.0 {
        sim.on_manager_tick(t);
        for k in 0..10 {
            sim.on_capper_tick(0.1);
            let now = t + 0.1 * (k + 1) as f64;
            queue.advance(sim.be_throughput(), 0.1, now);
        }
        t += 1.0;
    }
    (
        queue.completed().len(),
        queue.mean_turnaround().unwrap_or(f64::NAN),
    )
}

fn main() {
    println!("8 best-effort jobs time-sharing xapian's secondary slot");
    println!("(throughput varies with the primary's diurnal load)\n");
    for d in [QueueDiscipline::Fcfs, QueueDiscipline::Sjf] {
        let (done, turnaround) = run(d);
        println!("{d:?}: {done}/8 completed, mean turnaround {turnaround:.1} s");
    }
    println!("\nSJF cuts mean turnaround; both finish the same total work —");
    println!("the server's spare capacity is the binding resource either way.");
}

//! A simulated day in a power-constrained datacenter: the four-server
//! cluster rides a diurnal load curve under each of the three policies,
//! reporting throughput, power and SLO compliance.
//!
//! ```text
//! cargo run --release -p pocolo --example datacenter_day
//! ```

use pocolo::prelude::*;
use pocolo_sim::{ClusterSim, ServerSim};

fn build_cluster(fitted: &FittedCluster, policy: Policy, trace: &LoadTrace) -> ClusterSim {
    let placement = fitted.placement(policy);
    let servers: Vec<ServerSim> = fitted
        .lc()
        .iter()
        .enumerate()
        .map(|(i, (_, truth, fit))| {
            let be_app = placement[i];
            let be_truth = fitted
                .be()
                .iter()
                .find(|(a, _, _)| *a == be_app)
                .map(|(_, t, _)| t.clone());
            let be_fitted = fitted
                .be()
                .iter()
                .find(|(a, _, _)| *a == be_app)
                .map(|(_, _, f)| f.clone());
            let lc_policy = match policy {
                Policy::Random { seed } => LcPolicy::heracles_random(seed + i as u64),
                _ => LcPolicy::PowerOptimized,
            };
            let sim = ServerSim::new(
                truth.clone(),
                fit.clone(),
                be_truth,
                lc_policy,
                trace.clone(),
                truth.provisioned_power(),
                0.01,
                77 + i as u64,
            );
            match (policy, be_fitted) {
                (Policy::Pom { .. } | Policy::Pocolo { .. }, Some(bf)) => sim.with_proactive_be(bf),
                _ => sim,
            }
        })
        .collect();
    ClusterSim::new(servers, 1.0, 0.1)
}

fn main() {
    // One compressed "day": the diurnal curve squeezed into 6 simulated
    // minutes so the example finishes quickly. Control periods stay at the
    // paper's 1 s / 100 ms.
    let day_s = 360.0;
    let trace = LoadTrace::diurnal(0.1, 0.9, day_s);
    println!("fitting models for all eight applications...");
    let fitted = FittedCluster::fit(&ProfilerConfig::default());

    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>10}",
        "policy", "BE thpt", "power", "energy (kJ)", "SLO viol"
    );
    for policy in [
        Policy::Random { seed: 42 },
        Policy::Pom { seed: 42 },
        Policy::Pocolo { solver: Solver::Lp },
    ] {
        let mut cluster = build_cluster(&fitted, policy, &trace);
        cluster.run(day_s);
        let s = cluster.summary();
        println!(
            "{:>8} {:>10.3} {:>9.1}% {:>12.1} {:>9.1}%",
            policy.name(),
            s.avg_be_throughput,
            100.0 * s.avg_power_utilization,
            s.total_energy.0 / 1000.0,
            100.0 * s.worst_violation_frac,
        );
    }
    println!("\nPlacements chosen:");
    for policy in [
        Policy::Random { seed: 42 },
        Policy::Pocolo { solver: Solver::Lp },
    ] {
        let placement = fitted.placement(policy);
        let pairs: Vec<String> = fitted
            .lc()
            .iter()
            .zip(&placement)
            .map(|((lc, _, _), be)| format!("{}+{}", lc.name(), be.name()))
            .collect();
        println!("  {:>8}: {}", policy.name(), pairs.join("  "));
    }
}

//! Spatial sharing (§V-G future work): two best-effort apps split sphinx's
//! spare box by their indirect preference vectors and run concurrently on
//! a multi-tenant server, versus taking 50/50 turns at the whole box.
//!
//! ```text
//! cargo run --release -p pocolo --example spatial_sharing
//! ```

use pocolo::prelude::*;
use pocolo_core::utility::tangency_gap;
use pocolo_sim::{ServerSim, SpatialServerSim, SpatialTenant};

fn main() {
    println!("fitting models...");
    let fitted = FittedCluster::fit(&ProfilerConfig::default());
    let (_, lc_truth, lc_fit) = &fitted.lc()[1]; // sphinx
    let cap = lc_truth.provisioned_power();
    let load = LoadTrace::Constant(0.4);
    let seconds = 30usize;

    // Spatial: graph + lstm split the box by preference.
    let tenants: Vec<SpatialTenant> = [BeApp::Graph, BeApp::Lstm]
        .iter()
        .map(|&app| {
            let entry = fitted.be().iter().find(|(a, _, _)| *a == app).unwrap();
            SpatialTenant {
                truth: entry.1.clone(),
                fitted: entry.2.clone(),
            }
        })
        .collect();
    let mut spatial = SpatialServerSim::new(
        lc_truth.clone(),
        lc_fit.clone(),
        tenants,
        LcPolicy::PowerOptimized,
        load.clone(),
        cap,
        0.01,
        17,
    );
    for s in 0..seconds {
        spatial.on_manager_tick(s as f64);
        for _ in 0..10 {
            spatial.on_capper_tick(0.1);
        }
    }
    let per = spatial.per_tenant_throughput();
    println!(
        "\nspatial  : graph {:.3} + lstm {:.3} = {:.3} total (power {:.1}% of cap)",
        per[0],
        per[1],
        spatial.metrics().be_throughput_avg,
        100.0 * spatial.metrics().power_utilization()
    );

    // Temporal: each alone with the whole box, half the time.
    let mut temporal_total = 0.0;
    for app in [BeApp::Graph, BeApp::Lstm] {
        let entry = fitted.be().iter().find(|(a, _, _)| *a == app).unwrap();
        let mut sim = ServerSim::new(
            lc_truth.clone(),
            lc_fit.clone(),
            Some(entry.1.clone()),
            LcPolicy::PowerOptimized,
            load.clone(),
            cap,
            0.01,
            17,
        )
        .with_proactive_be(entry.2.clone());
        for s in 0..seconds {
            sim.on_manager_tick(s as f64);
            for _ in 0..10 {
                sim.on_capper_tick(0.1);
            }
        }
        println!(
            "temporal : {} alone = {:.3}",
            app,
            sim.metrics().be_throughput_avg
        );
        temporal_total += 0.5 * sim.metrics().be_throughput_avg;
    }
    println!("temporal : 50/50 slice total = {temporal_total:.3}");
    println!(
        "\nspatial sharing gains {:+.1}% — each app keeps its preferred resource full-time",
        100.0 * (spatial.metrics().be_throughput_avg / temporal_total - 1.0)
    );

    // Bonus: the tangency diagnostic on sphinx's current allocation.
    let target = 0.4 * lc_truth.peak_load_rps() * 1.1;
    let budget = lc_fit.min_power_for(target).expect("target reachable");
    let alloc = lc_fit.demand(budget).expect("budget feasible");
    println!(
        "\nsphinx's power-efficient allocation {alloc} sits on the tangency point \
         (gap {:.4}; a random iso-load point would be far larger)",
        tangency_gap(lc_fit, &alloc).expect("models agree")
    );
}

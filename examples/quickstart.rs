//! Quickstart: profile an application, fit its indirect utility, and ask
//! the economics framework the paper's three questions — *what* does this
//! app want per watt, *where* should it be placed, and *how much* of the
//! server does the primary need right now?
//!
//! ```text
//! cargo run --release -p pocolo --example quickstart
//! ```

use pocolo::prelude::*;
use pocolo_simserver::power::PowerDrawModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The simulated testbed: a Xeon E5-2650 (Table I of the paper).
    let machine = MachineSpec::xeon_e5_2650();
    let power = PowerDrawModel::new(machine.clone());
    let space = machine.resource_space();

    // 1. Profile the sphinx speech-recognition service across allocations
    //    of cores and LLC ways, as the paper's telemetry pipeline would.
    let sphinx = LcModel::for_app(LcApp::Sphinx, machine.clone());
    let samples = profile_lc(&sphinx, &power, &space, &ProfilerConfig::default());
    println!("profiled {} samples of {}", samples.len(), LcApp::Sphinx);

    // 2. Fit the Cobb-Douglas indirect utility model (log-space least
    //    squares, guarded by the 10% latency-slack filter).
    let fitted = pocolo_core::fit::fit_indirect_utility(
        &space,
        &samples,
        &pocolo_core::fit::FitOptions::default(),
    )?;
    println!(
        "fit quality: perf R² = {:.3}, power R² = {:.3}",
        fitted.performance_r2, fitted.power_r2
    );

    // 3. The scaled preference vector: how sphinx ranks resources by
    //    performance-per-watt (the paper reports ~0.2 : 0.8).
    let pref = fitted.utility.preference_vector();
    println!(
        "sphinx prefers cores:ways = {:.2}:{:.2} per watt",
        pref.weight(0),
        pref.weight(1)
    );

    // 4. The analytic demand: the least-power allocation sustaining 40% of
    //    peak load — the allocation-A/B transition of Fig. 5.
    let target = 0.4 * sphinx.peak_load_rps();
    let budget = fitted.utility.min_power_for(target)?;
    let allocation = fitted.utility.demand_integral(budget)?;
    println!(
        "40% load needs {} at {budget:.1} ({} headroom under the {} cap)",
        allocation,
        sphinx.provisioned_power() - budget,
        sphinx.provisioned_power(),
    );

    // 5. Which best-effort app should run alongside? Complementarity of
    //    preference vectors answers the paper's "what" question.
    println!("\nco-runner complementarity with sphinx:");
    for app in BeApp::ALL {
        let be = BeModel::for_app(app, machine.clone());
        let be_samples = profile_be(&be, &power, &space, &ProfilerConfig::default());
        let be_fit = pocolo_core::fit::fit_indirect_utility(
            &space,
            &be_samples,
            &pocolo_core::fit::FitOptions::default(),
        )?;
        let be_pref = be_fit.utility.preference_vector();
        println!(
            "  {:6} preference {} -> complementarity {:.2}",
            app.name(),
            be_pref,
            pref.complementarity(&be_pref)
        );
    }
    println!("\n(higher complementarity = better co-runner under a power cap)");
    Ok(())
}

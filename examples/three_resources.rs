//! The framework at k = 3: cores, LLC ways **and memory bandwidth**
//! (the §V-G extension). Profiles two synthetic three-resource apps, fits
//! 3-D indirect utilities, and shows the demand solver splitting a power
//! budget across all three knobs.
//!
//! ```text
//! cargo run --release -p pocolo --example three_resources
//! ```

use pocolo::prelude::*;
use pocolo_core::fit::{fit_indirect_utility, FitOptions};
use pocolo_workloads::membw::ThreeResourceApp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let apps = [
        ("analytics-mix", ThreeResourceApp::analytics_mix()),
        ("compute-kernel", ThreeResourceApp::compute_kernel()),
    ];

    println!("three-resource demand under a shared power budget\n");
    let mut prefs = Vec::new();
    for (name, app) in &apps {
        let samples = app.profile(0.03, 42);
        let fitted = fit_indirect_utility(app.space(), &samples, &FitOptions::default())?;
        let pref = fitted.utility.preference_vector();
        println!(
            "{name}: perf R² {:.3}, preference (cores:ways:membw) = ({:.2}:{:.2}:{:.2})",
            fitted.performance_r2,
            pref.weight(0),
            pref.weight(1),
            pref.weight(2)
        );
        for budget in [40.0, 60.0, 90.0] {
            let d = fitted.utility.demand(Watts(budget))?;
            println!(
                "  {budget:>4.0} W -> {:.1} cores, {:.1} ways, {:.1} GB/s (perf {:.3})",
                d.amount(0),
                d.amount(1),
                d.amount(2),
                fitted.utility.performance_model().evaluate(&d)?
            );
        }
        prefs.push(pref);
    }

    println!(
        "\ncomplementarity(analytics, kernel) = {:.2} — the same placement logic",
        prefs[0].complementarity(&prefs[1])
    );
    println!("that paired graph with sphinx applies unchanged in three dimensions.");
    Ok(())
}

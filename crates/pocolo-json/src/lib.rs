//! # pocolo-json
//!
//! A small, dependency-free JSON layer for Pocolo's machine-readable
//! output: a [`Value`] tree, a strict parser ([`from_str`]), compact and
//! pretty writers, the [`ToJson`] conversion trait, and a [`json!`]
//! constructor macro.
//!
//! The build environment is fully offline, so external serialization
//! frameworks are unavailable; this crate covers exactly what the CLI and
//! figure generators need. Object key order is preserved (insertion
//! order), which keeps emitted reports stable and diffable.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

mod parse;

pub use parse::{from_str, ParseError, MAX_DEPTH};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like the figures pipeline needs).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric content as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup; `None` when absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Value::Object(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                    write_escaped(out, &entries[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    entries[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        // JSON has no NaN/inf; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Member access; missing keys and non-objects yield `null` (so lookup
    /// chains like `v["a"]["b"]` never panic).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Element access; out-of-range and non-arrays yield `null`.
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Conversion into a JSON [`Value`].
pub trait ToJson {
    /// This value as JSON.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_to_json_number {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_to_json_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson, D: ToJson> ToJson for (A, B, C, D) {
    fn to_json(&self) -> Value {
        Value::Array(vec![
            self.0.to_json(),
            self.1.to_json(),
            self.2.to_json(),
            self.3.to_json(),
        ])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson, D: ToJson, E: ToJson> ToJson for (A, B, C, D, E) {
    fn to_json(&self) -> Value {
        Value::Array(vec![
            self.0.to_json(),
            self.1.to_json(),
            self.2.to_json(),
            self.3.to_json(),
            self.4.to_json(),
        ])
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

/// Conversion from a JSON [`Value`]; `None` when the shape doesn't match.
pub trait FromJson: Sized {
    /// Reconstructs `Self` from JSON, if the value has the right shape.
    fn from_json(value: &Value) -> Option<Self>;
}

impl FromJson for f64 {
    fn from_json(value: &Value) -> Option<Self> {
        value.as_f64()
    }
}

impl FromJson for u64 {
    fn from_json(value: &Value) -> Option<Self> {
        value.as_u64()
    }
}

impl FromJson for bool {
    fn from_json(value: &Value) -> Option<Self> {
        value.as_bool()
    }
}

impl FromJson for String {
    fn from_json(value: &Value) -> Option<Self> {
        value.as_str().map(str::to_string)
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Value) -> Option<Self> {
        value.as_array()?.iter().map(T::from_json).collect()
    }
}

/// Parses JSON text straight into a [`FromJson`] type.
pub fn typed_from_str<T: FromJson>(input: &str) -> Option<T> {
    T::from_json(&from_str(input).ok()?)
}

/// Compact JSON text for any [`ToJson`] value.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_compact_string()
}

/// Pretty (2-space indented) JSON text for any [`ToJson`] value.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_pretty_string()
}

/// Builds a [`Value`] from a JSON-shaped literal.
///
/// Supports objects with string-literal keys and expression values, arrays
/// of expressions, `null`, and any expression implementing [`ToJson`]:
///
/// ```
/// use pocolo_json::json;
/// let v = json!({ "name": "sphinx", "peak": 3.5, "tags": vec!["lc", "audio"] });
/// assert_eq!(v["name"].as_str(), Some("sphinx"));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::ToJson::to_json(&$value)),)*
        ])
    };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![
            $($crate::ToJson::to_json(&$element),)*
        ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

/// Implements [`ToJson`] for a struct with named fields, mapping each field
/// through its own `ToJson` impl:
///
/// ```
/// struct Row { app: String, watts: f64 }
/// pocolo_json::impl_to_json!(Row { app, watts });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($field).to_string(),
                       $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_rendering() {
        assert_eq!(json!(null).to_compact_string(), "null");
        assert_eq!(json!(true).to_compact_string(), "true");
        assert_eq!(json!(3).to_compact_string(), "3");
        assert_eq!(json!(3.5).to_compact_string(), "3.5");
        assert_eq!(json!("hi").to_compact_string(), "\"hi\"");
    }

    #[test]
    fn escapes_control_characters() {
        let v = json!("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.to_compact_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = json!({ "z": 1, "a": 2, "m": 3 });
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn indexing_never_panics() {
        let v = json!({ "a": vec![1, 2, 3] });
        assert_eq!(v["a"][1].as_f64(), Some(2.0));
        assert!(v["missing"].is_null());
        assert!(v["a"][99].is_null());
        assert!(v["a"]["not-an-object"].is_null());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({ "a": 1, "b": vec![1, 2] });
        let pretty = v.to_pretty_string();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::Array(vec![]).to_pretty_string(), "[]");
        assert_eq!(Value::Object(vec![]).to_pretty_string(), "{}");
    }

    #[test]
    fn numbers_render_integers_exactly() {
        assert_eq!(json!(1e6).to_compact_string(), "1000000");
        assert_eq!(json!(-42).to_compact_string(), "-42");
        assert_eq!(json!(f64::NAN).to_compact_string(), "null");
    }

    #[test]
    fn tuples_and_slices() {
        let pairs = vec![("graph".to_string(), "sphinx".to_string())];
        assert_eq!(to_string(&pairs), "[[\"graph\",\"sphinx\"]]");
        let slice: &[f64] = &[0.25, 0.75];
        assert_eq!(to_string(&slice), "[0.25,0.75]");
    }

    #[test]
    fn impl_to_json_macro_works() {
        struct Row {
            app: String,
            watts: f64,
        }
        impl_to_json!(Row { app, watts });
        let r = Row {
            app: "tpcc".into(),
            watts: 154.0,
        };
        assert_eq!(to_string(&r), "{\"app\":\"tpcc\",\"watts\":154}");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(json!(7).as_u64(), Some(7));
        assert_eq!(json!(7.5).as_u64(), None);
        assert_eq!(json!(-7).as_u64(), None);
    }

    #[test]
    fn round_trip_through_parser() {
        let v = json!({
            "app": "img-dnn",
            "alphas": vec![0.6, 0.4],
            "ok": true,
            "none": Option::<u32>::None
        });
        let text = v.to_pretty_string();
        assert_eq!(from_str(&text).unwrap(), v);
    }
}

//! Recursive-descent JSON parser for [`Value`](crate::Value).

use crate::Value;
use std::fmt;

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: must be followed by \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                            continue; // parse_hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    let start = self.pos;
                    while self
                        .peek()
                        .is_some_and(|c| c != b'"' && c != b'\\' && c >= 0x20)
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" -2.5e2 ").unwrap(), Value::Number(-250.0));
        assert_eq!(
            from_str("\"hi\\nthere\"").unwrap(),
            Value::String("hi\nthere".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v["a"][0].as_f64(), Some(1.0));
        assert!(v["a"][1]["b"].is_null());
        assert_eq!(v["c"].as_str(), Some("x"));
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(
            from_str("\"\\u00e9\\uD83D\\uDE00\"").unwrap(),
            Value::String("é😀".into())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"\\x\"").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(from_str("{}").unwrap(), Value::Object(vec![]));
        assert_eq!(from_str("[ ]").unwrap(), Value::Array(vec![]));
    }
}

//! Recursive-descent JSON parser for [`Value`](crate::Value).

use crate::Value;
use std::fmt;

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting the parser will descend into. Deeper
/// documents return a typed [`ParseError`] instead of overflowing the
/// stack — the wire path feeds this parser untrusted bytes.
pub const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("maximum nesting depth exceeded"));
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => {
                self.descend()?;
                let v = self.parse_object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.descend()?;
                let v = self.parse_array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: must be followed by \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                            continue; // parse_hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    let start = self.pos;
                    while self
                        .peek()
                        .is_some_and(|c| c != b'"' && c != b'\\' && c >= 0x20)
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn eat_digits(&mut self) -> usize {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if self.eat_digits() == 0 {
            return Err(self.error("expected digit in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.eat_digits() == 0 {
                return Err(self.error("expected digit after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.eat_digits() == 0 {
                return Err(self.error("expected digit in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
        // The writer never emits non-finite numbers (they serialize as
        // null), so a document whose literal overflows f64 is malformed
        // rather than silently infinite.
        if !n.is_finite() {
            return Err(self.error("number out of range"));
        }
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" -2.5e2 ").unwrap(), Value::Number(-250.0));
        assert_eq!(
            from_str("\"hi\\nthere\"").unwrap(),
            Value::String("hi\nthere".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v["a"][0].as_f64(), Some(1.0));
        assert!(v["a"][1]["b"].is_null());
        assert_eq!(v["c"].as_str(), Some("x"));
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(
            from_str("\"\\u00e9\\uD83D\\uDE00\"").unwrap(),
            Value::String("é😀".into())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"\\x\"").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(from_str("{}").unwrap(), Value::Object(vec![]));
        assert_eq!(from_str("[ ]").unwrap(), Value::Array(vec![]));
    }

    #[test]
    fn rejects_lone_and_unpaired_surrogates() {
        // Lone high surrogate, high followed by non-escape, and a low
        // half outside the surrogate range must all fail typed.
        assert!(from_str("\"\\uD83D\"").is_err());
        assert!(from_str("\"\\uD83Dx\"").is_err());
        assert!(from_str("\"\\uD83D\\u0041\"").is_err());
        // Lone low surrogate.
        assert!(from_str("\"\\uDE00\"").is_err());
        // Truncated escape at end of input.
        assert!(from_str("\"\\uD83D\\u").is_err());
        assert!(from_str("\"\\u12").is_err());
    }

    #[test]
    fn rejects_incomplete_number_literals() {
        for bad in ["1.", "-", "-.", "1e", "1e+", "1E-", ".5", "1.e3"] {
            assert!(from_str(bad).is_err(), "{bad:?} should not parse");
        }
        // The strict grammar still accepts the full shape.
        assert_eq!(from_str("-12.5e-2").unwrap(), Value::Number(-0.125));
    }

    #[test]
    fn rejects_numbers_that_overflow_f64() {
        let e = from_str("1e999").unwrap_err();
        assert!(e.message.contains("out of range"), "got: {e}");
        assert!(from_str("-1e999").is_err());
        // Underflow to zero is representable, not an error.
        assert_eq!(from_str("1e-999").unwrap(), Value::Number(0.0));
    }

    #[test]
    fn depth_limit_is_a_typed_error_not_a_stack_overflow() {
        let deep = |n: usize| "[".repeat(n) + &"]".repeat(n);
        assert!(from_str(&deep(super::MAX_DEPTH)).is_ok());
        let e = from_str(&deep(super::MAX_DEPTH + 1)).unwrap_err();
        assert!(e.message.contains("nesting depth"), "got: {e}");
        // Far past the limit: still a clean error (would overflow the
        // stack without the guard).
        assert!(from_str(&deep(100_000)).is_err());
        // Mixed object/array nesting counts against the same budget.
        let mixed = "{\"a\":".repeat(super::MAX_DEPTH) + "1" + &"}".repeat(super::MAX_DEPTH);
        assert!(from_str(&mixed).is_ok());
        let mixed =
            "{\"a\":".repeat(super::MAX_DEPTH + 1) + "1" + &"}".repeat(super::MAX_DEPTH + 1);
        assert!(from_str(&mixed).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Writes `s` as a JSON string using an explicit `\uXXXX` escape for
    /// every char (surrogate pairs for astral-plane chars), exercising
    /// the escape decoder rather than the raw-chunk fast path.
    fn fully_escaped(s: &str) -> String {
        let mut out = String::from("\"");
        let mut units = [0u16; 2];
        for c in s.chars() {
            for u in c.encode_utf16(&mut units) {
                out.push_str(&format!("\\u{u:04x}"));
            }
        }
        out.push('"');
        out
    }

    fn arb_unicode_string() -> impl Strategy<Value = String> {
        proptest::collection::vec(0u32..0x11_0000, 0..24).prop_map(|codes| {
            codes
                .into_iter()
                .filter_map(char::from_u32) // drops the surrogate gap
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Every unicode string survives escape-encoding → parse,
        /// including astral-plane chars that need surrogate pairs.
        #[test]
        fn unicode_escapes_round_trip(s in arb_unicode_string()) {
            let parsed = from_str(&fully_escaped(&s)).unwrap();
            prop_assert_eq!(parsed, Value::String(s));
        }

        /// Writer → parser round-trip over the raw-char path too.
        #[test]
        fn writer_strings_round_trip(s in arb_unicode_string()) {
            let doc = Value::String(s.clone()).to_compact_string();
            prop_assert_eq!(from_str(&doc).unwrap(), Value::String(s));
        }

        /// Any nesting depth up to the limit parses; anything past it is
        /// a typed error, never a crash.
        #[test]
        fn nesting_depth_is_exact(depth in 1usize..=2 * MAX_DEPTH) {
            let doc = "[".repeat(depth) + &"]".repeat(depth);
            let r = from_str(&doc);
            if depth <= MAX_DEPTH {
                prop_assert!(r.is_ok());
            } else {
                prop_assert!(r.unwrap_err().message.contains("nesting depth"));
            }
        }

        /// Finite f64s of any bit pattern round-trip exactly through the
        /// compact writer and the parser.
        #[test]
        fn extreme_numbers_round_trip(bits in proptest::prelude::any::<u64>()) {
            let n = f64::from_bits(bits);
            if n.is_finite() {
                let doc = Value::Number(n).to_compact_string();
                let back = from_str(&doc).unwrap();
                prop_assert_eq!(back, Value::Number(n));
            }
        }

        /// Arbitrary bytes never panic the parser — they parse or they
        /// return a typed error.
        #[test]
        fn arbitrary_input_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
            let s = String::from_utf8_lossy(&bytes);
            let _ = from_str(&s);
        }

        /// JSON-alphabet soup reaches deeper into the grammar than raw
        /// bytes do; it must also never panic.
        #[test]
        fn structural_soup_never_panics(picks in proptest::collection::vec(0usize..20, 0..48)) {
            const ALPHABET: [&str; 20] = [
                "{", "}", "[", "]", "\"", ",", ":", "0", "9", "-",
                ".", "e", "E", "+", "\\u", "\\", "true", "null", " ", "1",
            ];
            let s: String = picks.into_iter().map(|i| ALPHABET[i]).collect();
            let _ = from_str(&s);
        }
    }
}

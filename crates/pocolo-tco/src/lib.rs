//! # pocolo-tco
//!
//! Amortized datacenter total-cost-of-ownership model, after Hamilton's
//! public cost model (the paper's ref \[13\]), used for the Fig. 15
//! analysis.
//!
//! Three cost components are amortized to monthly figures:
//!
//! - **Servers**: purchase price amortized over the server lifetime;
//! - **Power infrastructure**: $/W of provisioned capacity amortized over
//!   the facility lifetime;
//! - **Energy**: average draw × PUE × $/kWh.
//!
//! The paper's scenario: 100 000 servers at $1450, $9/W provisioned, 7 ¢
//! per kWh, PUE 1.1. Policies are compared at **iso-throughput**: a policy
//! with higher per-server throughput needs proportionally fewer servers
//! (and watts) to serve the same aggregate work.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod consolidation;

use pocolo_core::units::Watts;

/// Cost-model constants.
#[derive(Debug, Clone, PartialEq)]
pub struct TcoModel {
    /// Number of servers in the reference deployment.
    pub servers: f64,
    /// Purchase price per server, dollars.
    pub server_cost_usd: f64,
    /// Server amortization period, months.
    pub server_lifetime_months: f64,
    /// Provisioned power infrastructure cost, dollars per watt.
    pub power_infra_usd_per_watt: f64,
    /// Power-infrastructure amortization period, months.
    pub power_infra_lifetime_months: f64,
    /// Energy price, dollars per kWh.
    pub energy_usd_per_kwh: f64,
    /// Power usage effectiveness (facility overhead multiplier).
    pub pue: f64,
}

impl Default for TcoModel {
    /// The paper's §V-F constants. Amortization follows Hamilton's usual
    /// assumptions: 36-month servers, 120-month facility.
    fn default() -> Self {
        TcoModel {
            servers: 100_000.0,
            server_cost_usd: 1450.0,
            server_lifetime_months: 36.0,
            power_infra_usd_per_watt: 9.0,
            power_infra_lifetime_months: 120.0,
            energy_usd_per_kwh: 0.07,
            pue: 1.1,
        }
    }
}

/// One deployment scenario to be costed.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display name (policy).
    pub name: String,
    /// Provisioned power capacity per server.
    pub provisioned_per_server: Watts,
    /// Average power draw per server while serving.
    pub avg_power_per_server: Watts,
    /// Relative throughput per server (1.0 = baseline). Higher throughput
    /// means fewer servers for the same aggregate work.
    pub relative_throughput: f64,
}

/// Amortized monthly cost breakdown, dollars.
#[derive(Debug, Clone, PartialEq)]
pub struct MonthlyCost {
    /// Scenario name.
    pub name: String,
    /// Number of servers needed at iso-throughput.
    pub servers_needed: f64,
    /// Amortized server capital cost.
    pub server_usd: f64,
    /// Amortized power-infrastructure capital cost.
    pub power_infra_usd: f64,
    /// Monthly energy bill.
    pub energy_usd: f64,
}

impl MonthlyCost {
    /// Total monthly cost.
    pub fn total(&self) -> f64 {
        self.server_usd + self.power_infra_usd + self.energy_usd
    }
}

pocolo_json::impl_to_json!(MonthlyCost {
    name,
    servers_needed,
    server_usd,
    power_infra_usd,
    energy_usd
});

impl TcoModel {
    /// Costs a scenario at iso-throughput against the reference deployment.
    ///
    /// ```
    /// use pocolo_tco::{TcoModel, Scenario};
    /// use pocolo_core::Watts;
    ///
    /// let model = TcoModel::default();
    /// let cost = model.monthly_cost(&Scenario {
    ///     name: "POColo".into(),
    ///     provisioned_per_server: Watts(150.0),
    ///     avg_power_per_server: Watts(140.0),
    ///     relative_throughput: 1.18,
    /// });
    /// assert!(cost.servers_needed < 100_000.0); // fewer servers at iso-work
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `relative_throughput` is not positive or powers are
    /// invalid.
    pub fn monthly_cost(&self, scenario: &Scenario) -> MonthlyCost {
        assert!(
            scenario.relative_throughput > 0.0,
            "relative throughput must be positive"
        );
        assert!(
            scenario.provisioned_per_server.is_valid() && scenario.avg_power_per_server.is_valid(),
            "powers must be valid"
        );
        let servers_needed = self.servers / scenario.relative_throughput;
        let server_usd = servers_needed * self.server_cost_usd / self.server_lifetime_months;
        let power_infra_usd =
            servers_needed * scenario.provisioned_per_server.0 * self.power_infra_usd_per_watt
                / self.power_infra_lifetime_months;
        let hours_per_month = 730.0;
        let kwh =
            servers_needed * scenario.avg_power_per_server.0 / 1000.0 * hours_per_month * self.pue;
        let energy_usd = kwh * self.energy_usd_per_kwh;
        MonthlyCost {
            name: scenario.name.clone(),
            servers_needed,
            server_usd,
            power_infra_usd,
            energy_usd,
        }
    }

    /// Costs several scenarios.
    pub fn compare(&self, scenarios: &[Scenario]) -> Vec<MonthlyCost> {
        scenarios.iter().map(|s| self.monthly_cost(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Scenario {
        Scenario {
            name: "Random".into(),
            provisioned_per_server: Watts(150.0),
            avg_power_per_server: Watts(144.0),
            relative_throughput: 1.0,
        }
    }

    #[test]
    fn cost_components_are_positive_and_sane() {
        let model = TcoModel::default();
        let c = model.monthly_cost(&baseline());
        assert_eq!(c.servers_needed, 100_000.0);
        // 100k × 1450 / 36 ≈ $4.03 M.
        assert!((c.server_usd - 100_000.0 * 1450.0 / 36.0).abs() < 1.0);
        // 100k × 150 W × $9/W / 120 ≈ $1.125 M.
        assert!((c.power_infra_usd - 100_000.0 * 150.0 * 9.0 / 120.0).abs() < 1.0);
        // 100k × 0.144 kW × 730 h × 1.1 × $0.07 ≈ $0.81 M.
        let expected_energy = 100_000.0 * 0.144 * 730.0 * 1.1 * 0.07;
        assert!((c.energy_usd - expected_energy).abs() < 1.0);
        assert!(c.total() > 0.0);
    }

    #[test]
    fn higher_throughput_needs_fewer_servers() {
        let model = TcoModel::default();
        let mut better = baseline();
        better.name = "POColo".into();
        better.relative_throughput = 1.18;
        better.avg_power_per_server = Watts(132.0);
        let base = model.monthly_cost(&baseline());
        let opt = model.monthly_cost(&better);
        assert!(opt.servers_needed < base.servers_needed);
        assert!(opt.total() < base.total());
        let saving = 1.0 - opt.total() / base.total();
        // Throughput +18 % and power −8 % should save well over 10 %.
        assert!(saving > 0.10, "saving {saving}");
    }

    #[test]
    fn overprovisioned_power_costs_more_infra() {
        let model = TcoModel::default();
        let mut nocap = baseline();
        nocap.name = "Random(NoCap)".into();
        nocap.provisioned_per_server = Watts(185.0);
        let base = model.monthly_cost(&baseline());
        let no = model.monthly_cost(&nocap);
        assert!(no.power_infra_usd > base.power_infra_usd);
        assert_eq!(no.server_usd, base.server_usd);
    }

    #[test]
    fn compare_returns_all() {
        let model = TcoModel::default();
        let out = model.compare(&[baseline(), baseline()]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_throughput_panics() {
        let mut s = baseline();
        s.relative_throughput = 0.0;
        let _ = TcoModel::default().monthly_cost(&s);
    }
}

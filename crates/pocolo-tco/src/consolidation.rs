//! Consolidation vs. colocation — the paper's §II-B economic argument made
//! quantitative.
//!
//! At low diurnal load an operator can (a) leave servers idle, (b)
//! **consolidate** — pack the load onto few servers and power the rest off,
//! saving energy but stranding the *capital* already paid for servers and
//! power infrastructure — or (c) **colocate** best-effort work, converting
//! the stranded capital into throughput. The paper argues (c); this module
//! computes the monthly cost per unit of useful work for all three.

use pocolo_core::units::Watts;

use crate::{Scenario, TcoModel};

/// One strategy's cost/benefit outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyCost {
    /// Strategy name.
    pub name: String,
    /// Total monthly cost, dollars.
    pub monthly_usd: f64,
    /// Useful work per server (normalized throughput units; LC work = its
    /// mean load fraction, BE work adds on top).
    pub work_per_server: f64,
    /// Dollars per unit of work — the cluster-utility metric the paper
    /// optimizes ("performance per unit cost", §II-B).
    pub usd_per_work: f64,
}

/// Cluster operating parameters for the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCluster {
    /// Mean diurnal load fraction of the primary (0, 1].
    pub mean_load: f64,
    /// Provisioned (right-sized) power per server.
    pub provisioned: Watts,
    /// Idle server power.
    pub idle: Watts,
    /// Server power at full primary load.
    pub busy: Watts,
    /// Average best-effort throughput a colocated server achieves
    /// (normalized units; zero disables colocation's benefit).
    pub colocated_be_throughput: f64,
    /// Average server power when colocated (typically near `provisioned`).
    pub colocated_power: Watts,
    /// Consolidation headroom: consolidated servers run at
    /// `mean_load × (1 + margin)` worth of load per active server.
    pub consolidation_margin: f64,
}

impl DiurnalCluster {
    /// Average power of an un-consolidated server serving load fraction
    /// `l`: linear between idle and busy.
    fn lc_power(&self, l: f64) -> Watts {
        self.idle + (self.busy - self.idle) * l.clamp(0.0, 1.0)
    }
}

/// Compares always-on, consolidation and colocation per-work costs.
///
/// # Panics
///
/// Panics unless `0 < mean_load <= 1` and the power fields are valid.
pub fn compare_strategies(model: &TcoModel, cluster: &DiurnalCluster) -> Vec<StrategyCost> {
    assert!(
        cluster.mean_load > 0.0 && cluster.mean_load <= 1.0,
        "mean load must be in (0, 1]"
    );
    assert!(
        cluster.idle.is_valid() && cluster.busy.is_valid() && cluster.idle <= cluster.busy,
        "power range invalid"
    );
    let mut out = Vec::with_capacity(3);

    // (a) Always-on: every server serves its own diurnal load.
    let always_on = model.monthly_cost(&Scenario {
        name: "always-on".into(),
        provisioned_per_server: cluster.provisioned,
        avg_power_per_server: cluster.lc_power(cluster.mean_load),
        relative_throughput: 1.0,
    });
    let work_a = cluster.mean_load;
    out.push(StrategyCost {
        name: "always-on".into(),
        monthly_usd: always_on.total(),
        work_per_server: work_a,
        usd_per_work: always_on.total() / (work_a * model.servers),
    });

    // (b) Consolidation: a fraction of servers runs hot, the rest are off.
    // Energy shrinks; capital (servers + power infra) is unchanged.
    let active_frac = (cluster.mean_load * (1.0 + cluster.consolidation_margin)).min(1.0);
    let per_active_load = (cluster.mean_load / active_frac).min(1.0);
    let avg_power = cluster.lc_power(per_active_load) * active_frac; // off servers ~0 W
    let consolidation = model.monthly_cost(&Scenario {
        name: "consolidation".into(),
        provisioned_per_server: cluster.provisioned,
        avg_power_per_server: avg_power,
        relative_throughput: 1.0,
    });
    out.push(StrategyCost {
        name: "consolidation".into(),
        monthly_usd: consolidation.total(),
        work_per_server: work_a,
        usd_per_work: consolidation.total() / (work_a * model.servers),
    });

    // (c) Colocation: every server also hosts best-effort work.
    let colocation = model.monthly_cost(&Scenario {
        name: "colocation".into(),
        provisioned_per_server: cluster.provisioned,
        avg_power_per_server: cluster.colocated_power,
        relative_throughput: 1.0,
    });
    let work_c = cluster.mean_load + cluster.colocated_be_throughput;
    out.push(StrategyCost {
        name: "colocation".into(),
        monthly_usd: colocation.total(),
        work_per_server: work_c,
        usd_per_work: colocation.total() / (work_c * model.servers),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> DiurnalCluster {
        DiurnalCluster {
            mean_load: 0.5,
            provisioned: Watts(154.0),
            idle: Watts(50.0),
            busy: Watts(154.0),
            colocated_be_throughput: 0.66,
            colocated_power: Watts(145.0),
            consolidation_margin: 0.25,
        }
    }

    #[test]
    fn consolidation_saves_energy_but_not_capital() {
        let model = TcoModel::default();
        let costs = compare_strategies(&model, &cluster());
        let by = |n: &str| costs.iter().find(|c| c.name == n).unwrap().clone();
        let always = by("always-on");
        let consolidated = by("consolidation");
        assert!(
            consolidated.monthly_usd < always.monthly_usd,
            "consolidation must cut the bill"
        );
        // Same work, so its $/work also improves — but only by the energy
        // share, since capital dominates.
        assert!(consolidated.usd_per_work < always.usd_per_work);
        let saving = 1.0 - consolidated.monthly_usd / always.monthly_usd;
        assert!(
            saving < 0.20,
            "energy is a minority of TCO; saving was {saving}"
        );
    }

    #[test]
    fn colocation_wins_on_cost_per_work() {
        let model = TcoModel::default();
        let costs = compare_strategies(&model, &cluster());
        let by = |n: &str| costs.iter().find(|c| c.name == n).unwrap().clone();
        let colocated = by("colocation");
        let consolidated = by("consolidation");
        assert!(
            colocated.monthly_usd > consolidated.monthly_usd,
            "colocation draws more power"
        );
        assert!(
            colocated.usd_per_work < consolidated.usd_per_work * 0.75,
            "but its cost per unit of work must be far lower: {} vs {}",
            colocated.usd_per_work,
            consolidated.usd_per_work
        );
    }

    #[test]
    fn zero_be_throughput_makes_colocation_pointless() {
        let model = TcoModel::default();
        let mut c = cluster();
        c.colocated_be_throughput = 0.0;
        let costs = compare_strategies(&model, &c);
        let by = |n: &str| costs.iter().find(|x| x.name == n).unwrap().clone();
        assert!(by("colocation").usd_per_work > by("consolidation").usd_per_work);
    }

    #[test]
    fn consolidation_fraction_clamps_at_full_fleet() {
        let model = TcoModel::default();
        let mut c = cluster();
        c.mean_load = 0.9; // 0.9 * 1.25 > 1 -> everything stays on
        let costs = compare_strategies(&model, &c);
        let by = |n: &str| costs.iter().find(|x| x.name == n).unwrap().clone();
        // With the full fleet active, consolidation degenerates to always-on.
        assert!(
            (by("consolidation").monthly_usd - by("always-on").monthly_usd).abs()
                / by("always-on").monthly_usd
                < 0.01
        );
    }

    #[test]
    #[should_panic(expected = "mean load")]
    fn invalid_load_panics() {
        let mut c = cluster();
        c.mean_load = 0.0;
        let _ = compare_strategies(&TcoModel::default(), &c);
    }
}

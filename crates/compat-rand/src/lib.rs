//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! vendors the small slice of the `rand 0.8` API that Pocolo uses:
//! [`rngs::StdRng`], the [`Rng`] / [`SeedableRng`] traits, and
//! [`seq::SliceRandom`]. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic across platforms, which is all the
//! simulations require (they never ask for cryptographic strength).
//!
//! Streams are **not** bit-compatible with upstream `rand`; every consumer
//! in this workspace treats seeds as opaque reproducibility handles, so
//! only determinism matters, not the exact stream.

#![warn(missing_docs)]

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range by an RNG.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

/// Uniform draw in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// A uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let f = unit_f64(rng) as $t;
                self.start + (self.end - self.start) * f
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let f = unit_f64(rng) as $t;
                lo + (hi - lo) * f
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 — the same
    /// expansion upstream `rand` uses, so related seeds stay decorrelated.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256**.
    ///
    /// Deterministic, fast, and of ample statistical quality for the
    /// simulations; not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3.0..5.0);
            assert!((3.0..5.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&v));
        }
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And with overwhelming probability not the identity.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([7u8].choose(&mut rng), Some(&7));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}

//! Scale-mode gates: the swarm's wire-delivered results must match the
//! timing-independent reference on both transport backends, and the
//! classic four-agent parity demo must stay bit-exact when served by
//! the reactor (the default) and by the legacy thread-per-connection
//! backend.

use std::time::Duration;

use pocolo_net::{run_demo, run_demo_scale, DemoConfig, NetBackend, ScaleConfig};
use pocolo_sim::experiment::ExperimentConfig;
use pocolo_sim::Policy;

fn scale_config(agents: usize, backend: NetBackend) -> ScaleConfig {
    let mut config = ScaleConfig::new(agents, 3);
    // Closed-loop heartbeats: the gate checks protocol correctness and
    // parity, not pacing; wall-clock stays in CI budget.
    config.heartbeat_every = Duration::ZERO;
    config.backend = backend;
    config
}

#[test]
fn three_hundred_swarm_agents_reproduce_the_reference_on_the_reactor() {
    let report = run_demo_scale(&scale_config(300, NetBackend::Reactor)).unwrap();
    assert!(report.parity, "wire result diverged from the reference");
    assert_eq!(report.swarm.agents.len(), 300);
    assert!(report.swarm.agents.iter().all(|a| a.completed));
    // Closed-loop: 3 acks per agent.
    assert_eq!(report.swarm.rtts_us.len(), 900);
}

#[test]
fn the_threads_backend_still_serves_a_swarm() {
    // Smaller fleet: this backend spends a thread per connection.
    let report = run_demo_scale(&scale_config(40, NetBackend::Threads)).unwrap();
    assert!(report.parity, "wire result diverged from the reference");
    assert!(report.swarm.agents.iter().all(|a| a.completed));
}

fn demo_config(backend: NetBackend) -> DemoConfig {
    let mut config = DemoConfig::new(
        Policy::Heracles { seed: 3 },
        ExperimentConfig {
            dwell_s: 2.0,
            seed: 3,
            ..ExperimentConfig::default()
        },
    );
    config.backend = backend;
    config
}

#[test]
fn the_parity_demo_is_backend_independent() {
    let reactor = run_demo(&demo_config(NetBackend::Reactor)).unwrap();
    assert!(reactor.parity(), "reactor backend diverged");
    let threads = run_demo(&demo_config(NetBackend::Threads)).unwrap();
    assert!(threads.parity(), "threads backend diverged");
    // Same engine result on both transports — the wire layer is
    // invisible to the experiment.
    assert_eq!(reactor.wire, threads.wire);
}

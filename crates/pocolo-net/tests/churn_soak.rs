//! Connection-churn soak: 200 swarm agents against one reactor event
//! loop, a quarter of them killed mid-run. The daemon must expire every
//! orphaned lease, hand the slots back degraded on rejoin, finish with
//! metrics bit-identical to the timing-independent replay reference,
//! and hold no connection state afterwards (no fd leak).

use std::collections::HashSet;
use std::time::{Duration, Instant};

use pocolo_net::swarm::{run_swarm, scale_reference, SwarmConfig};
use pocolo_net::{ClusterConfig, Clusterd, NetBackend, RunSpec, SlotState};

const N: usize = 200;
const HEARTBEATS: u64 = 6;
const SEED: u64 = 11;

fn wait_until(what: &str, deadline: Duration, mut ready: impl FnMut() -> bool) {
    let start = Instant::now();
    while !ready() {
        assert!(
            start.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn two_hundred_agents_survive_a_kill_and_rejoin_storm() {
    let run = RunSpec::scale(N, SEED);
    let mut cluster_config = ClusterConfig::new(
        "127.0.0.1:0".parse().unwrap(),
        Duration::from_millis(200),
        run.clone(),
    );
    cluster_config.backend = NetBackend::Reactor;
    let clusterd = Clusterd::spawn(cluster_config).unwrap();
    let addr = clusterd.local_addr();

    // First pass: every fourth agent abandons its slot after two
    // heartbeats; the rest run to completion.
    let mut first_pass = SwarmConfig::new(addr, N, HEARTBEATS, SEED);
    first_pass.heartbeat_every = Duration::from_millis(25);
    first_pass.kill = (0..N).filter(|i| i % 4 == 0).collect();
    first_pass.kill_after_epochs = 2;
    let first = run_swarm(&first_pass).unwrap();

    let killed: Vec<usize> = first
        .agents
        .iter()
        .enumerate()
        .filter(|(_, a)| !a.completed)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(killed.len(), N / 4, "exactly the kill set was killed");
    assert!(killed.iter().all(|i| first_pass.kill.contains(i)));
    let killed_slots: HashSet<usize> = killed.iter().map(|&i| first.agents[i].server).collect();
    assert_eq!(killed_slots.len(), N / 4, "killed slots are distinct");

    // Lease takeover: every orphaned slot flips to Degraded once its
    // lease runs out — driven by the reactor's timer wheel, no reaper
    // thread to thank.
    wait_until("orphaned leases to expire", Duration::from_secs(30), || {
        let states = clusterd.slot_states();
        killed_slots
            .iter()
            .all(|&s| matches!(states[s], SlotState::Degraded { .. }))
    });

    // No fd leak between passes: completed agents hung up after their
    // ack, killed agents hung up mid-run; the registry of open
    // connections must drain back to the baseline of zero.
    wait_until(
        "first-pass connections to drain",
        Duration::from_secs(30),
        || clusterd.open_connections() == Some(0),
    );

    // Rejoin under the same identities: the daemon hands back the same
    // slot, flagged degraded, and the replacement re-runs it fully.
    let mut rejoin_pass = SwarmConfig::new(addr, 0, HEARTBEATS, SEED);
    rejoin_pass.identities = killed.iter().map(|&i| format!("agent-{i}")).collect();
    let second = run_swarm(&rejoin_pass).unwrap();
    for (&orig_idx, outcome) in killed.iter().zip(&second.agents) {
        assert!(outcome.completed, "rejoined agent {orig_idx} completed");
        assert!(outcome.degraded, "rejoined agent {orig_idx} saw degraded");
        assert_eq!(
            outcome.server, first.agents[orig_idx].server,
            "agent {orig_idx} reclaimed its own slot"
        );
    }

    // Final metrics match the replayed reference bit-for-bit: a rejoined
    // slot completes with the same deterministic metrics it would have
    // delivered uninterrupted, so the cluster-level result is exactly
    // the clean-run reference.
    assert!(clusterd.wait_done(Duration::from_secs(30)));
    let wire = clusterd.result().expect("all slots delivered metrics");
    assert_eq!(
        wire,
        scale_reference(&run, HEARTBEATS),
        "assembled result diverged from the replayed reference"
    );

    assert_eq!(
        clusterd.reregistrations(),
        N / 4,
        "every kill produced exactly one re-registration"
    );
    let degraded_history: HashSet<usize> = clusterd.degraded_history().into_iter().collect();
    assert_eq!(degraded_history, killed_slots);

    // And after the rejoin wave, the connection registry is back to
    // baseline again.
    wait_until(
        "second-pass connections to drain",
        Duration::from_secs(30),
        || clusterd.open_connections() == Some(0),
    );
}

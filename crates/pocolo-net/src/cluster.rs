//! The POColo cluster daemon: slot registry, heartbeat leases, placement
//! push, and result aggregation.
//!
//! The daemon is the passive side of the protocol: it solves the
//! placement once (via [`RunSpec::plan`]), hands each registering agent
//! a slot plus the full run spec, renews a slot's lease on every
//! telemetry frame, and aggregates the final metrics. A reaper thread
//! expires leases: a slot whose agent goes silent flips to *degraded*,
//! and the next registration of that slot (same agent identity restarted,
//! or a fresh one) is told to run the blind incremental-control fallback
//! — the same degradation path the in-process resilience layer takes
//! when telemetry cannot be trusted.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pocolo_sim::experiment::{ExperimentResult, PairResult};
use pocolo_sim::{ClusterSummary, Policy, ServerMetrics};

use crate::error::NetError;
use crate::server::{Handler, Server};
use crate::wire::{Message, RunSpec};

/// Lease/registry state of one server slot.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotState {
    /// No agent has claimed this slot yet.
    Vacant,
    /// An agent holds the slot and its lease is current.
    Live {
        /// The owning agent's identity.
        agent: String,
    },
    /// The lease expired (or the owner re-registered after dying): the
    /// slot must be re-run under the degraded fallback controller.
    Degraded {
        /// The previous owner, if any.
        agent: Option<String>,
    },
    /// Final metrics have been delivered.
    Done,
}

#[derive(Debug)]
struct Slot {
    state: SlotState,
    last_seen: Instant,
    /// Count of times this slot was handed out after a failure.
    reregistrations: usize,
    /// The slot passed through Degraded at least once.
    was_degraded: bool,
    metrics: Option<ServerMetrics>,
}

#[derive(Debug)]
struct Registry {
    slots: Vec<Slot>,
    /// Live budget directive broadcast on every telemetry ack.
    cap_factor: f64,
}

impl Registry {
    fn new(n: usize) -> Registry {
        Registry {
            slots: (0..n)
                .map(|_| Slot {
                    state: SlotState::Vacant,
                    last_seen: Instant::now(),
                    reregistrations: 0,
                    was_degraded: false,
                    metrics: None,
                })
                .collect(),
            cap_factor: 1.0,
        }
    }

    fn count(&self, f: impl Fn(&SlotState) -> bool) -> usize {
        self.slots.iter().filter(|s| f(&s.state)).count()
    }

    /// Assigns a slot to `agent`: their previous slot if they ever held
    /// one (idempotent re-registration), else the lowest slot that is
    /// vacant or degraded. Returns `(server, degraded)`.
    fn assign(&mut self, agent: &str) -> Option<(usize, bool)> {
        let owned = self.slots.iter().position(|s| match &s.state {
            SlotState::Live { agent: a } => a == agent,
            SlotState::Degraded { agent: a } => a.as_deref() == Some(agent),
            _ => false,
        });
        let (idx, rejoin) = match owned {
            // A re-register of a live or degraded slot means the agent
            // died and restarted: the partial run is unobservable, so the
            // slot re-runs under the degraded fallback.
            Some(idx) => (idx, true),
            None => {
                let vacant = self
                    .slots
                    .iter()
                    .position(|s| matches!(s.state, SlotState::Vacant))
                    .or_else(|| {
                        self.slots
                            .iter()
                            .position(|s| matches!(s.state, SlotState::Degraded { .. }))
                    })?;
                (
                    vacant,
                    matches!(self.slots[vacant].state, SlotState::Degraded { .. }),
                )
            }
        };
        let slot = &mut self.slots[idx];
        if rejoin {
            slot.reregistrations += 1;
            slot.was_degraded = true;
        }
        slot.state = SlotState::Live {
            agent: agent.to_string(),
        };
        slot.last_seen = Instant::now();
        Some((idx, rejoin))
    }

    fn renew(&mut self, server: usize) -> Result<(), NetError> {
        let slot = self
            .slots
            .get_mut(server)
            .ok_or_else(|| NetError::Protocol(format!("no slot {server}")))?;
        if matches!(slot.state, SlotState::Live { .. }) {
            slot.last_seen = Instant::now();
        }
        Ok(())
    }

    fn complete(&mut self, server: usize, metrics: ServerMetrics) -> Result<(), NetError> {
        let slot = self
            .slots
            .get_mut(server)
            .ok_or_else(|| NetError::Protocol(format!("no slot {server}")))?;
        slot.metrics = Some(metrics);
        slot.state = SlotState::Done;
        Ok(())
    }

    /// Expires live leases older than `ttl`.
    fn reap(&mut self, ttl: Duration) {
        let now = Instant::now();
        for slot in &mut self.slots {
            if let SlotState::Live { agent } = &slot.state {
                if now.duration_since(slot.last_seen) > ttl {
                    slot.was_degraded = true;
                    slot.state = SlotState::Degraded {
                        agent: Some(agent.clone()),
                    };
                }
            }
        }
    }
}

/// Cluster daemon configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Address to listen on (port 0 for ephemeral).
    pub listen: SocketAddr,
    /// Heartbeat lease TTL: a slot silent for longer flips to degraded.
    pub lease_ttl: Duration,
    /// The run pushed to every registering agent.
    pub run: RunSpec,
}

/// A running cluster daemon.
#[derive(Debug)]
pub struct Clusterd {
    server: Server,
    registry: Arc<Mutex<Registry>>,
    run: RunSpec,
    reaper_stop: Arc<AtomicBool>,
    reaper: Option<std::thread::JoinHandle<()>>,
}

struct ClusterHandler {
    registry: Arc<Mutex<Registry>>,
    run: RunSpec,
}

impl Handler for ClusterHandler {
    fn handle(&self, request: Message) -> Result<Message, NetError> {
        let mut reg = self.registry.lock().expect("registry lock");
        match request {
            Message::Register { agent } => {
                let (server, degraded) = reg
                    .assign(&agent)
                    .ok_or_else(|| NetError::Protocol("no free slot to assign".into()))?;
                Ok(Message::Welcome {
                    server,
                    degraded,
                    run: Box::new(self.run.clone()),
                })
            }
            Message::Telemetry { server, .. } => {
                reg.renew(server)?;
                Ok(Message::TelemetryAck {
                    cap_factor: reg.cap_factor,
                })
            }
            Message::Complete { server, metrics } => {
                reg.complete(server, *metrics)?;
                Ok(Message::CompleteAck)
            }
            Message::Status => Ok(Message::StatusReport {
                expected: reg.slots.len(),
                live: reg.count(|s| matches!(s, SlotState::Live { .. })),
                degraded: reg.count(|s| matches!(s, SlotState::Degraded { .. })),
                done: reg.count(|s| matches!(s, SlotState::Done)),
            }),
            Message::Shutdown => Ok(Message::ShutdownAck),
            other => Err(NetError::Protocol(format!(
                "cluster daemon cannot handle {:?} requests",
                other.type_name()
            ))),
        }
    }
}

impl Clusterd {
    /// Binds and starts serving, including the lease reaper thread.
    pub fn spawn(config: ClusterConfig) -> Result<Clusterd, NetError> {
        let registry = Arc::new(Mutex::new(Registry::new(config.run.n_servers())));
        let handler: Arc<dyn Handler> = Arc::new(ClusterHandler {
            registry: Arc::clone(&registry),
            run: config.run.clone(),
        });
        let server = Server::spawn(config.listen, handler)?;
        let reaper_stop = Arc::new(AtomicBool::new(false));
        let reaper = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&reaper_stop);
            let ttl = config.lease_ttl;
            // Check a few times per TTL so expiry latency stays a small
            // fraction of the lease itself.
            let tick = ttl.checked_div(4).unwrap_or(Duration::from_millis(25));
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    registry.lock().expect("registry lock").reap(ttl);
                }
            })
        };
        Ok(Clusterd {
            server,
            registry,
            run: config.run,
            reaper_stop,
            reaper: Some(reaper),
        })
    }

    /// The daemon's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Sets the live budget directive broadcast on telemetry acks.
    pub fn set_cap_factor(&self, cap_factor: f64) {
        self.registry.lock().expect("registry lock").cap_factor = cap_factor;
    }

    /// Slot states, for harnesses and status displays.
    pub fn slot_states(&self) -> Vec<SlotState> {
        let reg = self.registry.lock().expect("registry lock");
        reg.slots.iter().map(|s| s.state.clone()).collect()
    }

    /// Slots that passed through the degraded state at least once.
    pub fn degraded_history(&self) -> Vec<usize> {
        let reg = self.registry.lock().expect("registry lock");
        reg.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.was_degraded)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total failure re-registrations across all slots.
    pub fn reregistrations(&self) -> usize {
        let reg = self.registry.lock().expect("registry lock");
        reg.slots.iter().map(|s| s.reregistrations).sum()
    }

    /// Blocks until every slot is done (polling) or the deadline passes.
    pub fn wait_done(&self, deadline: Duration) -> bool {
        let start = Instant::now();
        loop {
            {
                let reg = self.registry.lock().expect("registry lock");
                if reg.count(|s| matches!(s, SlotState::Done)) == reg.slots.len() {
                    return true;
                }
            }
            if start.elapsed() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Assembles the experiment result from delivered metrics, in the
    /// same shape the in-process engine returns. `None` until every slot
    /// is done.
    pub fn result(&self) -> Option<ExperimentResult> {
        let reg = self.registry.lock().expect("registry lock");
        let metrics: Option<Vec<ServerMetrics>> =
            reg.slots.iter().map(|s| s.metrics.clone()).collect();
        let metrics = metrics?;
        let pairs: Vec<PairResult> = metrics
            .iter()
            .enumerate()
            .map(|(i, m)| PairResult {
                lc: self.run.lc[i].clone(),
                be: self.run.placement[i].name().to_string(),
                metrics: m.clone(),
            })
            .collect();
        let summary = ClusterSummary::aggregate(&metrics)?;
        Some(ExperimentResult {
            policy: self.run.policy.name().to_string(),
            pairs,
            summary,
        })
    }

    /// The policy this daemon is evaluating.
    pub fn policy(&self) -> Policy {
        self.run.policy
    }

    /// Stops the reaper and the frame server.
    pub fn shutdown(&mut self) {
        self.reaper_stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.reaper.take() {
            let _ = t.join();
        }
        self.server.shutdown();
    }
}

impl Drop for Clusterd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry4() -> Registry {
        Registry::new(4)
    }

    #[test]
    fn registration_fills_slots_in_order() {
        let mut reg = registry4();
        assert_eq!(reg.assign("a"), Some((0, false)));
        assert_eq!(reg.assign("b"), Some((1, false)));
        assert_eq!(reg.assign("c"), Some((2, false)));
        assert_eq!(reg.assign("d"), Some((3, false)));
        assert_eq!(reg.assign("e"), None, "cluster is full");
    }

    #[test]
    fn reregistration_is_idempotent_and_degrades() {
        let mut reg = registry4();
        assert_eq!(reg.assign("a"), Some((0, false)));
        // The same identity re-registering means the agent restarted: it
        // keeps its slot but must run degraded.
        assert_eq!(reg.assign("a"), Some((0, true)));
        assert_eq!(reg.slots[0].reregistrations, 1);
        assert!(reg.slots[0].was_degraded);
        // Other agents are unaffected.
        assert_eq!(reg.assign("b"), Some((1, false)));
    }

    #[test]
    fn lease_expiry_flips_live_to_degraded_and_hands_the_slot_on() {
        let mut reg = registry4();
        reg.assign("a");
        reg.slots[0].last_seen = Instant::now() - Duration::from_secs(60);
        reg.reap(Duration::from_millis(50));
        assert!(matches!(
            reg.slots[0].state,
            SlotState::Degraded { agent: Some(ref a) } if a == "a"
        ));
        // A fresh agent picks up the degraded slot before vacant ones
        // are exhausted... actually vacant slots go first.
        assert_eq!(reg.assign("b"), Some((1, false)));
        reg.assign("c");
        reg.assign("d");
        // Cluster otherwise full: the degraded slot is handed out.
        assert_eq!(reg.assign("e"), Some((0, true)));
    }

    #[test]
    fn renew_keeps_a_lease_alive() {
        let mut reg = registry4();
        reg.assign("a");
        reg.slots[0].last_seen = Instant::now() - Duration::from_millis(40);
        reg.renew(0).unwrap();
        reg.reap(Duration::from_millis(50));
        assert!(matches!(reg.slots[0].state, SlotState::Live { .. }));
        assert!(reg.renew(9).is_err(), "unknown slot is a typed error");
    }

    #[test]
    fn done_slots_are_never_reaped_or_reassigned() {
        let mut reg = registry4();
        reg.assign("a");
        reg.complete(0, ServerMetrics::new(pocolo_core::Watts(100.0)))
            .unwrap();
        reg.slots[0].last_seen = Instant::now() - Duration::from_secs(60);
        reg.reap(Duration::from_millis(1));
        assert!(matches!(reg.slots[0].state, SlotState::Done));
        reg.assign("b");
        reg.assign("c");
        reg.assign("d");
        assert_eq!(reg.assign("e"), None, "done slot is not handed out");
    }
}

//! The POColo cluster daemon: slot registry, heartbeat leases, placement
//! push, and result aggregation.
//!
//! The daemon is the passive side of the protocol: it solves the
//! placement once (via [`RunSpec::plan`]), hands each registering agent
//! a slot plus the full run spec, renews a slot's lease on every
//! telemetry frame, and aggregates the final metrics. A slot whose agent
//! goes silent flips to *degraded*, and the next registration of that
//! slot (same agent identity restarted, or a fresh one) is told to run
//! the blind incremental-control fallback — the same degradation path
//! the in-process resilience layer takes when telemetry cannot be
//! trusted.
//!
//! Two transport backends share the registry and produce bit-identical
//! wire behaviour:
//!
//! - [`NetBackend::Reactor`] (default): one event loop multiplexes every
//!   connection ([`crate::reactor`]). Lease expiry rides the loop's
//!   timer wheel (one lazy re-check chain per live lease, no scanning
//!   reaper thread), telemetry acks for the current `cap_factor` are
//!   encoded once and fanned out as cached bytes, the welcome frame
//!   splices a cached run-spec serialization instead of re-encoding
//!   ~100 KiB per registration, and a slot whose connection is dropped
//!   for slow consumption is degraded on the spot.
//! - [`NetBackend::Threads`]: the original thread-per-connection server
//!   plus a sleeping reaper thread. Kept as the baseline the
//!   `net_scale` bench compares against.
//!
//! Completion is edge-triggered either way: [`Clusterd::wait_done`]
//! blocks on a condvar the final `Complete` notifies — no sleep-polling.

use std::collections::{BTreeSet, HashMap};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pocolo_sim::experiment::{ExperimentResult, PairResult};
use pocolo_sim::{ClusterSummary, Policy, ServerMetrics};

use crate::error::NetError;
use crate::frame::encode_frame_str;
use crate::reactor::{
    ConnId, Ctx, DisconnectReason, EventHandler, ReactorConfig, ReactorServer, Reply,
};
use crate::server::{Handler, Server};
use crate::wire::{Message, RunSpec, PROTOCOL_VERSION};

/// Lease/registry state of one server slot.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotState {
    /// No agent has claimed this slot yet.
    Vacant,
    /// An agent holds the slot and its lease is current.
    Live {
        /// The owning agent's identity.
        agent: String,
    },
    /// The lease expired (or the owner re-registered after dying, or its
    /// connection was cut for slow consumption): the slot must be re-run
    /// under the degraded fallback controller.
    Degraded {
        /// The previous owner, if any.
        agent: Option<String>,
    },
    /// Final metrics have been delivered.
    Done,
}

#[derive(Debug)]
struct Slot {
    state: SlotState,
    last_seen: Instant,
    /// Count of times this slot was handed out after a failure.
    reregistrations: usize,
    /// The slot passed through Degraded at least once.
    was_degraded: bool,
    /// A lease-expiry timer chain is pending on the reactor wheel.
    lease_timer_armed: bool,
    /// Hardware class the current owner declared at registration, if
    /// any. Recorded for fleet-aware placement; never gates assignment.
    declared_class: Option<String>,
    metrics: Option<ServerMetrics>,
}

/// What a lease-expiry timer firing observed.
enum LeaseCheck {
    /// The lease was overdue; the slot is now degraded.
    Expired,
    /// The lease is current; check again after this long.
    RecheckIn(Duration),
    /// The slot is no longer live; the timer chain ends.
    Settled,
}

#[derive(Debug)]
struct Registry {
    slots: Vec<Slot>,
    /// Live budget directive broadcast on every telemetry ack.
    cap_factor: f64,
    /// agent identity → owned slot, for O(1) idempotent re-registration.
    /// An agent owns at most one slot: its Live slot, or the Degraded
    /// slot it may reclaim. Entries die when the slot completes or is
    /// handed to a different agent.
    owners: HashMap<String, usize>,
    /// Vacant slot indices (BTreeSet: lowest-first hand-out is O(log n)).
    vacant: BTreeSet<usize>,
    /// Degraded slot indices, handed out once vacants are exhausted.
    degraded: BTreeSet<usize>,
    done_count: usize,
}

impl Registry {
    fn new(n: usize) -> Registry {
        Registry {
            slots: (0..n)
                .map(|_| Slot {
                    state: SlotState::Vacant,
                    last_seen: Instant::now(),
                    reregistrations: 0,
                    was_degraded: false,
                    lease_timer_armed: false,
                    declared_class: None,
                    metrics: None,
                })
                .collect(),
            cap_factor: 1.0,
            owners: HashMap::new(),
            vacant: (0..n).collect(),
            degraded: BTreeSet::new(),
            done_count: 0,
        }
    }

    fn count(&self, f: impl Fn(&SlotState) -> bool) -> usize {
        self.slots.iter().filter(|s| f(&s.state)).count()
    }

    /// Flips a live slot to degraded, maintaining the index sets. The
    /// previous owner keeps its claim (a restarted agent reclaims the
    /// slot); `was_degraded` is recorded for the harness.
    fn degrade(&mut self, idx: usize) {
        let slot = &mut self.slots[idx];
        if let SlotState::Live { agent } = &slot.state {
            slot.was_degraded = true;
            slot.state = SlotState::Degraded {
                agent: Some(agent.clone()),
            };
            self.degraded.insert(idx);
        }
    }

    /// Assigns a slot to `agent`: their previous slot if they ever held
    /// one (idempotent re-registration), else the lowest slot that is
    /// vacant or degraded. Returns `(server, degraded)`. A declared
    /// hardware class is recorded on the slot (informational: the paper's
    /// placement is solved before agents arrive, but the fleet layer
    /// reads it back for class-keyed replans).
    fn assign(&mut self, agent: &str, class: Option<&str>) -> Option<(usize, bool)> {
        let (idx, rejoin) = match self.owners.get(agent) {
            // A re-register of a live or degraded slot means the agent
            // died and restarted: the partial run is unobservable, so the
            // slot re-runs under the degraded fallback.
            Some(&idx) => (idx, true),
            None => match self.vacant.pop_first() {
                Some(idx) => (idx, false),
                None => {
                    let idx = self.degraded.pop_first()?;
                    // The slot changes hands: the previous owner loses
                    // its reclaim.
                    if let SlotState::Degraded { agent: Some(prev) } = &self.slots[idx].state {
                        self.owners.remove(prev);
                    }
                    (idx, true)
                }
            },
        };
        // The owned path may hand back a slot still sitting in the
        // degraded set (rejoin after lease expiry).
        self.degraded.remove(&idx);
        let slot = &mut self.slots[idx];
        if rejoin {
            slot.reregistrations += 1;
            slot.was_degraded = true;
        }
        slot.state = SlotState::Live {
            agent: agent.to_string(),
        };
        slot.declared_class = class.map(str::to_string);
        slot.last_seen = Instant::now();
        self.owners.insert(agent.to_string(), idx);
        Some((idx, rejoin))
    }

    fn renew(&mut self, server: usize) -> Result<(), NetError> {
        let slot = self
            .slots
            .get_mut(server)
            .ok_or_else(|| NetError::Protocol(format!("no slot {server}")))?;
        if matches!(slot.state, SlotState::Live { .. }) {
            slot.last_seen = Instant::now();
        }
        Ok(())
    }

    /// Records final metrics; returns true when every slot is now done.
    fn complete(&mut self, server: usize, metrics: ServerMetrics) -> Result<bool, NetError> {
        let slot = self
            .slots
            .get_mut(server)
            .ok_or_else(|| NetError::Protocol(format!("no slot {server}")))?;
        if !matches!(slot.state, SlotState::Done) {
            self.done_count += 1;
        }
        if let SlotState::Live { agent } | SlotState::Degraded { agent: Some(agent) } = &slot.state
        {
            // A completed agent that later re-registers starts fresh.
            let agent = agent.clone();
            self.owners.remove(&agent);
        }
        slot.metrics = Some(metrics);
        slot.state = SlotState::Done;
        self.vacant.remove(&server);
        self.degraded.remove(&server);
        Ok(self.done_count == self.slots.len())
    }

    /// Expires live leases older than `ttl` (full scan — the threads
    /// backend's reaper cadence; the reactor uses [`Registry::check_lease`]
    /// per slot instead).
    fn reap(&mut self, ttl: Duration) {
        let now = Instant::now();
        let expired: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                matches!(s.state, SlotState::Live { .. }) && now.duration_since(s.last_seen) > ttl
            })
            .map(|(i, _)| i)
            .collect();
        for idx in expired {
            self.degrade(idx);
        }
    }

    /// One lazy lease check for the reactor's timer wheel: degrade when
    /// overdue, otherwise report how long until the lease *could* expire.
    fn check_lease(&mut self, idx: usize, ttl: Duration, now: Instant) -> LeaseCheck {
        let Some(slot) = self.slots.get_mut(idx) else {
            return LeaseCheck::Settled;
        };
        if !matches!(slot.state, SlotState::Live { .. }) {
            slot.lease_timer_armed = false;
            return LeaseCheck::Settled;
        }
        let age = now.saturating_duration_since(slot.last_seen);
        if age > ttl {
            slot.lease_timer_armed = false;
            self.degrade(idx);
            LeaseCheck::Expired
        } else {
            LeaseCheck::RecheckIn(ttl - age)
        }
    }
}

/// Registry plus the completion signal: `Complete` handlers notify,
/// [`Clusterd::wait_done`] blocks — no polling on either backend.
#[derive(Debug)]
struct RegistryShared {
    inner: Mutex<Registry>,
    done_cv: Condvar,
}

impl RegistryShared {
    fn new(n: usize) -> RegistryShared {
        RegistryShared {
            inner: Mutex::new(Registry::new(n)),
            done_cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Registry> {
        self.inner.lock().expect("registry lock")
    }

    fn complete(&self, server: usize, metrics: ServerMetrics) -> Result<(), NetError> {
        let all_done = self.lock().complete(server, metrics)?;
        if all_done {
            self.done_cv.notify_all();
        }
        Ok(())
    }
}

/// Which transport serves the cluster daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetBackend {
    /// Readiness-polling event loop (default): one thread, any number of
    /// connections, timer-wheel leases, write backpressure.
    #[default]
    Reactor,
    /// Thread-per-connection `std::net` serving with a sleeping reaper
    /// thread. The pre-reactor baseline, kept for benchmarking.
    Threads,
}

impl std::fmt::Display for NetBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetBackend::Reactor => f.write_str("reactor"),
            NetBackend::Threads => f.write_str("threads"),
        }
    }
}

impl std::str::FromStr for NetBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<NetBackend, String> {
        match s {
            "reactor" => Ok(NetBackend::Reactor),
            "threads" => Ok(NetBackend::Threads),
            other => Err(format!(
                "unknown net backend {other:?} (expected reactor or threads)"
            )),
        }
    }
}

/// Cluster daemon configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Address to listen on (port 0 for ephemeral).
    pub listen: SocketAddr,
    /// Heartbeat lease TTL: a slot silent for longer flips to degraded.
    pub lease_ttl: Duration,
    /// The run pushed to every registering agent.
    pub run: RunSpec,
    /// Transport backend.
    pub backend: NetBackend,
    /// Per-connection outbound queue cap (reactor backend): a peer that
    /// stops draining replies is disconnected and its slot degraded.
    pub outbound_hiwater: usize,
}

impl ClusterConfig {
    /// A daemon on the default (reactor) backend.
    pub fn new(listen: SocketAddr, lease_ttl: Duration, run: RunSpec) -> ClusterConfig {
        ClusterConfig {
            listen,
            lease_ttl,
            run,
            backend: NetBackend::default(),
            outbound_hiwater: 1024 * 1024,
        }
    }
}

/// A running cluster daemon.
#[derive(Debug)]
pub struct Clusterd {
    backend: BackendImpl,
    registry: Arc<RegistryShared>,
    run: RunSpec,
}

#[derive(Debug)]
enum BackendImpl {
    Reactor {
        server: ReactorServer,
    },
    Threads {
        server: Server,
        reaper_stop: Arc<AtomicBool>,
        reaper: Option<std::thread::JoinHandle<()>>,
    },
}

/// Pre-serialized welcome frames: the run spec dominates the payload
/// (~100 KiB at 5k slots) and is identical for every agent, so it is
/// serialized once and the per-agent `server`/`degraded` fields are
/// spliced around it. The splice is byte-identical to the generic
/// encoder — `welcome_splice_is_byte_identical` pins that, and the wire
/// parity gates would catch any drift end-to-end.
#[derive(Debug)]
struct WelcomeCache {
    /// `,"run":<run json>}` — everything after the `degraded` field.
    run_tail: String,
}

impl WelcomeCache {
    fn new(run: &RunSpec) -> WelcomeCache {
        let mut run_tail = String::from(",\"run\":");
        run_tail.push_str(&run.to_json().to_compact_string());
        run_tail.push('}');
        WelcomeCache { run_tail }
    }

    fn body(&self, server: usize, degraded: bool) -> String {
        format!(
            "{{\"v\":{PROTOCOL_VERSION},\"type\":\"welcome\",\"server\":{server},\"degraded\":{degraded}{}",
            self.run_tail
        )
    }

    fn frame(&self, server: usize, degraded: bool) -> Result<Vec<u8>, NetError> {
        encode_frame_str(&self.body(server, degraded))
    }
}

/// The reactor-side request handler. Runs on the event-loop thread; the
/// registry mutex is shared with the public [`Clusterd`] accessors.
struct ReactorClusterHandler {
    registry: Arc<RegistryShared>,
    welcome: WelcomeCache,
    lease_ttl: Duration,
    /// Extra slack added to lease re-check timers so a timer never fires
    /// a hair before the deadline it is checking.
    lease_slack: Duration,
    /// connection → slot, so a slow-consumer disconnect can degrade the
    /// right slot. Maintained from register/telemetry traffic.
    conn_slot: HashMap<ConnId, usize>,
    /// Cached encoded `TelemetryAck` for the current cap factor: the
    /// coalesced broadcast path. One encode per cap change, shared bytes
    /// for every ack fanned out in a wakeup.
    ack_bits: u64,
    ack_frame: Vec<u8>,
}

impl ReactorClusterHandler {
    fn new(registry: Arc<RegistryShared>, run: &RunSpec, lease_ttl: Duration) -> Self {
        let mut handler = ReactorClusterHandler {
            registry,
            welcome: WelcomeCache::new(run),
            lease_ttl,
            lease_slack: Duration::from_millis(2),
            conn_slot: HashMap::new(),
            ack_bits: 0,
            ack_frame: Vec::new(),
        };
        handler.refresh_ack(1.0);
        handler
    }

    fn refresh_ack(&mut self, cap_factor: f64) {
        self.ack_bits = cap_factor.to_bits();
        self.ack_frame = Reply::msg(&Message::TelemetryAck { cap_factor }).into_frame();
    }

    fn arm_lease_timer(&self, ctx: &mut Ctx<'_>, reg: &mut Registry, slot: usize) {
        if let Some(s) = reg.slots.get_mut(slot) {
            if !s.lease_timer_armed {
                s.lease_timer_armed = true;
                ctx.schedule(self.lease_ttl + self.lease_slack, slot as u64);
            }
        }
    }
}

impl EventHandler for ReactorClusterHandler {
    fn handle(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, request: Message) -> Reply {
        match request {
            Message::Register { agent, class } => {
                let mut reg = self.registry.lock();
                let Some((server, degraded)) = reg.assign(&agent, class.as_deref()) else {
                    return Reply::error(&NetError::Protocol("no free slot to assign".into()));
                };
                self.arm_lease_timer(ctx, &mut reg, server);
                drop(reg);
                self.conn_slot.insert(conn, server);
                match self.welcome.frame(server, degraded) {
                    Ok(frame) => Reply::raw(frame),
                    Err(e) => Reply::error(&e),
                }
            }
            Message::Telemetry { server, .. } => {
                let mut reg = self.registry.lock();
                if let Err(e) = reg.renew(server) {
                    return Reply::error(&e);
                }
                let cap_factor = reg.cap_factor;
                drop(reg);
                self.conn_slot.insert(conn, server);
                if cap_factor.to_bits() != self.ack_bits {
                    self.refresh_ack(cap_factor);
                }
                Reply::raw(self.ack_frame.clone())
            }
            Message::Complete { server, metrics } => {
                match self.registry.complete(server, *metrics) {
                    Ok(()) => Reply::msg(&Message::CompleteAck),
                    Err(e) => Reply::error(&e),
                }
            }
            Message::Status => {
                let reg = self.registry.lock();
                Reply::msg(&Message::StatusReport {
                    expected: reg.slots.len(),
                    live: reg.count(|s| matches!(s, SlotState::Live { .. })),
                    degraded: reg.count(|s| matches!(s, SlotState::Degraded { .. })),
                    done: reg.count(|s| matches!(s, SlotState::Done)),
                })
            }
            Message::Shutdown => Reply::msg(&Message::ShutdownAck).then_shutdown(),
            other => Reply::error(&NetError::Protocol(format!(
                "cluster daemon cannot handle {:?} requests",
                other.type_name()
            ))),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, key: u64) {
        let slot = key as usize;
        let mut reg = self.registry.lock();
        match reg.check_lease(slot, self.lease_ttl, ctx.now()) {
            LeaseCheck::RecheckIn(remaining) => {
                ctx.schedule(remaining + self.lease_slack, key);
            }
            LeaseCheck::Expired | LeaseCheck::Settled => {}
        }
    }

    fn on_disconnect(&mut self, _ctx: &mut Ctx<'_>, conn: ConnId, reason: DisconnectReason) {
        if let Some(slot) = self.conn_slot.remove(&conn) {
            if reason == DisconnectReason::SlowConsumer {
                // Backpressure verdict: the agent cannot keep up with its
                // own acks. Treat it like a dead agent — degrade now
                // rather than waiting out the lease.
                self.registry.lock().degrade(slot);
            }
        }
    }
}

/// The blocking-backend request handler (thread-per-connection).
struct ThreadsClusterHandler {
    registry: Arc<RegistryShared>,
    run: RunSpec,
}

impl Handler for ThreadsClusterHandler {
    fn handle(&self, request: Message) -> Result<Message, NetError> {
        match request {
            Message::Register { agent, class } => {
                let (server, degraded) = self
                    .registry
                    .lock()
                    .assign(&agent, class.as_deref())
                    .ok_or_else(|| NetError::Protocol("no free slot to assign".into()))?;
                Ok(Message::Welcome {
                    server,
                    degraded,
                    run: Box::new(self.run.clone()),
                })
            }
            Message::Telemetry { server, .. } => {
                let mut reg = self.registry.lock();
                reg.renew(server)?;
                Ok(Message::TelemetryAck {
                    cap_factor: reg.cap_factor,
                })
            }
            Message::Complete { server, metrics } => {
                self.registry.complete(server, *metrics)?;
                Ok(Message::CompleteAck)
            }
            Message::Status => {
                let reg = self.registry.lock();
                Ok(Message::StatusReport {
                    expected: reg.slots.len(),
                    live: reg.count(|s| matches!(s, SlotState::Live { .. })),
                    degraded: reg.count(|s| matches!(s, SlotState::Degraded { .. })),
                    done: reg.count(|s| matches!(s, SlotState::Done)),
                })
            }
            Message::Shutdown => Ok(Message::ShutdownAck),
            other => Err(NetError::Protocol(format!(
                "cluster daemon cannot handle {:?} requests",
                other.type_name()
            ))),
        }
    }
}

impl Clusterd {
    /// Binds and starts serving on the configured backend.
    pub fn spawn(config: ClusterConfig) -> Result<Clusterd, NetError> {
        let registry = Arc::new(RegistryShared::new(config.run.n_servers()));
        let backend = match config.backend {
            NetBackend::Reactor => {
                let mut reactor_config = ReactorConfig::new(config.listen);
                reactor_config.outbound_hiwater = config.outbound_hiwater;
                // Wheel resolution: fine enough that lease expiry lands
                // within a small fraction of the TTL, coarse enough that
                // an idle daemon barely wakes.
                reactor_config.wheel_tick = (config.lease_ttl / 8)
                    .clamp(Duration::from_millis(1), Duration::from_millis(25));
                let handler = ReactorClusterHandler::new(
                    Arc::clone(&registry),
                    &config.run,
                    config.lease_ttl,
                );
                BackendImpl::Reactor {
                    server: ReactorServer::spawn(reactor_config, handler)?,
                }
            }
            NetBackend::Threads => {
                let handler: Arc<dyn Handler> = Arc::new(ThreadsClusterHandler {
                    registry: Arc::clone(&registry),
                    run: config.run.clone(),
                });
                let server = Server::spawn(config.listen, handler)?;
                let reaper_stop = Arc::new(AtomicBool::new(false));
                let reaper = {
                    let registry = Arc::clone(&registry);
                    let stop = Arc::clone(&reaper_stop);
                    let ttl = config.lease_ttl;
                    // Check a few times per TTL so expiry latency stays a
                    // small fraction of the lease itself.
                    let tick = ttl.checked_div(4).unwrap_or(Duration::from_millis(25));
                    std::thread::spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            std::thread::sleep(tick);
                            registry.lock().reap(ttl);
                        }
                    })
                };
                BackendImpl::Threads {
                    server,
                    reaper_stop,
                    reaper: Some(reaper),
                }
            }
        };
        Ok(Clusterd {
            backend,
            registry,
            run: config.run,
        })
    }

    /// The daemon's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        match &self.backend {
            BackendImpl::Reactor { server } => server.local_addr(),
            BackendImpl::Threads { server, .. } => server.local_addr(),
        }
    }

    /// Which backend is serving.
    pub fn backend(&self) -> NetBackend {
        match &self.backend {
            BackendImpl::Reactor { .. } => NetBackend::Reactor,
            BackendImpl::Threads { .. } => NetBackend::Threads,
        }
    }

    /// Connections currently registered with the reactor loop (`None` on
    /// the threads backend, which does not track them). The churn soak
    /// test uses this to assert closed connections are actually released.
    pub fn open_connections(&self) -> Option<usize> {
        match &self.backend {
            BackendImpl::Reactor { server } => Some(server.open_connections()),
            BackendImpl::Threads { .. } => None,
        }
    }

    /// Sets the live budget directive broadcast on telemetry acks.
    pub fn set_cap_factor(&self, cap_factor: f64) {
        self.registry.lock().cap_factor = cap_factor;
    }

    /// Slot states, for harnesses and status displays.
    pub fn slot_states(&self) -> Vec<SlotState> {
        let reg = self.registry.lock();
        reg.slots.iter().map(|s| s.state.clone()).collect()
    }

    /// Hardware class each slot's current owner declared at
    /// registration (`None` for classless or pre-fleet agents).
    pub fn declared_classes(&self) -> Vec<Option<String>> {
        let reg = self.registry.lock();
        reg.slots.iter().map(|s| s.declared_class.clone()).collect()
    }

    /// Slots that passed through the degraded state at least once.
    pub fn degraded_history(&self) -> Vec<usize> {
        let reg = self.registry.lock();
        reg.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.was_degraded)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total failure re-registrations across all slots.
    pub fn reregistrations(&self) -> usize {
        let reg = self.registry.lock();
        reg.slots.iter().map(|s| s.reregistrations).sum()
    }

    /// Blocks until every slot is done or the deadline passes. Wakes on
    /// the completion condvar the final `Complete` notifies — the wait
    /// itself costs nothing while agents run.
    pub fn wait_done(&self, deadline: Duration) -> bool {
        let start = Instant::now();
        let mut reg = self.registry.lock();
        loop {
            if reg.done_count == reg.slots.len() {
                return true;
            }
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return false;
            }
            let (guard, _timeout) = self
                .registry
                .done_cv
                .wait_timeout(reg, deadline - elapsed)
                .expect("registry lock");
            reg = guard;
        }
    }

    /// Assembles the experiment result from delivered metrics, in the
    /// same shape the in-process engine returns. `None` until every slot
    /// is done.
    pub fn result(&self) -> Option<ExperimentResult> {
        let reg = self.registry.lock();
        let metrics: Option<Vec<ServerMetrics>> =
            reg.slots.iter().map(|s| s.metrics.clone()).collect();
        let metrics = metrics?;
        let pairs: Vec<PairResult> = metrics
            .iter()
            .enumerate()
            .map(|(i, m)| PairResult {
                lc: self.run.lc[i].clone(),
                be: self.run.placement[i].name().to_string(),
                metrics: m.clone(),
            })
            .collect();
        let summary = ClusterSummary::aggregate(&metrics)?;
        Some(ExperimentResult {
            policy: self.run.policy.name().to_string(),
            pairs,
            summary,
        })
    }

    /// The policy this daemon is evaluating.
    pub fn policy(&self) -> Policy {
        self.run.policy
    }

    /// Stops the transport (and the reaper thread on the threads backend).
    pub fn shutdown(&mut self) {
        match &mut self.backend {
            BackendImpl::Reactor { server } => server.shutdown(),
            BackendImpl::Threads {
                server,
                reaper_stop,
                reaper,
            } => {
                reaper_stop.store(true, Ordering::SeqCst);
                if let Some(t) = reaper.take() {
                    let _ = t.join();
                }
                server.shutdown();
            }
        }
    }
}

impl Drop for Clusterd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_cluster::Solver;
    use pocolo_workloads::BeApp;

    fn registry4() -> Registry {
        Registry::new(4)
    }

    #[test]
    fn registration_fills_slots_in_order() {
        let mut reg = registry4();
        assert_eq!(reg.assign("a", None), Some((0, false)));
        assert_eq!(reg.assign("b", None), Some((1, false)));
        assert_eq!(reg.assign("c", None), Some((2, false)));
        assert_eq!(reg.assign("d", None), Some((3, false)));
        assert_eq!(reg.assign("e", None), None, "cluster is full");
    }

    #[test]
    fn reregistration_is_idempotent_and_degrades() {
        let mut reg = registry4();
        assert_eq!(reg.assign("a", None), Some((0, false)));
        // The same identity re-registering means the agent restarted: it
        // keeps its slot but must run degraded.
        assert_eq!(reg.assign("a", None), Some((0, true)));
        assert_eq!(reg.slots[0].reregistrations, 1);
        assert!(reg.slots[0].was_degraded);
        // Other agents are unaffected.
        assert_eq!(reg.assign("b", None), Some((1, false)));
    }

    #[test]
    fn lease_expiry_flips_live_to_degraded_and_hands_the_slot_on() {
        let mut reg = registry4();
        reg.assign("a", None);
        reg.slots[0].last_seen = Instant::now() - Duration::from_secs(60);
        reg.reap(Duration::from_millis(50));
        assert!(matches!(
            reg.slots[0].state,
            SlotState::Degraded { agent: Some(ref a) } if a == "a"
        ));
        // Vacant slots go first.
        assert_eq!(reg.assign("b", None), Some((1, false)));
        reg.assign("c", None);
        reg.assign("d", None);
        // Cluster otherwise full: the degraded slot is handed out.
        assert_eq!(reg.assign("e", None), Some((0, true)));
        // ... and the evicted owner has lost its claim: a fresh "a" has
        // nowhere to go in a full cluster.
        assert_eq!(reg.assign("a", None), None);
    }

    #[test]
    fn renew_keeps_a_lease_alive() {
        let mut reg = registry4();
        reg.assign("a", None);
        reg.slots[0].last_seen = Instant::now() - Duration::from_millis(40);
        reg.renew(0).unwrap();
        reg.reap(Duration::from_millis(50));
        assert!(matches!(reg.slots[0].state, SlotState::Live { .. }));
        assert!(reg.renew(9).is_err(), "unknown slot is a typed error");
    }

    #[test]
    fn done_slots_are_never_reaped_or_reassigned() {
        let mut reg = registry4();
        reg.assign("a", None);
        reg.complete(0, ServerMetrics::new(pocolo_core::Watts(100.0)))
            .unwrap();
        reg.slots[0].last_seen = Instant::now() - Duration::from_secs(60);
        reg.reap(Duration::from_millis(1));
        assert!(matches!(reg.slots[0].state, SlotState::Done));
        reg.assign("b", None);
        reg.assign("c", None);
        reg.assign("d", None);
        assert_eq!(reg.assign("e", None), None, "done slot is not handed out");
    }

    #[test]
    fn completed_agent_reregisters_as_a_fresh_agent() {
        let mut reg = registry4();
        reg.assign("a", None);
        reg.complete(0, ServerMetrics::new(pocolo_core::Watts(100.0)))
            .unwrap();
        // "a" finished slot 0; a new registration under the same identity
        // is a new arrival, not a reclaim of the done slot.
        assert_eq!(reg.assign("a", None), Some((1, false)));
    }

    #[test]
    fn check_lease_is_lazy_and_only_fires_when_overdue() {
        let mut reg = registry4();
        reg.assign("a", None);
        let now = Instant::now();
        let ttl = Duration::from_millis(100);
        match reg.check_lease(0, ttl, now) {
            LeaseCheck::RecheckIn(d) => assert!(d <= ttl),
            _ => panic!("fresh lease must reschedule"),
        }
        reg.slots[0].last_seen = now - Duration::from_millis(200);
        assert!(matches!(reg.check_lease(0, ttl, now), LeaseCheck::Expired));
        assert!(matches!(
            reg.slots[0].state,
            SlotState::Degraded { agent: Some(ref a) } if a == "a"
        ));
        // The chain ends once the slot is no longer live.
        assert!(matches!(reg.check_lease(0, ttl, now), LeaseCheck::Settled));
    }

    #[test]
    fn fast_path_sets_stay_consistent_under_churn() {
        let mut reg = Registry::new(8);
        for i in 0..8 {
            reg.assign(&format!("agent-{i}"), None);
        }
        // Expire half the fleet, complete a quarter, rejoin the rest.
        for i in [0usize, 2, 4, 6] {
            reg.slots[i].last_seen = Instant::now() - Duration::from_secs(60);
        }
        reg.reap(Duration::from_millis(1));
        assert_eq!(reg.degraded.len(), 4);
        reg.complete(1, ServerMetrics::new(pocolo_core::Watts(100.0)))
            .unwrap();
        reg.complete(3, ServerMetrics::new(pocolo_core::Watts(100.0)))
            .unwrap();
        assert_eq!(reg.done_count, 2);
        // Degraded owners reclaim their slots.
        assert_eq!(reg.assign("agent-0", None), Some((0, true)));
        assert_eq!(reg.assign("agent-4", None), Some((4, true)));
        assert_eq!(reg.degraded.len(), 2);
        // Everything still internally consistent: every Live slot's owner
        // maps back to it.
        for (i, slot) in reg.slots.iter().enumerate() {
            if let SlotState::Live { agent } = &slot.state {
                assert_eq!(reg.owners.get(agent), Some(&i), "owner map broken at {i}");
            }
        }
    }

    fn tiny_run() -> RunSpec {
        RunSpec {
            policy: Policy::Pocolo {
                solver: Solver::Hungarian,
            },
            lc: vec!["img-dnn".into(), "sphinx".into()],
            placement: vec![BeApp::Lstm, BeApp::Graph],
            ranks: vec![1, 0],
            dwell_s: 3.0,
            duration_s: 27.0,
            manager_period_s: 1.0,
            capper_period_s: 0.1,
            meter_noise: 0.01,
            seed: 0xC0C0,
            faults: None,
            resilience: true,
            push_budget: false,
        }
    }

    #[test]
    fn welcome_splice_is_byte_identical_to_the_generic_encoder() {
        let run = tiny_run();
        let cache = WelcomeCache::new(&run);
        for (server, degraded) in [(0, false), (1, true), (999_983, false), (5000, true)] {
            let generic = Message::Welcome {
                server,
                degraded,
                run: Box::new(run.clone()),
            }
            .to_value()
            .to_compact_string();
            assert_eq!(
                cache.body(server, degraded),
                generic,
                "splice diverged at server={server} degraded={degraded}"
            );
        }
    }

    #[test]
    fn net_backend_parses_and_displays() {
        assert_eq!("reactor".parse::<NetBackend>(), Ok(NetBackend::Reactor));
        assert_eq!("threads".parse::<NetBackend>(), Ok(NetBackend::Threads));
        assert!("epoll".parse::<NetBackend>().is_err());
        assert_eq!(NetBackend::Reactor.to_string(), "reactor");
        assert_eq!(NetBackend::default(), NetBackend::Reactor);
    }
}

//! Blocking thread-per-connection frame server.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::error::NetError;
use crate::wire::{read_frame, write_frame, Message};

/// Per-connection request handler: a message in, a reply out. Returning
/// an `Err` sends a protocol-level `Error` reply and keeps the
/// connection open — the peer decides whether to continue.
pub trait Handler: Send + Sync + 'static {
    /// Handles one request.
    fn handle(&self, request: Message) -> Result<Message, NetError>;
}

impl<F> Handler for F
where
    F: Fn(Message) -> Result<Message, NetError> + Send + Sync + 'static,
{
    fn handle(&self, request: Message) -> Result<Message, NetError> {
        self(request)
    }
}

/// A running frame server. Dropping the handle does *not* stop it; call
/// [`Server::shutdown`].
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves each
    /// connection on its own thread until [`Server::shutdown`].
    pub fn spawn(addr: SocketAddr, handler: Arc<dyn Handler>) -> Result<Server, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let handler = Arc::clone(&handler);
                let stop_conn = Arc::clone(&stop_accept);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, handler.as_ref(), &stop_conn);
                });
            }
        });
        Ok(Server {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the accept loop, and joins it. Established
    /// connections drain on their own threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `incoming()`; a throwaway connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one connection: a strict read-request/write-reply loop that
/// ends on EOF, a dead socket, or server shutdown. Malformed frames get
/// an `Error` reply rather than killing the daemon.
fn serve_connection(
    mut stream: TcpStream,
    handler: &dyn Handler,
    stop: &AtomicBool,
) -> Result<(), NetError> {
    stream.set_nodelay(true)?;
    // A read deadline bounds how long a half-dead peer can pin this
    // thread; timeouts just re-check the shutdown flag.
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let request = match read_frame(&mut stream) {
            Ok(v) => v,
            Err(NetError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(NetError::Io(_)) => return Ok(()), // peer went away
            Err(e) => {
                // Bad bytes: answer with a typed error, then keep going.
                let reply = Message::Error {
                    message: e.to_string(),
                };
                write_frame(&mut stream, &reply.to_value())?;
                continue;
            }
        };
        let reply = match Message::from_value(&request) {
            Ok(msg) => handler.handle(msg).unwrap_or_else(|e| Message::Error {
                message: e.to_string(),
            }),
            Err(e) => Message::Error {
                message: e.to_string(),
            },
        };
        let stop_after = matches!(reply, Message::ShutdownAck);
        write_frame(&mut stream, &reply.to_value())?;
        if stop_after {
            stop.store(true, Ordering::SeqCst);
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RpcClient;
    use pocolo_faults::RetryPolicy;

    fn echo_server() -> Server {
        let handler: Arc<dyn Handler> = Arc::new(|req: Message| match req {
            Message::Status => Ok(Message::StatusReport {
                expected: 4,
                live: 4,
                degraded: 0,
                done: 0,
            }),
            Message::Shutdown => Ok(Message::ShutdownAck),
            other => Err(NetError::Protocol(format!(
                "unexpected {}",
                other.type_name()
            ))),
        });
        Server::spawn("127.0.0.1:0".parse().unwrap(), handler).unwrap()
    }

    #[test]
    fn request_reply_over_loopback() {
        let mut server = echo_server();
        let mut retry = RetryPolicy::reconnect(1);
        let mut client =
            RpcClient::connect(server.local_addr(), &mut retry, Duration::from_secs(2)).unwrap();
        let reply = client.call(&Message::Status).unwrap();
        assert!(matches!(reply, Message::StatusReport { expected: 4, .. }));
        // A handler error comes back typed, and the connection survives.
        let err = client.call(&Message::CompleteAck).unwrap_err();
        assert!(matches!(err, NetError::Remote(_)), "got {err}");
        let reply = client.call(&Message::Status).unwrap();
        assert!(matches!(reply, Message::StatusReport { .. }));
        server.shutdown();
    }

    #[test]
    fn garbage_bytes_get_an_error_reply_not_a_crash() {
        use std::io::{Read, Write};
        let mut server = echo_server();
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        // A syntactically valid frame holding invalid JSON.
        raw.write_all(&3u32.to_be_bytes()).unwrap();
        raw.write_all(b"]]]").unwrap();
        let mut len = [0u8; 4];
        raw.read_exact(&mut len).unwrap();
        let mut body = vec![0u8; u32::from_be_bytes(len) as usize];
        raw.read_exact(&mut body).unwrap();
        let text = std::str::from_utf8(&body).unwrap();
        assert!(text.contains("error"), "got {text}");
        server.shutdown();
    }

    #[test]
    fn shutdown_rpc_stops_the_server() {
        let server_ref = echo_server();
        let addr = server_ref.local_addr();
        let mut retry = RetryPolicy::reconnect(2);
        let mut client = RpcClient::connect(addr, &mut retry, Duration::from_secs(2)).unwrap();
        let reply = client.call(&Message::Shutdown).unwrap();
        assert_eq!(reply, Message::ShutdownAck);
        drop(server_ref); // joins the (now-stopped) accept loop
    }
}

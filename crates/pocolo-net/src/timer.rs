//! Hashed timer wheel for event-loop deadlines.
//!
//! Replaces the sleeping reaper thread: lease expiries (and any other
//! future deadline) are entries in a fixed-slot wheel the reactor
//! advances from its own poll loop. Scheduling and firing are O(1)
//! amortized; a tick only touches the entries hashed into its slot.
//!
//! Resolution is the wheel tick: a timer fires on the first advance at
//! or after its deadline rounded up to a tick boundary. Entries that
//! share a tick fire in insertion order, which keeps anything built on
//! the wheel deterministic for a deterministic schedule order.

use std::time::{Duration, Instant};

struct Entry<T> {
    deadline_tick: u64,
    item: T,
}

/// A single-level hashed timer wheel.
pub struct TimerWheel<T> {
    tick: Duration,
    start: Instant,
    /// Highest tick index already processed by [`TimerWheel::advance`].
    processed: u64,
    slots: Vec<Vec<Entry<T>>>,
    pending: usize,
}

impl<T> std::fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("tick", &self.tick)
            .field("slots", &self.slots.len())
            .field("pending", &self.pending)
            .finish()
    }
}

impl<T> TimerWheel<T> {
    /// A wheel with the given resolution and slot count, anchored at `now`.
    pub fn new(now: Instant, tick: Duration, n_slots: usize) -> TimerWheel<T> {
        TimerWheel {
            tick: tick.max(Duration::from_micros(100)),
            start: now,
            processed: 0,
            slots: (0..n_slots.max(1)).map(|_| Vec::new()).collect(),
            pending: 0,
        }
    }

    /// Timers scheduled but not yet fired.
    pub fn pending(&self) -> usize {
        self.pending
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.start);
        // Integer division in nanos; u64 nanos covers ~584 years.
        (elapsed.as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Schedules `item` to fire `after` from `now` (rounded up to the
    /// next tick, and never before the next `advance`).
    pub fn schedule(&mut self, now: Instant, after: Duration, item: T) {
        let deadline = now + after;
        let nanos = deadline.saturating_duration_since(self.start).as_nanos();
        let tick_nanos = self.tick.as_nanos().max(1);
        let deadline_tick = (nanos.div_ceil(tick_nanos) as u64).max(self.processed + 1);
        let slot = (deadline_tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry {
            deadline_tick,
            item,
        });
        self.pending += 1;
    }

    /// Fires every timer due at or before `now`, appending items to
    /// `fired` in (deadline, insertion) order.
    pub fn advance(&mut self, now: Instant, fired: &mut Vec<T>) {
        let target = self.tick_of(now);
        if target <= self.processed || self.pending == 0 {
            self.processed = self.processed.max(target);
            return;
        }
        let n_slots = self.slots.len() as u64;
        // When the wheel lagged more than one full revolution, every slot
        // would be visited n times; one pass per slot suffices instead.
        let span = target - self.processed;
        if span >= n_slots {
            for slot in &mut self.slots {
                let mut keep = Vec::new();
                for e in slot.drain(..) {
                    if e.deadline_tick <= target {
                        fired.push(e.item);
                        self.pending -= 1;
                    } else {
                        keep.push(e);
                    }
                }
                *slot = keep;
            }
        } else {
            for t in (self.processed + 1)..=target {
                let slot = &mut self.slots[(t % n_slots) as usize];
                if slot.is_empty() {
                    continue;
                }
                let mut keep = Vec::new();
                for e in slot.drain(..) {
                    if e.deadline_tick <= t {
                        fired.push(e.item);
                        self.pending -= 1;
                    } else {
                        keep.push(e);
                    }
                }
                *slot = keep;
            }
        }
        self.processed = target;
    }

    /// How long a poll may sleep before the next potential firing, or
    /// `None` when nothing is scheduled. Conservative: the wheel does not
    /// track its nearest deadline exactly, so this is the time to the
    /// next tick boundary — at most one tick of over-wakeup.
    pub fn next_wakeup(&self, now: Instant) -> Option<Duration> {
        if self.pending == 0 {
            return None;
        }
        let boundary = self.start + self.tick * (self.processed as u32 + 1);
        Some(
            boundary
                .saturating_duration_since(now)
                .max(Duration::from_micros(50)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_fire_in_deadline_then_insertion_order() {
        let t0 = Instant::now();
        let mut wheel: TimerWheel<u32> = TimerWheel::new(t0, Duration::from_millis(10), 8);
        wheel.schedule(t0, Duration::from_millis(35), 3);
        wheel.schedule(t0, Duration::from_millis(5), 1);
        wheel.schedule(t0, Duration::from_millis(5), 2);
        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(12), &mut fired);
        assert_eq!(fired, vec![1, 2], "due timers fire in insertion order");
        wheel.advance(t0 + Duration::from_millis(20), &mut fired);
        assert_eq!(fired, vec![1, 2], "not-yet-due timer stays");
        wheel.advance(t0 + Duration::from_millis(50), &mut fired);
        assert_eq!(fired, vec![1, 2, 3]);
        assert_eq!(wheel.pending(), 0);
    }

    #[test]
    fn wrap_around_does_not_fire_early() {
        let t0 = Instant::now();
        // 4 slots × 10 ms: a 75 ms timer wraps the wheel almost twice.
        let mut wheel: TimerWheel<&str> = TimerWheel::new(t0, Duration::from_millis(10), 4);
        wheel.schedule(t0, Duration::from_millis(75), "late");
        wheel.schedule(t0, Duration::from_millis(15), "early");
        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(40), &mut fired);
        assert_eq!(
            fired,
            vec!["early"],
            "wrapped timer must not fire a round early"
        );
        wheel.advance(t0 + Duration::from_millis(80), &mut fired);
        assert_eq!(fired, vec!["early", "late"]);
    }

    #[test]
    fn lagging_advance_fires_everything_once() {
        let t0 = Instant::now();
        let mut wheel: TimerWheel<u32> = TimerWheel::new(t0, Duration::from_millis(1), 4);
        for i in 0..16 {
            wheel.schedule(t0, Duration::from_millis(i as u64), i);
        }
        let mut fired = Vec::new();
        // One advance far past every deadline — multiple full revolutions.
        wheel.advance(t0 + Duration::from_secs(1), &mut fired);
        let mut sorted = fired.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        assert_eq!(wheel.pending(), 0);
    }

    #[test]
    fn next_wakeup_tracks_pending_state() {
        let t0 = Instant::now();
        let mut wheel: TimerWheel<()> = TimerWheel::new(t0, Duration::from_millis(10), 8);
        assert!(wheel.next_wakeup(t0).is_none(), "empty wheel never wakes");
        wheel.schedule(t0, Duration::from_millis(30), ());
        let nap = wheel.next_wakeup(t0).unwrap();
        assert!(nap <= Duration::from_millis(10), "wakes within one tick");
        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(40), &mut fired);
        assert_eq!(fired.len(), 1);
        assert!(wheel.next_wakeup(t0).is_none());
    }

    #[test]
    fn reschedule_from_fired_timer_keeps_cadence() {
        let t0 = Instant::now();
        let mut wheel: TimerWheel<u8> = TimerWheel::new(t0, Duration::from_millis(10), 16);
        wheel.schedule(t0, Duration::from_millis(10), 0);
        let mut total = 0;
        let mut fired = Vec::new();
        for step in 1..=5 {
            let now = t0 + Duration::from_millis(10 * step);
            wheel.advance(now, &mut fired);
            total += fired.len();
            for _ in fired.drain(..) {
                wheel.schedule(now, Duration::from_millis(10), 0);
            }
        }
        assert!(total >= 4, "periodic reschedule fired {total} of ~5 ticks");
    }
}

//! The POM agent daemon: one process (or thread) per server slot.
//!
//! An agent registers with the cluster daemon, receives its slot and the
//! full [`RunSpec`](crate::wire::RunSpec), rebuilds the simulation
//! backend locally, and drives
//! it through [`run_server_projection`] — the exact per-server event
//! queue the in-process engine fans out. After every manager epoch it
//! ships telemetry (which renews its lease) and applies any budget
//! directive from the ack. On completion it delivers its final metrics.
//!
//! Every wire exchange tolerates one transparent reconnect under the
//! bounded jittered [`RetryPolicy`]; a dead cluster daemon surfaces as a
//! typed [`NetError`], never a panic.

use std::net::SocketAddr;
use std::sync::OnceLock;
use std::time::Duration;

use pocolo_faults::RetryPolicy;
use pocolo_sim::experiment::FittedCluster;
use pocolo_sim::{compile_fault_plan, run_server_projection, ServerFaultAction, ServerFaultEvent};
use pocolo_workloads::profiler::ProfilerConfig;

use crate::client::RpcClient;
use crate::error::NetError;
use crate::wire::Message;

/// The fitted models every agent (and the loopback harness) shares.
///
/// [`FittedCluster::fit`] is deterministic in the profiler defaults, so
/// the wire protocol never ships models: both sides of the connection fit
/// their own copy and agree bit-for-bit. Cached per process because the
/// fit is the most expensive step of agent start-up.
pub fn default_fit() -> &'static FittedCluster {
    static FIT: OnceLock<FittedCluster> = OnceLock::new();
    FIT.get_or_init(|| FittedCluster::fit(&ProfilerConfig::default()))
}

/// Configuration of one agent daemon.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Cluster daemon address.
    pub connect: SocketAddr,
    /// Stable agent identity; re-registering under the same identity
    /// after a restart reclaims the same slot (degraded).
    pub agent: String,
    /// Socket connect/read/write deadline.
    pub io_timeout: Duration,
    /// Seed for the jittered reconnect schedule (derived from the agent
    /// identity by [`AgentConfig::new`] so a restarting fleet staggers).
    pub retry_seed: u64,
    /// Test/demo kill switch: abandon the run (without completing or
    /// deregistering) after this many control epochs, as if the process
    /// died mid-run.
    pub die_after_epochs: Option<u64>,
    /// Hardware class to declare at registration (a
    /// `pocolo_core::fleet::ServerClass` catalog name). `None` keeps the
    /// pre-fleet frame layout on the wire.
    pub class: Option<String>,
}

impl AgentConfig {
    /// An agent with default deadlines and an identity-derived retry seed.
    pub fn new(connect: SocketAddr, agent: impl Into<String>) -> Self {
        let agent = agent.into();
        let retry_seed = agent.bytes().fold(0xcbf2_9ce4_8422_2325_u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        AgentConfig {
            connect,
            agent,
            io_timeout: Duration::from_secs(5),
            retry_seed,
            die_after_epochs: None,
            class: None,
        }
    }

    /// Declares a hardware class at registration.
    #[must_use]
    pub fn with_class(mut self, class: impl Into<String>) -> Self {
        self.class = Some(class.into());
        self
    }
}

/// What one agent run accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentReport {
    /// The slot the daemon assigned.
    pub server: usize,
    /// Whether the slot ran under the degraded fallback controller.
    pub degraded: bool,
    /// Control epochs driven (telemetry frames sent).
    pub epochs: u64,
    /// False when the kill switch abandoned the run mid-flight.
    pub completed: bool,
}

/// One request/response exchange that survives a single broken
/// connection: on a transport error the agent reconnects under a fresh
/// bounded retry schedule and replays the request once. Application-level
/// (`Remote`) errors are not retried — the daemon meant them.
fn exchange(
    client: &mut RpcClient,
    config: &AgentConfig,
    request: &Message,
) -> Result<Message, NetError> {
    match client.call(request) {
        Ok(reply) => Ok(reply),
        Err(e @ NetError::Remote(_)) => Err(e),
        Err(_) => {
            let mut retry = RetryPolicy::reconnect(config.retry_seed ^ 0x9e37_79b9);
            *client = RpcClient::connect(config.connect, &mut retry, config.io_timeout)?;
            client.call(request)
        }
    }
}

/// Runs one agent to completion (or until its kill switch fires).
///
/// # Errors
///
/// Returns a [`NetError`] when the cluster daemon is unreachable past the
/// retry budget, replies out of protocol, or reports an application
/// error (e.g. no free slot).
pub fn run_agent(config: &AgentConfig) -> Result<AgentReport, NetError> {
    let mut retry = RetryPolicy::reconnect(config.retry_seed);
    let mut client = RpcClient::connect(config.connect, &mut retry, config.io_timeout)?;
    let register = Message::Register {
        agent: config.agent.clone(),
        class: config.class.clone(),
    };
    let (server, degraded, run) = match exchange(&mut client, config, &register)? {
        Message::Welcome {
            server,
            degraded,
            run,
        } => (server, degraded, *run),
        other => {
            return Err(NetError::Protocol(format!(
                "expected welcome, got {}",
                other.type_name()
            )))
        }
    };
    if server >= run.n_servers() {
        return Err(NetError::Protocol(format!(
            "daemon assigned slot {server} of a {}-server run",
            run.n_servers()
        )));
    }

    let fitted = default_fit();
    let mut sim = run.slot_spec(server, degraded).build(fitted);
    // The fault timeline is compiled locally from the spec string: it is
    // deterministic in (scenario, seed, duration, placement), so this
    // agent's events match the in-process engine's event-for-event.
    let events: Vec<ServerFaultEvent> = match &run.faults {
        Some(spec) => {
            let (timeline, _) = compile_fault_plan(
                spec,
                run.seed,
                run.duration_s,
                fitted,
                &run.placement,
                run.resilience,
            );
            timeline.server_events(server).to_vec()
        }
        None => Vec::new(),
    };

    let mut epochs: u64 = 0;
    let mut killed = false;
    let mut last_cap_factor = 1.0_f64;
    let mut wire_failure: Option<NetError> = None;
    run_server_projection(
        &mut sim,
        &events,
        run.manager_period_s,
        run.capper_period_s,
        run.duration_s,
        |now_s, sim| {
            if config.die_after_epochs.is_some_and(|limit| epochs >= limit) {
                killed = true;
                return false;
            }
            let telemetry = Message::Telemetry {
                server,
                epoch: epochs,
                t_s: now_s,
                power_w: sim.true_power().0,
                slack: sim.lc_slack(),
                be_throughput: sim.be_throughput(),
            };
            epochs += 1;
            match exchange(&mut client, config, &telemetry) {
                Ok(Message::TelemetryAck { cap_factor }) => {
                    // Budget push is opt-in: parity runs carry the cap
                    // schedule inside the fault timeline instead, at
                    // exact event times.
                    if run.push_budget && cap_factor != last_cap_factor {
                        sim.apply_fault(&ServerFaultAction::SetCapFactor(cap_factor), now_s);
                        last_cap_factor = cap_factor;
                    }
                    true
                }
                Ok(other) => {
                    wire_failure = Some(NetError::Protocol(format!(
                        "expected telemetry ack, got {}",
                        other.type_name()
                    )));
                    false
                }
                Err(e) => {
                    wire_failure = Some(e);
                    false
                }
            }
        },
    );
    if let Some(e) = wire_failure {
        return Err(e);
    }
    if killed {
        return Ok(AgentReport {
            server,
            degraded,
            epochs,
            completed: false,
        });
    }

    let complete = Message::Complete {
        server,
        metrics: Box::new(sim.metrics().clone()),
    };
    match exchange(&mut client, config, &complete)? {
        Message::CompleteAck => Ok(AgentReport {
            server,
            degraded,
            epochs,
            completed: true,
        }),
        other => Err(NetError::Protocol(format!(
            "expected completion ack, got {}",
            other.type_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_seeds_differ_per_identity() {
        let addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let a = AgentConfig::new(addr, "agent-0");
        let b = AgentConfig::new(addr, "agent-1");
        assert_ne!(a.retry_seed, b.retry_seed);
        assert_eq!(a.retry_seed, AgentConfig::new(addr, "agent-0").retry_seed);
    }

    #[test]
    fn unreachable_daemon_is_a_typed_error() {
        let mut config = AgentConfig::new("127.0.0.1:1".parse().unwrap(), "agent-x");
        config.io_timeout = Duration::from_millis(20);
        // Shrink the retry budget so the test stays fast.
        let err = {
            let mut retry = RetryPolicy::new(0.001, 1.0, 0.001, 2, 0.0, config.retry_seed);
            RpcClient::connect(config.connect, &mut retry, config.io_timeout).unwrap_err()
        };
        assert!(matches!(err, NetError::Exhausted { .. }), "got {err}");
    }
}

//! # pocolo-net — the distributed runtime
//!
//! Runs the control plane across real process boundaries: a per-server
//! POM **agent** ([`run_agent`]) and the cluster-level POColo **daemon**
//! ([`Clusterd`]) speak a length-prefixed, versioned JSON wire protocol
//! ([`wire`]) over blocking `std::net` TCP.
//!
//! The division of labour mirrors the paper: the cluster daemon solves
//! the placement once and owns the slot registry, heartbeat leases, and
//! the cluster-wide budget directive; each agent wraps the same
//! `ServerController` + `ServerManager` backend the in-process engine
//! drives (via [`pocolo_sim::SlotSpec`]) and advances it through the
//! *projection* of the shared event queue onto its own slot
//! ([`pocolo_sim::run_server_projection`]). Because both sides fit
//! identical models from the same deterministic profiler defaults and
//! replay identical seeded fault timelines, a wire-driven run reproduces
//! the in-process engine's placement decisions and epoch-level metrics
//! bit-for-bit — the loopback harness ([`run_demo`]) asserts exactly
//! that, and falls back to the degraded (blind incremental) controller
//! when an agent dies and its lease expires.
//!
//! Robustness is first-class: connect/read/write deadlines on every
//! socket, bounded exponential retry with seeded jitter
//! ([`pocolo_faults::RetryPolicy`]), a frame-size cap enforced before
//! allocation, typed errors for every malformed byte ([`NetError`]), and
//! idempotent re-registration so a restarted agent reclaims its slot.

#![warn(missing_docs)]

mod agent;
mod client;
mod cluster;
mod demo;
mod error;
pub mod frame;
pub mod reactor;
mod server;
pub mod swarm;
pub mod timer;
pub mod wire;

pub use agent::{default_fit, run_agent, AgentConfig, AgentReport};
pub use client::{connect_with_retry, RpcClient};
pub use cluster::{ClusterConfig, Clusterd, NetBackend, SlotState};
pub use demo::{run_demo, run_demo_scale, DemoConfig, DemoReport, ScaleConfig, ScaleReport};
pub use error::NetError;
pub use frame::FrameBuffer;
pub use reactor::{ConnId, DisconnectReason, EventHandler, ReactorConfig, ReactorServer, Reply};
pub use server::{Handler, Server};
pub use swarm::{run_swarm, scale_reference, AgentOutcome, SwarmConfig, SwarmReport};
pub use timer::TimerWheel;
pub use wire::{Message, RunSpec, MAX_FRAME_BYTES, PROTOCOL_VERSION};

//! The one error type every wire-layer operation returns.

use std::fmt;

/// Anything that can go wrong on the wire path. Every variant is a typed,
/// recoverable error — the daemons never panic on peer misbehaviour.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (connect, read, write, deadline expiry).
    Io(std::io::Error),
    /// The peer sent bytes that are not a well-formed frame (bad length
    /// prefix, oversized frame, malformed JSON payload).
    Frame(String),
    /// The frame decoded but violates the protocol (wrong version, an
    /// unknown message type, missing fields, an unexpected reply).
    Protocol(String),
    /// The peer reported an application-level error.
    Remote(String),
    /// A bounded retry schedule ran out of attempts.
    Exhausted {
        /// Attempts made before giving up.
        attempts: usize,
        /// What was being retried.
        what: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Frame(m) => write!(f, "bad frame: {m}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Remote(m) => write!(f, "peer error: {m}"),
            NetError::Exhausted { attempts, what } => {
                write!(f, "gave up on {what} after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<pocolo_json::ParseError> for NetError {
    fn from(e: pocolo_json::ParseError) -> Self {
        NetError::Frame(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = NetError::Exhausted {
            attempts: 8,
            what: "connect to clusterd".into(),
        };
        assert!(e.to_string().contains("8 attempts"));
        assert!(NetError::Frame("oversized".into())
            .to_string()
            .contains("oversized"));
    }
}

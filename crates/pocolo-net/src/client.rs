//! Blocking RPC client: connect with bounded jittered retry, then strict
//! request/response exchanges under read/write deadlines.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use pocolo_faults::RetryPolicy;

use crate::error::NetError;
use crate::wire::{read_frame, write_frame, Message};

/// Connects under `retry`'s schedule, sleeping each jittered delay, until
/// a connection lands or the attempt budget is spent.
pub fn connect_with_retry(
    addr: SocketAddr,
    retry: &mut RetryPolicy,
    io_timeout: Duration,
) -> Result<TcpStream, NetError> {
    loop {
        match TcpStream::connect_timeout(&addr, io_timeout) {
            Ok(stream) => {
                stream.set_read_timeout(Some(io_timeout))?;
                stream.set_write_timeout(Some(io_timeout))?;
                stream.set_nodelay(true)?;
                return Ok(stream);
            }
            Err(_) => match retry.next_delay_s() {
                Some(delay_s) => std::thread::sleep(Duration::from_secs_f64(delay_s)),
                None => {
                    return Err(NetError::Exhausted {
                        attempts: retry.attempts(),
                        what: format!("connect to {addr}"),
                    })
                }
            },
        }
    }
}

/// One strict request/response connection to the cluster daemon.
#[derive(Debug)]
pub struct RpcClient {
    stream: TcpStream,
}

impl RpcClient {
    /// Wraps an established, deadline-configured stream.
    pub fn new(stream: TcpStream) -> Self {
        RpcClient { stream }
    }

    /// Connects with the given retry schedule and deadlines.
    pub fn connect(
        addr: SocketAddr,
        retry: &mut RetryPolicy,
        io_timeout: Duration,
    ) -> Result<Self, NetError> {
        Ok(RpcClient::new(connect_with_retry(addr, retry, io_timeout)?))
    }

    /// Sends a request and blocks for the single reply. A peer `Error`
    /// reply surfaces as [`NetError::Remote`].
    pub fn call(&mut self, request: &Message) -> Result<Message, NetError> {
        write_frame(&mut self.stream, &request.to_value())?;
        let reply = read_frame(&mut self.stream)?;
        match Message::from_value(&reply)? {
            Message::Error { message } => Err(NetError::Remote(message)),
            other => Ok(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhausted_retry_surfaces_attempt_count() {
        // A port from TEST-NET that nothing listens on, with an
        // aggressive schedule so the test stays fast.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut retry = RetryPolicy::new(0.001, 1.0, 0.001, 3, 0.0, 1);
        let err = connect_with_retry(addr, &mut retry, Duration::from_millis(20)).unwrap_err();
        match err {
            NetError::Exhausted { attempts, .. } => assert_eq!(attempts, 3),
            other => panic!("expected exhaustion, got {other}"),
        }
    }
}

//! The swarm driver: thousands of simulated agents multiplexed on one
//! event-loop thread.
//!
//! Scale runs exercise the daemon's reactor, not the simulation — a real
//! `ServerSim` per slot would make a 5000-agent run a compute benchmark
//! of the engine. Instead each swarm agent speaks the full, unmodified
//! wire protocol (register → telemetry heartbeats → complete) but
//! derives every telemetry sample and its final metrics from a
//! deterministic hash of `(server, seed, epoch)`. The cluster daemon
//! cannot tell the difference, and the test gate is timing-independent:
//! the result the daemon assembles from wire-delivered metric payloads
//! must equal [`scale_reference`] bit-for-bit, no matter how connects,
//! heartbeats and completions interleaved.
//!
//! One thread, one [`Poll`]: the swarm drives every connection through
//! nonblocking readiness I/O with the same [`FrameBuffer`] reassembly
//! and [`TimerWheel`] pacing the daemon uses. Registration is paced
//! (`connect_burst` in flight) so a 5000-agent cold start is a steady
//! stream rather than one SYN avalanche into the listen backlog.

use std::collections::HashSet;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use compat_mio::net::TcpStream;
use compat_mio::{Events, Interest, Poll, Token};
use pocolo_core::units::Watts;
use pocolo_sim::experiment::{ExperimentResult, PairResult};
use pocolo_sim::{ClusterSummary, ServerMetrics};

use crate::error::NetError;
use crate::frame::{encode_frame, FrameBuffer, ReadStatus};
use crate::timer::TimerWheel;
use crate::wire::{Message, RunSpec, PROTOCOL_VERSION};

/// Provisioned cap every synthetic slot reports under. Arbitrary but
/// shared between the swarm's `Complete` payloads and the in-process
/// reference.
const SCALE_POWER_CAP_W: f64 = 100.0;

/// Configuration of one swarm pass.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// Cluster daemon address.
    pub connect: SocketAddr,
    /// Stable identities, one connection each. Slot assignment comes
    /// from the daemon; identity order only paces the connect storm.
    pub identities: Vec<String>,
    /// Telemetry frames each agent sends before completing.
    pub heartbeats: u64,
    /// Pacing between an agent's heartbeats. `ZERO` runs closed-loop:
    /// the next telemetry leaves as soon as the ack lands.
    pub heartbeat_every: Duration,
    /// Run seed; must match the daemon's `RunSpec` seed for parity.
    pub seed: u64,
    /// Registrations allowed in flight at once.
    pub connect_burst: usize,
    /// Wall-clock budget for the whole pass.
    pub deadline: Duration,
    /// Indices (into `identities`) that abandon the run — close the
    /// socket without completing — after
    /// [`kill_after_epochs`](SwarmConfig::kill_after_epochs) heartbeats.
    /// The churn soak uses this to force lease expiries.
    pub kill: HashSet<usize>,
    /// Heartbeats a killed agent sends before dying.
    pub kill_after_epochs: u64,
}

impl SwarmConfig {
    /// A swarm of `n` agents named `agent-0..n` with loopback-sized
    /// deadlines, running closed-loop.
    pub fn new(connect: SocketAddr, n: usize, heartbeats: u64, seed: u64) -> SwarmConfig {
        SwarmConfig {
            connect,
            identities: (0..n).map(|i| format!("agent-{i}")).collect(),
            heartbeats,
            heartbeat_every: Duration::ZERO,
            seed,
            connect_burst: 64,
            deadline: Duration::from_secs(120),
            kill: HashSet::new(),
            kill_after_epochs: 0,
        }
    }
}

/// What one swarm agent accomplished.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentOutcome {
    /// Slot the daemon assigned.
    pub server: usize,
    /// Whether the welcome flagged the slot degraded.
    pub degraded: bool,
    /// Telemetry frames acknowledged.
    pub epochs: u64,
    /// False when the kill switch abandoned the run.
    pub completed: bool,
    /// Last budget directive observed in a telemetry ack.
    pub cap_seen: f64,
    /// When the agent last observed the directive *change* — the probe
    /// the broadcast fan-out benchmark reads.
    pub cap_changed_at: Option<Instant>,
}

/// Aggregate statistics of one swarm pass.
#[derive(Debug, Clone)]
pub struct SwarmReport {
    /// Per-agent outcomes, in identity order.
    pub agents: Vec<AgentOutcome>,
    /// First connect to last welcome.
    pub connect_wall: Duration,
    /// Whole pass, first connect to last retirement.
    pub total_wall: Duration,
    /// Telemetry round-trip samples (request write to ack decode),
    /// microseconds, unsorted.
    pub rtts_us: Vec<u64>,
}

impl SwarmReport {
    /// The `q`-quantile (0..=1) of the telemetry RTT samples, in
    /// microseconds. Zero when no telemetry flowed.
    pub fn rtt_quantile_us(&self, q: f64) -> u64 {
        if self.rtts_us.is_empty() {
            return 0;
        }
        let mut sorted = self.rtts_us.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[rank]
    }
}

/// One deterministic telemetry sample: what slot `server` reports at
/// `epoch` under `seed`, on the swarm side and in [`scale_reference`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticSample {
    /// Reported whole-server power, watts.
    pub power_w: f64,
    /// Reported LC latency slack.
    pub slack: f64,
    /// Reported BE throughput.
    pub be_throughput: f64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Unit-interval f64 from the top 53 bits of a hash.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The telemetry slot `server` reports at `epoch` under `seed`.
pub fn synthetic_sample(server: usize, seed: u64, epoch: u64) -> SyntheticSample {
    let h = splitmix64(seed ^ (server as u64).wrapping_mul(0x517c_c1b7_2722_0a95) ^ epoch);
    SyntheticSample {
        power_w: 60.0 + 35.0 * unit_f64(h),
        slack: unit_f64(splitmix64(h)) - 0.25,
        be_throughput: unit_f64(splitmix64(h ^ 0x5bf0_3635)),
    }
}

/// The metrics a swarm agent on `server` accumulates over `heartbeats`
/// epochs — exactly what its `Complete` payload carries, and what
/// [`scale_reference`] recomputes in-process.
pub fn synthetic_metrics(server: usize, seed: u64, heartbeats: u64) -> ServerMetrics {
    let mut m = ServerMetrics::new(Watts(SCALE_POWER_CAP_W));
    for epoch in 0..heartbeats {
        let s = synthetic_sample(server, seed, epoch);
        m.record(
            1.0,
            Watts(s.power_w),
            s.be_throughput,
            s.slack,
            false,
            false,
        );
    }
    m
}

/// The experiment result a clean scale run must reproduce over the wire,
/// computed without any sockets. Timing-independent by construction:
/// every term is a function of `(slot, seed, heartbeats)` only.
pub fn scale_reference(run: &RunSpec, heartbeats: u64) -> ExperimentResult {
    let metrics: Vec<ServerMetrics> = (0..run.n_servers())
        .map(|server| synthetic_metrics(server, run.seed, heartbeats))
        .collect();
    let pairs: Vec<PairResult> = metrics
        .iter()
        .enumerate()
        .map(|(i, m)| PairResult {
            lc: run.lc[i].clone(),
            be: run.placement[i].name().to_string(),
            metrics: m.clone(),
        })
        .collect();
    let summary = ClusterSummary::aggregate(&metrics).expect("scale runs have at least one server");
    ExperimentResult {
        policy: run.policy.name().to_string(),
        pairs,
        summary,
    }
}

/// Per-connection protocol position.
#[derive(Debug, Clone, Copy)]
enum AgentState {
    /// Register sent, waiting for the welcome.
    Registering,
    /// Telemetry `epoch` sent, waiting for its ack.
    AwaitAck { epoch: u64, sent_at: Instant },
    /// Between heartbeats; a wheel timer will fire the next one.
    Waiting { next_epoch: u64 },
    /// Final metrics sent, waiting for the completion ack.
    Completing,
    /// Protocol finished (completed or killed); ready to retire.
    Done,
}

/// What one decoded reply did to the swarm-level counters.
enum Progress {
    None,
    /// The welcome landed; registration pipeline has a free slot.
    Welcomed,
    /// The connection finished its protocol (ack'd or killed).
    Finished,
}

struct Conn {
    stream: TcpStream,
    in_buf: FrameBuffer,
    out: Vec<u8>,
    out_head: usize,
    write_interest: bool,
    state: AgentState,
    outcome: AgentOutcome,
}

/// Scans the cached-welcome byte layout for `(server, degraded)` without
/// parsing the (potentially ~100 KiB) run spec. Returns `None` when the
/// frame is not shaped like the daemon's splice — callers fall back to a
/// full parse, so this is purely an optimisation.
fn welcome_prefix(payload: &[u8]) -> Option<(usize, bool)> {
    let text = std::str::from_utf8(payload).ok()?;
    let head = format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"welcome\",\"server\":");
    let rest = text.strip_prefix(head.as_str())?;
    let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    let server: usize = rest[..digits].parse().ok()?;
    let rest = rest[digits..].strip_prefix(",\"degraded\":")?;
    if let Some(tail) = rest.strip_prefix("true") {
        tail.starts_with(',').then_some((server, true))
    } else if let Some(tail) = rest.strip_prefix("false") {
        tail.starts_with(',').then_some((server, false))
    } else {
        None
    }
}

/// Decodes a reply frame the slow way (full JSON parse).
fn parse_reply(payload: &[u8]) -> Result<Message, NetError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| NetError::Frame("frame payload is not UTF-8".into()))?;
    Message::from_value(&pocolo_json::from_str(text)?)
}

fn telemetry_frame(server: usize, epoch: u64, seed: u64) -> Result<Vec<u8>, NetError> {
    let s = synthetic_sample(server, seed, epoch);
    encode_frame(
        &Message::Telemetry {
            server,
            epoch,
            t_s: epoch as f64,
            power_w: s.power_w,
            slack: s.slack,
            be_throughput: s.be_throughput,
        }
        .to_value(),
    )
}

/// Drives every identity through the full protocol on one event loop.
///
/// # Errors
///
/// Any connection-level failure, protocol violation, or daemon `Error`
/// reply fails the whole pass — a swarm run is a verification gate, so
/// partial success is failure.
pub fn run_swarm(config: &SwarmConfig) -> Result<SwarmReport, NetError> {
    let n = config.identities.len();
    if n == 0 {
        return Err(NetError::Protocol("swarm needs at least one agent".into()));
    }
    let start = Instant::now();
    let mut poll = Poll::new()?;
    let mut events = Events::with_capacity(1024);
    let tick =
        (config.heartbeat_every / 8).clamp(Duration::from_millis(1), Duration::from_millis(25));
    let mut wheel: TimerWheel<u64> = TimerWheel::new(start, tick, 256);
    let mut conns: Vec<Option<Conn>> = (0..n).map(|_| None).collect();
    let mut outcomes: Vec<Option<AgentOutcome>> = (0..n).map(|_| None).collect();
    let mut fired: Vec<u64> = Vec::new();

    let mut next_connect = 0usize;
    let mut registering = 0usize;
    let mut welcomed = 0usize;
    let mut done = 0usize;
    let mut connect_wall = Duration::ZERO;
    let mut rtts_us: Vec<u64> = Vec::new();

    while done < n {
        if start.elapsed() > config.deadline {
            return Err(NetError::Protocol(format!(
                "swarm missed its deadline: {done}/{n} agents finished within {:?}",
                config.deadline
            )));
        }

        // Top up the register pipeline. Blocking connects are fine here:
        // on loopback the handshake completes out of the accept backlog,
        // and the burst cap keeps that backlog shallow.
        while next_connect < n && registering < config.connect_burst.max(1) {
            let idx = next_connect;
            next_connect += 1;
            registering += 1;
            let std_stream = std::net::TcpStream::connect(config.connect)?;
            std_stream.set_nodelay(true)?;
            let stream = TcpStream::from_std(std_stream)?;
            poll.register(&stream, Token(idx), Interest::READABLE)?;
            let mut conn = Conn {
                stream,
                in_buf: FrameBuffer::new(),
                out: Vec::new(),
                out_head: 0,
                write_interest: false,
                state: AgentState::Registering,
                outcome: AgentOutcome {
                    server: usize::MAX,
                    degraded: false,
                    epochs: 0,
                    completed: false,
                    cap_seen: 1.0,
                    cap_changed_at: None,
                },
            };
            // Swarm agents cycle through the SKU catalog so the scale
            // path exercises heterogeneous registration end to end.
            let catalog = pocolo_core::fleet::ServerClass::CATALOG;
            let frame = encode_frame(
                &Message::Register {
                    agent: config.identities[idx].clone(),
                    class: Some(catalog[idx % catalog.len()].to_string()),
                }
                .to_value(),
            )?;
            conn.out.extend_from_slice(&frame);
            flush(&poll, Token(idx), &mut conn)?;
            conns[idx] = Some(conn);
        }

        let timeout = wheel
            .next_wakeup(Instant::now())
            .unwrap_or(Duration::from_millis(250))
            .min(Duration::from_millis(250));
        poll.poll(&mut events, Some(timeout))?;

        for event in events.iter() {
            let idx = event.token().0;
            let mut finished = false;
            {
                let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                    continue;
                };
                if event.is_writable() {
                    flush(&poll, Token(idx), conn)?;
                }
                if event.is_readable() || event.is_read_closed() || event.is_error() {
                    let status = conn
                        .in_buf
                        .fill_from(&mut conn.stream)
                        .map_err(NetError::Io)?;
                    let now = Instant::now();
                    while let Some(payload) = conn.in_buf.next_raw()? {
                        match advance(conn, &payload, now, config, &mut wheel, idx, &mut rtts_us)? {
                            Progress::Welcomed => {
                                welcomed += 1;
                                registering -= 1;
                                if welcomed == n {
                                    connect_wall = start.elapsed();
                                }
                            }
                            Progress::Finished => {
                                finished = true;
                                break;
                            }
                            Progress::None => {}
                        }
                    }
                    if !finished {
                        flush(&poll, Token(idx), conn)?;
                        if status == ReadStatus::Eof {
                            return Err(NetError::Protocol(format!(
                                "daemon closed agent {idx}'s connection mid-protocol"
                            )));
                        }
                    }
                }
                if matches!(conn.state, AgentState::Done) {
                    finished = true;
                }
            }
            if finished {
                let conn = conns[idx].take().expect("finished connection exists");
                poll.deregister(&conn.stream, Token(idx))?;
                outcomes[idx] = Some(conn.outcome);
                done += 1;
                // Dropping `conn` closes the fd.
            }
        }

        // Timers: heartbeats whose pacing interval elapsed.
        fired.clear();
        let now = Instant::now();
        wheel.advance(now, &mut fired);
        for &key in &fired {
            let idx = key as usize;
            let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            if let AgentState::Waiting { next_epoch } = conn.state {
                let frame = telemetry_frame(conn.outcome.server, next_epoch, config.seed)?;
                conn.out.extend_from_slice(&frame);
                conn.state = AgentState::AwaitAck {
                    epoch: next_epoch,
                    sent_at: Instant::now(),
                };
                flush(&poll, Token(idx), conn)?;
            }
        }
    }

    let agents: Vec<AgentOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("all agents retired"))
        .collect();
    Ok(SwarmReport {
        agents,
        connect_wall,
        total_wall: start.elapsed(),
        rtts_us,
    })
}

/// Writes as much of the outbound buffer as the socket takes, arming
/// `WRITABLE` interest exactly while bytes remain.
fn flush(poll: &Poll, token: Token, conn: &mut Conn) -> Result<(), NetError> {
    use std::io::Write;
    while conn.out_head < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_head..]) {
            Ok(0) => {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "daemon socket accepted zero bytes",
                )))
            }
            Ok(k) => conn.out_head += k,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    if conn.out_head >= conn.out.len() {
        conn.out.clear();
        conn.out_head = 0;
    }
    let want_write = !conn.out.is_empty();
    if want_write != conn.write_interest {
        conn.write_interest = want_write;
        let interest = if want_write {
            Interest::READABLE.add(Interest::WRITABLE)
        } else {
            Interest::READABLE
        };
        poll.reregister(&conn.stream, token, interest)?;
    }
    Ok(())
}

/// Advances one connection's state machine on one decoded reply frame.
fn advance(
    conn: &mut Conn,
    payload: &[u8],
    now: Instant,
    config: &SwarmConfig,
    wheel: &mut TimerWheel<u64>,
    idx: usize,
    rtts_us: &mut Vec<u64>,
) -> Result<Progress, NetError> {
    match conn.state {
        AgentState::Registering => {
            let (server, degraded) = match welcome_prefix(payload) {
                Some(pair) => pair,
                None => match parse_reply(payload)? {
                    Message::Welcome {
                        server, degraded, ..
                    } => (server, degraded),
                    Message::Error { message } => return Err(NetError::Remote(message)),
                    other => {
                        return Err(NetError::Protocol(format!(
                            "agent {idx}: expected welcome, got {}",
                            other.type_name()
                        )))
                    }
                },
            };
            conn.outcome.server = server;
            conn.outcome.degraded = degraded;
            if config.heartbeats == 0 {
                send_complete(conn, config)?;
            } else if config.heartbeat_every.is_zero() {
                let frame = telemetry_frame(server, 0, config.seed)?;
                conn.out.extend_from_slice(&frame);
                conn.state = AgentState::AwaitAck {
                    epoch: 0,
                    sent_at: now,
                };
            } else {
                // Spread first heartbeats across one interval so a
                // 5000-agent fleet does not beat in phase.
                let phase = config.heartbeat_every.mul_f64((idx % 997) as f64 / 997.0);
                conn.state = AgentState::Waiting { next_epoch: 0 };
                wheel.schedule(now, phase, idx as u64);
            }
            Ok(Progress::Welcomed)
        }
        AgentState::AwaitAck { epoch, sent_at } => {
            match parse_reply(payload)? {
                Message::TelemetryAck { cap_factor } => {
                    rtts_us.push(now.duration_since(sent_at).as_micros() as u64);
                    if cap_factor != conn.outcome.cap_seen {
                        conn.outcome.cap_seen = cap_factor;
                        conn.outcome.cap_changed_at = Some(now);
                    }
                }
                Message::Error { message } => return Err(NetError::Remote(message)),
                other => {
                    return Err(NetError::Protocol(format!(
                        "agent {idx}: expected telemetry ack, got {}",
                        other.type_name()
                    )))
                }
            }
            conn.outcome.epochs = epoch + 1;
            if config.kill.contains(&idx) && conn.outcome.epochs >= config.kill_after_epochs {
                // Abandon mid-run: the daemon sees EOF and the lease
                // runs out. `completed` stays false.
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                conn.state = AgentState::Done;
                return Ok(Progress::Finished);
            }
            let next = epoch + 1;
            if next < config.heartbeats {
                if config.heartbeat_every.is_zero() {
                    let frame = telemetry_frame(conn.outcome.server, next, config.seed)?;
                    conn.out.extend_from_slice(&frame);
                    conn.state = AgentState::AwaitAck {
                        epoch: next,
                        sent_at: now,
                    };
                } else {
                    conn.state = AgentState::Waiting { next_epoch: next };
                    wheel.schedule(now, config.heartbeat_every, idx as u64);
                }
            } else {
                send_complete(conn, config)?;
            }
            Ok(Progress::None)
        }
        AgentState::Waiting { .. } => Err(NetError::Protocol(format!(
            "agent {idx}: unsolicited frame between heartbeats"
        ))),
        AgentState::Completing => match parse_reply(payload)? {
            Message::CompleteAck => {
                conn.outcome.completed = true;
                conn.state = AgentState::Done;
                Ok(Progress::Finished)
            }
            Message::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Protocol(format!(
                "agent {idx}: expected completion ack, got {}",
                other.type_name()
            ))),
        },
        AgentState::Done => Err(NetError::Protocol(format!(
            "agent {idx}: frame after protocol completion"
        ))),
    }
}

fn send_complete(conn: &mut Conn, config: &SwarmConfig) -> Result<(), NetError> {
    let metrics = synthetic_metrics(conn.outcome.server, config.seed, config.heartbeats);
    let frame = encode_frame(
        &Message::Complete {
            server: conn.outcome.server,
            metrics: Box::new(metrics),
        }
        .to_value(),
    )?;
    conn.out.extend_from_slice(&frame);
    conn.state = AgentState::Completing;
    Ok(())
}

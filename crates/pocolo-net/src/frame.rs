//! Incremental frame reassembly for the nonblocking read path.
//!
//! The blocking side reads frames with two `read_exact` calls
//! ([`crate::wire::read_frame`]); a nonblocking socket instead delivers
//! arbitrary byte fragments. [`FrameBuffer`] accumulates them and pops
//! complete frames, producing exactly the frames the blocking reader
//! would — a property the proptests in this module pin under 1-byte and
//! random-split fragmentation.
//!
//! Error taxonomy matches the blocking server's observable behaviour:
//! a frame whose *payload* is bad (non-UTF-8, malformed JSON) is
//! [`Decoded::Corrupt`] — framing is intact, the connection can answer
//! with a typed error and continue; a bad *length prefix* (over the
//! [`MAX_FRAME_BYTES`] cap) is a hard [`NetError`] — byte sync is gone
//! and the connection must die.

use std::io::{self, Read};

use pocolo_json::Value;

use crate::error::NetError;
use crate::wire::MAX_FRAME_BYTES;

/// Most bytes one [`FrameBuffer::fill_from`] call will pull off a socket
/// before yielding back to the event loop. Level-triggered polling
/// re-fires immediately when more is pending, so this bounds per-wakeup
/// latency without losing data.
const MAX_FILL_PER_CALL: usize = 256 * 1024;

/// One decode outcome from [`FrameBuffer::next`].
#[derive(Debug)]
pub enum Decoded {
    /// A complete, well-formed frame.
    Frame(Value),
    /// A complete frame whose payload is not valid JSON text. The
    /// connection's framing is still intact (the length prefix was
    /// honest), so the caller can reply with an error and keep reading.
    Corrupt(String),
}

/// What a nonblocking fill observed about the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStatus {
    /// The socket would block (or the per-call cap was hit); more bytes
    /// may arrive later.
    Open,
    /// The peer closed its write half; drain buffered frames, then drop.
    Eof,
}

/// Reassembly buffer: feed it byte fragments, pop complete frames.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    head: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Bytes buffered but not yet popped as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Appends raw bytes (any fragmentation).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Reads from a nonblocking source until it would block, hits EOF,
    /// or the per-call byte cap is reached.
    pub fn fill_from(&mut self, r: &mut impl Read) -> io::Result<ReadStatus> {
        let mut chunk = [0u8; 16 * 1024];
        let mut pulled = 0usize;
        loop {
            if pulled >= MAX_FILL_PER_CALL {
                return Ok(ReadStatus::Open);
            }
            match r.read(&mut chunk) {
                Ok(0) => return Ok(ReadStatus::Eof),
                Ok(n) => {
                    self.extend(&chunk[..n]);
                    pulled += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ReadStatus::Open),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Pops the next complete frame, if one is fully buffered.
    ///
    /// `Ok(None)` means more bytes are needed. A hard `Err` means the
    /// length prefix itself is invalid and byte sync is unrecoverable.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Decoded>, NetError> {
        let pending = &self.buf[self.head..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(NetError::Frame(format!(
                "incoming frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
            )));
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let payload = &pending[4..4 + len];
        let decoded = match std::str::from_utf8(payload) {
            Ok(text) => match pocolo_json::from_str(text) {
                Ok(value) => Decoded::Frame(value),
                Err(e) => Decoded::Corrupt(format!("bad frame: {e}")),
            },
            Err(_) => Decoded::Corrupt("bad frame: frame payload is not UTF-8".into()),
        };
        self.head += 4 + len;
        self.compact();
        Ok(Some(decoded))
    }

    /// Pops the next complete frame as raw payload bytes, skipping JSON
    /// parsing. The fast path for clients that inspect most frames
    /// textually (e.g. the swarm driver's welcome prefix scan); the
    /// length-prefix cap is still enforced.
    pub fn next_raw(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        let pending = &self.buf[self.head..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(NetError::Frame(format!(
                "incoming frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
            )));
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let payload = pending[4..4 + len].to_vec();
        self.head += 4 + len;
        self.compact();
        Ok(Some(payload))
    }

    /// Reclaims consumed prefix space once it dominates the buffer.
    fn compact(&mut self) {
        if self.head > 4096 && self.head * 2 >= self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

/// Encodes one frame (length prefix + compact JSON) into owned bytes,
/// ready for a nonblocking outbound queue.
pub fn encode_frame(payload: &Value) -> Result<Vec<u8>, NetError> {
    encode_frame_str(&payload.to_compact_string())
}

/// Encodes a frame from already-serialized compact JSON. This is the
/// splice point for cached payloads (e.g. the welcome frame): the bytes
/// must be exactly what `Value::to_compact_string` would produce.
pub fn encode_frame_str(body: &str) -> Result<Vec<u8>, NetError> {
    let bytes = body.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(NetError::Frame(format!(
            "outgoing frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            bytes.len()
        )));
    }
    let mut out = Vec::with_capacity(4 + bytes.len());
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_frame, write_frame, Message};
    use proptest::prelude::*;

    fn sample_stream() -> Vec<u8> {
        let mut bytes = Vec::new();
        let msgs = [
            Message::Register {
                agent: "agent-0".into(),
                class: Some("xeon".into()),
            },
            Message::Telemetry {
                server: 3,
                epoch: 17,
                t_s: 17.0,
                power_w: 93.5,
                slack: -0.25,
                be_throughput: 0.75,
            },
            Message::TelemetryAck { cap_factor: 0.6 },
            Message::Status,
        ];
        for m in &msgs {
            write_frame(&mut bytes, &m.to_value()).unwrap();
        }
        bytes
    }

    /// Feeds `stream` into a FrameBuffer split at `cuts`, returning every
    /// decoded frame value.
    fn reassemble(stream: &[u8], cuts: &[usize]) -> Vec<Value> {
        let mut fb = FrameBuffer::new();
        let mut frames = Vec::new();
        let mut pos = 0;
        let feed = |fb: &mut FrameBuffer, lo: usize, hi: usize, frames: &mut Vec<Value>| {
            fb.extend(&stream[lo..hi]);
            while let Some(decoded) = fb.next().unwrap() {
                match decoded {
                    Decoded::Frame(v) => frames.push(v),
                    Decoded::Corrupt(m) => panic!("valid stream decoded as corrupt: {m}"),
                }
            }
        };
        for &cut in cuts {
            let cut = cut.min(stream.len());
            if cut > pos {
                feed(&mut fb, pos, cut, &mut frames);
                pos = cut;
            }
        }
        feed(&mut fb, pos, stream.len(), &mut frames);
        assert_eq!(fb.pending_bytes(), 0, "stream fully consumed");
        frames
    }

    fn blocking_reference(stream: &[u8]) -> Vec<Value> {
        let mut r = stream;
        let mut frames = Vec::new();
        while !r.is_empty() {
            frames.push(read_frame(&mut r).unwrap());
        }
        frames
    }

    #[test]
    fn one_byte_at_a_time_matches_the_blocking_reader() {
        let stream = sample_stream();
        let cuts: Vec<usize> = (0..stream.len()).collect();
        assert_eq!(reassemble(&stream, &cuts), blocking_reference(&stream));
    }

    #[test]
    fn corrupt_payload_is_recoverable_and_framing_survives() {
        let mut fb = FrameBuffer::new();
        // Honest length, garbage JSON — then a valid frame right behind.
        fb.extend(&3u32.to_be_bytes());
        fb.extend(b"]]]");
        let mut good = Vec::new();
        write_frame(&mut good, &Message::Status.to_value()).unwrap();
        fb.extend(&good);
        assert!(matches!(fb.next().unwrap(), Some(Decoded::Corrupt(_))));
        match fb.next().unwrap() {
            Some(Decoded::Frame(v)) => assert_eq!(v, Message::Status.to_value()),
            other => panic!("expected the trailing valid frame, got {other:?}"),
        }
    }

    #[test]
    fn oversized_prefix_is_fatal() {
        let mut fb = FrameBuffer::new();
        fb.extend(&u32::MAX.to_be_bytes());
        assert!(matches!(fb.next(), Err(NetError::Frame(_))));
    }

    #[test]
    fn encode_matches_write_frame() {
        let v = Message::TelemetryAck { cap_factor: 0.875 }.to_value();
        let mut blocking = Vec::new();
        write_frame(&mut blocking, &v).unwrap();
        assert_eq!(encode_frame(&v).unwrap(), blocking);
        assert_eq!(encode_frame_str(&v.to_compact_string()).unwrap(), blocking);
    }

    proptest! {
        /// Any valid frame stream, split at any byte boundaries (including
        /// the 1-byte-at-a-time worst case), reassembles to exactly the
        /// frames the blocking reader produces.
        #[test]
        fn random_splits_match_the_blocking_reader(
            caps in proptest::collection::vec(0.0f64..2.0, 0..6),
            cuts in proptest::collection::vec(0usize..4096, 0..64),
        ) {
            let mut stream = Vec::new();
            for (i, cap) in caps.iter().enumerate() {
                let msg = if i % 2 == 0 {
                    Message::TelemetryAck { cap_factor: *cap }
                } else {
                    Message::Telemetry {
                        server: i,
                        epoch: i as u64,
                        t_s: *cap * 10.0,
                        power_w: 80.0 + cap,
                        slack: cap - 1.0,
                        be_throughput: *cap,
                    }
                };
                write_frame(&mut stream, &msg.to_value()).unwrap();
            }
            let mut cuts = cuts;
            cuts.sort_unstable();
            prop_assert_eq!(reassemble(&stream, &cuts), blocking_reference(&stream));
        }
    }
}

//! Length-prefixed, versioned JSON frames and the RPC message set.
//!
//! A frame is a big-endian `u32` byte length followed by that many bytes
//! of compact JSON. Every payload is an envelope
//! `{"v": 1, "type": "<name>", ...fields}`; unknown versions and types
//! are typed [`NetError`]s, never panics. All RPCs are agent-initiated —
//! the cluster daemon only ever replies — which keeps the protocol a
//! strict request/response alternation over one connection.

use std::io::{Read, Write};

use pocolo_cluster::Solver;
use pocolo_core::federation::{FedLogEntry, FedSnapshot};
use pocolo_faults::FaultSpec;
use pocolo_json::{json, ToJson, Value};
use pocolo_sim::experiment::{ExperimentConfig, FittedCluster};
use pocolo_sim::{Policy, ServerMetrics, SlotSpec};
use pocolo_workloads::{BeApp, LoadTrace};

use crate::error::NetError;

/// Protocol version carried in every envelope.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on a frame payload. Anything larger is rejected before
/// allocation — a garbage length prefix must not OOM the daemon.
pub const MAX_FRAME_BYTES: usize = 4 * 1024 * 1024;

/// Writes one frame: `u32` big-endian length, then compact JSON.
pub fn write_frame(w: &mut impl Write, payload: &Value) -> Result<(), NetError> {
    let body = payload.to_compact_string();
    let bytes = body.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(NetError::Frame(format!(
            "outgoing frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            bytes.len()
        )));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, enforcing the size cap before allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Value, NetError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(NetError::Frame(format!(
            "incoming frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let text = std::str::from_utf8(&buf)
        .map_err(|_| NetError::Frame("frame payload is not UTF-8".into()))?;
    Ok(pocolo_json::from_str(text)?)
}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, NetError> {
    v.get(key)
        .ok_or_else(|| NetError::Protocol(format!("missing field {key:?}")))
}

fn str_field(v: &Value, key: &str) -> Result<String, NetError> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| NetError::Protocol(format!("field {key:?} is not a string")))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, NetError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| NetError::Protocol(format!("field {key:?} is not a number")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, NetError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| NetError::Protocol(format!("field {key:?} is not an unsigned integer")))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, NetError> {
    Ok(u64_field(v, key)? as usize)
}

fn bool_field(v: &Value, key: &str) -> Result<bool, NetError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| NetError::Protocol(format!("field {key:?} is not a boolean")))
}

fn policy_to_json(policy: Policy) -> Value {
    match policy {
        Policy::Random { seed } => json!({"kind": "random", "seed": seed}),
        Policy::Heracles { seed } => json!({"kind": "heracles", "seed": seed}),
        Policy::Pom { seed } => json!({"kind": "pom", "seed": seed}),
        Policy::Pocolo { solver } => json!({"kind": "pocolo", "solver": solver.to_string()}),
    }
}

fn policy_from_json(v: &Value) -> Result<Policy, NetError> {
    let kind = str_field(v, "kind")?;
    match kind.as_str() {
        "random" => Ok(Policy::Random {
            seed: u64_field(v, "seed")?,
        }),
        "heracles" => Ok(Policy::Heracles {
            seed: u64_field(v, "seed")?,
        }),
        "pom" => Ok(Policy::Pom {
            seed: u64_field(v, "seed")?,
        }),
        "pocolo" => {
            let solver: Solver = str_field(v, "solver")?
                .parse()
                .map_err(NetError::Protocol)?;
            Ok(Policy::Pocolo { solver })
        }
        other => Err(NetError::Protocol(format!("unknown policy kind {other:?}"))),
    }
}

fn be_from_name(name: &str) -> Result<BeApp, NetError> {
    BeApp::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| NetError::Protocol(format!("unknown BE app {name:?}")))
}

/// Everything an agent needs to run its slot of a cluster experiment
/// bit-identically to the in-process engine: the placement the cluster
/// daemon solved, the eviction ranks, the fault scenario (compiled
/// locally and deterministically from its spec string), and the scalar
/// config. Models are *not* shipped — [`FittedCluster::fit`] is
/// deterministic, so both sides fit identical models from the same
/// profiler defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// The policy under evaluation.
    pub policy: Policy,
    /// LC app name per server slot (result labels).
    pub lc: Vec<String>,
    /// BE co-runner per server slot, as solved by the cluster daemon.
    pub placement: Vec<BeApp>,
    /// Cluster-wide eviction ranks for the placement.
    pub ranks: Vec<usize>,
    /// Seconds per load level of the paper sweep.
    pub dwell_s: f64,
    /// Total simulated duration.
    pub duration_s: f64,
    /// Manager control period.
    pub manager_period_s: f64,
    /// Capper control period.
    pub capper_period_s: f64,
    /// Relative power-meter noise.
    pub meter_noise: f64,
    /// Base experiment seed.
    pub seed: u64,
    /// Fault scenario spec, if any (e.g. `brownout:5`).
    pub faults: Option<FaultSpec>,
    /// Whether the degraded-mode response is armed.
    pub resilience: bool,
    /// When true, agents apply the `cap_factor` from telemetry acks as a
    /// live budget directive. Parity runs leave this off: the fault
    /// scenario already carries the cap schedule at exact event times.
    pub push_budget: bool,
}

impl RunSpec {
    /// Plans a run the way the in-process engine would: placement from
    /// the policy, eviction ranks from the performance matrix, scalars
    /// from the config.
    pub fn plan(policy: Policy, config: &ExperimentConfig, fitted: &FittedCluster) -> RunSpec {
        let placement = fitted.placement(policy);
        let ranks = pocolo_sim::eviction_ranks(fitted, &placement);
        RunSpec {
            policy,
            lc: fitted
                .lc()
                .iter()
                .map(|(a, _, _)| a.name().to_string())
                .collect(),
            placement,
            ranks,
            dwell_s: config.dwell_s,
            duration_s: config.sweep_duration_s(),
            manager_period_s: config.manager_period_s,
            capper_period_s: config.capper_period_s,
            meter_noise: config.meter_noise,
            seed: config.seed,
            faults: config.faults,
            resilience: config.resilience,
            push_budget: false,
        }
    }

    /// Number of server slots in the run.
    pub fn n_servers(&self) -> usize {
        self.placement.len()
    }

    /// A synthetic `n`-server run for scale exercises: the paper's
    /// four-app fleet tiled out to `n` slots (LC apps and BE co-runners
    /// cycle, ranks are the slot index). Slots in a scale run are driven
    /// by the swarm's deterministic telemetry generator rather than real
    /// simulations, so the scalar config is nominal — what matters is
    /// that the spec survives the wire (`n` names in each list) and that
    /// the registry sees `n` distinct slots.
    pub fn scale(n: usize, seed: u64) -> RunSpec {
        assert!(n > 0, "a scale run needs at least one slot");
        const LC: [&str; 4] = ["img-dnn", "sphinx", "xapian", "tpcc"];
        RunSpec {
            policy: Policy::Pocolo {
                solver: Solver::Hungarian,
            },
            lc: (0..n).map(|i| LC[i % LC.len()].to_string()).collect(),
            placement: (0..n).map(|i| BeApp::ALL[i % BeApp::ALL.len()]).collect(),
            ranks: (0..n).collect(),
            dwell_s: 1.0,
            duration_s: 9.0,
            manager_period_s: 1.0,
            capper_period_s: 0.1,
            meter_noise: 0.0,
            seed,
            faults: None,
            resilience: true,
            push_budget: false,
        }
    }

    /// The slot spec for one server. A `degraded` slot falls back to the
    /// blind incremental-growth controller (the Heracles baseline) — the
    /// same fallback the in-process resilience layer uses when telemetry
    /// cannot be trusted.
    pub fn slot_spec(&self, server: usize, degraded: bool) -> SlotSpec {
        let policy = if degraded {
            Policy::Heracles { seed: self.seed }
        } else {
            self.policy
        };
        SlotSpec {
            server,
            policy,
            be: self.placement[server],
            rank: self.ranks[server],
            trace: LoadTrace::paper_sweep(self.dwell_s),
            meter_noise: self.meter_noise,
            seed: self.seed,
            faulted: self.faults.is_some(),
            resilience: self.resilience,
            record_decisions: false,
        }
    }

    pub(crate) fn to_json(&self) -> Value {
        let placement: Vec<String> = self
            .placement
            .iter()
            .map(|a| a.name().to_string())
            .collect();
        let ranks: Vec<u64> = self.ranks.iter().map(|&r| r as u64).collect();
        json!({
            "policy": policy_to_json(self.policy),
            "lc": self.lc,
            "placement": placement,
            "ranks": ranks,
            "dwell_s": self.dwell_s,
            "duration_s": self.duration_s,
            "manager_period_s": self.manager_period_s,
            "capper_period_s": self.capper_period_s,
            "meter_noise": self.meter_noise,
            "seed": self.seed,
            "faults": self.faults.map(|f| f.to_string()),
            "resilience": self.resilience,
            "push_budget": self.push_budget,
        })
    }

    fn from_json(v: &Value) -> Result<RunSpec, NetError> {
        let placement_names: Vec<String> = Vec::from_json(field(v, "placement")?)
            .ok_or_else(|| NetError::Protocol("placement is not a string list".into()))?;
        let placement = placement_names
            .iter()
            .map(|n| be_from_name(n))
            .collect::<Result<Vec<_>, _>>()?;
        let ranks: Vec<u64> = Vec::from_json(field(v, "ranks")?)
            .ok_or_else(|| NetError::Protocol("ranks is not an integer list".into()))?;
        let faults = match field(v, "faults")? {
            Value::Null => None,
            Value::String(s) => Some(
                s.parse::<FaultSpec>()
                    .map_err(|e| NetError::Protocol(format!("bad fault spec: {e}")))?,
            ),
            _ => return Err(NetError::Protocol("faults is not a string or null".into())),
        };
        let spec = RunSpec {
            policy: policy_from_json(field(v, "policy")?)?,
            lc: Vec::from_json(field(v, "lc")?)
                .ok_or_else(|| NetError::Protocol("lc is not a string list".into()))?,
            placement,
            ranks: ranks.into_iter().map(|r| r as usize).collect(),
            dwell_s: f64_field(v, "dwell_s")?,
            duration_s: f64_field(v, "duration_s")?,
            manager_period_s: f64_field(v, "manager_period_s")?,
            capper_period_s: f64_field(v, "capper_period_s")?,
            meter_noise: f64_field(v, "meter_noise")?,
            seed: u64_field(v, "seed")?,
            faults,
            resilience: bool_field(v, "resilience")?,
            push_budget: bool_field(v, "push_budget")?,
        };
        if spec.lc.len() != spec.placement.len() || spec.ranks.len() != spec.placement.len() {
            return Err(NetError::Protocol(
                "lc, placement and ranks lists disagree on cluster size".into(),
            ));
        }
        Ok(spec)
    }
}

use pocolo_json::FromJson;

/// The RPC message set. Agents send `Register`, `Telemetry`, `Complete`,
/// `Status` and `Shutdown`; the cluster daemon replies with the matching
/// response or `Error`.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// An agent announces itself (idempotent: re-registering after a
    /// restart reclaims the same slot).
    Register {
        /// Stable agent identity, chosen by the agent.
        agent: String,
        /// Hardware class the agent claims to run on (a
        /// `pocolo_core::fleet::ServerClass` catalog name). Optional and
        /// omitted from the frame when absent, so v1 peers that predate
        /// heterogeneous fleets interoperate unchanged.
        class: Option<String>,
    },
    /// The daemon assigns a slot and pushes the run spec.
    Welcome {
        /// Assigned server slot.
        server: usize,
        /// True when this slot already ran partially and must fall back
        /// to the degraded controller.
        degraded: bool,
        /// The full run description.
        run: Box<RunSpec>,
    },
    /// Per-epoch agent telemetry; renews the slot's lease.
    Telemetry {
        /// Reporting server slot.
        server: usize,
        /// Control epoch index (0-based).
        epoch: u64,
        /// Simulated time of the report.
        t_s: f64,
        /// Measured whole-server power, watts.
        power_w: f64,
        /// Primary's latency slack.
        slack: f64,
        /// BE co-runner throughput.
        be_throughput: f64,
    },
    /// Telemetry acknowledgement carrying the current budget directive.
    TelemetryAck {
        /// Effective-cap factor the slot should run under (1.0 = the
        /// provisioned cap). Advisory unless the run pushes budgets.
        cap_factor: f64,
    },
    /// Final per-slot metrics.
    Complete {
        /// Reporting server slot.
        server: usize,
        /// The slot's accumulated metrics.
        metrics: Box<ServerMetrics>,
    },
    /// Completion acknowledgement.
    CompleteAck,
    /// Cluster status probe.
    Status,
    /// Status reply.
    StatusReport {
        /// Total server slots.
        expected: usize,
        /// Slots with a live lease.
        live: usize,
        /// Slots in degraded fallback.
        degraded: usize,
        /// Slots that delivered final metrics.
        done: usize,
    },
    /// Ask the daemon to exit once the reply is flushed.
    Shutdown,
    /// Shutdown acknowledgement.
    ShutdownAck,
    /// A federation follower asks the leader for every committed log
    /// entry past `from_version` (0 = from the beginning).
    FedPull {
        /// The follower's stable identity; renews its replication lease.
        follower: String,
        /// Highest log version the follower has applied.
        from_version: u64,
    },
    /// The leader's replication reply: the log suffix, preceded by a
    /// full snapshot when the log was compacted past `from_version`.
    FedEntries {
        /// The leader's current committed version.
        leader_version: u64,
        /// Compaction snapshot to restore before applying `entries`;
        /// present only when the follower was behind the compaction
        /// point.
        snapshot: Option<Box<FedSnapshot>>,
        /// Committed entries, ascending by version.
        entries: Vec<FedLogEntry>,
    },
    /// Application-level failure report.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Message {
    /// Short type tag carried in the envelope.
    pub fn type_name(&self) -> &'static str {
        match self {
            Message::Register { .. } => "register",
            Message::Welcome { .. } => "welcome",
            Message::Telemetry { .. } => "telemetry",
            Message::TelemetryAck { .. } => "telemetry_ack",
            Message::Complete { .. } => "complete",
            Message::CompleteAck => "complete_ack",
            Message::Status => "status",
            Message::StatusReport { .. } => "status_report",
            Message::Shutdown => "shutdown",
            Message::ShutdownAck => "shutdown_ack",
            Message::FedPull { .. } => "fed_pull",
            Message::FedEntries { .. } => "fed_entries",
            Message::Error { .. } => "error",
        }
    }

    /// Encodes the versioned envelope.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("v".to_string(), json!(PROTOCOL_VERSION)),
            ("type".to_string(), json!(self.type_name())),
        ];
        match self {
            Message::Register { agent, class } => {
                fields.push(("agent".into(), json!(agent)));
                if let Some(class) = class {
                    fields.push(("class".into(), json!(class)));
                }
            }
            Message::Welcome {
                server,
                degraded,
                run,
            } => {
                fields.push(("server".into(), json!(*server as u64)));
                fields.push(("degraded".into(), json!(*degraded)));
                fields.push(("run".into(), run.to_json()));
            }
            Message::Telemetry {
                server,
                epoch,
                t_s,
                power_w,
                slack,
                be_throughput,
            } => {
                fields.push(("server".into(), json!(*server as u64)));
                fields.push(("epoch".into(), json!(*epoch)));
                fields.push(("t_s".into(), json!(*t_s)));
                fields.push(("power_w".into(), json!(*power_w)));
                fields.push(("slack".into(), json!(*slack)));
                fields.push(("be_throughput".into(), json!(*be_throughput)));
            }
            Message::TelemetryAck { cap_factor } => {
                fields.push(("cap_factor".into(), json!(*cap_factor)));
            }
            Message::Complete { server, metrics } => {
                fields.push(("server".into(), json!(*server as u64)));
                fields.push(("metrics".into(), metrics.to_json()));
            }
            Message::StatusReport {
                expected,
                live,
                degraded,
                done,
            } => {
                fields.push(("expected".into(), json!(*expected as u64)));
                fields.push(("live".into(), json!(*live as u64)));
                fields.push(("degraded".into(), json!(*degraded as u64)));
                fields.push(("done".into(), json!(*done as u64)));
            }
            Message::FedPull {
                follower,
                from_version,
            } => {
                fields.push(("follower".into(), json!(follower)));
                fields.push(("from_version".into(), json!(*from_version)));
            }
            Message::FedEntries {
                leader_version,
                snapshot,
                entries,
            } => {
                fields.push(("leader_version".into(), json!(*leader_version)));
                fields.push((
                    "snapshot".into(),
                    match snapshot {
                        Some(s) => s.to_json(),
                        None => Value::Null,
                    },
                ));
                fields.push((
                    "entries".into(),
                    Value::Array(entries.iter().map(|e| e.to_json()).collect()),
                ));
            }
            Message::Error { message } => {
                fields.push(("message".into(), json!(message)));
            }
            Message::CompleteAck | Message::Status | Message::Shutdown | Message::ShutdownAck => {}
        }
        Value::Object(fields)
    }

    /// Decodes an envelope, rejecting unknown versions and types with
    /// typed errors.
    pub fn from_value(v: &Value) -> Result<Message, NetError> {
        let version = u64_field(v, "v")?;
        if version != PROTOCOL_VERSION {
            return Err(NetError::Protocol(format!(
                "unsupported protocol version {version} (this build speaks {PROTOCOL_VERSION})"
            )));
        }
        let kind = str_field(v, "type")?;
        match kind.as_str() {
            "register" => Ok(Message::Register {
                agent: str_field(v, "agent")?,
                // Absent in frames from pre-fleet peers: stay compatible.
                class: match v.get("class") {
                    None | Some(Value::Null) => None,
                    Some(Value::String(s)) => Some(s.clone()),
                    Some(_) => {
                        return Err(NetError::Protocol("field \"class\" is not a string".into()))
                    }
                },
            }),
            "welcome" => Ok(Message::Welcome {
                server: usize_field(v, "server")?,
                degraded: bool_field(v, "degraded")?,
                run: Box::new(RunSpec::from_json(field(v, "run")?)?),
            }),
            "telemetry" => Ok(Message::Telemetry {
                server: usize_field(v, "server")?,
                epoch: u64_field(v, "epoch")?,
                t_s: f64_field(v, "t_s")?,
                power_w: f64_field(v, "power_w")?,
                slack: f64_field(v, "slack")?,
                be_throughput: f64_field(v, "be_throughput")?,
            }),
            "telemetry_ack" => Ok(Message::TelemetryAck {
                cap_factor: f64_field(v, "cap_factor")?,
            }),
            "complete" => Ok(Message::Complete {
                server: usize_field(v, "server")?,
                metrics: Box::new(
                    ServerMetrics::from_json(field(v, "metrics")?)
                        .ok_or_else(|| NetError::Protocol("malformed metrics".into()))?,
                ),
            }),
            "complete_ack" => Ok(Message::CompleteAck),
            "status" => Ok(Message::Status),
            "status_report" => Ok(Message::StatusReport {
                expected: usize_field(v, "expected")?,
                live: usize_field(v, "live")?,
                degraded: usize_field(v, "degraded")?,
                done: usize_field(v, "done")?,
            }),
            "shutdown" => Ok(Message::Shutdown),
            "shutdown_ack" => Ok(Message::ShutdownAck),
            "fed_pull" => Ok(Message::FedPull {
                follower: str_field(v, "follower")?,
                from_version: u64_field(v, "from_version")?,
            }),
            "fed_entries" => {
                let snapshot = match field(v, "snapshot")? {
                    Value::Null => None,
                    s => Some(Box::new(
                        FedSnapshot::from_json(s).map_err(NetError::Protocol)?,
                    )),
                };
                let entries = field(v, "entries")?
                    .as_array()
                    .ok_or_else(|| NetError::Protocol("entries is not an array".into()))?
                    .iter()
                    .map(|e| FedLogEntry::from_json(e).map_err(NetError::Protocol))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Message::FedEntries {
                    leader_version: u64_field(v, "leader_version")?,
                    snapshot,
                    entries,
                })
            }
            "error" => Ok(Message::Error {
                message: str_field(v, "message")?,
            }),
            other => Err(NetError::Protocol(format!(
                "unknown message type {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_faults::Scenario;

    fn spec() -> RunSpec {
        RunSpec {
            policy: Policy::Pocolo {
                solver: Solver::Hungarian,
            },
            lc: vec!["img-dnn".into(), "sphinx".into()],
            placement: vec![BeApp::Lstm, BeApp::Graph],
            ranks: vec![1, 0],
            dwell_s: 3.0,
            duration_s: 27.0,
            manager_period_s: 1.0,
            capper_period_s: 0.1,
            meter_noise: 0.01,
            seed: 0xC0C0,
            faults: Some(FaultSpec {
                scenario: Scenario::Brownout,
                seed: Some(5),
            }),
            resilience: true,
            push_budget: false,
        }
    }

    #[test]
    fn messages_round_trip_through_the_envelope() {
        let msgs = [
            Message::Register {
                agent: "agent-3".into(),
                class: None,
            },
            Message::Register {
                agent: "agent-4".into(),
                class: Some("stepcell".into()),
            },
            Message::Welcome {
                server: 2,
                degraded: true,
                run: Box::new(spec()),
            },
            Message::Telemetry {
                server: 1,
                epoch: 42,
                t_s: 42.0,
                power_w: 87.5,
                slack: -0.125,
                be_throughput: 0.5,
            },
            Message::TelemetryAck { cap_factor: 0.6 },
            Message::CompleteAck,
            Message::Status,
            Message::StatusReport {
                expected: 4,
                live: 3,
                degraded: 1,
                done: 0,
            },
            Message::Shutdown,
            Message::ShutdownAck,
            Message::FedPull {
                follower: "fed-1".into(),
                from_version: 17,
            },
            Message::FedEntries {
                leader_version: 19,
                snapshot: Some(Box::new(pocolo_core::federation::FedSnapshot {
                    version: 18,
                    tick: 180,
                    app_region: vec![0, 1, 1],
                    budget_w: vec![400.0, 350.0],
                    migrating: vec![pocolo_core::federation::MigrationRecord {
                        app: 2,
                        to: 1,
                        until_tick: 182,
                    }],
                })),
                entries: vec![pocolo_core::federation::FedLogEntry {
                    version: 19,
                    decision: pocolo_core::federation::FederationDecision {
                        tick: 190,
                        budget_w: vec![380.0, 370.0],
                        migrations: vec![pocolo_core::federation::MigrationIntent {
                            app: 0,
                            from: 0,
                            to: 1,
                            gain: 0.25,
                        }],
                    },
                }],
            },
            Message::FedEntries {
                leader_version: 0,
                snapshot: None,
                entries: Vec::new(),
            },
            Message::Error {
                message: "nope".into(),
            },
        ];
        for msg in msgs {
            let decoded = Message::from_value(&msg.to_value()).unwrap();
            assert_eq!(decoded, msg, "{} did not round-trip", msg.type_name());
        }
    }

    #[test]
    fn frames_round_trip_over_a_byte_pipe() {
        let mut buf = Vec::new();
        let v = Message::TelemetryAck { cap_factor: 0.875 }.to_value();
        write_frame(&mut buf, &v).unwrap();
        write_frame(&mut buf, &Message::Status.to_value()).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), v);
        assert_eq!(read_frame(&mut r).unwrap(), Message::Status.to_value());
        assert!(read_frame(&mut r).is_err(), "pipe is drained");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::from(u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"garbage");
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, NetError::Frame(_)), "got {err}");
    }

    #[test]
    fn register_without_class_field_decodes_as_v1_compat() {
        // A frame from a peer built before heterogeneous fleets: no
        // "class" key at all. It must decode, not error.
        let v = json!({"v": PROTOCOL_VERSION, "type": "register", "agent": "old-agent"});
        assert_eq!(
            Message::from_value(&v).unwrap(),
            Message::Register {
                agent: "old-agent".into(),
                class: None,
            }
        );
        // And an explicit null is treated the same as absent.
        let v =
            json!({"v": PROTOCOL_VERSION, "type": "register", "agent": "a", "class": Value::Null});
        assert!(matches!(
            Message::from_value(&v).unwrap(),
            Message::Register { class: None, .. }
        ));
        // A declared class does not leak into classless encodings.
        let plain = Message::Register {
            agent: "a".into(),
            class: None,
        };
        assert!(plain.to_value().get("class").is_none());
    }

    #[test]
    fn wrong_version_and_unknown_type_are_typed_errors() {
        let v = json!({"v": 99u64, "type": "register", "agent": "x"});
        assert!(matches!(
            Message::from_value(&v),
            Err(NetError::Protocol(_))
        ));
        let v = json!({"v": PROTOCOL_VERSION, "type": "frobnicate"});
        assert!(matches!(
            Message::from_value(&v),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn malformed_frame_bytes_are_typed_errors() {
        // Truncated prefix, truncated payload, non-JSON payload.
        assert!(read_frame(&mut &[0u8, 0][..]).is_err());
        let mut buf = Vec::from(8u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        assert!(read_frame(&mut &buf[..]).is_err());
        let mut buf = Vec::from(3u32.to_be_bytes());
        buf.extend_from_slice(b"{{{");
        assert!(matches!(read_frame(&mut &buf[..]), Err(NetError::Frame(_))));
    }

    #[test]
    fn run_spec_degraded_slot_falls_back_to_incremental_control() {
        let spec = spec();
        let healthy = spec.slot_spec(0, false);
        assert_eq!(healthy.policy, spec.policy);
        assert_eq!(healthy.be, BeApp::Lstm);
        assert_eq!(healthy.rank, 1);
        let degraded = spec.slot_spec(0, true);
        assert!(matches!(degraded.policy, Policy::Heracles { .. }));
    }
}

//! The readiness-polling reactor: one event loop, many connections.
//!
//! Replaces thread-per-connection serving for the cluster daemon. A
//! single thread multiplexes every connection through a
//! [`compat_mio::Poll`] selector:
//!
//! - **reads** are frame-at-a-time and nonblocking — each connection owns
//!   a [`FrameBuffer`] that reassembles fragments, and every frame that
//!   completes in one wakeup is handled in that wakeup;
//! - **writes** are interest-driven — replies queue into a bounded
//!   outbound buffer flushed with one `write` per connection per wakeup
//!   (replies produced together coalesce into one syscall, which is what
//!   batches telemetry acks), and `WRITABLE` interest is registered only
//!   while bytes are actually pending;
//! - **backpressure** is a hard bound — a connection whose outbound
//!   queue exceeds the high-water mark is disconnected with
//!   [`DisconnectReason::SlowConsumer`] so a slow agent can never grow an
//!   unbounded buffer (the cluster layer turns this into a degraded
//!   slot);
//! - **timers** ride a [`TimerWheel`] advanced from the poll loop — no
//!   sleeping side threads — and [`EventHandler::on_timer`] fires on the
//!   loop thread;
//! - **shutdown** rides the selector's [`Waker`]: external shutdown wakes
//!   the loop instead of polling a flag on a sleep cadence, and a
//!   handler-requested shutdown (the `shutdown` RPC) first drains the
//!   final reply.

use std::io::{self, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use compat_mio::{net, Events, Interest, Poll, Token, Waker};

use crate::error::NetError;
use crate::frame::{encode_frame, Decoded, FrameBuffer, ReadStatus};
use crate::timer::TimerWheel;
use crate::wire::Message;

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
/// First token used for connections; slab index = token - CONN_BASE.
const CONN_BASE: usize = 2;

/// Identifies one live connection within the reactor. Indices are reused
/// after a disconnect, so handlers must clean their maps in
/// [`EventHandler::on_disconnect`].
pub type ConnId = usize;

/// Why the reactor dropped a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisconnectReason {
    /// The peer closed the connection (normal end-of-stream).
    Eof,
    /// A socket-level read or write error.
    IoError,
    /// The outbound queue exceeded the high-water mark: the peer is not
    /// draining replies fast enough and unbounded buffering is refused.
    SlowConsumer,
    /// The byte stream lost framing (invalid length prefix); no further
    /// bytes can be trusted.
    BadFraming,
}

/// A handler's reply to one request frame.
#[derive(Debug)]
pub struct Reply {
    frame: Vec<u8>,
    shutdown: bool,
}

impl Reply {
    /// Encodes a message reply. An unencodable message (frame cap) is
    /// downgraded to a typed error reply rather than killing the loop.
    pub fn msg(message: &Message) -> Reply {
        let frame = encode_frame(&message.to_value()).unwrap_or_else(|e| {
            encode_frame(
                &Message::Error {
                    message: e.to_string(),
                }
                .to_value(),
            )
            .expect("error reply encodes")
        });
        Reply {
            frame,
            shutdown: false,
        }
    }

    /// Wraps pre-encoded frame bytes (length prefix included). The splice
    /// point for cached payloads like the welcome frame.
    pub fn raw(frame: Vec<u8>) -> Reply {
        Reply {
            frame,
            shutdown: false,
        }
    }

    /// Encodes a typed error reply.
    pub fn error(e: &NetError) -> Reply {
        Reply::msg(&Message::Error {
            message: e.to_string(),
        })
    }

    /// Marks this reply as the server's last: the reactor flushes it,
    /// then stops.
    #[must_use]
    pub fn then_shutdown(mut self) -> Reply {
        self.shutdown = true;
        self
    }

    /// The encoded frame bytes, for handlers that cache reply encodings.
    pub fn into_frame(self) -> Vec<u8> {
        self.frame
    }
}

/// Reactor-side request handler. All methods run on the event-loop
/// thread; `&mut self` state needs no locks unless it is also read from
/// other threads.
pub trait EventHandler: Send + 'static {
    /// Called once before the loop starts — the place to arm timers.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Handles one decoded request; the strict request/response protocol
    /// means every request gets exactly one reply.
    fn handle(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, request: Message) -> Reply;

    /// A timer scheduled through [`Ctx::schedule`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _key: u64) {}

    /// A connection closed. Slab indices are reused — clean any
    /// `ConnId`-keyed state here.
    fn on_disconnect(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, _reason: DisconnectReason) {}
}

/// Loop-thread context handed to every [`EventHandler`] call.
#[derive(Debug)]
pub struct Ctx<'a> {
    wheel: &'a mut TimerWheel<u64>,
    now: Instant,
}

impl Ctx<'_> {
    /// The loop's notion of now (one clock read per wakeup).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Arms a one-shot timer; [`EventHandler::on_timer`] fires with `key`
    /// after roughly `after` (rounded up to the wheel tick). Periodic
    /// work re-arms itself from `on_timer`.
    pub fn schedule(&mut self, after: Duration, key: u64) {
        self.wheel.schedule(self.now, after, key);
    }
}

/// Reactor configuration.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Address to listen on (port 0 for ephemeral).
    pub listen: SocketAddr,
    /// Outbound queue cap per connection, in bytes. Exceeding it is a
    /// [`DisconnectReason::SlowConsumer`] disconnect.
    pub outbound_hiwater: usize,
    /// Timer wheel resolution.
    pub wheel_tick: Duration,
}

impl ReactorConfig {
    /// Defaults sized for the cluster protocol: frames are small except
    /// the welcome (~100 KiB at 5k slots), so one megabyte of queued
    /// replies means a peer that stopped reading long ago.
    pub fn new(listen: SocketAddr) -> ReactorConfig {
        ReactorConfig {
            listen,
            outbound_hiwater: 1024 * 1024,
            wheel_tick: Duration::from_millis(10),
        }
    }
}

#[derive(Debug)]
struct Shared {
    stop: AtomicBool,
    open_conns: AtomicUsize,
}

/// A running reactor server. Dropping the handle does *not* stop it;
/// call [`ReactorServer::shutdown`].
#[derive(Debug)]
pub struct ReactorServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    waker: Arc<Waker>,
    thread: Option<JoinHandle<()>>,
}

impl ReactorServer {
    /// Binds and starts the event loop on its own thread.
    pub fn spawn<H: EventHandler>(
        config: ReactorConfig,
        handler: H,
    ) -> Result<ReactorServer, NetError> {
        let listener = net::TcpListener::bind(config.listen)?;
        let addr = listener.local_addr()?;
        let poll = Poll::new()?;
        poll.register(&listener, LISTENER, Interest::READABLE)?;
        let waker = Arc::new(Waker::new(&poll, WAKER)?);
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            open_conns: AtomicUsize::new(0),
        });
        let state = LoopState {
            poll,
            listener,
            handler,
            wheel: TimerWheel::new(Instant::now(), config.wheel_tick, 256),
            conns: Vec::new(),
            free: Vec::new(),
            shared: Arc::clone(&shared),
            hiwater: config.outbound_hiwater.max(1),
            stopping: None,
        };
        let thread = std::thread::Builder::new()
            .name("pocolo-reactor".into())
            .spawn(move || run_loop(state))?;
        Ok(ReactorServer {
            addr,
            shared,
            waker,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently registered with the loop. The churn soak
    /// test uses this to assert closed connections are actually released.
    pub fn open_connections(&self) -> usize {
        self.shared.open_conns.load(Ordering::SeqCst)
    }

    /// Stops the loop via the selector waker and joins it.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Outbound byte queue: contiguous pending slice (one `write` flushes
/// everything queued so far), head compaction, O(1) length check against
/// the high-water mark.
#[derive(Debug, Default)]
struct OutBuf {
    buf: Vec<u8>,
    head: usize,
}

impl OutBuf {
    fn push(&mut self, bytes: &[u8]) {
        if self.head > 4096 && self.head * 2 >= self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    fn pending(&self) -> &[u8] {
        &self.buf[self.head..]
    }

    fn consume(&mut self, n: usize) {
        self.head += n;
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        }
    }

    fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Debug)]
struct Conn {
    stream: net::TcpStream,
    in_buf: FrameBuffer,
    out: OutBuf,
    /// Whether WRITABLE interest is currently registered.
    write_interest: bool,
}

struct LoopState<H> {
    poll: Poll,
    listener: net::TcpListener,
    handler: H,
    wheel: TimerWheel<u64>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    shared: Arc<Shared>,
    hiwater: usize,
    /// A shutdown reply is draining on this connection; the loop stops
    /// once it is flushed (or the connection dies).
    stopping: Option<ConnId>,
}

enum FlushOutcome {
    /// Everything pending was written.
    Done,
    /// The socket would block; WRITABLE interest should be armed.
    Partial,
    /// The socket failed.
    Dead,
}

fn run_loop<H: EventHandler>(mut state: LoopState<H>) {
    let mut events = Events::with_capacity(1024);
    let mut fired: Vec<u64> = Vec::new();
    {
        let now = Instant::now();
        state.handler.on_start(&mut Ctx {
            wheel: &mut state.wheel,
            now,
        });
    }
    loop {
        if state.shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if let Some(id) = state.stopping {
            let drained = state.conns[id].as_ref().is_none_or(|c| c.out.is_empty());
            if drained {
                break;
            }
        }
        let now = Instant::now();
        let timeout = state
            .wheel
            .next_wakeup(now)
            .unwrap_or(Duration::from_millis(250));
        if state.poll.poll(&mut events, Some(timeout)).is_err() {
            break;
        }
        for event in &events {
            match event.token() {
                LISTENER => state.accept_ready(),
                WAKER => {} // stop flag is re-checked at the loop top
                Token(t) => {
                    let idx = t - CONN_BASE;
                    if state.conns.get(idx).is_none_or(Option::is_none) {
                        continue; // stale event for a closed connection
                    }
                    if event.is_writable() {
                        state.conn_writable(idx);
                    }
                    if state.conns[idx].is_some() && (event.is_readable() || event.is_read_closed())
                    {
                        state.conn_readable(idx);
                    }
                }
            }
        }
        let now = Instant::now();
        state.wheel.advance(now, &mut fired);
        for key in fired.drain(..) {
            let mut ctx = Ctx {
                wheel: &mut state.wheel,
                now,
            };
            state.handler.on_timer(&mut ctx, key);
        }
    }
    // Loop exit: sockets close on drop; report zero live connections.
    state.shared.open_conns.store(0, Ordering::SeqCst);
    state.shared.stop.store(true, Ordering::SeqCst);
}

impl<H: EventHandler> LoopState<H> {
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    let idx = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    let token = Token(idx + CONN_BASE);
                    if self
                        .poll
                        .register(&stream, token, Interest::READABLE)
                        .is_err()
                    {
                        self.free.push(idx);
                        continue; // drop the connection; peer will retry
                    }
                    self.conns[idx] = Some(Conn {
                        stream,
                        in_buf: FrameBuffer::new(),
                        out: OutBuf::default(),
                        write_interest: false,
                    });
                    self.shared.open_conns.fetch_add(1, Ordering::SeqCst);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (e.g. fd pressure, peer reset
                // before accept): yield to the loop rather than spinning.
                Err(_) => break,
            }
        }
    }

    /// Reads everything available, handles every completed frame, and
    /// flushes the coalesced replies with one write.
    fn conn_readable(&mut self, idx: usize) {
        let now = Instant::now();
        let status = {
            let conn = self.conns[idx].as_mut().expect("checked live");
            match conn.in_buf.fill_from(&mut conn.stream) {
                Ok(s) => s,
                Err(_) => {
                    self.close(idx, DisconnectReason::IoError);
                    return;
                }
            }
        };
        let mut shutdown_after = false;
        let mut fatal_framing = false;
        loop {
            let decoded = {
                let conn = self.conns[idx].as_mut().expect("checked live");
                conn.in_buf.next()
            };
            let reply = match decoded {
                Ok(None) => break,
                Ok(Some(Decoded::Frame(value))) => match Message::from_value(&value) {
                    Ok(request) => {
                        let mut ctx = Ctx {
                            wheel: &mut self.wheel,
                            now,
                        };
                        self.handler.handle(&mut ctx, idx, request)
                    }
                    Err(e) => Reply::error(&e),
                },
                Ok(Some(Decoded::Corrupt(message))) => Reply::msg(&Message::Error { message }),
                Err(e) => {
                    // Framing is unrecoverable: best-effort error reply,
                    // then the connection dies below.
                    fatal_framing = true;
                    Reply::error(&e)
                }
            };
            shutdown_after |= reply.shutdown;
            let conn = self.conns[idx].as_mut().expect("checked live");
            conn.out.push(&reply.frame);
            if fatal_framing {
                break;
            }
        }
        if self.conns[idx].is_none() {
            return;
        }
        match self.flush(idx) {
            FlushOutcome::Dead => {
                self.close(idx, DisconnectReason::IoError);
                return;
            }
            FlushOutcome::Done | FlushOutcome::Partial => {}
        }
        if let Some(conn) = self.conns[idx].as_ref() {
            if conn.out.len() > self.hiwater {
                self.close(idx, DisconnectReason::SlowConsumer);
                return;
            }
        }
        if fatal_framing {
            self.close(idx, DisconnectReason::BadFraming);
            return;
        }
        if shutdown_after {
            self.stopping = Some(idx);
        }
        if status == ReadStatus::Eof {
            // Peer closed; buffered requests were already answered and
            // the flush above was the last chance to deliver replies.
            self.close(idx, DisconnectReason::Eof);
        }
    }

    fn conn_writable(&mut self, idx: usize) {
        match self.flush(idx) {
            FlushOutcome::Dead => self.close(idx, DisconnectReason::IoError),
            FlushOutcome::Done | FlushOutcome::Partial => {}
        }
    }

    /// Writes as much pending output as the socket accepts and keeps
    /// WRITABLE interest registered exactly while bytes remain.
    fn flush(&mut self, idx: usize) -> FlushOutcome {
        let conn = self.conns[idx].as_mut().expect("checked live");
        let outcome = loop {
            if conn.out.is_empty() {
                break FlushOutcome::Done;
            }
            match conn.stream.write(conn.out.pending()) {
                Ok(0) => break FlushOutcome::Dead,
                Ok(n) => conn.out.consume(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break FlushOutcome::Partial,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break FlushOutcome::Dead,
            }
        };
        let want_write = matches!(outcome, FlushOutcome::Partial);
        if want_write != conn.write_interest {
            let interest = if want_write {
                Interest::READABLE | Interest::WRITABLE
            } else {
                Interest::READABLE
            };
            if self
                .poll
                .reregister(&conn.stream, Token(idx + CONN_BASE), interest)
                .is_ok()
            {
                conn.write_interest = want_write;
            }
        }
        outcome
    }

    fn close(&mut self, idx: usize, reason: DisconnectReason) {
        if let Some(conn) = self.conns[idx].take() {
            let _ = self.poll.deregister(&conn.stream, Token(idx + CONN_BASE));
            self.free.push(idx);
            self.shared.open_conns.fetch_sub(1, Ordering::SeqCst);
            drop(conn);
            let mut ctx = Ctx {
                wheel: &mut self.wheel,
                now: Instant::now(),
            };
            self.handler.on_disconnect(&mut ctx, idx, reason);
            if self.stopping == Some(idx) {
                // The drain target died; nothing left to wait for.
                self.shared.stop.store(true, Ordering::SeqCst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RpcClient;
    use pocolo_faults::RetryPolicy;
    use std::sync::Mutex;

    struct EchoHandler {
        disconnects: Arc<Mutex<Vec<(ConnId, DisconnectReason)>>>,
        ticks: Arc<AtomicUsize>,
        pad: usize,
    }

    impl EventHandler for EchoHandler {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule(Duration::from_millis(20), 7);
        }

        fn handle(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, request: Message) -> Reply {
            match request {
                Message::Status => Reply::msg(&Message::StatusReport {
                    expected: 4,
                    live: 4,
                    degraded: 0,
                    done: 0,
                }),
                Message::Register { .. } => Reply::msg(&Message::Error {
                    message: "x".repeat(self.pad),
                }),
                Message::Shutdown => Reply::msg(&Message::ShutdownAck).then_shutdown(),
                other => Reply::error(&NetError::Protocol(format!(
                    "unexpected {}",
                    other.type_name()
                ))),
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_>, key: u64) {
            assert_eq!(key, 7);
            self.ticks.fetch_add(1, Ordering::SeqCst);
            ctx.schedule(Duration::from_millis(20), 7);
        }

        fn on_disconnect(&mut self, _ctx: &mut Ctx<'_>, conn: ConnId, reason: DisconnectReason) {
            self.disconnects.lock().unwrap().push((conn, reason));
        }
    }

    type DisconnectLog = Arc<Mutex<Vec<(ConnId, DisconnectReason)>>>;

    fn spawn_echo(hiwater: usize, pad: usize) -> (ReactorServer, DisconnectLog, Arc<AtomicUsize>) {
        let disconnects = Arc::new(Mutex::new(Vec::new()));
        let ticks = Arc::new(AtomicUsize::new(0));
        let mut config = ReactorConfig::new("127.0.0.1:0".parse().unwrap());
        config.outbound_hiwater = hiwater;
        let server = ReactorServer::spawn(
            config,
            EchoHandler {
                disconnects: Arc::clone(&disconnects),
                ticks: Arc::clone(&ticks),
                pad,
            },
        )
        .unwrap();
        (server, disconnects, ticks)
    }

    #[test]
    fn request_reply_and_error_semantics_match_the_blocking_server() {
        let (mut server, _d, _t) = spawn_echo(1024 * 1024, 8);
        let mut retry = RetryPolicy::reconnect(1);
        let mut client =
            RpcClient::connect(server.local_addr(), &mut retry, Duration::from_secs(2)).unwrap();
        let reply = client.call(&Message::Status).unwrap();
        assert!(matches!(reply, Message::StatusReport { expected: 4, .. }));
        // Handler errors come back typed; the connection survives.
        let err = client.call(&Message::CompleteAck).unwrap_err();
        assert!(matches!(err, NetError::Remote(_)), "got {err}");
        let reply = client.call(&Message::Status).unwrap();
        assert!(matches!(reply, Message::StatusReport { .. }));
        assert_eq!(server.open_connections(), 1);
        server.shutdown();
    }

    #[test]
    fn garbage_bytes_get_an_error_reply_not_a_crash() {
        use std::io::{Read as _, Write as _};
        let (mut server, _d, _t) = spawn_echo(1024 * 1024, 8);
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&3u32.to_be_bytes()).unwrap();
        raw.write_all(b"]]]").unwrap();
        let mut len = [0u8; 4];
        raw.read_exact(&mut len).unwrap();
        let mut body = vec![0u8; u32::from_be_bytes(len) as usize];
        raw.read_exact(&mut body).unwrap();
        let text = std::str::from_utf8(&body).unwrap();
        assert!(text.contains("error"), "got {text}");
        server.shutdown();
    }

    #[test]
    fn shutdown_rpc_drains_the_ack_then_stops() {
        let (server, _d, _t) = spawn_echo(1024 * 1024, 8);
        let addr = server.local_addr();
        let mut retry = RetryPolicy::reconnect(2);
        let mut client = RpcClient::connect(addr, &mut retry, Duration::from_secs(2)).unwrap();
        let reply = client.call(&Message::Shutdown).unwrap();
        assert_eq!(reply, Message::ShutdownAck);
        drop(server); // joins the (now-stopped) loop
    }

    #[test]
    fn timers_fire_on_the_loop_thread() {
        let (mut server, _d, ticks) = spawn_echo(1024 * 1024, 8);
        let deadline = Instant::now() + Duration::from_secs(5);
        while ticks.load(Ordering::SeqCst) < 3 {
            assert!(Instant::now() < deadline, "timer never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown();
    }

    #[test]
    fn slow_consumer_is_disconnected_at_the_high_water_mark() {
        use std::io::Write as _;
        // Tiny hiwater, fat replies: a client that writes requests but
        // never reads replies must be kicked, not buffered forever.
        let (mut server, disconnects, _t) = spawn_echo(4 * 1024, 32 * 1024);
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let mut frame = Vec::new();
        crate::wire::write_frame(
            &mut frame,
            &Message::Register {
                class: None,
                agent: "flood".into(),
            }
            .to_value(),
        )
        .unwrap();
        // Each request provokes a 32 KiB reply; the kernel's socket
        // buffers absorb the first few, then the outbound queue crosses
        // the 4 KiB mark and the reactor cuts the connection.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            assert!(Instant::now() < deadline, "slow consumer never kicked");
            if raw.write_all(&frame).is_err() {
                break; // server reset the connection
            }
            let kicked = disconnects
                .lock()
                .unwrap()
                .iter()
                .any(|(_, r)| *r == DisconnectReason::SlowConsumer);
            if kicked {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.open_connections() != 0 {
            assert!(Instant::now() < deadline, "connection not released");
            std::thread::sleep(Duration::from_millis(5));
        }
        let kicked = disconnects
            .lock()
            .unwrap()
            .iter()
            .any(|(_, r)| *r == DisconnectReason::SlowConsumer);
        assert!(kicked, "disconnect reason was not SlowConsumer");
        server.shutdown();
    }
}

//! Loopback harness: the seeded sim workloads driven through the real
//! wire path, verified against the in-process engine.
//!
//! [`run_demo`] spawns a [`Clusterd`] on an ephemeral loopback port and
//! one agent thread per server slot, waits for every slot to deliver its
//! metrics, and runs the identical experiment in-process for comparison.
//! On a clean run the two results must be equal field-for-field — the
//! wire path is verified against the engine, not trusted. With the kill
//! switch armed the harness also exercises the failure path end-to-end:
//! one agent dies mid-run, its lease expires, the slot flips to the
//! degraded fallback, and a restarted agent under the same identity
//! reclaims and re-runs the slot.

use std::time::{Duration, Instant};

use pocolo_sim::experiment::{run_experiment_with, ExperimentConfig, ExperimentResult};
use pocolo_sim::{compile_fault_plan, run_server_projection, Policy, ServerMetrics};

use crate::agent::{default_fit, run_agent, AgentConfig, AgentReport};
use crate::cluster::{ClusterConfig, Clusterd, NetBackend, SlotState};
use crate::error::NetError;
use crate::swarm::{run_swarm, scale_reference, SwarmConfig, SwarmReport};
use crate::wire::RunSpec;

/// Configuration of one loopback demonstration run.
#[derive(Debug, Clone)]
pub struct DemoConfig {
    /// Placement policy under evaluation.
    pub policy: Policy,
    /// The experiment both paths run. Must keep the default profiler —
    /// agents always fit from profiler defaults.
    pub experiment: ExperimentConfig,
    /// Heartbeat lease TTL. Short in tests so expiry is fast; a real
    /// deployment would use a few missed heartbeats' worth.
    pub lease_ttl: Duration,
    /// Socket deadlines for daemon and agents.
    pub io_timeout: Duration,
    /// Kill the first agent after this many control epochs, then restart
    /// it (same identity) once its lease has expired.
    pub kill_after_epochs: Option<u64>,
    /// Wall-clock budget for the whole loopback run.
    pub deadline: Duration,
    /// Transport backend the daemon serves on. The parity assertions are
    /// backend-independent — that is the point of running them on both.
    pub backend: NetBackend,
}

impl DemoConfig {
    /// A demo with deadlines sized for loopback.
    pub fn new(policy: Policy, experiment: ExperimentConfig) -> Self {
        DemoConfig {
            policy,
            experiment,
            lease_ttl: Duration::from_millis(250),
            io_timeout: Duration::from_secs(5),
            kill_after_epochs: None,
            deadline: Duration::from_secs(120),
            backend: NetBackend::default(),
        }
    }
}

/// What the loopback run produced, on both paths.
#[derive(Debug, Clone)]
pub struct DemoReport {
    /// Result assembled by the cluster daemon from wire-delivered metrics.
    pub wire: ExperimentResult,
    /// The same experiment run entirely in-process.
    pub in_process: ExperimentResult,
    /// The placement the daemon pushed (BE app name per slot).
    pub placement: Vec<String>,
    /// Slots that passed through the degraded state at least once.
    pub degraded_slots: Vec<usize>,
    /// Failure re-registrations the daemon observed.
    pub reregistrations: usize,
    /// The kill-switch agent's report, when a kill was requested.
    pub killed: Option<AgentReport>,
    /// In-process reference for the killed slot's degraded re-run:
    /// `(slot, metrics)` from driving the same degraded [`SlotSpec`]
    /// (same fault timeline, same seeds) without any wire in between.
    ///
    /// [`SlotSpec`]: pocolo_sim::SlotSpec
    pub degraded_reference: Option<(usize, ServerMetrics)>,
}

impl DemoReport {
    /// True when the wire path reproduced the in-process result exactly —
    /// the clean-run acceptance criterion. A killed agent legitimately
    /// breaks parity: its slot re-ran under the degraded controller.
    pub fn parity(&self) -> bool {
        self.wire == self.in_process
    }

    /// True when no slot ran hotter than its in-process reference. The
    /// engine's 100 ms capper is reactive, so a transient overshoot
    /// between capper ticks is part of its contract — what the wire path
    /// must guarantee is that it adds *no* violation beyond that: every
    /// slot's peak power is bounded by the peak the in-process engine
    /// produces for the identical (healthy or degraded) run.
    pub fn cap_respected(&self) -> bool {
        self.wire.pairs.iter().enumerate().all(|(i, p)| {
            let reference = match &self.degraded_reference {
                Some((slot, m)) if *slot == i => m.peak_power,
                _ => self.in_process.pairs[i].metrics.peak_power,
            };
            p.metrics.peak_power.0 <= reference.0 + 1e-9
        })
    }

    /// True when the killed slot's wire-delivered metrics equal the
    /// in-process degraded projection bit-for-bit (vacuously true on a
    /// clean run).
    pub fn degraded_parity(&self) -> bool {
        match &self.degraded_reference {
            Some((slot, reference)) => self.wire.pairs[*slot].metrics == *reference,
            None => true,
        }
    }
}

/// Runs the full loopback demonstration.
///
/// # Errors
///
/// Returns a [`NetError`] when an agent fails in an unplanned way, a
/// lease never expires, or the cluster misses the wall-clock deadline.
pub fn run_demo(config: &DemoConfig) -> Result<DemoReport, NetError> {
    let fitted = default_fit();
    let run = RunSpec::plan(config.policy, &config.experiment, fitted);
    let n = run.n_servers();
    let mut cluster_config = ClusterConfig::new(
        "127.0.0.1:0".parse().expect("loopback literal"),
        config.lease_ttl,
        run.clone(),
    );
    cluster_config.backend = config.backend;
    let clusterd = Clusterd::spawn(cluster_config)?;
    let addr = clusterd.local_addr();

    let handles: Vec<_> = (0..n)
        .map(|i| {
            let mut agent = AgentConfig::new(addr, format!("agent-{i}"));
            agent.io_timeout = config.io_timeout;
            if i == 0 {
                agent.die_after_epochs = config.kill_after_epochs;
            }
            std::thread::spawn(move || run_agent(&agent))
        })
        .collect();
    let mut killed: Option<AgentReport> = None;
    for handle in handles {
        let report = handle
            .join()
            .map_err(|_| NetError::Protocol("agent thread panicked".into()))??;
        if !report.completed {
            killed = Some(report);
        }
    }

    // The failure path: wait for the dead agent's lease to expire, then
    // restart it under the same identity. The daemon hands back the same
    // slot, flagged degraded, and the replacement re-runs it end-to-end.
    if let Some(dead) = &killed {
        let start = Instant::now();
        loop {
            if matches!(
                clusterd.slot_states()[dead.server],
                SlotState::Degraded { .. }
            ) {
                break;
            }
            if start.elapsed() > config.deadline {
                return Err(NetError::Protocol(format!(
                    "slot {} lease never expired",
                    dead.server
                )));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut replacement = AgentConfig::new(addr, "agent-0".to_string());
        replacement.io_timeout = config.io_timeout;
        let report = run_agent(&replacement)?;
        if !report.degraded || report.server != dead.server {
            return Err(NetError::Protocol(format!(
                "replacement agent got slot {} (degraded: {}), expected degraded slot {}",
                report.server, report.degraded, dead.server
            )));
        }
    }

    if !clusterd.wait_done(config.deadline) {
        return Err(NetError::Protocol(
            "cluster did not complete within the deadline".into(),
        ));
    }
    let wire = clusterd
        .result()
        .ok_or_else(|| NetError::Protocol("daemon finished without full results".into()))?;
    let in_process = run_experiment_with(config.policy, &config.experiment, fitted);
    // The killed slot re-ran degraded, so the cluster-level comparison
    // cannot cover it; replay the same degraded slot in-process (same
    // spec, same compiled fault timeline) as its reference.
    let degraded_reference = killed.as_ref().map(|dead| {
        let mut sim = run.slot_spec(dead.server, true).build(fitted);
        let events = match &run.faults {
            Some(spec) => {
                let (timeline, _) = compile_fault_plan(
                    spec,
                    run.seed,
                    run.duration_s,
                    fitted,
                    &run.placement,
                    run.resilience,
                );
                timeline.server_events(dead.server).to_vec()
            }
            None => Vec::new(),
        };
        run_server_projection(
            &mut sim,
            &events,
            run.manager_period_s,
            run.capper_period_s,
            run.duration_s,
            |_, _| true,
        );
        (dead.server, sim.metrics().clone())
    });
    Ok(DemoReport {
        wire,
        in_process,
        placement: run.placement.iter().map(|a| a.name().to_string()).collect(),
        degraded_slots: clusterd.degraded_history(),
        reregistrations: clusterd.reregistrations(),
        killed,
        degraded_reference,
    })
}

/// Configuration of one scale demonstration: `agents` swarm agents
/// heartbeating against a single daemon event loop.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Simulated agents (one slot and one connection each).
    pub agents: usize,
    /// Telemetry frames per agent.
    pub heartbeats: u64,
    /// Pacing between one agent's heartbeats. `ZERO` = closed-loop.
    pub heartbeat_every: Duration,
    /// Heartbeat lease TTL on the daemon.
    pub lease_ttl: Duration,
    /// Transport backend under test.
    pub backend: NetBackend,
    /// Run seed (drives the synthetic telemetry).
    pub seed: u64,
    /// Wall-clock budget for the whole run.
    pub deadline: Duration,
}

impl ScaleConfig {
    /// A scale run with paper-shaped defaults: 1 s heartbeats, a lease
    /// that tolerates two missed beats.
    pub fn new(agents: usize, heartbeats: u64) -> ScaleConfig {
        ScaleConfig {
            agents,
            heartbeats,
            heartbeat_every: Duration::from_secs(1),
            lease_ttl: Duration::from_secs(3),
            backend: NetBackend::default(),
            seed: 7,
            deadline: Duration::from_secs(300),
        }
    }
}

/// What a scale run produced.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Swarm-side statistics (connect wall, RTT samples, outcomes).
    pub swarm: SwarmReport,
    /// The result the daemon assembled from wire-delivered metrics.
    pub wire: ExperimentResult,
    /// Whether `wire` equals the timing-independent in-process
    /// reference bit-for-bit.
    pub parity: bool,
}

/// Runs `agents` swarm agents against one daemon event loop and verifies
/// the assembled result against [`scale_reference`].
///
/// # Errors
///
/// Returns a [`NetError`] when any connection fails, the daemon misses
/// the deadline, or (for the caller to surface) parity is reported
/// false in the result — the run itself still returns `Ok` so callers
/// can inspect the divergence.
pub fn run_demo_scale(config: &ScaleConfig) -> Result<ScaleReport, NetError> {
    let run = RunSpec::scale(config.agents, config.seed);
    let mut cluster_config = ClusterConfig::new(
        "127.0.0.1:0".parse().expect("loopback literal"),
        config.lease_ttl,
        run.clone(),
    );
    cluster_config.backend = config.backend;
    let mut clusterd = Clusterd::spawn(cluster_config)?;

    let mut swarm_config = SwarmConfig::new(
        clusterd.local_addr(),
        config.agents,
        config.heartbeats,
        config.seed,
    );
    swarm_config.heartbeat_every = config.heartbeat_every;
    swarm_config.deadline = config.deadline;
    let swarm = run_swarm(&swarm_config)?;

    if !clusterd.wait_done(config.deadline) {
        return Err(NetError::Protocol(
            "scale run: daemon did not assemble results within the deadline".into(),
        ));
    }
    let wire = clusterd
        .result()
        .ok_or_else(|| NetError::Protocol("daemon finished without full results".into()))?;
    let parity = wire == scale_reference(&run, config.heartbeats);
    clusterd.shutdown();
    Ok(ScaleReport {
        swarm,
        wire,
        parity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_cluster::Solver;

    fn quick_config(policy: Policy) -> DemoConfig {
        DemoConfig::new(
            policy,
            ExperimentConfig {
                dwell_s: 2.0,
                seed: 1,
                ..ExperimentConfig::default()
            },
        )
    }

    #[test]
    fn loopback_run_reproduces_the_in_process_engine() {
        let report = run_demo(&quick_config(Policy::Pocolo {
            solver: Solver::Hungarian,
        }))
        .unwrap();
        assert!(report.parity(), "wire result diverged from in-process");
        assert_eq!(report.placement.len(), 4);
        assert!(report.degraded_slots.is_empty());
        assert_eq!(report.reregistrations, 0);
        assert!(report.killed.is_none());
    }
}

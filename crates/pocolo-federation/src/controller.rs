//! The pure federation decision layer.
//!
//! [`RegionController`] is the federation-tier analogue of the PR 3
//! `ServerController` split: a pure function from a
//! [`FederationInput`] telemetry snapshot to a [`FederationDecision`] —
//! no clocks, no I/O, no hidden state — so decisions replay
//! bit-identically from the replicated log and any replica that holds
//! the same state derives the same decision stream.
//!
//! Two coupled choices are made per epoch:
//!
//! 1. **Budget splits** (the CloudPowerCap move): the federation's
//!    contracted power `C` is less than the summed regional grid feeds,
//!    and fixing `C/R` per region strands power the moment one region
//!    browns out. The controller grants each region what its resident
//!    applications draw (capped by the derated grid feed), cheapest
//!    power first, then spreads the remainder as headroom.
//! 2. **Migration intents** (the interference/need-aware scoring): an
//!    application's per-tick score in a region is its utility rate
//!    there, discounted by the region's expected throttle and the
//!    region's power price. An application moves when the best
//!    alternative region beats its current score by more than the
//!    migration hysteresis — migration costs real downtime, so small
//!    gains must not thrash.

use pocolo_core::federation::{FederationDecision, FederationInput, MigrationIntent};

/// Tunables of the federation decision layer. All defaults are pinned —
/// they are part of the deterministic contract the CI gates replay.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Ticks between federation decisions.
    pub decide_period: u64,
    /// Migration downtime: drain + warm-start, in ticks.
    pub drain_ticks: u64,
    /// Minimum per-tick score gain before a migration is worth its
    /// downtime.
    pub hysteresis: f64,
    /// Migrations started per decision, at most (WAN bandwidth and
    /// operator-sanity bound).
    pub max_migrations: usize,
    /// Converts a region's power price into utility units: the score
    /// penalty is `price_weight * price * power_w`.
    pub price_weight: f64,
    /// Virtual-tick lease on the leader; a follower promotes itself when
    /// the leader has been silent this long. Must stay below
    /// `decide_period` so failover never skips a decision epoch.
    pub lease_ttl: u64,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            decide_period: 10,
            drain_ticks: 2,
            hysteresis: 0.02,
            max_migrations: 4,
            price_weight: 0.002,
            lease_ttl: 3,
        }
    }
}

/// The pure federation controller: decides, never actuates.
#[derive(Debug, Clone, Default)]
pub struct RegionController {
    /// The pinned tunables.
    pub config: FederationConfig,
}

impl RegionController {
    /// A controller with the given tunables.
    pub fn new(config: FederationConfig) -> Self {
        RegionController { config }
    }

    /// One federation decision from one telemetry snapshot. Pure and
    /// deterministic: identical inputs yield bit-identical decisions.
    pub fn decide(&self, input: &FederationInput) -> FederationDecision {
        let budget_w = self.split_budget(input);
        let migrations = self.score_migrations(input, &budget_w);
        FederationDecision {
            tick: input.tick,
            budget_w,
            migrations,
        }
    }

    /// Splits the contracted power across regions: need first (cheapest
    /// power first), then headroom, never exceeding a region's derated
    /// grid feed and never exceeding the contract in total.
    fn split_budget(&self, input: &FederationInput) -> Vec<f64> {
        let n = input.regions.len();
        let available: Vec<f64> = input.regions.iter().map(|r| r.available_w()).collect();
        let need: Vec<f64> = input
            .regions
            .iter()
            .map(|r| r.resident_power_w.min(r.available_w()))
            .collect();
        // Price-ascending grant order; ties break by region id so the
        // order (and therefore the split) is total.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            input.regions[a]
                .power_price
                .total_cmp(&input.regions[b].power_price)
                .then(a.cmp(&b))
        });
        let mut split = vec![0.0; n];
        let mut left = input.contracted_w;
        for &r in &order {
            let grant = need[r].min(left);
            split[r] = grant;
            left -= grant;
        }
        // Remaining contract becomes growth headroom, still cheapest
        // first and still grid-capped.
        if left > 0.0 {
            for &r in &order {
                let grant = (available[r] - split[r]).max(0.0).min(left);
                split[r] += grant;
                left -= grant;
                if left <= 0.0 {
                    break;
                }
            }
        }
        split
    }

    /// Expected fraction of demand a region can actually serve under a
    /// candidate split — the throttle a prospective migrant would share.
    fn supply_frac(need_w: f64, budget_w: f64) -> f64 {
        if need_w <= 0.0 {
            1.0
        } else {
            (budget_w / need_w).min(1.0)
        }
    }

    /// An application's per-tick score in a region: throttled utility
    /// rate minus the energy bill.
    fn score(&self, input: &FederationInput, app: usize, region: usize, frac: f64) -> f64 {
        let a = &input.apps[app];
        a.rates[region] * frac
            - self.config.price_weight * input.regions[region].power_price * a.power_w
    }

    /// Scored, hysteresis-gated migration intents, best gain first.
    fn score_migrations(&self, input: &FederationInput, split: &[f64]) -> Vec<MigrationIntent> {
        let n = input.regions.len();
        // Serving demand and slot occupancy per region under the new
        // split (in-flight migrants occupy a destination slot but draw
        // nothing yet).
        let mut need = vec![0.0; n];
        let mut occupied = vec![0usize; n];
        for a in &input.apps {
            occupied[a.region] += 1;
            if !a.migrating {
                need[a.region] += a.power_w;
            }
        }
        let mut candidates: Vec<MigrationIntent> = Vec::new();
        for a in &input.apps {
            if a.migrating {
                continue;
            }
            let cur = a.region;
            let cur_score = self.score(input, a.app, cur, Self::supply_frac(need[cur], split[cur]));
            let mut best: Option<MigrationIntent> = None;
            for to in 0..n {
                if to == cur || occupied[to] >= input.regions[to].slots {
                    continue;
                }
                // The candidate region would also power this app: judge
                // it by the throttle *after* arrival.
                let frac = Self::supply_frac(need[to] + a.power_w, split[to]);
                let gain = self.score(input, a.app, to, frac) - cur_score - self.config.hysteresis;
                if gain <= 0.0 {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some(b) => gain > b.gain || (gain == b.gain && to < b.to),
                };
                if better {
                    best = Some(MigrationIntent {
                        app: a.app,
                        from: cur,
                        to,
                        gain,
                    });
                }
            }
            if let Some(intent) = best {
                candidates.push(intent);
            }
        }
        // Highest gain first; ties break by app id. Commit greedily,
        // re-checking destination slots as earlier intents consume them.
        candidates.sort_by(|x, y| y.gain.total_cmp(&x.gain).then(x.app.cmp(&y.app)));
        let mut picked = Vec::new();
        for intent in candidates {
            if picked.len() >= self.config.max_migrations {
                break;
            }
            if occupied[intent.to] >= input.regions[intent.to].slots {
                continue;
            }
            occupied[intent.to] += 1;
            occupied[intent.from] -= 1;
            picked.push(intent);
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_core::federation::{AppStatus, RegionStatus};

    fn region(
        id: usize,
        price: f64,
        cap: f64,
        grid: f64,
        slots: usize,
        resident: f64,
    ) -> RegionStatus {
        RegionStatus {
            region: id,
            power_price: price,
            cap_factor: cap,
            grid_w: grid,
            slots,
            resident_power_w: resident,
        }
    }

    fn app(id: usize, region: usize, power: f64, rates: Vec<f64>) -> AppStatus {
        AppStatus {
            app: id,
            region,
            power_w: power,
            rates,
            migrating: false,
        }
    }

    #[test]
    fn split_covers_need_cheapest_first_and_respects_the_grid() {
        let ctl = RegionController::default();
        let input = FederationInput {
            tick: 0,
            contracted_w: 500.0,
            regions: vec![
                region(0, 1.5, 1.0, 400.0, 4, 300.0),
                region(1, 0.8, 1.0, 400.0, 4, 300.0),
            ],
            apps: Vec::new(),
        };
        let d = ctl.decide(&input);
        // Cheap region 1 is granted its full need; expensive region 0
        // gets what's left of the contract.
        assert_eq!(d.budget_w, vec![200.0, 300.0]);
        assert!(d.budget_w.iter().sum::<f64>() <= 500.0 + 1e-9);
    }

    #[test]
    fn brownout_caps_the_split_at_the_derated_feed() {
        let ctl = RegionController::default();
        let input = FederationInput {
            tick: 0,
            contracted_w: 600.0,
            regions: vec![
                region(0, 1.0, 0.5, 400.0, 4, 350.0), // browned out: 200 W available
                region(1, 1.0, 1.0, 400.0, 4, 300.0),
            ],
            apps: Vec::new(),
        };
        let d = ctl.decide(&input);
        assert!(d.budget_w[0] <= 200.0 + 1e-9, "split exceeds derated grid");
        // The stranded contract flows to the healthy region instead.
        assert!(d.budget_w[1] > 300.0);
    }

    #[test]
    fn migration_prefers_the_region_with_headroom_and_respects_slots() {
        let ctl = RegionController::new(FederationConfig {
            hysteresis: 0.01,
            ..FederationConfig::default()
        });
        // Region 0 browned out hard: resident app is throttled to 25 %.
        let input = FederationInput {
            tick: 10,
            contracted_w: 400.0,
            regions: vec![
                region(0, 1.0, 0.25, 100.0, 2, 100.0),
                region(1, 1.0, 1.0, 400.0, 2, 0.0),
                region(2, 1.0, 1.0, 400.0, 1, 100.0),
            ],
            apps: vec![
                app(0, 0, 100.0, vec![1.0, 1.0, 1.0]),
                app(1, 2, 100.0, vec![1.0, 1.0, 1.0]),
            ],
        };
        let d = ctl.decide(&input);
        assert_eq!(d.migrations.len(), 1);
        let m = &d.migrations[0];
        assert_eq!((m.app, m.from, m.to), (0, 0, 1), "gain {}", m.gain);
        // Region 2 is full (1 slot, 1 resident): never a destination.
    }

    #[test]
    fn hysteresis_suppresses_marginal_moves() {
        let ctl = RegionController::new(FederationConfig {
            hysteresis: 10.0, // nothing can clear this bar
            ..FederationConfig::default()
        });
        let input = FederationInput {
            tick: 0,
            contracted_w: 100.0,
            regions: vec![
                region(0, 1.0, 0.5, 100.0, 2, 80.0),
                region(1, 1.0, 1.0, 200.0, 2, 0.0),
            ],
            apps: vec![app(0, 0, 80.0, vec![1.0, 1.2])],
        };
        assert!(ctl.decide(&input).migrations.is_empty());
    }

    #[test]
    fn decisions_are_bit_identical_across_calls() {
        let ctl = RegionController::default();
        let input = FederationInput {
            tick: 30,
            contracted_w: 777.0,
            regions: vec![
                region(0, 1.1, 0.6, 300.0, 3, 250.0),
                region(1, 0.9, 1.0, 300.0, 3, 100.0),
                region(2, 1.3, 1.0, 300.0, 3, 180.0),
            ],
            apps: vec![
                app(0, 0, 90.0, vec![1.0, 1.1, 0.9]),
                app(1, 0, 80.0, vec![1.2, 0.8, 1.0]),
                app(2, 1, 100.0, vec![0.9, 1.0, 1.1]),
                app(3, 2, 95.0, vec![1.0, 1.0, 1.0]),
            ],
        };
        let a = ctl.decide(&input);
        let b = ctl.decide(&input);
        assert_eq!(a, b);
        for (x, y) in a.budget_w.iter().zip(&b.budget_w) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

//! The seeded multi-region federation harness.
//!
//! One [`FederationScenario`] describes a whole federated deployment —
//! N regions with their own grid feeds, power-price walks, and slot
//! fleets; applications with per-region utility rates; a replicated
//! control plane; and an optional regional fault timeline — and
//! [`FederationScenario::run`] plays it to a [`FederationReport`].
//!
//! Determinism is the contract everything else hangs off:
//!
//! - The world (grids, prices, rates, slot quality) is generated up
//!   front from a single seeded rng, so every run variant sees the same
//!   planet.
//! - Per-tick region physics fan out through
//!   [`pocolo_sim::parallel::map`], which is slot-indexed — the report
//!   is bit-identical at any `--parallelism`.
//! - Decisions come off the replicated leader state (see
//!   [`crate::replicate`]), so killing the leader mid-run changes the
//!   promotion history and nothing else.
//!
//! Intra-region placement rides the warm-start auction path
//! ([`pocolo_cluster::warm_assign`]): when a migration changes a
//! region's resident set, the region re-solves from its previous slot
//! prices instead of from scratch — the graceful-migration half of the
//! federation story.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pocolo_cluster::{warm_assign, PerfMatrix};
use pocolo_core::federation::{AppStatus, FederationInput, RegionStatus};
use pocolo_faults::{RegionFaultKind, RegionFaultPlan, RegionFaultSpec};
use pocolo_json::{json, Value};
use pocolo_sim::parallel::{self, Parallelism};

use crate::controller::{FederationConfig, RegionController};
use crate::replicate::{FedState, ReplicaSet};

/// Auction ε for intra-region placement (matches the cluster default).
const PLACEMENT_EPS: f64 = 1e-3;

/// A fully pinned multi-region run description.
#[derive(Debug, Clone)]
pub struct FederationScenario {
    /// Number of regions (each one clusterd's domain).
    pub regions: usize,
    /// Applications homed per region at t=0.
    pub apps_per_region: usize,
    /// Virtual ticks to run.
    pub ticks: u64,
    /// World seed: grids, prices, rates, slot quality.
    pub seed: u64,
    /// Federation power contract as a fraction of the summed grid feeds
    /// (< 1.0: the whole point is that power is scarce).
    pub contracted_frac: f64,
    /// Control-plane replicas (rank 0 boots leader).
    pub replicas: usize,
    /// Optional regional fault timeline.
    pub faults: Option<RegionFaultSpec>,
    /// Act on `LeaderCrash` events (off = the uninterrupted reference
    /// run for the failover bit-identity gate).
    pub kill_leader: bool,
    /// Run the federation controller; off = the region-isolated
    /// baseline (static per-region budget, no migrations).
    pub federated: bool,
    /// Worker fan-out for per-tick region physics.
    pub parallelism: Parallelism,
    /// Controller tunables.
    pub config: FederationConfig,
}

impl FederationScenario {
    /// The pinned scenario the CLI demo and CI gates run: 6 apps per
    /// region, 240 ticks, 3 replicas, contract at 72 % of the summed
    /// grid feeds.
    pub fn pinned(regions: usize, seed: u64) -> Self {
        FederationScenario {
            regions,
            apps_per_region: 6,
            ticks: 240,
            seed,
            contracted_frac: 0.72,
            replicas: 3,
            faults: None,
            kill_leader: false,
            federated: true,
            parallelism: Parallelism::Serial,
            config: FederationConfig::default(),
        }
    }

    /// Plays the scenario to completion.
    ///
    /// # Panics
    ///
    /// Panics on degenerate shapes (no regions/apps/ticks) or an
    /// internal invariant break; never on any fault timeline.
    pub fn run(&self) -> FederationReport {
        assert!(self.regions >= 1, "need at least one region");
        assert!(
            self.apps_per_region >= 1,
            "need at least one app per region"
        );
        assert!(self.ticks >= 1, "need at least one tick");
        let world = World::generate(self);
        let n_apps = world.app_home.len();
        let plan = match self.faults {
            Some(spec) => spec.scenario.plan(
                spec.seed.unwrap_or(self.seed),
                self.ticks,
                self.regions,
                self.replicas,
            ),
            None => RegionFaultPlan::empty(self.seed),
        };
        let controller = RegionController::new(self.config.clone());
        let mut set = ReplicaSet::new(
            self.replicas,
            world.app_home.clone(),
            self.regions,
            self.config.lease_ttl,
            self.config.drain_ticks,
        );
        // The harness's own applied mirror of the committed log — used
        // for physics so a leaderless gap between epochs still serves
        // from the last committed state.
        let mut state = FedState::new(world.app_home.clone(), self.regions);

        let mut cap_now = vec![1.0f64; self.regions];
        let mut placers: Vec<RegionPlacer> = (0..self.regions).map(RegionPlacer::new).collect();
        let mut utility = 0.0f64;
        let mut slo_violation = 0.0f64;
        let mut cap_violations = 0u64;
        let mut migrations = 0u64;
        let mut decision_log: Vec<String> = Vec::new();

        for t in 0..self.ticks {
            // 1. Faults strike.
            for ev in plan.at(t) {
                match ev.kind {
                    RegionFaultKind::RegionBrownoutStart { region, cap_factor } => {
                        cap_now[region] = cap_factor;
                    }
                    RegionFaultKind::RegionBrownoutEnd { region } => {
                        cap_now[region] = 1.0;
                    }
                    RegionFaultKind::LeaderCrash { replica } => {
                        if self.kill_leader {
                            set.kill(replica, t);
                        }
                    }
                }
            }
            // 2. Control-plane clock: heartbeats or lease-expiry promotion.
            set.tick(t);
            // 3. Decide on epoch boundaries (federated runs only).
            if self.federated && t % self.config.decide_period == 0 {
                let leader = set
                    .ensure_leader(t)
                    .expect("every replica dead: nothing left to decide");
                let _ = leader;
                let input = build_input(self, &world, set.leader_state(), &cap_now, t);
                let decision = controller.decide(&input);
                migrations += decision.migrations.len() as u64;
                set.commit(decision);
                let entry = set.log().last().expect("just committed");
                state.apply(entry, self.config.drain_ticks);
                debug_assert_eq!(&state, set.leader_state(), "mirror diverged from leader");
                decision_log.push(entry.to_json().to_compact_string());
            }
            // 4. Region physics, fanned out slot-indexed (bit-identical
            //    at any worker count).
            let budgets: Vec<f64> = (0..self.regions)
                .map(|r| {
                    let grid = world.grid_w[r] * cap_now[r];
                    if self.federated {
                        state.budget_w[r].min(grid)
                    } else {
                        (world.contracted_w(self) / self.regions as f64).min(grid)
                    }
                })
                .collect();
            let mut serving: Vec<Vec<usize>> = vec![Vec::new(); self.regions];
            let mut migrating_now = vec![0u64; self.regions];
            for a in 0..n_apps {
                let r = state.app_region[a];
                if state.is_migrating(a, t) {
                    migrating_now[r] += 1;
                } else {
                    serving[r].push(a);
                }
            }
            let items: Vec<(usize, RegionPlacer, Vec<usize>)> = placers
                .drain(..)
                .enumerate()
                .map(|(r, p)| (r, p, std::mem::take(&mut serving[r])))
                .collect();
            let stepped = parallel::map(self.parallelism, items, |(r, mut placer, apps)| {
                let m = step_region(&world, budgets[r], &apps, &mut placer);
                (placer, m)
            });
            for (r, (placer, m)) in stepped.into_iter().enumerate() {
                placers.push(placer);
                utility += m.utility;
                slo_violation += m.slo_violation + migrating_now[r] as f64;
                if m.power_used > budgets[r] + 1e-6 {
                    cap_violations += 1;
                }
            }
        }

        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for line in &decision_log {
            for &b in line.as_bytes() {
                digest ^= b as u64;
                digest = digest.wrapping_mul(0x100_0000_01b3);
            }
            digest ^= b'\n' as u64;
            digest = digest.wrapping_mul(0x100_0000_01b3);
        }
        FederationReport {
            federated: self.federated,
            regions: self.regions,
            apps: n_apps,
            ticks: self.ticks,
            seed: self.seed,
            utility,
            slo_violation_frac: slo_violation / (n_apps as f64 * self.ticks as f64),
            cap_violations,
            migrations,
            promotions: set.promotions().to_vec(),
            final_version: state.version,
            decision_digest: format!("{digest:016x}"),
            decision_log,
        }
    }
}

/// What one run produced; everything a CI gate compares is here.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationReport {
    /// Whether the federation controller ran (vs the isolated baseline).
    pub federated: bool,
    /// Region count.
    pub regions: usize,
    /// Application count.
    pub apps: usize,
    /// Ticks played.
    pub ticks: u64,
    /// World seed.
    pub seed: u64,
    /// Summed served utility over the run.
    pub utility: f64,
    /// Unserved demand fraction: mean over app-ticks of (1 − served),
    /// counting a migrating app-tick as fully unserved.
    pub slo_violation_frac: f64,
    /// Ticks on which any region drew past its budget (must be 0).
    pub cap_violations: u64,
    /// Migration intents committed over the run.
    pub migrations: u64,
    /// `(tick, promoted_rank)` leader promotions.
    pub promotions: Vec<(u64, usize)>,
    /// Last committed log version.
    pub final_version: u64,
    /// FNV-1a over the JSONL decision log, hex.
    pub decision_digest: String,
    /// The committed decision log, one compact-JSON entry per line.
    pub decision_log: Vec<String>,
}

impl FederationReport {
    /// The report as JSON (decision log elided — it ships as JSONL via
    /// `--decision-log`, the digest here pins it).
    pub fn to_json(&self) -> Value {
        json!({
            "federated": self.federated,
            "regions": (self.regions as u64),
            "apps": (self.apps as u64),
            "ticks": self.ticks,
            "seed": self.seed,
            "utility": self.utility,
            "slo_violation_frac": self.slo_violation_frac,
            "cap_violations": self.cap_violations,
            "migrations": self.migrations,
            "promotions": Value::Array(
                self.promotions
                    .iter()
                    .map(|&(tick, rank)| json!({"tick": tick, "rank": (rank as u64)}))
                    .collect()
            ),
            "final_version": self.final_version,
            "decision_digest": (self.decision_digest.clone()),
        })
    }
}

/// The generated planet: fixed for a seed before any policy runs.
struct World {
    grid_w: Vec<f64>,
    slots: usize,
    slotq: Vec<Vec<f64>>,
    prices: Vec<Vec<f64>>,
    app_home: Vec<usize>,
    app_power: Vec<f64>,
    app_rates: Vec<Vec<f64>>,
}

impl World {
    fn generate(sc: &FederationScenario) -> World {
        let mut rng = StdRng::seed_from_u64(sc.seed);
        // Two spare slots per region: migration headroom without making
        // destinations free.
        let slots = sc.apps_per_region + 2;
        let mut grid_w = Vec::with_capacity(sc.regions);
        let mut slotq = Vec::with_capacity(sc.regions);
        let mut prices = Vec::with_capacity(sc.regions);
        for _ in 0..sc.regions {
            grid_w.push(slots as f64 * 120.0 * rng.gen_range(0.9..1.1));
            slotq.push((0..slots).map(|_| rng.gen_range(0.85..1.15)).collect());
            // A bounded random walk: power prices drift per tick.
            let mut p: f64 = rng.gen_range(0.8..1.2);
            let mut walk = Vec::with_capacity(sc.ticks as usize + 1);
            for _ in 0..=sc.ticks {
                walk.push(p);
                let step: f64 = rng.gen_range(-0.05..0.05);
                p = (p + step).clamp(0.5, 2.0);
            }
            prices.push(walk);
        }
        let n_apps = sc.regions * sc.apps_per_region;
        let mut app_home = Vec::with_capacity(n_apps);
        let mut app_power = Vec::with_capacity(n_apps);
        let mut app_rates = Vec::with_capacity(n_apps);
        for a in 0..n_apps {
            app_home.push(a % sc.regions);
            app_power.push(rng.gen_range(70.0..110.0));
            let base = rng.gen_range(0.8..1.6);
            app_rates.push(
                (0..sc.regions)
                    .map(|_| base * rng.gen_range(0.75..1.25))
                    .collect(),
            );
        }
        World {
            grid_w,
            slots,
            slotq,
            prices,
            app_home,
            app_power,
            app_rates,
        }
    }

    fn contracted_w(&self, sc: &FederationScenario) -> f64 {
        sc.contracted_frac * self.grid_w.iter().sum::<f64>()
    }
}

/// Per-region warm-auction cache: resident set, last prices, and each
/// resident's served value on its assigned slot.
struct RegionPlacer {
    region: usize,
    resident: Vec<usize>,
    prices: Vec<f64>,
    /// `(app, value)` aligned with `resident`.
    values: Vec<(usize, f64)>,
}

impl RegionPlacer {
    fn new(region: usize) -> Self {
        RegionPlacer {
            region,
            resident: Vec::new(),
            prices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Re-solves placement iff the serving set changed, warm-starting
    /// from the previous solve's slot prices.
    fn place(&mut self, world: &World, apps: &[usize]) {
        if apps == self.resident.as_slice() {
            return;
        }
        self.resident = apps.to_vec();
        if apps.is_empty() {
            self.values.clear();
            return;
        }
        let r = self.region;
        let values: Vec<Vec<f64>> = apps
            .iter()
            .map(|&a| {
                (0..world.slots)
                    .map(|s| world.app_rates[a][r] * world.slotq[r][s])
                    .collect()
            })
            .collect();
        let matrix = PerfMatrix::new(
            apps.iter().map(|a| format!("app-{a}")).collect(),
            (0..world.slots).map(|s| format!("slot-{s}")).collect(),
            values,
        )
        .expect("harness matrices are well-formed");
        let warm = if self.prices.len() == world.slots {
            Some(self.prices.as_slice())
        } else {
            None
        };
        let solution =
            warm_assign(&matrix, warm, PLACEMENT_EPS).expect("harness placement is feasible");
        self.prices = solution.prices.clone();
        self.values = solution
            .assignment
            .pairs
            .iter()
            .map(|&(row, col)| (apps[row], matrix.value(row, col)))
            .collect();
    }
}

/// One region-tick's physics outcome.
struct RegionMetrics {
    utility: f64,
    slo_violation: f64,
    power_used: f64,
}

/// Places the serving set (warm), then greedily powers apps by marginal
/// value-per-watt until the budget runs out: full service, then one
/// fractional app, then zero.
fn step_region(
    world: &World,
    budget_w: f64,
    apps: &[usize],
    placer: &mut RegionPlacer,
) -> RegionMetrics {
    placer.place(world, apps);
    let mut order: Vec<(usize, f64)> = placer.values.clone();
    order.sort_by(|a, b| {
        let da = a.1 / world.app_power[a.0];
        let db = b.1 / world.app_power[b.0];
        db.total_cmp(&da).then(a.0.cmp(&b.0))
    });
    let mut left = budget_w;
    let mut utility = 0.0;
    let mut slo_violation = 0.0;
    let mut power_used = 0.0;
    for (app, value) in order {
        let power = world.app_power[app];
        let frac = if left >= power {
            1.0
        } else if left > 0.0 {
            left / power
        } else {
            0.0
        };
        left -= power * frac;
        power_used += power * frac;
        utility += value * frac;
        slo_violation += 1.0 - frac;
    }
    RegionMetrics {
        utility,
        slo_violation,
        power_used,
    }
}

/// Builds the controller's telemetry snapshot from the replicated state
/// plus the world at tick `t`.
fn build_input(
    sc: &FederationScenario,
    world: &World,
    state: &FedState,
    cap_now: &[f64],
    t: u64,
) -> FederationInput {
    let mut resident_power = vec![0.0f64; sc.regions];
    let apps: Vec<AppStatus> = (0..world.app_home.len())
        .map(|a| {
            let region = state.app_region[a];
            let migrating = state.is_migrating(a, t);
            if !migrating {
                resident_power[region] += world.app_power[a];
            }
            AppStatus {
                app: a,
                region,
                power_w: world.app_power[a],
                rates: world.app_rates[a].clone(),
                migrating,
            }
        })
        .collect();
    let regions: Vec<RegionStatus> = (0..sc.regions)
        .map(|r| RegionStatus {
            region: r,
            power_price: world.prices[r][t as usize],
            cap_factor: cap_now[r],
            grid_w: world.grid_w[r],
            slots: world.slots,
            resident_power_w: resident_power[r],
        })
        .collect();
    FederationInput {
        tick: t,
        contracted_w: world.contracted_w(sc),
        regions,
        apps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_faults::RegionScenario;

    fn brownout(scenario: &mut FederationScenario) {
        scenario.faults = Some(RegionFaultSpec {
            scenario: RegionScenario::RegionBrownout,
            seed: Some(7),
        });
    }

    #[test]
    fn runs_are_reproducible() {
        let sc = FederationScenario::pinned(3, 42);
        let a = sc.run();
        let b = sc.run();
        assert_eq!(a, b);
        assert_eq!(a.utility.to_bits(), b.utility.to_bits());
    }

    #[test]
    fn federated_beats_isolated_under_a_brownout() {
        let mut fed = FederationScenario::pinned(3, 42);
        brownout(&mut fed);
        let mut iso = fed.clone();
        iso.federated = false;
        let (fed, iso) = (fed.run(), iso.run());
        assert!(
            fed.utility > iso.utility,
            "federated {} ≤ isolated {}",
            fed.utility,
            iso.utility
        );
        assert!(
            fed.slo_violation_frac < iso.slo_violation_frac,
            "federated slo {} ≥ isolated {}",
            fed.slo_violation_frac,
            iso.slo_violation_frac
        );
        assert_eq!(fed.cap_violations, 0);
        assert_eq!(iso.cap_violations, 0);
        assert!(fed.migrations > 0, "no failover happened");
    }

    #[test]
    fn parallelism_does_not_change_the_report() {
        let mut serial = FederationScenario::pinned(4, 9);
        brownout(&mut serial);
        let mut four = serial.clone();
        four.parallelism = Parallelism::Fixed(4);
        let (a, b) = (serial.run(), four.run());
        assert_eq!(a, b);
    }

    #[test]
    fn leader_kill_is_invisible_outside_the_promotion_history() {
        let mut reference = FederationScenario::pinned(3, 5);
        reference.faults = Some(RegionFaultSpec {
            scenario: RegionScenario::RegionChaos,
            seed: Some(5),
        });
        let mut killed = reference.clone();
        killed.kill_leader = true;
        let (reference, killed) = (reference.run(), killed.run());
        assert!(
            !killed.promotions.is_empty(),
            "the chaos plan kills the leader; somebody must be promoted"
        );
        assert!(reference.promotions.is_empty());
        assert_eq!(killed.decision_digest, reference.decision_digest);
        assert_eq!(killed.utility.to_bits(), reference.utility.to_bits());
        assert_eq!(killed.final_version, reference.final_version);
        assert_eq!(killed.decision_log, reference.decision_log);
    }

    #[test]
    fn report_json_carries_the_gate_fields() {
        let report = FederationScenario::pinned(2, 1).run();
        let v = report.to_json();
        for key in [
            "utility",
            "slo_violation_frac",
            "cap_violations",
            "migrations",
            "decision_digest",
            "final_version",
        ] {
            assert!(v.get(key).is_some(), "report JSON lost {key}");
        }
    }
}

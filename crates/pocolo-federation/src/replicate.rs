//! Leader–follower replication of federation state.
//!
//! The replicated object is deliberately small: the decision log.
//! Because the controller is pure ([`crate::RegionController`]), any
//! replica that applies the same committed [`FedLogEntry`] stream to the
//! same initial state arrives at the same [`FedState`], and a promoted
//! follower continues the exact decision stream the dead leader would
//! have produced — the property the CI leader-kill gate replays
//! bit-for-bit.
//!
//! Commit is synchronous: the leader applies an entry to every live
//! replica before acting on it (the harness models the region-scale
//! deployment, where an epoch is seconds and replicas are three boxes
//! on a LAN). Leases run on the same virtual clock as the harness:
//! followers expect a leader heartbeat every tick and promote the
//! lowest-ranked live follower once the lease goes stale. Keeping
//! `lease_ttl < decide_period` guarantees failover completes between
//! decision epochs, so a crash never skips or doubles a decision.
//!
//! The wire-facing half (serving a log over TCP, catching a fresh
//! follower up from a snapshot) lives in [`crate::net`].

use std::collections::BTreeMap;

use pocolo_core::federation::{FedLogEntry, FedSnapshot, MigrationRecord};

/// The replicated federation state: everything a promoted leader needs
/// to keep deciding. Evolves only through [`FedState::apply`].
#[derive(Debug, Clone, PartialEq)]
pub struct FedState {
    /// Last applied log version (0 = nothing applied).
    pub version: u64,
    /// Tick of the last applied decision.
    pub tick: u64,
    /// Region each application is resident in.
    pub app_region: Vec<usize>,
    /// Current per-region budget split, watts.
    pub budget_w: Vec<f64>,
    /// In-flight migrations: app → (destination, first serving tick).
    pub migrating: BTreeMap<usize, (usize, u64)>,
}

impl FedState {
    /// The initial state: every app in its home region, budgets unset.
    pub fn new(app_region: Vec<usize>, n_regions: usize) -> Self {
        FedState {
            version: 0,
            tick: 0,
            app_region,
            budget_w: vec![0.0; n_regions],
            migrating: BTreeMap::new(),
        }
    }

    /// Applies one committed log entry. Migrations take effect
    /// immediately in placement terms (the app belongs to its
    /// destination) but the app serves nothing until `until_tick` —
    /// the drain/warm-start downtime.
    ///
    /// # Panics
    ///
    /// Panics on a version gap: entries must apply in order.
    pub fn apply(&mut self, entry: &FedLogEntry, drain_ticks: u64) {
        assert_eq!(
            entry.version,
            self.version + 1,
            "log entry {} applied over state version {}",
            entry.version,
            self.version
        );
        let d = &entry.decision;
        self.version = entry.version;
        self.tick = d.tick;
        self.budget_w = d.budget_w.clone();
        for m in &d.migrations {
            self.app_region[m.app] = m.to;
            self.migrating.insert(m.app, (m.to, d.tick + drain_ticks));
        }
        // Completed migrations leave the in-flight set.
        self.migrating.retain(|_, &mut (_, until)| until > d.tick);
    }

    /// True when `app` is still draining/warming at `tick`.
    pub fn is_migrating(&self, app: usize, tick: u64) -> bool {
        self.migrating
            .get(&app)
            .is_some_and(|&(_, until)| until > tick)
    }

    /// Snapshot for log compaction / follower catch-up.
    pub fn snapshot(&self) -> FedSnapshot {
        FedSnapshot {
            version: self.version,
            tick: self.tick,
            app_region: self.app_region.clone(),
            budget_w: self.budget_w.clone(),
            migrating: self
                .migrating
                .iter()
                .map(|(&app, &(to, until_tick))| MigrationRecord {
                    app,
                    to,
                    until_tick,
                })
                .collect(),
        }
    }

    /// Restores a state from a compaction snapshot.
    pub fn from_snapshot(s: &FedSnapshot) -> Self {
        FedState {
            version: s.version,
            tick: s.tick,
            app_region: s.app_region.clone(),
            budget_w: s.budget_w.clone(),
            migrating: s
                .migrating
                .iter()
                .map(|m| (m.app, (m.to, m.until_tick)))
                .collect(),
        }
    }
}

/// One federation replica's control-plane role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Appends to the log and drives decisions.
    Leader,
    /// Applies committed entries; promotable.
    Follower,
    /// Crashed; never comes back within a run.
    Dead,
}

/// One replica of the federation control plane.
#[derive(Debug, Clone)]
pub struct Replica {
    /// Stable rank; promotion prefers the lowest live rank.
    pub rank: usize,
    /// Current role.
    pub role: Role,
    /// The replica's applied state.
    pub state: FedState,
    /// Virtual tick of the last leader heartbeat this replica saw.
    pub last_heartbeat: u64,
}

/// The replica group plus the committed log. Rank 0 boots as leader.
#[derive(Debug, Clone)]
pub struct ReplicaSet {
    replicas: Vec<Replica>,
    /// The committed log (kept whole here; compaction is a wire-layer
    /// concern — see [`crate::net`]).
    log: Vec<FedLogEntry>,
    lease_ttl: u64,
    drain_ticks: u64,
    /// `(tick, promoted_rank)` promotion history.
    promotions: Vec<(u64, usize)>,
}

impl ReplicaSet {
    /// A fresh group of `n_replicas` replicas over the given initial
    /// placement; rank 0 leads.
    ///
    /// # Panics
    ///
    /// Panics when `n_replicas` is zero.
    pub fn new(
        n_replicas: usize,
        app_region: Vec<usize>,
        n_regions: usize,
        lease_ttl: u64,
        drain_ticks: u64,
    ) -> Self {
        assert!(n_replicas > 0, "a replica set needs at least one replica");
        let replicas = (0..n_replicas)
            .map(|rank| Replica {
                rank,
                role: if rank == 0 {
                    Role::Leader
                } else {
                    Role::Follower
                },
                state: FedState::new(app_region.clone(), n_regions),
                last_heartbeat: 0,
            })
            .collect();
        ReplicaSet {
            replicas,
            log: Vec::new(),
            lease_ttl,
            drain_ticks,
            promotions: Vec::new(),
        }
    }

    /// The current leader's rank, if any replica leads.
    pub fn leader(&self) -> Option<usize> {
        self.replicas
            .iter()
            .find(|r| r.role == Role::Leader)
            .map(|r| r.rank)
    }

    /// The current leader's applied state.
    ///
    /// # Panics
    ///
    /// Panics when every replica is dead.
    pub fn leader_state(&self) -> &FedState {
        let rank = self.leader().expect("no live leader");
        &self.replicas[rank].state
    }

    /// The committed log, ascending by version.
    pub fn log(&self) -> &[FedLogEntry] {
        &self.log
    }

    /// Promotion history as `(tick, promoted_rank)`.
    pub fn promotions(&self) -> &[(u64, usize)] {
        &self.promotions
    }

    /// Live replicas (leader + followers).
    pub fn live_count(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.role != Role::Dead)
            .count()
    }

    /// Kills a replica at `tick` (fault injection). Killing the leader
    /// leaves the group leaderless until a lease expires in
    /// [`ReplicaSet::tick`].
    pub fn kill(&mut self, rank: usize, _tick: u64) {
        if let Some(r) = self.replicas.get_mut(rank) {
            r.role = Role::Dead;
        }
    }

    /// Advances the virtual clock one tick: a live leader heartbeats
    /// every follower; without one, followers whose lease went stale
    /// elect the lowest live rank. Synchronous commit means every live
    /// replica is equally caught up, so lowest-rank is also
    /// most-caught-up.
    pub fn tick(&mut self, now: u64) {
        if self.leader().is_some() {
            for r in &mut self.replicas {
                if r.role == Role::Follower {
                    r.last_heartbeat = now;
                }
            }
            return;
        }
        let stale = self
            .replicas
            .iter()
            .filter(|r| r.role == Role::Follower)
            .all(|r| now.saturating_sub(r.last_heartbeat) > self.lease_ttl);
        if !stale {
            return;
        }
        if let Some(next) = self.replicas.iter().position(|r| r.role == Role::Follower) {
            self.replicas[next].role = Role::Leader;
            self.promotions.push((now, next));
        }
    }

    /// Epoch-deadline election backstop: if the group is leaderless when
    /// a decision is due, promote the lowest live rank immediately
    /// instead of waiting out the rest of the lease. Synchronous commit
    /// means any follower is fully caught up, so promoting at the
    /// deadline is always safe — and it keeps the decision stream
    /// gapless regardless of where in the epoch the leader died, which
    /// is what the kill-vs-reference bit-identity gate relies on.
    pub fn ensure_leader(&mut self, now: u64) -> Option<usize> {
        if self.leader().is_none() {
            if let Some(next) = self.replicas.iter().position(|r| r.role == Role::Follower) {
                self.replicas[next].role = Role::Leader;
                self.promotions.push((now, next));
            }
        }
        self.leader()
    }

    /// Commits a decision: appends it to the log at the next version and
    /// applies it synchronously to every live replica. Returns the
    /// committed version.
    ///
    /// # Panics
    ///
    /// Panics when no replica leads (callers decide only while a leader
    /// holds the lease).
    pub fn commit(&mut self, decision: pocolo_core::federation::FederationDecision) -> u64 {
        assert!(self.leader().is_some(), "commit without a leader");
        let entry = FedLogEntry {
            version: self.log.len() as u64 + 1,
            decision,
        };
        for r in &mut self.replicas {
            if r.role != Role::Dead {
                r.state.apply(&entry, self.drain_ticks);
            }
        }
        let version = entry.version;
        self.log.push(entry);
        version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_core::federation::{FederationDecision, MigrationIntent};

    fn decision(tick: u64, movers: &[(usize, usize, usize)]) -> FederationDecision {
        FederationDecision {
            tick,
            budget_w: vec![100.0, 200.0],
            migrations: movers
                .iter()
                .map(|&(app, from, to)| MigrationIntent {
                    app,
                    from,
                    to,
                    gain: 0.5,
                })
                .collect(),
        }
    }

    #[test]
    fn state_applies_migrations_with_drain_downtime() {
        let mut s = FedState::new(vec![0, 0, 1], 2);
        s.apply(
            &FedLogEntry {
                version: 1,
                decision: decision(10, &[(0, 0, 1)]),
            },
            2,
        );
        assert_eq!(s.app_region, vec![1, 0, 1]);
        assert!(s.is_migrating(0, 10));
        assert!(s.is_migrating(0, 11));
        assert!(!s.is_migrating(0, 12), "drain is over");
        assert!(!s.is_migrating(1, 10));
    }

    #[test]
    fn snapshot_round_trips_state() {
        let mut s = FedState::new(vec![0, 1], 2);
        s.apply(
            &FedLogEntry {
                version: 1,
                decision: decision(5, &[(1, 1, 0)]),
            },
            3,
        );
        assert_eq!(FedState::from_snapshot(&s.snapshot()), s);
    }

    #[test]
    #[should_panic(expected = "applied over state version")]
    fn version_gaps_are_rejected() {
        let mut s = FedState::new(vec![0], 1);
        s.apply(
            &FedLogEntry {
                version: 3,
                decision: decision(1, &[]),
            },
            1,
        );
    }

    #[test]
    fn leader_kill_promotes_the_lowest_live_follower_after_the_lease() {
        let mut set = ReplicaSet::new(3, vec![0, 1], 2, 3, 2);
        assert_eq!(set.leader(), Some(0));
        set.commit(decision(0, &[]));
        for t in 1..=4 {
            set.tick(t);
        }
        set.kill(0, 5);
        assert_eq!(set.leader(), None);
        // Lease is 3 ticks: promotion happens once heartbeats are stale.
        set.tick(6);
        set.tick(7);
        assert_eq!(set.leader(), None, "lease not yet expired");
        set.tick(8);
        assert_eq!(set.leader(), Some(1));
        assert_eq!(set.promotions(), &[(8, 1)]);
        // The promoted leader holds the committed state and can keep
        // committing where the dead leader stopped.
        assert_eq!(set.leader_state().version, 1);
        assert_eq!(set.commit(decision(10, &[])), 2);
    }

    #[test]
    fn synchronous_commit_keeps_all_live_replicas_identical() {
        let mut set = ReplicaSet::new(3, vec![0, 0, 1, 1], 2, 3, 2);
        set.commit(decision(0, &[(0, 0, 1)]));
        set.commit(decision(10, &[(2, 1, 0)]));
        let states: Vec<&FedState> = set.replicas.iter().map(|r| &r.state).collect();
        assert_eq!(states[0], states[1]);
        assert_eq!(states[1], states[2]);
        assert_eq!(set.log().len(), 2);
    }
}

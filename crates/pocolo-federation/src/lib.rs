//! # pocolo-federation — geo-federated multi-region control plane
//!
//! A federation tier above N per-region clusterds. Each region runs its
//! own power-capped cluster (pocolo-net `Clusterd` + pocolo-cluster
//! placement); the federation moves whole best-effort applications
//! *between* regions when power prices shift, a region browns out, or
//! demand moves — and splits the federation's contracted power across
//! regions every decision epoch.
//!
//! The tier keeps the repo's decide/actuate split:
//!
//! - [`RegionController`] ([`controller`]) is pure: telemetry snapshot
//!   in, scored migration intents + budget splits out.
//! - [`ReplicaSet`] ([`replicate`]) commits each decision synchronously
//!   to a leader–follower group; a follower promotes itself on lease
//!   expiry and resumes the identical decision stream.
//! - [`net`] serves the replicated log over the pocolo-net reactor wire
//!   protocol (`FedPull` → `FedEntries`) so fresh followers catch up
//!   from a snapshot plus a log suffix.
//! - [`FederationScenario`] ([`harness`]) is the seeded multi-region
//!   world: regional brownouts, leader crashes, warm-started
//!   intra-region auctions, and bit-identical reports at any
//!   parallelism.

pub mod controller;
pub mod harness;
pub mod net;
pub mod replicate;

pub use controller::{FederationConfig, RegionController};
pub use harness::{FederationReport, FederationScenario};
pub use net::{pull_log, serve_log, FedLogHandler};
pub use replicate::{FedState, Replica, ReplicaSet, Role};

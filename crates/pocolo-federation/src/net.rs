//! Serving the replicated federation log over the pocolo-net wire.
//!
//! A leader (or any caught-up replica) runs a [`FedLogHandler`] on the
//! shared reactor; followers issue `FedPull { follower, from_version }`
//! and get back `FedEntries` — either the log suffix past their applied
//! version, or, when their version predates the server's compaction
//! snapshot, the snapshot plus everything after it. Applying the reply
//! through [`FedState`] is all a follower needs to reach the leader's
//! exact state, which is what makes promotion seamless: the promoted
//! replica serves the same log the dead leader did.

use std::net::SocketAddr;
use std::time::Duration;

use pocolo_core::federation::{FedLogEntry, FedSnapshot};
use pocolo_faults::RetryPolicy;
use pocolo_net::reactor::Ctx;
use pocolo_net::{
    ConnId, EventHandler, Message, NetError, ReactorConfig, ReactorServer, Reply, RpcClient,
};

use crate::replicate::FedState;

/// Reactor handler that serves one replica's snapshot + log.
#[derive(Debug)]
pub struct FedLogHandler {
    /// Compaction snapshot the served log starts from (version 0 and an
    /// empty state for an uncompacted log).
    snapshot: FedSnapshot,
    /// Entries with versions strictly above the snapshot's, ascending.
    entries: Vec<FedLogEntry>,
}

impl FedLogHandler {
    /// A handler serving `entries` on top of `snapshot`.
    ///
    /// # Panics
    ///
    /// Panics when the entries do not continue the snapshot contiguously.
    pub fn new(snapshot: FedSnapshot, entries: Vec<FedLogEntry>) -> Self {
        let mut expect = snapshot.version;
        for e in &entries {
            expect += 1;
            assert_eq!(e.version, expect, "log entry out of sequence");
        }
        FedLogHandler { snapshot, entries }
    }

    /// The highest version this handler can serve.
    pub fn leader_version(&self) -> u64 {
        self.entries
            .last()
            .map_or(self.snapshot.version, |e| e.version)
    }
}

impl EventHandler for FedLogHandler {
    fn handle(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, request: Message) -> Reply {
        match request {
            Message::FedPull {
                follower: _,
                from_version,
            } => {
                if from_version < self.snapshot.version || from_version == 0 {
                    // Too far behind the compaction point — or a fresh
                    // follower with no state at all: full resync. (A
                    // version-0 puller that does hold the initial state
                    // re-applies an identical snapshot; harmless.)
                    Reply::msg(&Message::FedEntries {
                        leader_version: self.leader_version(),
                        snapshot: Some(Box::new(self.snapshot.clone())),
                        entries: self.entries.clone(),
                    })
                } else {
                    let suffix: Vec<FedLogEntry> = self
                        .entries
                        .iter()
                        .filter(|e| e.version > from_version)
                        .cloned()
                        .collect();
                    Reply::msg(&Message::FedEntries {
                        leader_version: self.leader_version(),
                        snapshot: None,
                        entries: suffix,
                    })
                }
            }
            Message::Shutdown => Reply::msg(&Message::ShutdownAck).then_shutdown(),
            other => Reply::error(&NetError::Protocol(format!(
                "fed-log server got unexpected {}",
                other.type_name()
            ))),
        }
    }
}

/// Spawns a reactor serving the given snapshot + log on `listen`.
pub fn serve_log(
    listen: SocketAddr,
    snapshot: FedSnapshot,
    entries: Vec<FedLogEntry>,
) -> Result<ReactorServer, NetError> {
    ReactorServer::spawn(
        ReactorConfig::new(listen),
        FedLogHandler::new(snapshot, entries),
    )
}

/// One follower pull: returns the leader's version plus the resync
/// payload (`snapshot` only when `from_version` predated compaction).
pub fn pull_log(
    addr: SocketAddr,
    follower: &str,
    from_version: u64,
) -> Result<(u64, Option<FedSnapshot>, Vec<FedLogEntry>), NetError> {
    let mut retry = RetryPolicy::new(0.001, 1.0, 0.001, 5, 0.0, 1);
    let mut client = RpcClient::connect(addr, &mut retry, Duration::from_secs(2))?;
    match client.call(&Message::FedPull {
        follower: follower.to_string(),
        from_version,
    })? {
        Message::FedEntries {
            leader_version,
            snapshot,
            entries,
        } => Ok((leader_version, snapshot.map(|b| *b), entries)),
        other => Err(NetError::Protocol(format!(
            "fed pull expected fed_entries, got {}",
            other.type_name()
        ))),
    }
}

/// Pulls from `addr` and folds the reply into `state`, returning the
/// caught-up state. Pass `None` for a fresh follower with no history.
pub fn sync_state(
    addr: SocketAddr,
    follower: &str,
    state: Option<FedState>,
    drain_ticks: u64,
) -> Result<FedState, NetError> {
    let from_version = state.as_ref().map_or(0, |s| s.version);
    let (leader_version, snapshot, entries) = pull_log(addr, follower, from_version)?;
    let mut state = match (snapshot, state) {
        (Some(s), _) => FedState::from_snapshot(&s),
        (None, Some(s)) => s,
        (None, None) => {
            // Servers always snapshot version-0 pulls; a bare entry
            // suffix for a fresh follower is a protocol violation.
            return Err(NetError::Protocol(format!(
                "fresh follower {follower} got entries without a snapshot"
            )));
        }
    };
    for e in &entries {
        if e.version > state.version {
            state.apply(e, drain_ticks);
        }
    }
    if state.version != leader_version {
        return Err(NetError::Protocol(format!(
            "follower {follower} synced to version {} but leader is at {leader_version}",
            state.version
        )));
    }
    Ok(state)
}

//! Property tests for the federation wire surface.
//!
//! Every envelope type the federation tier put on the wire round-trips
//! through compact JSON for *arbitrary* field values, and the framing
//! layer rejects truncated and oversized federation frames the same way
//! the existing frame tests pin for v1 envelopes — byte sync is sacred.

use proptest::prelude::*;

use pocolo_core::federation::{
    AppStatus, FedLogEntry, FedSnapshot, FederationDecision, MigrationIntent, MigrationRecord,
    RegionStatus,
};
use pocolo_net::wire::{read_frame, write_frame};
use pocolo_net::{Message, NetError, MAX_FRAME_BYTES};

fn finite() -> impl Strategy<Value = f64> {
    // Compact JSON prints finite doubles; NaN/∞ are rejected upstream.
    -1.0e9..1.0e9
}

fn region_status() -> impl Strategy<Value = RegionStatus> {
    (
        0usize..64,
        finite(),
        0.0f64..1.0,
        finite(),
        0usize..4096,
        finite(),
    )
        .prop_map(
            |(region, power_price, cap_factor, grid_w, slots, resident_power_w)| RegionStatus {
                region,
                power_price,
                cap_factor,
                grid_w,
                slots,
                resident_power_w,
            },
        )
}

fn app_status() -> impl Strategy<Value = AppStatus> {
    (
        0usize..10_000,
        0usize..64,
        finite(),
        proptest::collection::vec(finite(), 0..8),
        any::<bool>(),
    )
        .prop_map(|(app, region, power_w, rates, migrating)| AppStatus {
            app,
            region,
            power_w,
            rates,
            migrating,
        })
}

fn migration_intent() -> impl Strategy<Value = MigrationIntent> {
    (0usize..10_000, 0usize..64, 0usize..64, finite()).prop_map(|(app, from, to, gain)| {
        MigrationIntent {
            app,
            from,
            to,
            gain,
        }
    })
}

fn decision() -> impl Strategy<Value = FederationDecision> {
    (
        0u64..1_000_000,
        proptest::collection::vec(finite(), 0..8),
        proptest::collection::vec(migration_intent(), 0..6),
    )
        .prop_map(|(tick, budget_w, migrations)| FederationDecision {
            tick,
            budget_w,
            migrations,
        })
}

fn log_entry() -> impl Strategy<Value = FedLogEntry> {
    (1u64..1_000_000, decision()).prop_map(|(version, decision)| FedLogEntry { version, decision })
}

fn snapshot() -> impl Strategy<Value = FedSnapshot> {
    (
        0u64..1_000_000,
        0u64..1_000_000,
        proptest::collection::vec(0usize..64, 0..32),
        proptest::collection::vec(finite(), 0..8),
        proptest::collection::vec((0usize..10_000, 0usize..64, 0u64..1_000_000), 0..6),
    )
        .prop_map(
            |(version, tick, app_region, budget_w, migrating)| FedSnapshot {
                version,
                tick,
                app_region,
                budget_w,
                migrating: migrating
                    .into_iter()
                    .map(|(app, to, until_tick)| MigrationRecord {
                        app,
                        to,
                        until_tick,
                    })
                    .collect(),
            },
        )
}

/// Encode → parse → decode, through the same compact text the wire uses.
fn reparse(v: &pocolo_json::Value) -> pocolo_json::Value {
    pocolo_json::from_str(&v.to_compact_string()).expect("wire JSON reparses")
}

/// Lowercase ascii name of 1–12 chars (the vendored proptest has no
/// regex strategies).
fn name() -> impl Strategy<Value = String> {
    proptest::collection::vec(97u8..123, 1..12)
        .prop_map(|bytes| String::from_utf8(bytes).expect("ascii"))
}

/// `Option<T>` strategy (vendored proptest has no `option::of`).
fn maybe<S: Strategy>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
    (any::<bool>(), inner).prop_map(|(some, v)| some.then_some(v))
}

proptest! {
    #[test]
    fn region_status_round_trips(s in region_status()) {
        prop_assert_eq!(RegionStatus::from_json(&reparse(&s.to_json())).unwrap(), s);
    }

    #[test]
    fn app_status_round_trips(s in app_status()) {
        prop_assert_eq!(AppStatus::from_json(&reparse(&s.to_json())).unwrap(), s);
    }

    #[test]
    fn log_entries_round_trip(e in log_entry()) {
        prop_assert_eq!(FedLogEntry::from_json(&reparse(&e.to_json())).unwrap(), e);
    }

    #[test]
    fn snapshots_round_trip(s in snapshot()) {
        prop_assert_eq!(FedSnapshot::from_json(&reparse(&s.to_json())).unwrap(), s);
    }

    /// The two new reactor envelopes survive the real framed path, and
    /// `Register` keeps its optional class through arbitrary agent names.
    #[test]
    fn federation_messages_survive_framing(
        from_version in 0u64..1_000_000,
        leader_version in 0u64..1_000_000,
        entries in proptest::collection::vec(log_entry(), 0..4),
        snap in maybe(snapshot()),
        agent in name(),
        class in maybe(name()),
    ) {
        let messages = [
            Message::FedPull { follower: agent.clone(), from_version },
            Message::FedEntries {
                leader_version,
                snapshot: snap.map(Box::new),
                entries,
            },
            Message::Register { agent, class },
        ];
        for msg in messages {
            let mut buf = Vec::new();
            write_frame(&mut buf, &msg.to_value()).unwrap();
            let decoded = Message::from_value(&read_frame(&mut buf.as_slice()).unwrap()).unwrap();
            prop_assert_eq!(decoded, msg);
        }
    }

    /// Chopping a federation frame at any interior byte is an error —
    /// never a silently short decode.
    #[test]
    fn truncated_federation_frames_are_rejected(cut_frac in 0.0f64..1.0) {
        let msg = Message::FedEntries {
            leader_version: 7,
            snapshot: Some(Box::new(FedSnapshot {
                version: 3,
                tick: 30,
                app_region: vec![0, 1, 2, 0],
                budget_w: vec![120.0, 240.0],
                migrating: vec![MigrationRecord { app: 2, to: 0, until_tick: 32 }],
            })),
            entries: Vec::new(),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg.to_value()).unwrap();
        let cut = 1 + ((buf.len() - 2) as f64 * cut_frac) as usize;
        prop_assert!(cut < buf.len());
        prop_assert!(read_frame(&mut &buf[..cut]).is_err());
    }
}

#[test]
fn oversized_federation_frame_is_rejected_before_any_read() {
    // An honest-looking prefix claiming more than MAX_FRAME_BYTES must
    // die at the framing layer, exactly like the v1 frame tests.
    let mut buf = Vec::new();
    buf.extend_from_slice(&((MAX_FRAME_BYTES as u32) + 1).to_be_bytes());
    buf.extend_from_slice(&[b'{'; 16]);
    match read_frame(&mut buf.as_slice()) {
        Err(NetError::Frame(m)) => assert!(m.contains("exceeds"), "unexpected message: {m}"),
        other => panic!("oversized prefix must be NetError::Frame, got {other:?}"),
    }
}

#[test]
fn register_without_class_is_wire_compatible_with_v1() {
    // A v1 agent's Register (no class key at all) must decode; a
    // class-bearing one must carry it through the framed path.
    let v1 = pocolo_json::from_str(r#"{"v":1,"type":"register","agent":"a1"}"#).unwrap();
    match Message::from_value(&v1).unwrap() {
        Message::Register { agent, class } => {
            assert_eq!(agent, "a1");
            assert_eq!(class, None);
        }
        other => panic!("expected Register, got {other:?}"),
    }
}

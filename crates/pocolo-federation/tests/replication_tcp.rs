//! End-to-end replication over real sockets: a leader serves its
//! committed log on the pocolo-net reactor, followers catch up with
//! `FedPull`, the leader dies, and the promoted follower serves the
//! *same* log — late arrivals reach the identical state either way.

use std::net::SocketAddr;

use pocolo_core::federation::{FederationDecision, MigrationIntent};
use pocolo_federation::net::sync_state;
use pocolo_federation::{serve_log, FedState, ReplicaSet};

fn any_port() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

fn decision(tick: u64, movers: &[(usize, usize, usize)]) -> FederationDecision {
    FederationDecision {
        tick,
        budget_w: vec![150.0, 250.0, 90.0],
        migrations: movers
            .iter()
            .map(|&(app, from, to)| MigrationIntent {
                app,
                from,
                to,
                gain: 0.25,
            })
            .collect(),
    }
}

#[test]
fn followers_catch_up_and_survive_leader_failover() {
    const DRAIN: u64 = 2;
    // A leader group commits three epochs' worth of decisions.
    let mut set = ReplicaSet::new(3, vec![0, 0, 1, 2], 3, 3, DRAIN);
    set.commit(decision(0, &[]));
    set.commit(decision(10, &[(0, 0, 1)]));
    set.commit(decision(20, &[(3, 2, 0)]));
    let leader_state = set.leader_state().clone();

    // The leader serves its log from its initial snapshot (version 0,
    // everything at home).
    let base = FedState::new(vec![0, 0, 1, 2], 3).snapshot();
    let mut leader_srv = serve_log(any_port(), base.clone(), set.log().to_vec()).unwrap();
    let leader_addr = leader_srv.local_addr();

    // A fresh follower pulls everything and lands on the leader state.
    let follower = sync_state(leader_addr, "follower-1", None, DRAIN).unwrap();
    assert_eq!(follower, leader_state);

    // An incremental pull from a half-caught-up state only applies the
    // suffix and converges too.
    let mut partial = FedState::new(vec![0, 0, 1, 2], 3);
    partial.apply(&set.log()[0], DRAIN);
    let caught_up = sync_state(leader_addr, "follower-2", Some(partial), DRAIN).unwrap();
    assert_eq!(caught_up, leader_state);

    // Leader dies; the epoch-deadline backstop promotes follower rank 1,
    // which serves the identical replicated log on a fresh socket.
    leader_srv.shutdown();
    set.kill(0, 25);
    let promoted = set.ensure_leader(30).expect("promotion");
    assert_eq!(promoted, 1);
    // The promoted leader keeps committing past the crash.
    set.commit(decision(30, &[(1, 0, 2)]));
    let promoted_state = set.leader_state().clone();
    let mut promoted_srv = serve_log(any_port(), base, set.log().to_vec()).unwrap();
    let promoted_addr = promoted_srv.local_addr();

    // The old follower re-syncs against the new leader incrementally; a
    // brand-new replica full-syncs. Both land on the promoted state.
    let resynced = sync_state(promoted_addr, "follower-1", Some(follower), DRAIN).unwrap();
    let fresh = sync_state(promoted_addr, "follower-3", None, DRAIN).unwrap();
    assert_eq!(resynced, promoted_state);
    assert_eq!(fresh, promoted_state);
    assert_eq!(resynced.version, 4);

    promoted_srv.shutdown();
}

#[test]
fn compacted_logs_resync_stale_followers_from_the_snapshot() {
    const DRAIN: u64 = 2;
    let mut set = ReplicaSet::new(2, vec![0, 1], 2, 3, DRAIN);
    set.commit(decision(0, &[]));
    set.commit(decision(10, &[(0, 0, 1)]));
    set.commit(decision(20, &[(1, 1, 0)]));
    let leader_state = set.leader_state().clone();

    // Compact: snapshot after entry 2, keep only the suffix.
    let mut compacted_at = FedState::new(vec![0, 1], 2);
    compacted_at.apply(&set.log()[0], DRAIN);
    compacted_at.apply(&set.log()[1], DRAIN);
    let mut srv = serve_log(any_port(), compacted_at.snapshot(), set.log()[2..].to_vec()).unwrap();

    // A follower stuck at version 1 predates the compaction point: it
    // must be resynced through the snapshot, not a (gone) entry 2.
    let mut stale = FedState::new(vec![0, 1], 2);
    stale.apply(&set.log()[0], DRAIN);
    let synced = sync_state(srv.local_addr(), "stale", Some(stale), DRAIN).unwrap();
    assert_eq!(synced, leader_state);

    srv.shutdown();
}

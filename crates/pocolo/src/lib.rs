//! # Pocolo — Power Optimized Colocation
//!
//! Facade crate re-exporting the full Pocolo stack, a reproduction of
//! *"Pocolo: Power Optimized Colocation in Power Constrained Environments"*
//! (IISWC 2020).
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | Economics framework | [`core`] | Cobb-Douglas indirect utility, demand solver, preference vectors, model fitting, indifference curves, Edgeworth box, per-SKU server-class catalog with pluggable power curves |
//! | Server substrate | [`simserver`] | Simulated Xeon E5-2650: core/way/DVFS/quota knobs, power model, noisy meter, telemetry |
//! | Workload models | [`workloads`] | Ground-truth LC apps (img-dnn, sphinx, xapian, tpcc) and BE apps (lstm, rnn, graph, pbzip), load traces, profiler |
//! | Server management | [`manager`] | Control plane (`ServerController` trait + `ControlMode` state machine), POM power-optimized controller, Heracles-style baseline, 100 ms power capper |
//! | Cluster placement | [`cluster`] | Performance matrix (class-keyed expansion-path cache), Hungarian / simplex-LP / exhaustive / random / auction solvers, hard affinity constraints |
//! | Fault injection | [`faults`] | Seeded fault plans (brownouts, crashes, telemetry dropouts, model drift), eviction ordering, re-admission backoff |
//! | Simulation | [`sim`] | Discrete-event cluster simulation, policy experiments, degraded-mode resilience, heterogeneous-fleet SKU-aware vs SKU-blind comparison |
//! | Traffic engine | [`traffic`] | Sharded million-user request synthesis (bit-identical at any shard count), composable mixes, online utility refit loop |
//! | Distributed runtime | [`net`] | Length-prefixed JSON wire protocol over TCP, POM agent + POColo cluster daemons, heartbeat leases, loopback parity harness |
//! | Geo-federation | [`federation`] | Multi-region control plane: pure region controller, leader–follower replicated decision log, brownout failover harness |
//! | Cost analysis | [`tco`] | Hamilton-style amortized monthly TCO |
//!
//! # Quickstart
//!
//! ```
//! use pocolo::prelude::*;
//!
//! // Profile and fit every application, then ask the cluster manager for
//! // the power-optimized placement.
//! let fitted = FittedCluster::fit(&ProfilerConfig::default());
//! let placement = fitted.placement(Policy::Pocolo { solver: Solver::Hungarian });
//! assert_eq!(placement.len(), 4);
//! ```

#![warn(missing_docs)]

pub use pocolo_cluster as cluster;
pub use pocolo_core as core;
pub use pocolo_faults as faults;
pub use pocolo_federation as federation;
pub use pocolo_manager as manager;
pub use pocolo_net as net;
pub use pocolo_sim as sim;
pub use pocolo_simserver as simserver;
pub use pocolo_tco as tco;
pub use pocolo_traffic as traffic;
pub use pocolo_workloads as workloads;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use pocolo_cluster::{
        Assignment, ClusterManager, PerfMatrix, PerfMatrixBuilder, PlacementConstraints,
        ServerProfile, Solver,
    };
    pub use pocolo_core::fit::{check_convexity, ConvexityReport, OnlineFitter};
    pub use pocolo_core::fleet::{FleetSpec, PowerCurve, ServerClass};
    pub use pocolo_core::{
        Allocation, CobbDouglas, CoreError, Frequency, IndirectUtility, Joules, PowerModel,
        PreferenceVector, ResourceDescriptor, ResourceSpace, Watts,
    };
    pub use pocolo_faults::{
        eviction_order, FaultEvent, FaultKind, FaultPlan, FaultSpec, ReadmissionBackoff,
        RegionFaultKind, RegionFaultPlan, RegionFaultSpec, RegionScenario,
        Scenario as FaultScenario,
    };
    pub use pocolo_federation::{
        FederationConfig, FederationReport, FederationScenario, RegionController,
    };
    pub use pocolo_manager::{
        BeGuard, BeIntent, BeJob, BeQueue, CapAction, ControlDecision, ControlInput, ControlMode,
        DecisionRecord, GovernorConfig, HeraclesController, LcPolicy, ManagerConfig, ModeMachine,
        PocoloController, PowerCapper, PrimaryDirective, QueueDiscipline, ResilienceParams,
        ServerController, ServerManager,
    };
    pub use pocolo_sim::experiment::{
        run_experiment, run_experiment_traced, run_experiment_with, run_level_sweep,
        run_policy_sweeps, DecisionTrace, ExperimentConfig, ExperimentResult, FittedCluster,
        Policy,
    };
    pub use pocolo_sim::fleet::{
        compare_fleet_policies, run_fleet_policy, FittedFleet, FleetComparison, FleetRunResult,
        DEMO_FAULT_SEED, DEMO_FLEET_SEED,
    };
    pub use pocolo_sim::rebalance::{run_rebalancing, RebalanceConfig, RebalanceResult};
    pub use pocolo_sim::{
        ClusterSim, ClusterSummary, FaultTimeline, Parallelism, ResilienceConfig,
        ServerFaultAction, ServerMetrics, ServerSim, SpatialServerSim, SpatialTenant,
    };
    pub use pocolo_simserver::{
        CoreSet, MachineSpec, P2Quantile, SimServer, TenantAllocation, TenantRole, WayMask,
    };
    pub use pocolo_tco::{MonthlyCost, Scenario, TcoModel};
    pub use pocolo_traffic::{
        run_traffic, MixKind, RequestBatch, TrafficConfig, TrafficGen, TrafficMix, TrafficReport,
        TrafficSpec,
    };
    pub use pocolo_workloads::profiler::{profile_be, profile_lc, ProfilerConfig};
    pub use pocolo_workloads::{AppId, BeApp, BeModel, LcApp, LcModel, LoadTrace};
}

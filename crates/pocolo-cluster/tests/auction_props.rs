//! Property tests for the sparse auction path: on random dense matrices
//! up to 64×96, the auction total stays within the ε·rows band of the
//! exact Hungarian optimum, and an incremental repair after a matrix
//! delta lands in the same band as a cold solve on the patched matrix.
//!
//! The auction is ε-approximate and path-dependent, so "equals a cold
//! solve" is asserted the only way it is well-defined: both totals sit
//! within ε·rows of the patched matrix's exact optimum, which also bounds
//! them within 2·ε·rows of each other.

use pocolo_cluster::assign::auction::{self, AuctionConfig};
use pocolo_cluster::assign::hungarian;
use pocolo_cluster::assign::sparse::SparseCandidates;
use pocolo_cluster::matrix::{MatrixDelta, PerfMatrix};
use proptest::prelude::*;
use rand::prelude::*;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> PerfMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let values = (0..rows)
        .map(|_| (0..cols).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    PerfMatrix::new(
        (0..rows).map(|i| format!("be{i}")).collect(),
        (0..cols).map(|j| format!("lc{j}")).collect(),
        values,
    )
    .expect("random matrix is well-formed")
}

/// Perfect matching: every row placed once, no column reused, no
/// disabled column assigned.
fn assert_valid(matrix: &PerfMatrix, pairs: &[(usize, usize)]) {
    assert_eq!(pairs.len(), matrix.rows());
    let mut used = vec![false; matrix.cols()];
    for (i, &(row, col)) in pairs.iter().enumerate() {
        assert_eq!(row, i, "pairs sorted by row");
        assert!(!matrix.is_col_disabled(col), "assigned a disabled column");
        assert!(!used[col], "column {col} assigned twice");
        used[col] = true;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn auction_total_within_eps_of_hungarian(
        rows in 1usize..=64,
        extra in 0usize..=95,
        seed in any::<u64>(),
    ) {
        let cols = (rows + extra).clamp(rows, 96);
        let matrix = random_matrix(rows, cols, seed);
        let cfg = AuctionConfig::default();
        let sol = auction::solve(&matrix, &cfg).expect("auction solve");
        assert_valid(&matrix, &sol.assignment.pairs);
        prop_assert!(sol.certified, "solve must certify its gap");
        let exact = hungarian::solve_max(&matrix);
        let bound = cfg.eps * rows as f64 + 1e-9 * rows as f64;
        prop_assert!(
            sol.assignment.total >= exact.total - bound,
            "auction {} below hungarian {} by more than {bound}",
            sol.assignment.total,
            exact.total
        );
        prop_assert!(
            sol.assignment.total <= exact.total + bound,
            "auction {} exceeds the exact optimum {}",
            sol.assignment.total,
            exact.total
        );
    }

    #[test]
    fn incremental_matches_cold_solve_on_patched_matrix(
        rows in 1usize..=64,
        extra in 0usize..=95,
        seed in any::<u64>(),
        edited in any::<u32>(),
    ) {
        let cols = (rows + extra).clamp(rows, 96);
        let matrix = random_matrix(rows, cols, seed);
        let cfg = AuctionConfig::default();
        let mut cands = SparseCandidates::build(&matrix, SparseCandidates::default_k(cols));
        let prev = auction::solve_with_candidates(&matrix, &mut cands, &cfg)
            .expect("reference solve");

        // Rewrite one column's values; additionally disable the column
        // hosting row 0 when a spare column exists (the fault path).
        let victim = edited as usize % cols;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDE17A);
        let fresh: Vec<f64> = (0..rows).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut delta = MatrixDelta::new().set_column(victim, fresh);
        if cols > rows {
            let faulted = prev.assignment.server_for(0).expect("row 0 placed");
            if faulted != victim {
                delta = delta.disable_column(faulted);
            }
        }
        let patched = matrix.patched(&delta).expect("patched matrix");

        let inc = auction::solve_incremental(&patched, &mut cands, &prev, &delta, &cfg)
            .expect("incremental repair");
        assert_valid(&patched, &inc.assignment.pairs);
        prop_assert!(inc.certified, "repair must certify its gap");

        // Through the dispatcher so the disabled column is projected out.
        let exact = pocolo_cluster::assign::solve(&patched, pocolo_cluster::assign::Solver::Hungarian)
            .expect("exact solve on patched");
        let bound = cfg.eps * rows as f64 + 1e-9 * rows as f64;
        prop_assert!(
            inc.assignment.total >= exact.total - bound,
            "incremental {} below patched optimum {} by more than {bound}",
            inc.assignment.total,
            exact.total
        );
        let cold = auction::solve(&patched, &cfg).expect("cold solve on patched");
        prop_assert!(
            (inc.assignment.total - cold.assignment.total).abs() <= 2.0 * bound,
            "incremental {} and cold {} disagree beyond 2·ε·rows",
            inc.assignment.total,
            cold.assignment.total
        );
    }
}

//! Property tests for the class-keyed PerfMatrix cache: a homogeneous
//! `FleetSpec` (the legacy degenerate case) must reproduce the unkeyed
//! builder's matrix bit-for-bit, and duplicating columns under shared
//! keys must equal the dense build on the duplicated inputs.
//!
//! Profiling real workloads is too slow for a proptest loop, so the
//! utilities here are synthetic Cobb-Douglas models drawn from the
//! generator — the matrix machinery only sees fitted `IndirectUtility`
//! values either way.

use pocolo_cluster::perfmatrix::{PerfMatrixBuilder, ServerProfile};
use pocolo_core::fleet::{FleetSpec, ServerClass};
use pocolo_core::units::Watts;
use pocolo_core::utility::{CobbDouglas, IndirectUtility, PowerModel};
use proptest::prelude::*;

fn synthetic_utility(space_class: &ServerClass, a0: f64, ac: f64, aw: f64) -> IndirectUtility {
    let perf = CobbDouglas::new(a0, vec![ac, aw]).expect("valid exponents");
    let power = PowerModel::new(Watts(40.0), vec![6.0, 1.5]).expect("valid power model");
    IndirectUtility::new(space_class.space(), perf, power).expect("valid utility")
}

fn synthetic_server(class: &ServerClass, idx: usize, ac: f64, aw: f64) -> ServerProfile {
    let utility = synthetic_utility(class, 80.0 + idx as f64, ac, aw);
    let peak = utility
        .value(utility.max_power())
        .expect("max power is feasible");
    ServerProfile {
        label: format!("lc{idx}"),
        utility,
        power_cap: Watts(120.0),
        peak_load: peak,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A homogeneous fleet's keyed build is bit-for-bit the legacy build:
    /// with one class, every (class, primary) key is distinct, so the
    /// cache degenerates to exactly the per-server path computation.
    #[test]
    fn homogeneous_fleet_reproduces_legacy_matrix(
        n_servers in 1usize..=6,
        n_bes in 1usize..=4,
        seed in any::<u64>(),
        ac in 0.3f64..0.7,
        aw in 0.1f64..0.4,
    ) {
        let class = ServerClass::xeon_e5_2650();
        let spec = FleetSpec::homogeneous(class.clone());
        let assignment = spec.assign(n_servers, seed);
        prop_assert!(assignment.iter().all(|&c| c == 0));
        let servers: Vec<ServerProfile> = (0..n_servers)
            .map(|i| synthetic_server(&class, i, ac + 0.01 * i as f64, aw))
            .collect();
        let bes: Vec<(String, IndirectUtility)> = (0..n_bes)
            .map(|i| (format!("be{i}"), synthetic_utility(&class, 50.0, aw + 0.02 * i as f64, ac)))
            .collect();
        // Key layout used by the fleet pipeline: class * n + server slot.
        let keys: Vec<usize> = assignment
            .iter()
            .enumerate()
            .map(|(s, &c)| c * n_servers + s)
            .collect();
        let builder = PerfMatrixBuilder::new();
        let legacy = builder.build(&bes, &servers).unwrap();
        let keyed = builder.build_keyed(&bes, &servers, &keys).unwrap();
        prop_assert_eq!(&keyed, &legacy);
        for r in 0..legacy.rows() {
            for c in 0..legacy.cols() {
                prop_assert_eq!(keyed.value(r, c).to_bits(), legacy.value(r, c).to_bits());
            }
        }
    }

    /// Columns duplicated under a shared key match the dense build on the
    /// duplicated server list — the cache only skips work, never changes
    /// values.
    #[test]
    fn shared_keys_match_dense_build(
        n_classes in 1usize..=3,
        copies in 2usize..=4,
        ac in 0.3f64..0.7,
    ) {
        let class = ServerClass::xeon_e5_2650();
        let base: Vec<ServerProfile> = (0..n_classes)
            .map(|i| synthetic_server(&class, i, ac, 0.2 + 0.05 * i as f64))
            .collect();
        let mut servers = Vec::new();
        let mut keys = Vec::new();
        for rep in 0..copies {
            for (i, s) in base.iter().enumerate() {
                let mut s = s.clone();
                s.label = format!("lc{i}r{rep}");
                servers.push(s);
                keys.push(i);
            }
        }
        let bes = vec![("be0".to_string(), synthetic_utility(&class, 50.0, 0.5, 0.3))];
        let builder = PerfMatrixBuilder::new();
        let keyed = builder.build_keyed(&bes, &servers, &keys).unwrap();
        let dense = builder.build(&bes, &servers).unwrap();
        for r in 0..dense.rows() {
            for c in 0..dense.cols() {
                prop_assert_eq!(keyed.value(r, c).to_bits(), dense.value(r, c).to_bits());
            }
        }
    }
}

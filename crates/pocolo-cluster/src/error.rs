//! Error types for cluster placement.

use std::error::Error as StdError;
use std::fmt;

use pocolo_core::error::CoreError;

/// Errors from matrix construction and assignment solving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The performance matrix was empty or ragged.
    InvalidMatrix(String),
    /// More best-effort apps than servers — a one-BE-per-server assignment
    /// does not exist.
    TooManyApps {
        /// Number of best-effort applications to place.
        apps: usize,
        /// Number of candidate servers.
        servers: usize,
    },
    /// The LP solver found the problem infeasible (should not happen for
    /// well-formed assignment instances).
    Infeasible,
    /// The LP solver detected an unbounded objective (malformed input).
    Unbounded,
    /// An underlying economics-model error.
    Model(CoreError),
    /// A solved placement put a best-effort app on a server class its
    /// hard affinity/anti-affinity constraints forbid — the constrained
    /// instance has no admissible perfect matching.
    ConstraintViolation {
        /// The best-effort row that could not be admissibly placed.
        row: usize,
        /// The server class it landed on.
        class: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidMatrix(msg) => write!(f, "invalid performance matrix: {msg}"),
            ClusterError::TooManyApps { apps, servers } => write!(
                f,
                "cannot place {apps} best-effort apps on {servers} servers (one per server)"
            ),
            ClusterError::Infeasible => write!(f, "assignment LP is infeasible"),
            ClusterError::Unbounded => write!(f, "assignment LP is unbounded"),
            ClusterError::Model(e) => write!(f, "model error: {e}"),
            ClusterError::ConstraintViolation { row, class } => write!(
                f,
                "no admissible placement: BE app {row} forced onto forbidden server class {class}"
            ),
        }
    }
}

impl StdError for ClusterError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ClusterError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ClusterError {
    fn from(e: CoreError) -> Self {
        ClusterError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(ClusterError::Infeasible.to_string().contains("infeasible"));
        assert!(ClusterError::TooManyApps {
            apps: 5,
            servers: 4
        }
        .to_string()
        .contains("5"));
        let e = ClusterError::Model(CoreError::SingularSystem);
        assert!(StdError::source(&e).is_some());
    }
}

//! Building the BE×LC performance matrix from fitted models (§IV-B).
//!
//! For each (best-effort app, LC server) pair the builder walks the
//! primary's least-power expansion path over its load range; at each load
//! it computes the spare cores/ways and the power headroom under the
//! server's provisioned cap, then evaluates the BE app's fitted indirect
//! utility *inside that box*. The matrix entry is the average across loads
//! — so placements favour apps that benefit across the primary's **entire
//! load spectrum**, not one operating point (the Fig. 4 insight).

use pocolo_core::error::CoreError;
use pocolo_core::resources::{Allocation, ResourceDescriptor, ResourceSpace};
use pocolo_core::units::Watts;
use pocolo_core::utility::IndirectUtility;

use crate::error::ClusterError;
use crate::matrix::{MatrixDelta, PerfMatrix};

/// A latency-critical server as the cluster manager sees it: the fitted
/// model of its primary app, its provisioned power cap, and the primary's
/// peak load.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerProfile {
    /// Label (the primary app's name).
    pub label: String,
    /// Fitted indirect utility of the primary (performance = max
    /// sustainable load; power model includes the platform idle power).
    pub utility: IndirectUtility,
    /// Provisioned (right-sized) server power capacity.
    pub power_cap: Watts,
    /// The primary's peak load in its own units (requests/s).
    pub peak_load: f64,
}

/// One BE-independent slice of a server's least-power expansion path: what
/// the primary takes at one load level, and what that leaves behind.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpansionStep {
    /// Load level as a fraction of the primary's peak.
    pub level: f64,
    /// Least power at which the primary can serve this level.
    pub budget: Watts,
    /// The primary's hardware (integral) demand at that budget.
    pub lc_alloc: Allocation,
    /// Power headroom left under the server's provisioned cap.
    pub headroom: Watts,
    /// The spare-resource box a colocated BE app may occupy.
    pub sub_space: ResourceSpace,
}

/// A server's least-power expansion path over a set of load levels, with
/// everything that does **not** depend on the BE app computed once.
///
/// Building the path performs one `min_power_for` inversion (the expensive
/// bisection) plus one integral demand solve per load level; evaluating a
/// BE candidate against it only costs cheap demand solves inside the cached
/// spare boxes. The matrix builder computes one path per server and reuses
/// it across every BE row, turning O(B·S·L) inversions into O(S·L).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpansionPath {
    /// Number of load levels the path was computed over, including
    /// infeasible ones (the averaging divisor).
    levels: usize,
    /// The feasible steps only; levels where the primary needs the whole
    /// machine — or leaves no spare box — are dropped and contribute zero.
    steps: Vec<ExpansionStep>,
}

impl ExpansionPath {
    /// Walks `server`'s expansion path over `load_levels` (fractions of the
    /// primary's peak).
    ///
    /// # Errors
    ///
    /// Rejects an empty level list; propagates unexpected model errors.
    /// Infeasibility at individual levels is folded into dropped steps, not
    /// errors.
    pub fn compute(server: &ServerProfile, load_levels: &[f64]) -> Result<Self, ClusterError> {
        if load_levels.is_empty() {
            return Err(ClusterError::InvalidMatrix("no load levels".into()));
        }
        let space = server.utility.space();
        let k = space.len();
        let mut steps = Vec::with_capacity(load_levels.len());
        for &level in load_levels {
            let target = level * server.peak_load;
            let budget = match server.utility.min_power_for(target) {
                Ok(p) => p,
                Err(CoreError::UnreachableTarget { .. }) => {
                    // Primary needs everything; BE gets nothing at this load.
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            let lc_alloc = server.utility.demand_integral(budget)?;
            let lc_power = server.utility.power_model().power_of(&lc_alloc);
            let headroom = server.power_cap - lc_power;
            // Spare per dimension; whole units for integral resources.
            let spare: Vec<f64> = (0..k)
                .map(|j| {
                    let d = space.descriptor(j);
                    let raw = d.max() - lc_alloc.amount(j);
                    if d.is_integral() {
                        raw.floor()
                    } else {
                        raw
                    }
                })
                .collect();
            if spare.iter().any(|&v| v < 1.0) || headroom <= Watts::ZERO {
                continue;
            }
            let mut builder = ResourceSpace::builder();
            for (j, &v) in spare.iter().enumerate() {
                let d = space.descriptor(j);
                builder = builder.resource(if d.is_integral() {
                    ResourceDescriptor::integral(d.name(), 1.0, v)
                } else {
                    ResourceDescriptor::continuous(d.name(), 1.0, v)
                });
            }
            steps.push(ExpansionStep {
                level,
                budget,
                lc_alloc,
                headroom,
                sub_space: builder.build()?,
            });
        }
        Ok(ExpansionPath {
            levels: load_levels.len(),
            steps,
        })
    }

    /// The feasible steps of the path, in load-level order.
    pub fn steps(&self) -> &[ExpansionStep] {
        &self.steps
    }

    /// The number of load levels the path covers (feasible or not).
    pub fn level_count(&self) -> usize {
        self.levels
    }
}

/// Estimated average throughput of a BE app (fitted utility `be`) along a
/// precomputed expansion path.
///
/// Levels the path dropped as infeasible contribute a zero (the BE app
/// would be evicted); so do steps whose headroom cannot cover the BE's
/// minimum allocation.
///
/// # Errors
///
/// Propagates unexpected model errors (dimension mismatches etc.);
/// infeasibility is folded into zeros, not errors.
pub fn estimate_on_path(be: &IndirectUtility, path: &ExpansionPath) -> Result<f64, ClusterError> {
    let mut total = 0.0;
    for step in &path.steps {
        let be_sub = IndirectUtility::new(
            step.sub_space.clone(),
            be.performance_model().clone(),
            be.power_model().clone(),
        )?;
        match be_sub.demand_solution(step.headroom) {
            Ok(sol) => total += sol.utility,
            Err(CoreError::InfeasibleBudget { .. }) => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(total / path.levels as f64)
}

/// Estimated average throughput of a BE app placed on `server`, averaged
/// over `load_levels` (fractions of the primary's peak).
///
/// One-shot convenience over [`ExpansionPath::compute`] +
/// [`estimate_on_path`]; callers scoring several BE apps against the same
/// server should compute the path once and reuse it, as
/// [`PerfMatrixBuilder::build`] does.
///
/// # Errors
///
/// Same conditions as [`ExpansionPath::compute`] and [`estimate_on_path`].
pub fn estimate_pair_throughput(
    be: &IndirectUtility,
    server: &ServerProfile,
    load_levels: &[f64],
) -> Result<f64, ClusterError> {
    estimate_on_path(be, &ExpansionPath::compute(server, load_levels)?)
}

/// Builds [`PerfMatrix`]es from fitted models over a configurable load
/// range.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfMatrixBuilder {
    load_levels: Vec<f64>,
}

impl Default for PerfMatrixBuilder {
    /// The paper's uniform 10–90 % range in steps of 10 (§V-D).
    fn default() -> Self {
        PerfMatrixBuilder {
            load_levels: (1..=9).map(|i| i as f64 / 10.0).collect(),
        }
    }
}

impl PerfMatrixBuilder {
    /// Builder with the paper's default load range.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the load levels (fractions of each primary's peak).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    #[must_use]
    pub fn with_load_levels(mut self, levels: Vec<f64>) -> Self {
        assert!(!levels.is_empty(), "need at least one load level");
        self.load_levels = levels;
        self
    }

    /// The configured load levels.
    pub fn load_levels(&self) -> &[f64] {
        &self.load_levels
    }

    /// Builds the matrix: rows = best-effort apps, cols = servers.
    ///
    /// Equivalent to [`PerfMatrixBuilder::build_keyed`] with every column
    /// carrying a distinct key (one expansion path per server).
    ///
    /// # Errors
    ///
    /// Propagates estimation errors; see [`estimate_pair_throughput`].
    pub fn build(
        &self,
        be_apps: &[(String, IndirectUtility)],
        servers: &[ServerProfile],
    ) -> Result<PerfMatrix, ClusterError> {
        let keys: Vec<usize> = (0..servers.len()).collect();
        self.build_keyed(be_apps, servers, &keys)
    }

    /// Builds the matrix with a class-keyed expansion-path cache: columns
    /// that share a key share one expansion path and one estimate per BE
    /// row, so a heterogeneous fleet costs O(classes × levels) inversions
    /// and O(classes × apps) estimates instead of O(servers × ·).
    ///
    /// Equal keys assert that the corresponding [`ServerProfile`]s are
    /// interchangeable (same fitted utility, cap, and peak — i.e. the same
    /// (SKU, primary-app) class); the first column of each key is the one
    /// actually computed, in column order, and its values are copied
    /// bit-for-bit to the rest.
    ///
    /// # Errors
    ///
    /// Rejects a key list whose length differs from `servers`; otherwise
    /// as [`PerfMatrixBuilder::build`].
    pub fn build_keyed(
        &self,
        be_apps: &[(String, IndirectUtility)],
        servers: &[ServerProfile],
        keys: &[usize],
    ) -> Result<PerfMatrix, ClusterError> {
        if be_apps.is_empty() || servers.is_empty() {
            return Err(ClusterError::InvalidMatrix(
                "need at least one app and one server".into(),
            ));
        }
        if keys.len() != servers.len() {
            return Err(ClusterError::InvalidMatrix(format!(
                "{} class keys for {} servers",
                keys.len(),
                servers.len()
            )));
        }
        // Each *class*'s expansion path — the min_power_for bisections and
        // integral demand solves — is BE-independent and shared by every
        // column with that key, so compute it exactly once (at the key's
        // first column, in column order) and fan it out.
        let mut path_index: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut paths: Vec<ExpansionPath> = Vec::new();
        let mut path_of: Vec<usize> = Vec::with_capacity(servers.len());
        for (server, &key) in servers.iter().zip(keys) {
            let idx = match path_index.get(&key) {
                Some(&idx) => idx,
                None => {
                    let idx = paths.len();
                    paths.push(ExpansionPath::compute(server, &self.load_levels)?);
                    path_index.insert(key, idx);
                    idx
                }
            };
            path_of.push(idx);
        }
        let mut values = Vec::with_capacity(be_apps.len());
        for (_, be) in be_apps {
            // One estimate per (class, app); columns copy their class value.
            let mut per_path = Vec::with_capacity(paths.len());
            for path in &paths {
                per_path.push(estimate_on_path(be, path)?);
            }
            values.push(path_of.iter().map(|&idx| per_path[idx]).collect());
        }
        PerfMatrix::new(
            be_apps.iter().map(|(l, _)| l.clone()).collect(),
            servers.iter().map(|s| s.label.clone()).collect(),
            values,
        )
    }

    /// Re-estimates only the given columns of `current` against (possibly
    /// updated) server profiles and returns the [`MatrixDelta`] between the
    /// old and freshly-estimated values — the input to the incremental
    /// replan path. Expansion paths are recomputed for the listed columns
    /// only, so a single-server cap de-rate costs one path, not a full
    /// matrix rebuild.
    ///
    /// Columns currently disabled in `current` (faulted-out servers) are
    /// skipped: rebuilding must not silently re-admit them. Unchanged
    /// columns produce no edit.
    ///
    /// # Errors
    ///
    /// Rejects shape mismatches between `current`, `be_apps`, and
    /// `servers`; propagates estimation failures.
    pub fn rebuild_columns(
        &self,
        be_apps: &[(String, IndirectUtility)],
        servers: &[ServerProfile],
        cols: &[usize],
        current: &PerfMatrix,
    ) -> Result<MatrixDelta, ClusterError> {
        if servers.len() != current.cols() || be_apps.len() != current.rows() {
            return Err(ClusterError::InvalidMatrix(format!(
                "rebuild over {}x{} inputs against a {}x{} matrix",
                be_apps.len(),
                servers.len(),
                current.rows(),
                current.cols()
            )));
        }
        let mut delta = MatrixDelta::new();
        for &col in cols {
            if col >= current.cols() {
                return Err(ClusterError::InvalidMatrix(format!(
                    "rebuild column {col} out of range ({} cols)",
                    current.cols()
                )));
            }
            if current.is_col_disabled(col) {
                continue;
            }
            let path = ExpansionPath::compute(&servers[col], &self.load_levels)?;
            let mut column = Vec::with_capacity(be_apps.len());
            for (_, be) in be_apps {
                column.push(estimate_on_path(be, &path)?);
            }
            if current.col_iter(col).zip(&column).any(|(a, &b)| a != b) {
                delta = delta.set_column(col, column);
            }
        }
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_core::fit::{fit_indirect_utility, FitOptions};
    use pocolo_simserver::power::PowerDrawModel;
    use pocolo_simserver::MachineSpec;
    use pocolo_workloads::profiler::{profile_be, profile_lc, ProfilerConfig};
    use pocolo_workloads::{BeApp, BeModel, LcApp, LcModel};

    fn fitted_cluster() -> (Vec<(String, IndirectUtility)>, Vec<ServerProfile>) {
        let machine = MachineSpec::xeon_e5_2650();
        let power = PowerDrawModel::new(machine.clone());
        let space = machine.resource_space();
        let cfg = ProfilerConfig::default();
        let servers = LcApp::ALL
            .iter()
            .map(|&app| {
                let truth = LcModel::for_app(app, machine.clone());
                let samples = profile_lc(&truth, &power, &space, &cfg);
                let fit = fit_indirect_utility(&space, &samples, &FitOptions::default()).unwrap();
                ServerProfile {
                    label: app.name().to_string(),
                    utility: fit.utility,
                    power_cap: truth.provisioned_power(),
                    peak_load: truth.peak_load_rps(),
                }
            })
            .collect();
        let bes = BeApp::ALL
            .iter()
            .map(|&app| {
                let truth = BeModel::for_app(app, machine.clone());
                let samples = profile_be(&truth, &power, &space, &cfg);
                let fit = fit_indirect_utility(&space, &samples, &FitOptions::default()).unwrap();
                (app.name().to_string(), fit.utility)
            })
            .collect();
        (bes, servers)
    }

    #[test]
    fn matrix_has_sane_shape_and_values() {
        let (bes, servers) = fitted_cluster();
        let m = PerfMatrixBuilder::new().build(&bes, &servers).unwrap();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 4);
        for r in 0..4 {
            for c in 0..4 {
                let v = m.value(r, c);
                assert!(v.is_finite() && v >= 0.0);
                assert!(v < 1.5, "normalized throughput estimate should be < 1.5");
            }
        }
    }

    #[test]
    fn estimates_decrease_with_narrower_headroom() {
        let (bes, servers) = fitted_cluster();
        let be = &bes[2].1; // graph
        let mut tight = servers[1].clone(); // sphinx
        let loose = tight.clone();
        tight.power_cap -= Watts(30.0);
        let levels = [0.3, 0.5, 0.7];
        let v_loose = estimate_pair_throughput(be, &loose, &levels).unwrap();
        let v_tight = estimate_pair_throughput(be, &tight, &levels).unwrap();
        assert!(
            v_tight < v_loose,
            "tighter cap must shrink the estimate: {v_tight} !< {v_loose}"
        );
    }

    #[test]
    fn high_loads_leave_less_for_be() {
        let (bes, servers) = fitted_cluster();
        let be = &bes[0].1;
        let low = estimate_pair_throughput(be, &servers[2], &[0.1]).unwrap();
        let high = estimate_pair_throughput(be, &servers[2], &[0.9]).unwrap();
        assert!(high < low);
    }

    #[test]
    fn build_computes_each_expansion_path_exactly_once() {
        use pocolo_core::utility::min_power_solves_on_thread;
        let (bes, servers) = fitted_cluster();
        let levels = PerfMatrixBuilder::new().load_levels().len();
        let before = min_power_solves_on_thread();
        PerfMatrixBuilder::new().build(&bes, &servers).unwrap();
        let solves = min_power_solves_on_thread() - before;
        // One inversion per (server, level) — NOT per (BE, server, level):
        // the B BE rows ride on the cached paths.
        assert_eq!(solves, (servers.len() * levels) as u64);
    }

    #[test]
    fn cached_path_matches_one_shot_estimate() {
        let (bes, servers) = fitted_cluster();
        let levels = [0.2, 0.5, 0.8];
        let path = ExpansionPath::compute(&servers[1], &levels).unwrap();
        assert_eq!(path.level_count(), 3);
        for (_, be) in &bes {
            let cached = estimate_on_path(be, &path).unwrap();
            let one_shot = estimate_pair_throughput(be, &servers[1], &levels).unwrap();
            assert_eq!(cached, one_shot);
        }
        for step in path.steps() {
            assert!(step.headroom > Watts::ZERO);
            assert!(step.budget <= servers[1].power_cap);
            assert!(step.sub_space.len() == servers[1].utility.space().len());
            assert!(step.lc_alloc.amounts().iter().all(|&a| a > 0.0));
        }
    }

    #[test]
    fn rebuild_columns_finds_exactly_the_derated_column() {
        use pocolo_core::utility::min_power_solves_on_thread;
        let (bes, servers) = fitted_cluster();
        let builder = PerfMatrixBuilder::new();
        let m = builder.build(&bes, &servers).unwrap();
        let mut derated = servers.clone();
        derated[1].power_cap -= Watts(30.0);
        // Even when asked to check every column, only the de-rated one
        // produces an edit.
        let delta = builder
            .rebuild_columns(&bes, &derated, &[0, 1, 2, 3], &m)
            .unwrap();
        assert_eq!(delta.dirty_cols().collect::<Vec<_>>(), vec![1]);
        // Patching the old matrix reproduces a from-scratch rebuild.
        let fresh = builder.build(&bes, &derated).unwrap();
        assert_eq!(m.patched(&delta).unwrap(), fresh);
        // Rebuilding one column pays one expansion path, not four.
        let levels = builder.load_levels().len() as u64;
        let before = min_power_solves_on_thread();
        builder.rebuild_columns(&bes, &derated, &[1], &m).unwrap();
        assert_eq!(min_power_solves_on_thread() - before, levels);
        // Disabled columns are skipped, never re-admitted.
        let faulted = m
            .patched(&crate::matrix::MatrixDelta::new().disable_column(1))
            .unwrap();
        let skip = builder
            .rebuild_columns(&bes, &derated, &[1], &faulted)
            .unwrap();
        assert!(skip.is_empty());
        // Shape mismatches are rejected.
        assert!(builder
            .rebuild_columns(&bes, &derated[..2], &[0], &m)
            .is_err());
        assert!(builder.rebuild_columns(&bes, &derated, &[9], &m).is_err());
    }

    #[test]
    fn build_keyed_shares_paths_across_equal_keys() {
        use pocolo_core::utility::min_power_solves_on_thread;
        let (bes, servers) = fitted_cluster();
        let builder = PerfMatrixBuilder::new();
        // A fleet twice the size, but every (class, primary) pair appears
        // twice: columns 0..4 and 4..8 are interchangeable.
        let doubled: Vec<ServerProfile> = servers.iter().chain(servers.iter()).cloned().collect();
        let keys = [0usize, 1, 2, 3, 0, 1, 2, 3];
        let levels = builder.load_levels().len();
        let before = min_power_solves_on_thread();
        let keyed = builder.build_keyed(&bes, &doubled, &keys).unwrap();
        let solves = min_power_solves_on_thread() - before;
        // One inversion per (class, level) — NOT per (server, level): the
        // duplicated columns ride on the cached class paths.
        assert_eq!(solves, (4 * levels) as u64);
        // The cached values are bit-identical to an unkeyed build that
        // pays the full per-server cost.
        let dense = builder.build(&bes, &doubled).unwrap();
        assert_eq!(keyed, dense);
        // And columns sharing a key carry bit-identical values.
        for r in 0..keyed.rows() {
            for c in 0..4 {
                assert_eq!(keyed.value(r, c).to_bits(), keyed.value(r, c + 4).to_bits());
            }
        }
    }

    #[test]
    fn build_keyed_rejects_key_shape_mismatch() {
        let (bes, servers) = fitted_cluster();
        let err = PerfMatrixBuilder::new()
            .build_keyed(&bes, &servers, &[0, 1])
            .unwrap_err();
        assert!(format!("{err}").contains("class keys"));
    }

    #[test]
    fn empty_inputs_rejected() {
        let (bes, servers) = fitted_cluster();
        assert!(PerfMatrixBuilder::new().build(&[], &servers).is_err());
        assert!(PerfMatrixBuilder::new().build(&bes, &[]).is_err());
        assert!(estimate_pair_throughput(&bes[0].1, &servers[0], &[]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one load level")]
    fn empty_levels_panics() {
        let _ = PerfMatrixBuilder::new().with_load_levels(vec![]);
    }
}

#[cfg(test)]
mod k3_tests {
    use super::*;
    use pocolo_core::fit::{fit_indirect_utility, FitOptions};
    use pocolo_workloads::membw::{three_resource_space, ThreeResourceApp};

    #[test]
    fn estimates_work_at_three_resources() {
        // A three-resource "primary" (the analytics mix scaled up) and a
        // three-resource BE candidate: the matrix machinery must handle
        // k = 3 spaces without assuming cores/ways.
        let space = three_resource_space();
        let primary = ThreeResourceApp::analytics_mix();
        let be = ThreeResourceApp::compute_kernel();
        let fit = |app: &ThreeResourceApp| {
            fit_indirect_utility(&space, &app.profile(0.02, 5), &FitOptions::default())
                .unwrap()
                .utility
        };
        let primary_fit = fit(&primary);
        let be_fit = fit(&be);
        let peak = primary_fit
            .value(primary_fit.max_power())
            .expect("max power is feasible");
        let server = ServerProfile {
            label: "analytics".into(),
            utility: primary_fit,
            power_cap: Watts(120.0),
            peak_load: peak,
        };
        let levels = [0.2, 0.5, 0.8];
        let v = estimate_pair_throughput(&be_fit, &server, &levels).unwrap();
        assert!(v.is_finite() && v > 0.0, "estimate {v}");
        // Tighter cap -> smaller estimate, as at k = 2.
        let mut tight = server.clone();
        tight.power_cap = Watts(90.0);
        let v_tight = estimate_pair_throughput(&be_fit, &tight, &levels).unwrap();
        assert!(v_tight < v);
    }
}

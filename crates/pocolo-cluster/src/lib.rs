//! # pocolo-cluster
//!
//! Cluster-level placement for Pocolo (§IV-B): match each best-effort
//! application to a latency-critical server so that total cluster
//! throughput is maximized across the primaries' whole load range.
//!
//! The pipeline:
//!
//! 1. [`perfmatrix`] builds the BE×LC **performance matrix**: for every
//!    (best-effort app, LC server) pair it walks the primary's least-power
//!    expansion path over the load range, derives the spare resources and
//!    power headroom at each load, and evaluates the BE app's fitted
//!    indirect utility inside that box.
//! 2. [`assign`] solves the assignment: an exact **Hungarian** algorithm, a
//!    from-scratch two-phase **simplex LP** (the paper uses an LP solver),
//!    **exhaustive** permutation search (the Fig. 14 oracle), **random**
//!    placement (the baseline), and the sparse **auction** path
//!    ([`assign::auction`] + [`assign::sparse`]) that scales cold solves
//!    and incremental repairs to 10k-server fleets.
//! 3. [`placement::ClusterManager`] glues the two together;
//!    [`placement::PlacementPlan`] carries the warm state (candidate
//!    lists, dual prices) that lets steady-state replans touch only the
//!    dirtied rows and columns of the matrix ([`matrix::MatrixDelta`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod assign;
pub mod constraints;
pub mod error;
pub mod matrix;
pub mod perfmatrix;
pub mod placement;

pub use admission::{admit_and_place, AdmissionDecision};
pub use assign::auction::{AuctionConfig, AuctionSolution, AuctionStats};
pub use assign::sparse::SparseCandidates;
pub use assign::{Assignment, Solver};
pub use constraints::PlacementConstraints;
pub use error::ClusterError;
pub use matrix::{ColumnEdit, MatrixDelta, PerfMatrix};
pub use perfmatrix::{
    estimate_on_path, estimate_pair_throughput, ExpansionPath, ExpansionStep, PerfMatrixBuilder,
    ServerProfile,
};
pub use placement::{migration_diff, warm_assign, ClusterManager, PlacementPlan};

//! # pocolo-cluster
//!
//! Cluster-level placement for Pocolo (§IV-B): match each best-effort
//! application to a latency-critical server so that total cluster
//! throughput is maximized across the primaries' whole load range.
//!
//! The pipeline:
//!
//! 1. [`perfmatrix`] builds the BE×LC **performance matrix**: for every
//!    (best-effort app, LC server) pair it walks the primary's least-power
//!    expansion path over the load range, derives the spare resources and
//!    power headroom at each load, and evaluates the BE app's fitted
//!    indirect utility inside that box.
//! 2. [`assign`] solves the assignment: an exact **Hungarian** algorithm, a
//!    from-scratch two-phase **simplex LP** (the paper uses an LP solver),
//!    **exhaustive** permutation search (the Fig. 14 oracle) and **random**
//!    placement (the baseline).
//! 3. [`placement::ClusterManager`] glues the two together.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod assign;
pub mod error;
pub mod matrix;
pub mod perfmatrix;
pub mod placement;

pub use admission::{admit_and_place, AdmissionDecision};
pub use assign::{Assignment, Solver};
pub use error::ClusterError;
pub use matrix::PerfMatrix;
pub use perfmatrix::{
    estimate_on_path, estimate_pair_throughput, ExpansionPath, ExpansionStep, PerfMatrixBuilder,
    ServerProfile,
};
pub use placement::ClusterManager;

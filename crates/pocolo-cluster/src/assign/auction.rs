//! Forward-auction assignment with ε-scaling over sparse candidate lists.
//!
//! The dense exact solvers (Hungarian, simplex LP) re-solve from scratch
//! and touch every matrix entry; at fleet scale (10k servers × 500 BE
//! apps) that is the replan-loop bottleneck the ROADMAP calls out. The
//! auction algorithm (Bertsekas-style) instead lets each unassigned BE row
//! *bid* for its most profitable server — profit = value − price — raising
//! that server's price by the bid increment plus ε. At termination the
//! assignment satisfies ε-complementary slackness, which bounds the gap to
//! the true optimum by ε per row.
//!
//! Three properties make it the scale path:
//!
//! * **Sparsity.** Bids scan only the row's [`SparseCandidates`] list
//!   (~k ≈ log₂(cols) + 8 edges), not the dense row. Certification (below)
//!   restores exactness when pruning cut too deep.
//! * **Warm starts.** Prices are a dual solution; re-running from the
//!   previous replan's prices after a small change converges in a handful
//!   of bids instead of a full ε-scaling schedule.
//! * **Incremental repair.** [`solve_incremental`] keeps every pair whose
//!   column the [`MatrixDelta`] did not dirty, re-bids only the dirtied
//!   rows, and its work is O(k · dirtied rows) — counted, not timed, so CI
//!   can assert the bound without wall-clock flakiness.
//!
//! **Certification.** Prices give a feasible dual: with unassigned-column
//! prices read as zero, `π_i = max_j (v_ij − p_j)` over *all* enabled
//! columns makes `Σπ_i + Σ_{assigned j} p_j` an upper bound on the
//! optimum. If the bound exceeds the auction total by more than ε·rows,
//! the violating rows' best off-list edges are spliced into their
//! candidate lists ([`SparseCandidates::ensure_edge`]) and those rows
//! re-bid — the exactness escape hatch. A price crossing the feasibility
//! ceiling means the pruned graph has no perfect matching (e.g. k columns
//! shared by k+1 rows): the engine widens k and restarts.

use std::collections::VecDeque;

use crate::assign::sparse::SparseCandidates;
use crate::assign::Assignment;
use crate::error::ClusterError;
use crate::matrix::{MatrixDelta, PerfMatrix};

/// Default ε: with paper-scale throughputs (≈0..1) this keeps the
/// per-row optimality loss three orders of magnitude below the signal.
pub const DEFAULT_EPS: f64 = 1e-3;

/// Tuning knobs for the auction engine.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionConfig {
    /// Final ε: the per-row optimality tolerance.
    pub eps: f64,
    /// ε-scaling factor: each phase divides ε by `theta` until `eps`.
    pub theta: f64,
    /// Run the dual-bound certification/repair loop after bidding.
    pub certify: bool,
    /// Certification repair rounds before the full-width fallback.
    pub max_widen: usize,
    /// Initial candidate-list width; `None` = [`SparseCandidates::default_k`].
    pub k0: Option<usize>,
}

impl Default for AuctionConfig {
    fn default() -> Self {
        AuctionConfig {
            eps: DEFAULT_EPS,
            theta: 4.0,
            certify: true,
            max_widen: 16,
            k0: None,
        }
    }
}

impl AuctionConfig {
    /// The default configuration with a custom ε.
    pub fn with_eps(eps: f64) -> Self {
        AuctionConfig {
            eps,
            ..AuctionConfig::default()
        }
    }
}

/// Operation counters — the timing-independent evidence for the scale
/// claims (mirrors the PR 1 `min_power_solves_on_thread` pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuctionStats {
    /// Bid operations (one row picking its best candidate).
    pub bids: u64,
    /// Candidate edges scanned while bidding — the headline counter the
    /// incremental O(k · dirtied rows) bound is asserted against.
    pub bid_edges: u64,
    /// Dense edges scanned by certification sweeps.
    pub cert_edges: u64,
    /// ε-scaling phases run.
    pub phases: u32,
    /// Candidate-list widenings (certification splices + restarts).
    pub widen_rounds: u32,
    /// Rows the last incremental repair had to re-bid.
    pub dirty_rows: usize,
}

/// An auction result: the assignment plus the dual state needed to
/// warm-start the next replan.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionSolution {
    /// The placement, pairs sorted by row.
    pub assignment: Assignment,
    /// Final column prices — the warm-start state.
    pub prices: Vec<f64>,
    /// The ε the solution satisfies ε-complementary slackness for.
    pub eps: f64,
    /// Whether the dual bound certified `total ≥ optimum − eps·rows`.
    pub certified: bool,
    /// Operation counters.
    pub stats: AuctionStats,
}

/// Why a bidding phase stopped early.
enum Abort {
    /// A price crossed the feasibility ceiling: the sparse graph has no
    /// perfect matching — widen and restart.
    Ceiling,
    /// A row had no enabled candidates at all.
    Starved,
}

struct Engine<'a> {
    matrix: &'a PerfMatrix,
    cfg: &'a AuctionConfig,
    vmax: f64,
    ceiling: f64,
    prices: Vec<f64>,
    /// Column assigned to each row.
    assigned: Vec<Option<usize>>,
    /// Row owning each column.
    owner: Vec<Option<usize>>,
    queue: VecDeque<usize>,
    certified: bool,
    stats: AuctionStats,
}

impl<'a> Engine<'a> {
    fn new(matrix: &'a PerfMatrix, cfg: &'a AuctionConfig, prices: Vec<f64>) -> Self {
        let vmax = matrix.max_value();
        let rows = matrix.rows() as f64;
        let p0 = prices.iter().cloned().fold(0.0f64, f64::max);
        Engine {
            matrix,
            cfg,
            vmax,
            // Feasible-auction price bound: initial + (rows+1)(vmax + ε₀).
            ceiling: p0 + (rows + 1.0) * (vmax + vmax / 2.0 + cfg.eps) + 1.0,
            prices,
            assigned: vec![None; matrix.rows()],
            owner: vec![None; matrix.cols()],
            queue: VecDeque::new(),
            certified: false,
            stats: AuctionStats::default(),
        }
    }

    fn unassign(&mut self, row: usize) {
        if let Some(col) = self.assigned[row].take() {
            self.owner[col] = None;
            // A vacated column must not keep its stale price: certification
            // counts unassigned columns at zero, and re-bidding rows must
            // see the same number or the repair loop cannot converge.
            self.prices[col] = 0.0;
        }
        self.queue.push_back(row);
    }

    fn reset_assignment(&mut self) {
        self.assigned.fill(None);
        self.owner.fill(None);
        self.queue.clear();
        self.queue.extend(0..self.matrix.rows());
    }

    /// One Gauss-Seidel bidding phase at a fixed ε: drain the unassigned
    /// queue, each row bidding on its best candidate.
    fn bid_phase(&mut self, cands: &SparseCandidates, eps: f64) -> Result<(), Abort> {
        self.stats.phases += 1;
        while let Some(row) = self.queue.pop_front() {
            let list = cands.row(row);
            self.stats.bids += 1;
            self.stats.bid_edges += list.len() as u64;
            let mut best = f64::NEG_INFINITY;
            let mut best_col = usize::MAX;
            let mut second = f64::NEG_INFINITY;
            for &(col, value) in list {
                let profit = value - self.prices[col];
                if profit > best {
                    second = best;
                    best = profit;
                    best_col = col;
                } else if profit > second {
                    second = profit;
                }
            }
            if best_col == usize::MAX {
                self.queue.push_front(row);
                return Err(Abort::Starved);
            }
            if second == f64::NEG_INFINITY {
                // Lone candidate: bid decisively.
                second = best - (self.vmax + eps);
            }
            let bid = self.prices[best_col] + (best - second) + eps;
            if bid > self.ceiling {
                self.queue.push_front(row);
                return Err(Abort::Ceiling);
            }
            if let Some(evicted) = self.owner[best_col].replace(row) {
                self.assigned[evicted] = None;
                self.queue.push_back(evicted);
            }
            self.assigned[row] = Some(best_col);
            self.prices[best_col] = bid;
        }
        Ok(())
    }

    /// The full ε-scaling schedule: phases at ε = vmax/2, vmax/2θ, …
    /// down to the configured final ε, keeping prices across phases.
    fn run_scaled(&mut self, cands: &SparseCandidates) -> Result<(), Abort> {
        let mut eps = self.vmax / 2.0;
        while eps > self.cfg.eps {
            self.reset_assignment();
            self.bid_phase(cands, eps)?;
            eps /= self.cfg.theta;
        }
        self.reset_assignment();
        self.bid_phase(cands, self.cfg.eps)
    }

    /// Pruning infeasibility: double the candidate width, reset the dual
    /// state (aborted runs leave inflated prices), and report whether a
    /// retry makes sense.
    fn widen_restart(&mut self, cands: &mut SparseCandidates) -> Result<(), ClusterError> {
        if cands.k() >= self.matrix.cols() {
            return Err(ClusterError::Infeasible);
        }
        self.stats.widen_rounds += 1;
        cands.widen(self.matrix, cands.k() * 2);
        self.prices.fill(0.0);
        let rows = self.matrix.rows() as f64;
        self.ceiling = (rows + 1.0) * (self.vmax + self.vmax / 2.0 + self.cfg.eps) + 1.0;
        Ok(())
    }

    /// Cold/restartable solve: scaled schedule, widening on infeasibility.
    fn run_to_completion(&mut self, cands: &mut SparseCandidates) -> Result<(), ClusterError> {
        loop {
            match self.run_scaled(cands) {
                Ok(()) => return Ok(()),
                Err(_) => self.widen_restart(cands)?,
            }
        }
    }

    /// Floors unassigned columns' prices to zero. ε-scaling phases and
    /// repair re-bids leave stale inflated prices on columns nobody owns;
    /// bidding would keep avoiding them while the dual bound counts them
    /// at zero, so the two views must be reconciled before certifying.
    fn floor_unassigned_prices(&mut self) {
        for (col, owner) in self.owner.iter().enumerate() {
            if owner.is_none() {
                self.prices[col] = 0.0;
            }
        }
    }

    /// Dual sweep: after flooring unassigned-column prices, computes
    /// `π_i = max_j (v_ij − p_j)` over all enabled columns. Returns the
    /// dual upper bound and, per row with slack > ε, its best off-profit
    /// column.
    fn certify_scan(&mut self) -> (f64, Vec<(usize, usize)>) {
        self.floor_unassigned_prices();
        let mut ub: f64 = self
            .owner
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(col, _)| self.prices[col])
            .sum();
        let mut violations = Vec::new();
        for row in 0..self.matrix.rows() {
            let values = self.matrix.row(row);
            let mut pi = f64::NEG_INFINITY;
            let mut pi_col = 0;
            for (col, &v) in values.iter().enumerate() {
                if self.matrix.is_col_disabled(col) {
                    continue;
                }
                self.stats.cert_edges += 1;
                let profit = v - self.prices[col];
                if profit > pi {
                    pi = profit;
                    pi_col = col;
                }
            }
            ub += pi;
            let own_col = self.assigned[row].expect("certify runs on a complete assignment");
            let own = values[own_col] - self.prices[own_col];
            if pi - own > self.cfg.eps {
                violations.push((row, pi_col));
            }
        }
        (ub, violations)
    }

    fn total(&self) -> f64 {
        self.assigned
            .iter()
            .enumerate()
            .map(|(row, col)| self.matrix.value(row, col.expect("complete assignment")))
            .sum()
    }

    /// Certification/repair: bound the gap; splice violating off-list
    /// edges in and re-bid their rows; after `max_widen` rounds fall back
    /// to full-width lists (where ε-CS alone certifies).
    fn certify_repair(&mut self, cands: &mut SparseCandidates) -> Result<(), ClusterError> {
        let rows = self.matrix.rows() as f64;
        let tol = self.cfg.eps * rows + 1e-9 * (1.0 + self.vmax) * rows;
        for round in 0..=self.cfg.max_widen {
            let (ub, violations) = self.certify_scan();
            if ub - self.total() <= tol {
                self.certified = true;
                return Ok(());
            }
            if round == self.cfg.max_widen {
                break;
            }
            self.stats.widen_rounds += 1;
            for &(row, col) in &violations {
                cands.ensure_edge(row, col, self.matrix.value(row, col));
                self.unassign(row);
            }
            if self.bid_phase(cands, self.cfg.eps).is_err() {
                self.widen_restart(cands)?;
                self.run_to_completion(cands)?;
            }
        }
        // Escape hatch of last resort: full-width lists and zero prices.
        // From an empty assignment with zero prices, a column bid on stays
        // owned for the rest of the phase, so unassigned columns end at
        // price zero and ε-CS over all columns certifies by construction.
        cands.widen(self.matrix, self.matrix.cols());
        self.stats.widen_rounds += 1;
        self.prices.fill(0.0);
        self.reset_assignment();
        if self.bid_phase(cands, self.cfg.eps).is_err() {
            return Err(ClusterError::Infeasible);
        }
        let (ub, _) = self.certify_scan();
        self.certified = ub - self.total() <= tol;
        Ok(())
    }

    fn into_solution(mut self) -> AuctionSolution {
        // Stored prices warm-start the next replan; stale prices on
        // unowned columns would poison it the same way they poison
        // certification.
        self.floor_unassigned_prices();
        let pairs: Vec<(usize, usize)> = self
            .assigned
            .iter()
            .enumerate()
            .map(|(row, col)| (row, col.expect("complete assignment")))
            .collect();
        let total = self.matrix.assignment_value(&pairs);
        AuctionSolution {
            assignment: Assignment::new(pairs, total),
            prices: self.prices,
            eps: self.cfg.eps,
            certified: self.certified,
            stats: self.stats,
        }
    }
}

fn validate(matrix: &PerfMatrix, cfg: &AuctionConfig) -> Result<(), ClusterError> {
    if !cfg.eps.is_finite() || cfg.eps <= 0.0 {
        return Err(ClusterError::InvalidMatrix(format!(
            "auction eps {} must be finite and positive",
            cfg.eps
        )));
    }
    // NaN theta must fail too, so compare through the negation.
    if cfg.theta.partial_cmp(&1.0) != Some(std::cmp::Ordering::Greater) {
        return Err(ClusterError::InvalidMatrix(format!(
            "auction scaling factor {} must exceed 1",
            cfg.theta
        )));
    }
    if matrix.rows() > matrix.enabled_cols() {
        return Err(ClusterError::TooManyApps {
            apps: matrix.rows(),
            servers: matrix.enabled_cols(),
        });
    }
    Ok(())
}

/// Cold solve: builds candidate lists at `cfg.k0` (default
/// [`SparseCandidates::default_k`]) and runs the full ε-scaling schedule.
///
/// # Errors
///
/// [`ClusterError::TooManyApps`] when rows exceed enabled columns,
/// [`ClusterError::InvalidMatrix`] for a bad config, and
/// [`ClusterError::Infeasible`] if no perfect matching exists even at full
/// candidate width.
pub fn solve(matrix: &PerfMatrix, cfg: &AuctionConfig) -> Result<AuctionSolution, ClusterError> {
    let k0 = cfg
        .k0
        .unwrap_or_else(|| SparseCandidates::default_k(matrix.cols()));
    let mut cands = SparseCandidates::build(matrix, k0);
    solve_with_candidates(matrix, &mut cands, cfg)
}

/// Cold solve over caller-owned candidate lists (kept for warm-started
/// and incremental replans later).
///
/// # Errors
///
/// As [`solve`].
pub fn solve_with_candidates(
    matrix: &PerfMatrix,
    cands: &mut SparseCandidates,
    cfg: &AuctionConfig,
) -> Result<AuctionSolution, ClusterError> {
    validate(matrix, cfg)?;
    let mut eng = Engine::new(matrix, cfg, vec![0.0; matrix.cols()]);
    eng.run_to_completion(cands)?;
    if cfg.certify {
        eng.certify_repair(cands)?;
    }
    Ok(eng.into_solution())
}

/// Warm-started solve: a single bidding phase at the final ε from the
/// given prices (a near-feasible dual from a previous replan), falling
/// back to the full schedule on pruning infeasibility.
///
/// # Errors
///
/// As [`solve`]; additionally [`ClusterError::InvalidMatrix`] when
/// `prices` does not have one entry per column.
pub fn solve_warm(
    matrix: &PerfMatrix,
    cands: &mut SparseCandidates,
    prices: &[f64],
    cfg: &AuctionConfig,
) -> Result<AuctionSolution, ClusterError> {
    validate(matrix, cfg)?;
    if prices.len() != matrix.cols() {
        return Err(ClusterError::InvalidMatrix(format!(
            "{} warm-start prices for {} columns",
            prices.len(),
            matrix.cols()
        )));
    }
    let mut eng = Engine::new(matrix, cfg, prices.to_vec());
    eng.reset_assignment();
    if eng.bid_phase(cands, cfg.eps).is_err() {
        eng.widen_restart(cands)?;
        eng.run_to_completion(cands)?;
    }
    if cfg.certify {
        eng.certify_repair(cands)?;
    }
    Ok(eng.into_solution())
}

/// Incremental repair: patches the candidate lists with `delta`, keeps
/// every pair of `prev` whose column the delta did not dirty, and re-bids
/// only the dirtied rows from the previous prices.
///
/// `matrix` must already be the patched matrix (`old.patched(delta)`) and
/// `cands` the lists built against the *old* matrix — this function
/// brings them up to date. Work is O(k · dirtied rows) candidate edges
/// (plus certification if enabled); `stats.dirty_rows` and
/// `stats.bid_edges` report the actual counts.
///
/// # Errors
///
/// As [`solve_warm`].
pub fn solve_incremental(
    matrix: &PerfMatrix,
    cands: &mut SparseCandidates,
    prev: &AuctionSolution,
    delta: &MatrixDelta,
    cfg: &AuctionConfig,
) -> Result<AuctionSolution, ClusterError> {
    validate(matrix, cfg)?;
    if prev.prices.len() != matrix.cols() {
        return Err(ClusterError::InvalidMatrix(format!(
            "{} previous prices for {} columns",
            prev.prices.len(),
            matrix.cols()
        )));
    }
    let touched = cands.apply_delta(matrix, delta);
    let mut dirty_col = vec![false; matrix.cols()];
    for col in delta.dirty_cols() {
        if col >= matrix.cols() {
            return Err(ClusterError::InvalidMatrix(format!(
                "delta column {col} out of range ({} cols)",
                matrix.cols()
            )));
        }
        dirty_col[col] = true;
    }
    let mut eng = Engine::new(matrix, cfg, prev.prices.clone());
    for &(row, col) in &prev.assignment.pairs {
        if row >= matrix.rows() || col >= matrix.cols() {
            return Err(ClusterError::InvalidMatrix(format!(
                "previous pair ({row}, {col}) out of range"
            )));
        }
        if dirty_col[col] || touched.binary_search(&row).is_ok() {
            continue;
        }
        eng.assigned[row] = Some(col);
        eng.owner[col] = Some(row);
    }
    for row in 0..matrix.rows() {
        if eng.assigned[row].is_none() {
            eng.queue.push_back(row);
        }
    }
    eng.stats.dirty_rows = eng.queue.len();
    // Columns vacated by dropping pairs keep their certified prices: they
    // are the equilibrium dual, and re-bidding rows re-take them with an
    // O(ε) adjustment. Flooring them to zero here would force the auction
    // to rebuild each price from scratch in ε-sized increments — turning
    // an O(k · dirty rows) repair into thousands of bids. Columns that
    // were unassigned in `prev` already carry price zero
    // (`into_solution` floors them), so certification stays consistent.
    if eng.bid_phase(cands, cfg.eps).is_err() {
        eng.widen_restart(cands)?;
        eng.run_to_completion(cands)?;
    }
    if cfg.certify {
        eng.certify_repair(cands)?;
    }
    Ok(eng.into_solution())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{hungarian, solve as dispatch_solve, Solver};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn matrix(values: Vec<Vec<f64>>) -> PerfMatrix {
        let rows = values.len();
        let cols = values[0].len();
        PerfMatrix::new(
            (0..rows).map(|i| format!("be{i}")).collect(),
            (0..cols).map(|j| format!("lc{j}")).collect(),
            values,
        )
        .unwrap()
    }

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> PerfMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        matrix(
            (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect(),
        )
    }

    fn valid(matrix: &PerfMatrix, sol: &AuctionSolution) {
        assert_eq!(sol.assignment.pairs.len(), matrix.rows());
        let mut cols: Vec<usize> = sol.assignment.pairs.iter().map(|&(_, c)| c).collect();
        cols.sort_unstable();
        let n = cols.len();
        cols.dedup();
        assert_eq!(cols.len(), n, "one BE per server");
        assert!(cols.iter().all(|&c| !matrix.is_col_disabled(c)));
        let recomputed = matrix.assignment_value(&sol.assignment.pairs);
        assert!((sol.assignment.total - recomputed).abs() < 1e-9);
    }

    #[test]
    fn matches_exact_solver_within_eps_bound() {
        for seed in 0..10 {
            let m = random_matrix(12, 20, seed);
            let cfg = AuctionConfig::default();
            let sol = solve(&m, &cfg).unwrap();
            valid(&m, &sol);
            assert!(sol.certified, "seed {seed} not certified");
            let opt = hungarian::solve_max(&m);
            let bound = cfg.eps * m.rows() as f64 + 1e-9;
            assert!(
                sol.assignment.total >= opt.total - bound,
                "seed {seed}: auction {} vs optimum {} (bound {bound})",
                sol.assignment.total,
                opt.total
            );
        }
    }

    #[test]
    fn deterministic() {
        let m = random_matrix(10, 30, 7);
        let a = solve(&m, &AuctionConfig::default()).unwrap();
        let b = solve(&m, &AuctionConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn warm_start_is_cheaper_than_cold() {
        let m = random_matrix(40, 120, 3);
        let cfg = AuctionConfig::default();
        let cold = solve(&m, &cfg).unwrap();
        let mut cands = SparseCandidates::build(&m, SparseCandidates::default_k(m.cols()));
        let warm = solve_warm(&m, &mut cands, &cold.prices, &cfg).unwrap();
        valid(&m, &warm);
        assert!(
            warm.stats.bid_edges < cold.stats.bid_edges / 2,
            "warm {} edges vs cold {}",
            warm.stats.bid_edges,
            cold.stats.bid_edges
        );
        assert!(warm.assignment.total >= cold.assignment.total - cfg.eps * m.rows() as f64 - 1e-9);
    }

    #[test]
    fn incremental_repair_matches_cold_solve_and_is_bounded() {
        let m = random_matrix(40, 120, 11);
        let cfg = AuctionConfig::default();
        let mut cands = SparseCandidates::build(&m, SparseCandidates::default_k(m.cols()));
        let prev = solve_with_candidates(&m, &mut cands, &cfg).unwrap();
        // Fault the server hosting row 0.
        let faulted = prev.assignment.server_for(0).unwrap();
        let delta = MatrixDelta::new().disable_column(faulted);
        let patched = m.patched(&delta).unwrap();
        let inc = solve_incremental(&patched, &mut cands, &prev, &delta, &cfg).unwrap();
        valid(&patched, &inc);
        assert!(!inc.assignment.pairs.iter().any(|&(_, c)| c == faulted));
        // Quality: within the ε bound of a cold solve on the patched matrix.
        let cold = solve(&patched, &cfg).unwrap();
        let bound = 2.0 * cfg.eps * patched.rows() as f64 + 1e-9;
        assert!(
            inc.assignment.total >= cold.assignment.total - bound,
            "incremental {} vs cold {}",
            inc.assignment.total,
            cold.assignment.total
        );
        // Work bound: O(k · dirtied rows) edges, generous cascade slack.
        let k_eff = cands.k() + 8;
        let budget = (k_eff * inc.stats.dirty_rows.max(1) * 16) as u64;
        assert!(
            inc.stats.bid_edges <= budget,
            "incremental scanned {} edges, budget {budget} (dirty rows {})",
            inc.stats.bid_edges,
            inc.stats.dirty_rows
        );
        assert!(inc.stats.bid_edges < prev.stats.bid_edges / 2);
    }

    #[test]
    fn empty_delta_keeps_everything() {
        let m = random_matrix(15, 40, 5);
        let cfg = AuctionConfig::default();
        let mut cands = SparseCandidates::build(&m, SparseCandidates::default_k(m.cols()));
        let prev = solve_with_candidates(&m, &mut cands, &cfg).unwrap();
        let delta = MatrixDelta::new();
        let inc = solve_incremental(&m, &mut cands, &prev, &delta, &cfg).unwrap();
        assert_eq!(inc.stats.dirty_rows, 0);
        assert_eq!(inc.assignment.pairs, prev.assignment.pairs);
    }

    #[test]
    fn certification_widens_past_adversarial_pruning() {
        // k0 = 1 prunes everything but each row's favourite; with three
        // rows sharing a favourite, bidding alone cannot finish — the
        // engine must widen to find a perfect matching, and certification
        // must still bound the gap.
        let m = matrix(vec![
            vec![1.0, 0.9, 0.1, 0.1],
            vec![1.0, 0.1, 0.9, 0.1],
            vec![1.0, 0.1, 0.1, 0.9],
        ]);
        let cfg = AuctionConfig {
            k0: Some(1),
            ..AuctionConfig::default()
        };
        let sol = solve(&m, &cfg).unwrap();
        valid(&m, &sol);
        assert!(sol.stats.widen_rounds > 0, "must have widened: {sol:?}");
        assert!(sol.certified);
        let opt = hungarian::solve_max(&m);
        assert!(sol.assignment.total >= opt.total - cfg.eps * 3.0 - 1e-9);
    }

    #[test]
    fn too_many_rows_for_enabled_columns() {
        let m = matrix(vec![vec![0.4, 0.5], vec![0.6, 0.7]]);
        let dead = m.patched(&MatrixDelta::new().disable_column(0)).unwrap();
        assert!(matches!(
            solve(&dead, &AuctionConfig::default()),
            Err(ClusterError::TooManyApps {
                apps: 2,
                servers: 1
            })
        ));
    }

    #[test]
    fn bad_config_rejected() {
        let m = matrix(vec![vec![0.5]]);
        assert!(solve(&m, &AuctionConfig::with_eps(0.0)).is_err());
        assert!(solve(&m, &AuctionConfig::with_eps(f64::NAN)).is_err());
        let cfg = AuctionConfig {
            theta: 1.0,
            ..AuctionConfig::default()
        };
        assert!(solve(&m, &cfg).is_err());
    }

    #[test]
    fn disabled_columns_are_never_assigned() {
        let m = random_matrix(6, 12, 9);
        let delta = MatrixDelta::new()
            .disable_column(2)
            .disable_column(7)
            .disable_column(11);
        let p = m.patched(&delta).unwrap();
        let sol = solve(&p, &AuctionConfig::default()).unwrap();
        valid(&p, &sol);
    }

    #[test]
    fn dispatcher_auction_variant_round_trips() {
        let m = random_matrix(9, 14, 21);
        let via_dispatch = dispatch_solve(&m, Solver::Auction { eps: DEFAULT_EPS }).unwrap();
        let opt = hungarian::solve_max(&m);
        assert!(via_dispatch.total >= opt.total - DEFAULT_EPS * 9.0 - 1e-9);
    }
}

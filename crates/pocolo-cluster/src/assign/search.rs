//! Exhaustive placement search — the oracle the paper compares POColo's
//! choices against in Fig. 14 ("all 4×4 combinations").

use crate::assign::Assignment;
use crate::matrix::PerfMatrix;

/// Finds the maximum-value assignment by enumerating every way to place the
/// rows on distinct columns. Exponential — intended for small instances
/// (the paper's cluster is 4×4).
pub fn exhaustive_max(matrix: &PerfMatrix) -> Assignment {
    let n = matrix.rows();
    let m = matrix.cols();
    assert!(n <= m, "need rows <= cols");
    let mut used = vec![false; m];
    let mut current = Vec::with_capacity(n);
    let mut best_pairs = Vec::new();
    let mut best = f64::NEG_INFINITY;
    search(
        matrix,
        0,
        &mut used,
        &mut current,
        0.0,
        &mut best,
        &mut best_pairs,
    );
    Assignment::new(best_pairs, best)
}

fn search(
    matrix: &PerfMatrix,
    row: usize,
    used: &mut [bool],
    current: &mut Vec<(usize, usize)>,
    acc: f64,
    best: &mut f64,
    best_pairs: &mut Vec<(usize, usize)>,
) {
    if row == matrix.rows() {
        if acc > *best {
            *best = acc;
            *best_pairs = current.clone();
        }
        return;
    }
    for col in 0..matrix.cols() {
        if !used[col] {
            used[col] = true;
            current.push((row, col));
            search(
                matrix,
                row + 1,
                used,
                current,
                acc + matrix.value(row, col),
                best,
                best_pairs,
            );
            current.pop();
            used[col] = false;
        }
    }
}

/// Enumerates *every* complete placement with its total value — the data
/// behind Fig. 14's per-combination comparison. Rows are placed on distinct
/// columns; each element is `(pairs, total)`.
pub fn enumerate_all(matrix: &PerfMatrix) -> Vec<(Vec<(usize, usize)>, f64)> {
    let mut out = Vec::new();
    let mut used = vec![false; matrix.cols()];
    let mut current = Vec::new();
    enumerate(matrix, 0, &mut used, &mut current, 0.0, &mut out);
    out
}

fn enumerate(
    matrix: &PerfMatrix,
    row: usize,
    used: &mut [bool],
    current: &mut Vec<(usize, usize)>,
    acc: f64,
    out: &mut Vec<(Vec<(usize, usize)>, f64)>,
) {
    if row == matrix.rows() {
        out.push((current.clone(), acc));
        return;
    }
    for col in 0..matrix.cols() {
        if !used[col] {
            used[col] = true;
            current.push((row, col));
            enumerate(
                matrix,
                row + 1,
                used,
                current,
                acc + matrix.value(row, col),
                out,
            );
            current.pop();
            used[col] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(values: Vec<Vec<f64>>) -> PerfMatrix {
        let rows = values.len();
        let cols = values[0].len();
        PerfMatrix::new(
            (0..rows).map(|i| format!("r{i}")).collect(),
            (0..cols).map(|j| format!("c{j}")).collect(),
            values,
        )
        .unwrap()
    }

    #[test]
    fn finds_the_optimum() {
        let m = matrix(vec![vec![0.1, 0.9], vec![0.9, 0.1]]);
        let a = exhaustive_max(&m);
        assert!((a.total - 1.8).abs() < 1e-12);
        assert_eq!(a.pairs, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn enumerates_all_permutations() {
        let m = matrix(vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let all = enumerate_all(&m);
        assert_eq!(all.len(), 6); // 3!
        let best = all
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((exhaustive_max(&m).total - best).abs() < 1e-12);
    }

    #[test]
    fn rectangular_enumeration_counts() {
        let m = matrix(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        // 3 × 2 = 6 ordered placements of 2 rows on 3 columns.
        assert_eq!(enumerate_all(&m).len(), 6);
    }
}

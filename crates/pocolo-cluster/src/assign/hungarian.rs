//! The Hungarian (Kuhn-Munkres) algorithm with potentials — O(n²m).
//!
//! Solves the rectangular assignment problem exactly: match each row to a
//! distinct column minimizing total cost (or maximizing total value via
//! [`solve_max`]). Requires `rows ≤ cols`.

use crate::assign::Assignment;
use crate::matrix::PerfMatrix;

/// Minimum-cost assignment of rows to distinct columns.
///
/// Returns `row → col`. Uses the classic potentials formulation: maintain
/// dual potentials `u` (rows) and `v` (columns) and grow alternating trees
/// from each unmatched row, adjusting potentials by the bottleneck slack.
///
/// # Panics
///
/// Panics if `cost` is empty, ragged, or has more rows than columns.
pub fn hungarian_min(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    assert!(n > 0, "cost matrix must be non-empty");
    let m = cost[0].len();
    assert!(
        cost.iter().all(|r| r.len() == m),
        "cost matrix must be rectangular"
    );
    assert!(n <= m, "need rows <= cols for a perfect row matching");

    const INF: f64 = f64::INFINITY;
    // 1-based arrays; p[j] holds the (1-based) row matched to column j,
    // p[0] is the scratch slot for the row currently being inserted.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1];
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Unwind the augmenting path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            row_to_col[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(row_to_col.iter().all(|&c| c != usize::MAX));
    row_to_col
}

/// Maximum-value assignment over a performance matrix.
pub fn solve_max(matrix: &PerfMatrix) -> Assignment {
    let peak = matrix
        .values()
        .iter()
        .flat_map(|r| r.iter())
        .cloned()
        .fold(0.0, f64::max);
    let cost: Vec<Vec<f64>> = matrix
        .values()
        .iter()
        .map(|row| row.iter().map(|&v| peak - v).collect())
        .collect();
    let row_to_col = hungarian_min(&cost);
    let pairs: Vec<(usize, usize)> = row_to_col.into_iter().enumerate().collect();
    let total = matrix.assignment_value(&pairs);
    Assignment::new(pairs, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_identity() {
        let cost = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 1.0, 3.0],
            vec![3.0, 2.0, 1.0],
        ];
        assert_eq!(hungarian_min(&cost), vec![0, 1, 2]);
    }

    #[test]
    fn classic_example() {
        // Known optimum: 0→1, 1→0, 2→2 with cost 1+2+1 = 4? Check:
        // row0: [4, 1, 3], row1: [2, 0, 5], row2: [3, 2, 2].
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let m = hungarian_min(&cost);
        let total: f64 = m.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        assert!(
            (total - 5.0).abs() < 1e-9,
            "optimal total is 5, got {total} via {m:?}"
        );
    }

    #[test]
    fn rectangular() {
        let cost = vec![vec![5.0, 1.0, 9.0, 2.0], vec![1.0, 5.0, 9.0, 3.0]];
        let m = hungarian_min(&cost);
        assert_eq!(m, vec![1, 0]);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let n = rng.gen_range(1..=5);
            let m = rng.gen_range(n..=6);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0.0..100.0)).collect())
                .collect();
            let assign = hungarian_min(&cost);
            let total: f64 = assign.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            let best = brute_force_min(&cost);
            assert!(
                (total - best).abs() < 1e-6,
                "hungarian {total} != brute {best} for {cost:?}"
            );
            // Distinct columns.
            let mut cols = assign.clone();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), n);
        }
    }

    fn brute_force_min(cost: &[Vec<f64>]) -> f64 {
        let n = cost.len();
        let m = cost[0].len();
        let mut best = f64::INFINITY;
        let mut used = vec![false; m];
        fn rec(
            i: usize,
            n: usize,
            m: usize,
            cost: &[Vec<f64>],
            used: &mut [bool],
            acc: f64,
            best: &mut f64,
        ) {
            if i == n {
                *best = best.min(acc);
                return;
            }
            for j in 0..m {
                if !used[j] {
                    used[j] = true;
                    rec(i + 1, n, m, cost, used, acc + cost[i][j], best);
                    used[j] = false;
                }
            }
        }
        rec(0, n, m, cost, &mut used, 0.0, &mut best);
        best
    }

    #[test]
    #[should_panic(expected = "rows <= cols")]
    fn too_many_rows_panics() {
        let _ = hungarian_min(&[vec![1.0], vec![2.0]]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_panics() {
        let _ = hungarian_min(&[]);
    }
}

//! Candidate pruning for fleet-scale assignment.
//!
//! A 10k-server fleet gives every BE row 10k candidate edges, but the
//! paper's own scaled-preference-vector insight (§IV-B: the *shape* of a
//! server's spare-capacity response is load-independent) means most
//! servers are near-duplicates of each other from any one BE's point of
//! view. [`SparseCandidates`] exploits that: it buckets columns by the
//! geometry of their scaled value profile (signed random projections over
//! the unit-max-normalized column vector), then emits per BE row a top-k
//! candidate edge list that always covers every occupied geometry bucket.
//!
//! Pruning is a heuristic; exactness comes from the auction solver's
//! certification loop, which widens a row's candidate list whenever the
//! dual prices prove a pruned edge could still matter (the escape hatch —
//! see [`crate::assign::auction`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::constraints::PlacementConstraints;
use crate::matrix::{ColumnEdit, MatrixDelta, PerfMatrix};

/// Fixed seed for the bucketing hyperplanes — candidate generation is
/// deterministic so replans and benches reproduce bit-identically.
const BUCKET_SEED: u64 = 0x5EED_CA7D;

/// Number of signed random projections: at most `2^PLANES` buckets, enough
/// to separate geometry classes without fragmenting small fleets.
const PLANES: usize = 6;

/// Geometry buckets over the columns of a matrix.
///
/// Each column's *scaled preference vector* (the column divided by its own
/// maximum — shape, not magnitude) is projected onto `PLANES` fixed
/// pseudo-random hyperplanes; the sign pattern is the bucket key. Columns
/// landing in the same bucket respond near-identically across the BE
/// candidates, so one representative per bucket is enough to keep every
/// geometry class reachable from every row's candidate list.
#[derive(Debug, Clone)]
pub struct ColumnBuckets {
    /// Bucket key per column.
    keys: Vec<u64>,
    /// One representative column per occupied bucket (the member with the
    /// largest unscaled norm), ascending by bucket key.
    reps: Vec<usize>,
}

impl ColumnBuckets {
    /// Buckets every column of `matrix`.
    pub fn build(matrix: &PerfMatrix) -> Self {
        let rows = matrix.rows();
        let cols = matrix.cols();
        let mut rng = StdRng::seed_from_u64(BUCKET_SEED);
        // PLANES hyperplanes over row-space, components in [-1, 1).
        let planes: Vec<Vec<f64>> = (0..PLANES)
            .map(|_| (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let mut keys = vec![0u64; cols];
        let mut norm = vec![0.0f64; cols];
        for (j, (key, n)) in keys.iter_mut().zip(&mut norm).enumerate() {
            let mut peak = 0.0f64;
            for v in matrix.col_iter(j) {
                peak = peak.max(v);
                *n += v * v;
            }
            if peak <= 0.0 {
                // Zero (or disabled) column: its own degenerate bucket.
                *key = u64::MAX;
                continue;
            }
            for (p, plane) in planes.iter().enumerate() {
                let dot: f64 = matrix
                    .col_iter(j)
                    .zip(plane)
                    .map(|(v, h)| (v / peak) * h)
                    .sum();
                if dot >= 0.0 {
                    *key |= 1 << p;
                }
            }
        }
        // Representative per bucket: largest-norm member.
        let mut by_key: Vec<(u64, usize)> = keys
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k != u64::MAX)
            .map(|(j, &k)| (k, j))
            .collect();
        by_key.sort_unstable_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| norm[b.1].partial_cmp(&norm[a.1]).expect("finite norms"))
        });
        let mut reps = Vec::new();
        let mut last = None;
        for (k, j) in by_key {
            if last != Some(k) {
                reps.push(j);
                last = Some(k);
            }
        }
        ColumnBuckets { keys, reps }
    }

    /// The representative columns, one per occupied bucket.
    pub fn representatives(&self) -> &[usize] {
        &self.reps
    }

    /// Number of occupied buckets.
    pub fn bucket_count(&self) -> usize {
        self.reps.len()
    }

    /// The bucket key of one column.
    pub fn key_of(&self, col: usize) -> u64 {
        self.keys[col]
    }
}

/// Per-row top-k candidate edge lists over a [`PerfMatrix`].
///
/// Each row's list holds `(col, value)` pairs, descending by value, over
/// enabled columns only: the row's k best columns plus the representative
/// of every geometry bucket the top-k missed (capped), so no geometry
/// class is unreachable. The auction solver bids only on these edges; its
/// certification loop calls [`SparseCandidates::ensure_edge`] /
/// [`SparseCandidates::widen`] when the dual prices prove the pruning cut
/// too deep.
#[derive(Debug, Clone)]
pub struct SparseCandidates {
    k: usize,
    cols: usize,
    /// Extra bucket-representative edges appended per row.
    bucket_cover: usize,
    rows: Vec<Vec<(usize, f64)>>,
    buckets: ColumnBuckets,
    /// Hard affinity/anti-affinity rules pruned at candidate-edge time:
    /// each column's server class plus the constraint set. `None` for
    /// unconstrained fleets (the legacy path).
    policy: Option<EdgePolicy>,
}

/// Per-column class labels + the constraint set they are checked against.
#[derive(Debug, Clone)]
struct EdgePolicy {
    classes: Vec<usize>,
    constraints: PlacementConstraints,
}

/// How many bucket representatives (beyond the plain top-k) each row keeps.
const BUCKET_COVER: usize = 4;

impl SparseCandidates {
    /// Default list width for a fleet of `cols` servers: `log2(cols) + 8`,
    /// clamped to the fleet size. Deep enough that the certification loop
    /// almost never widens on realistically clustered fleets, shallow
    /// enough that a 10k-column row carries ~20 edges instead of 10k.
    pub fn default_k(cols: usize) -> usize {
        ((usize::BITS - cols.leading_zeros()) as usize + 8).min(cols)
    }

    /// Builds per-row candidate lists of width `k` (clamped to the column
    /// count) over the enabled columns of `matrix`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn build(matrix: &PerfMatrix, k: usize) -> Self {
        Self::build_with_policy(matrix, k, None)
    }

    /// Like [`SparseCandidates::build`], but prunes edges the hard
    /// affinity/anti-affinity `constraints` forbid at candidate-edge
    /// time: a forbidden `(row, class)` edge never enters a row's list —
    /// not through top-k selection, bucket coverage, certification
    /// splicing ([`SparseCandidates::ensure_edge`]), or a later delta.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or `classes` doesn't cover every column.
    pub fn build_constrained(
        matrix: &PerfMatrix,
        k: usize,
        classes: &[usize],
        constraints: &PlacementConstraints,
    ) -> Self {
        assert_eq!(
            classes.len(),
            matrix.cols(),
            "one server class per matrix column"
        );
        let policy = if constraints.is_empty() {
            None
        } else {
            Some(EdgePolicy {
                classes: classes.to_vec(),
                constraints: constraints.clone(),
            })
        };
        Self::build_with_policy(matrix, k, policy)
    }

    fn build_with_policy(matrix: &PerfMatrix, k: usize, policy: Option<EdgePolicy>) -> Self {
        assert!(k > 0, "candidate width k must be positive");
        let buckets = ColumnBuckets::build(matrix);
        let mut cands = SparseCandidates {
            k: k.min(matrix.cols()),
            cols: matrix.cols(),
            bucket_cover: BUCKET_COVER,
            rows: Vec::with_capacity(matrix.rows()),
            buckets,
            policy,
        };
        for row in 0..matrix.rows() {
            let list = cands.build_row(matrix, row);
            cands.rows.push(list);
        }
        cands
    }

    /// Whether the `(row, col)` edge is admissible under the constraint
    /// policy (always true for unconstrained fleets).
    pub fn edge_allowed(&self, row: usize, col: usize) -> bool {
        match &self.policy {
            None => true,
            Some(p) => p.constraints.allows(row, p.classes[col]),
        }
    }

    /// One row's `(col, value)` candidates, descending by value.
    pub fn row(&self, row: usize) -> &[(usize, f64)] {
        &self.rows[row]
    }

    /// The current list width.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of candidate edges across all rows.
    pub fn edge_count(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// The geometry buckets backing the candidate lists.
    pub fn buckets(&self) -> &ColumnBuckets {
        &self.buckets
    }

    fn build_row(&self, matrix: &PerfMatrix, row: usize) -> Vec<(usize, f64)> {
        let values = matrix.row(row);
        // Top-k selection: keep a small sorted (descending) buffer.
        let mut list: Vec<(usize, f64)> = Vec::with_capacity(self.k + self.bucket_cover);
        for (j, &v) in values.iter().enumerate() {
            if matrix.is_col_disabled(j) || !self.edge_allowed(row, j) {
                continue;
            }
            if list.len() < self.k {
                let at = list.partition_point(|&(_, lv)| lv >= v);
                list.insert(at, (j, v));
            } else if v > list[self.k - 1].1 {
                list.pop();
                let at = list.partition_point(|&(_, lv)| lv >= v);
                list.insert(at, (j, v));
            }
        }
        // Bucket coverage: the best few representatives whose bucket is
        // not already present, so pruning never hides a geometry class.
        let mut have: Vec<u64> = list.iter().map(|&(j, _)| self.buckets.key_of(j)).collect();
        let mut extras: Vec<(usize, f64)> = self
            .buckets
            .representatives()
            .iter()
            .filter(|&&j| {
                !matrix.is_col_disabled(j)
                    && self.edge_allowed(row, j)
                    && !have.contains(&self.buckets.key_of(j))
            })
            .map(|&j| (j, values[j]))
            .collect();
        extras.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).expect("finite values"));
        for (j, v) in extras.into_iter().take(self.bucket_cover) {
            let at = list.partition_point(|&(_, lv)| lv >= v);
            list.insert(at, (j, v));
            have.push(self.buckets.key_of(j));
        }
        list
    }

    /// Widens every row's list to `new_k` (rebuilding from the matrix).
    /// No-op when `new_k` does not exceed the current width.
    pub fn widen(&mut self, matrix: &PerfMatrix, new_k: usize) {
        let new_k = new_k.min(self.cols);
        if new_k <= self.k {
            return;
        }
        self.k = new_k;
        for row in 0..self.rows.len() {
            self.rows[row] = self.build_row(matrix, row);
        }
    }

    /// Guarantees `(row, col)` is present (certification found a pruned
    /// edge whose dual price proves it matters). Edges the constraint
    /// policy forbids are refused — a hard rule outranks the dual bound.
    pub fn ensure_edge(&mut self, row: usize, col: usize, value: f64) {
        if !self.edge_allowed(row, col) {
            return;
        }
        let list = &mut self.rows[row];
        if list.iter().any(|&(j, _)| j == col) {
            return;
        }
        let at = list.partition_point(|&(_, lv)| lv >= value);
        list.insert(at, (col, value));
    }

    /// Applies a [`MatrixDelta`] to the candidate lists of the (already
    /// patched) `matrix`: values of dirtied columns are refreshed in every
    /// list containing them, disabled columns drop out, and a changed
    /// column that now beats a row's worst candidate is inserted. Returns
    /// the rows whose lists changed — the auction's dirty-row set.
    ///
    /// Cost is O(rows · (k + |delta|)): each row scans its own short list
    /// plus one comparison per dirtied column — never the full matrix.
    pub fn apply_delta(&mut self, matrix: &PerfMatrix, delta: &MatrixDelta) -> Vec<usize> {
        let mut dirty = vec![false; self.cols];
        for (col, _) in delta.edits() {
            dirty[*col] = true;
        }
        let mut touched = Vec::new();
        for (row, list) in self.rows.iter_mut().enumerate() {
            let before = list.len();
            let mut changed = false;
            list.retain_mut(|(j, v)| {
                if !dirty[*j] {
                    return true;
                }
                changed = true;
                if matrix.is_col_disabled(*j) {
                    return false;
                }
                *v = matrix.value(row, *j);
                true
            });
            if changed {
                list.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).expect("finite values"));
            }
            // Changed columns absent from the list may now belong in it.
            let floor = if list.len() >= self.k {
                list[self.k - 1].1
            } else {
                f64::NEG_INFINITY
            };
            for (col, edit) in delta.edits() {
                if matches!(edit, ColumnEdit::Disable) || list.iter().any(|&(j, _)| j == *col) {
                    continue;
                }
                if let Some(p) = &self.policy {
                    if !p.constraints.allows(row, p.classes[*col]) {
                        continue;
                    }
                }
                let v = matrix.value(row, *col);
                if v > floor {
                    let at = list.partition_point(|&(_, lv)| lv >= v);
                    list.insert(at, (*col, v));
                    changed = true;
                }
            }
            // Lists eroded by disables refill lazily — only when more than
            // half the width is gone does the row rescan the matrix.
            if list.len() < self.k.div_ceil(2).max(1) {
                changed = true;
            }
            if changed || list.len() != before {
                touched.push(row);
            }
        }
        // Refill the eroded rows (borrow-split: compute outside the loop).
        let eroded: Vec<usize> = touched
            .iter()
            .copied()
            .filter(|&r| self.rows[r].len() < self.k.div_ceil(2).max(1))
            .collect();
        for row in eroded {
            self.rows[row] = self.build_row(matrix, row);
        }
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(values: Vec<Vec<f64>>) -> PerfMatrix {
        let rows = values.len();
        let cols = values[0].len();
        PerfMatrix::new(
            (0..rows).map(|i| format!("be{i}")).collect(),
            (0..cols).map(|j| format!("lc{j}")).collect(),
            values,
        )
        .unwrap()
    }

    fn clustered(rows: usize, cols: usize, classes: usize, seed: u64) -> PerfMatrix {
        // `classes` geometry classes: servers in a class share a profile
        // shape, scaled by a per-server magnitude.
        let mut rng = StdRng::seed_from_u64(seed);
        let profiles: Vec<Vec<f64>> = (0..classes)
            .map(|_| (0..rows).map(|_| rng.gen_range(0.1..1.0)).collect())
            .collect();
        let mut values = vec![vec![0.0; cols]; rows];
        for j in 0..cols {
            let p = &profiles[j % classes];
            let scale = rng.gen_range(0.5..1.0);
            for (i, row) in values.iter_mut().enumerate() {
                row[j] = p[i] * scale;
            }
        }
        matrix(values)
    }

    #[test]
    fn top_k_lists_are_sorted_and_capped() {
        let m = clustered(6, 40, 4, 1);
        let c = SparseCandidates::build(&m, 5);
        for row in 0..6 {
            let list = c.row(row);
            assert!(list.len() >= 5 && list.len() <= 5 + BUCKET_COVER);
            assert!(list.windows(2).all(|w| w[0].1 >= w[1].1), "descending");
            let mut cols: Vec<usize> = list.iter().map(|&(j, _)| j).collect();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), list.len(), "no duplicate columns");
            // The true row maximum always survives pruning.
            let best = (0..40)
                .max_by(|&a, &b| m.value(row, a).partial_cmp(&m.value(row, b)).unwrap())
                .unwrap();
            assert!(list.iter().any(|&(j, _)| j == best));
        }
    }

    #[test]
    fn same_shape_columns_share_buckets() {
        // Two exact-duplicate shape classes must land in two buckets.
        let m = matrix(vec![vec![1.0, 0.5, 0.2, 0.1], vec![0.2, 0.1, 0.9, 0.45]]);
        let b = ColumnBuckets::build(&m);
        assert_eq!(b.key_of(0), b.key_of(1), "scaled twins share a bucket");
        assert_eq!(b.key_of(2), b.key_of(3));
        assert_ne!(b.key_of(0), b.key_of(2), "distinct shapes separate");
        assert_eq!(b.bucket_count(), 2);
    }

    #[test]
    fn bucket_cover_keeps_minority_class_reachable() {
        // 19 columns of one shape the row loves, 1 column of another shape
        // with low value for this row: top-k alone would drop it; bucket
        // coverage keeps it.
        let rows = 3;
        let mut values = vec![vec![0.0; 20]; rows];
        for (j, v) in values[0].iter_mut().enumerate().take(19) {
            *v = 0.9 - j as f64 * 0.01;
        }
        for (j, v) in values[1].iter_mut().enumerate().take(19) {
            *v = 0.45 - j as f64 * 0.005;
        }
        for v in values[2].iter_mut().take(19) {
            *v = 0.09;
        }
        values[0][19] = 0.05;
        values[1][19] = 0.5;
        values[2][19] = 0.9;
        let m = matrix(values);
        let c = SparseCandidates::build(&m, 4);
        assert!(
            c.row(0).iter().any(|&(j, _)| j == 19),
            "minority-bucket representative is in row 0's list: {:?}",
            c.row(0)
        );
    }

    #[test]
    fn widen_extends_lists() {
        let m = clustered(4, 30, 3, 2);
        let mut c = SparseCandidates::build(&m, 3);
        let before = c.edge_count();
        c.widen(&m, 10);
        assert_eq!(c.k(), 10);
        assert!(c.edge_count() > before);
        c.widen(&m, 5); // no-op shrink
        assert_eq!(c.k(), 10);
        c.widen(&m, 1000); // clamped to cols
        assert_eq!(c.k(), 30);
        for row in 0..4 {
            assert_eq!(c.row(row).len(), 30, "full width covers every column");
        }
    }

    #[test]
    fn ensure_edge_inserts_once_in_order() {
        let m = clustered(2, 10, 2, 3);
        let mut c = SparseCandidates::build(&m, 2);
        let missing = (0..10)
            .find(|&j| !c.row(0).iter().any(|&(cj, _)| cj == j))
            .unwrap();
        let n = c.row(0).len();
        c.ensure_edge(0, missing, m.value(0, missing));
        assert_eq!(c.row(0).len(), n + 1);
        c.ensure_edge(0, missing, m.value(0, missing));
        assert_eq!(c.row(0).len(), n + 1, "idempotent");
        assert!(c.row(0).windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn apply_delta_touches_only_affected_rows() {
        let m = clustered(8, 40, 4, 4);
        let mut c = SparseCandidates::build(&m, 6);
        // Pick a column and bump it above everything: every row is touched.
        let delta = MatrixDelta::new().set_column(7, vec![2.0; 8]);
        let patched = m.patched(&delta).unwrap();
        let touched = c.apply_delta(&patched, &delta);
        assert_eq!(touched.len(), 8, "a now-dominant column enters every row");
        for row in 0..8 {
            assert_eq!(c.row(row)[0], (7, 2.0));
        }
        // Disable it again: every row that listed it is touched and drops it.
        let delta2 = MatrixDelta::new().disable_column(7);
        let patched2 = patched.patched(&delta2).unwrap();
        let touched2 = c.apply_delta(&patched2, &delta2);
        assert_eq!(touched2.len(), 8);
        for row in 0..8 {
            assert!(!c.row(row).iter().any(|&(j, _)| j == 7));
            assert!(c.row(row).len() >= 3, "lazy refill keeps lists usable");
        }
        // A delta over a column nobody lists and nobody wants touches no row.
        let worst = (0..40)
            .filter(|&j| j != 7)
            .min_by(|&a, &b| {
                let sa: f64 = (0..8).map(|i| patched2.value(i, a)).sum();
                let sb: f64 = (0..8).map(|i| patched2.value(i, b)).sum();
                sa.partial_cmp(&sb).unwrap()
            })
            .unwrap();
        if !(0..8).any(|r| c.row(r).iter().any(|&(j, _)| j == worst)) {
            let tiny = MatrixDelta::new().set_column(worst, vec![1e-6; 8]);
            let patched3 = patched2.patched(&tiny).unwrap();
            let touched3 = c.apply_delta(&patched3, &tiny);
            assert!(
                touched3.is_empty(),
                "unlisted, unwanted column: no rows touched"
            );
        }
    }

    #[test]
    fn default_k_scales_logarithmically() {
        assert_eq!(SparseCandidates::default_k(4), 4);
        assert!(SparseCandidates::default_k(1000) <= 20);
        assert!(SparseCandidates::default_k(10_000) <= 24);
        assert!(SparseCandidates::default_k(10_000) >= 16);
    }

    #[test]
    fn forbidden_edges_are_pruned_at_candidate_time() {
        let m = clustered(4, 12, 3, 6);
        // Columns alternate classes 0/1/2; row 0 may never touch class 1,
        // row 2 is pinned to class 2.
        let classes: Vec<usize> = (0..12).map(|j| j % 3).collect();
        let rules = PlacementConstraints::new().forbid(0, 1).require(2, 2);
        let mut c = SparseCandidates::build_constrained(&m, 12, &classes, &rules);
        for &(j, _) in c.row(0) {
            assert_ne!(classes[j], 1, "forbidden class in row 0's list");
        }
        for &(j, _) in c.row(2) {
            assert_eq!(classes[j], 2, "required row lists only its class");
        }
        assert!(!c.row(1).is_empty(), "unconstrained rows keep full lists");
        // Certification splicing cannot force a forbidden edge back in.
        let banned = classes.iter().position(|&cl| cl == 1).unwrap();
        let before = c.row(0).len();
        c.ensure_edge(0, banned, 10.0);
        assert_eq!(c.row(0).len(), before, "ensure_edge refused the edge");
        assert!(c.edge_allowed(1, banned) && !c.edge_allowed(0, banned));
        // A delta bumping a forbidden column never inserts it either.
        let delta = MatrixDelta::new().set_column(banned, vec![5.0; 4]);
        let patched = m.patched(&delta).unwrap();
        c.apply_delta(&patched, &delta);
        assert!(!c.row(0).iter().any(|&(j, _)| j == banned));
        assert!(
            c.row(1).iter().any(|&(j, _)| j == banned),
            "allowed rows get it"
        );
    }

    #[test]
    fn empty_constraints_match_unconstrained_build() {
        let m = clustered(4, 20, 3, 7);
        let classes: Vec<usize> = (0..20).map(|j| j % 3).collect();
        let plain = SparseCandidates::build(&m, 6);
        let constrained =
            SparseCandidates::build_constrained(&m, 6, &classes, &PlacementConstraints::new());
        for row in 0..4 {
            assert_eq!(plain.row(row), constrained.row(row));
        }
    }

    #[test]
    fn disabled_columns_never_enter_lists() {
        let m = clustered(4, 12, 3, 5);
        let delta = MatrixDelta::new().disable_column(0).disable_column(5);
        let p = m.patched(&delta).unwrap();
        let c = SparseCandidates::build(&p, 12);
        for row in 0..4 {
            assert!(c.row(row).iter().all(|&(j, _)| j != 0 && j != 5));
            assert_eq!(c.row(row).len(), 10);
        }
    }
}

//! Assignment solvers over a [`PerfMatrix`].
//!
//! The paper's cluster manager "uses a LP solver to identify an assignment
//! that maximizes the overall cluster performance" and cites the Hungarian
//! method and randomization as standard alternatives (§IV-B, refs
//! \[28–30\]). All of them are implemented here from scratch, plus the
//! exhaustive search used as the oracle in Fig. 14.

pub mod fairness;
pub mod hungarian;
pub mod search;
pub mod simplex;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::ClusterError;
use crate::matrix::PerfMatrix;

/// Which algorithm to use for placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Exact O(n³) Kuhn-Munkres.
    Hungarian,
    /// Two-phase dense simplex on the assignment LP (integral at optimum).
    Lp,
    /// Brute-force over all placements — exponential, oracle only.
    Exhaustive,
    /// Uniform random one-BE-per-server placement (the paper's baseline).
    Random {
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// Max-min fair: maximize the worst co-runner's throughput first, then
    /// the total (the fairness objective the paper's POColo trades away).
    MaxMinFair,
}

impl std::fmt::Display for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Solver::Hungarian => f.write_str("hungarian"),
            Solver::Lp => f.write_str("lp"),
            Solver::Exhaustive => f.write_str("exhaustive"),
            Solver::Random { seed } => write!(f, "random:{seed}"),
            Solver::MaxMinFair => f.write_str("fair"),
        }
    }
}

impl std::str::FromStr for Solver {
    type Err = String;

    /// Parses the [`Display`](Solver#impl-Display-for-Solver) form:
    /// `hungarian`, `lp`, `exhaustive`, `fair`, or `random:<seed>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hungarian" => Ok(Solver::Hungarian),
            "lp" => Ok(Solver::Lp),
            "exhaustive" => Ok(Solver::Exhaustive),
            "fair" => Ok(Solver::MaxMinFair),
            other => match other.strip_prefix("random:") {
                Some(seed) => seed
                    .parse()
                    .map(|seed| Solver::Random { seed })
                    .map_err(|_| format!("bad random-solver seed {seed:?}")),
                None => Err(format!(
                    "unknown solver {other:?} (want hungarian, lp, exhaustive, fair, or random:<seed>)"
                )),
            },
        }
    }
}

/// A placement: `pairs[(be_row, server_col)]` plus its total value.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `(row, col)` pairs, sorted by row.
    pub pairs: Vec<(usize, usize)>,
    /// Sum of matrix entries over the pairs.
    pub total: f64,
}

impl Assignment {
    /// The server column assigned to best-effort row `row`, if any.
    pub fn server_for(&self, row: usize) -> Option<usize> {
        self.pairs.iter().find(|&&(r, _)| r == row).map(|&(_, c)| c)
    }

    /// The best-effort row placed on server `col`, if any.
    pub fn app_on(&self, col: usize) -> Option<usize> {
        self.pairs.iter().find(|&&(_, c)| c == col).map(|&(r, _)| r)
    }
}

/// Solves the placement problem with the chosen algorithm.
///
/// # Errors
///
/// Returns [`ClusterError::TooManyApps`] when rows exceed columns, and
/// solver-specific errors ([`ClusterError::Infeasible`] /
/// [`ClusterError::Unbounded`] from the LP).
pub fn solve(matrix: &PerfMatrix, solver: Solver) -> Result<Assignment, ClusterError> {
    if matrix.rows() > matrix.cols() {
        return Err(ClusterError::TooManyApps {
            apps: matrix.rows(),
            servers: matrix.cols(),
        });
    }
    let mut assignment = match solver {
        Solver::Hungarian => hungarian::solve_max(matrix),
        Solver::Lp => simplex::solve_assignment_lp(matrix)?,
        Solver::Exhaustive => search::exhaustive_max(matrix),
        Solver::MaxMinFair => fairness::solve_max_min_fair(matrix)?,
        Solver::Random { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut cols: Vec<usize> = (0..matrix.cols()).collect();
            cols.shuffle(&mut rng);
            let pairs: Vec<(usize, usize)> = (0..matrix.rows()).map(|r| (r, cols[r])).collect();
            let total = matrix.assignment_value(&pairs);
            Assignment { pairs, total }
        }
    };
    assignment.pairs.sort_unstable();
    Ok(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(values: Vec<Vec<f64>>) -> PerfMatrix {
        let rows = values.len();
        let cols = values[0].len();
        PerfMatrix::new(
            (0..rows).map(|i| format!("be{i}")).collect(),
            (0..cols).map(|j| format!("lc{j}")).collect(),
            values,
        )
        .unwrap()
    }

    #[test]
    fn all_exact_solvers_agree_on_small_instance() {
        let m = matrix(vec![
            vec![0.9, 0.2, 0.3, 0.1],
            vec![0.4, 0.8, 0.2, 0.2],
            vec![0.3, 0.3, 0.7, 0.4],
            vec![0.1, 0.2, 0.4, 0.6],
        ]);
        let h = solve(&m, Solver::Hungarian).unwrap();
        let l = solve(&m, Solver::Lp).unwrap();
        let e = solve(&m, Solver::Exhaustive).unwrap();
        assert!((h.total - e.total).abs() < 1e-9, "hungarian {h:?} vs {e:?}");
        assert!((l.total - e.total).abs() < 1e-9, "lp {l:?} vs {e:?}");
        assert_eq!(e.total, 0.9 + 0.8 + 0.7 + 0.6);
    }

    #[test]
    fn random_is_valid_but_usually_worse() {
        let m = matrix(vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let opt = solve(&m, Solver::Exhaustive).unwrap();
        let mut worse = 0;
        for seed in 0..20 {
            let r = solve(&m, Solver::Random { seed }).unwrap();
            // Valid: one app per server.
            let mut cols: Vec<usize> = r.pairs.iter().map(|&(_, c)| c).collect();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), 3);
            if r.total < opt.total - 1e-9 {
                worse += 1;
            }
        }
        assert!(
            worse > 10,
            "random should usually miss the diagonal optimum"
        );
    }

    #[test]
    fn random_is_reproducible() {
        let m = matrix(vec![vec![0.3, 0.4], vec![0.2, 0.9]]);
        let a = solve(&m, Solver::Random { seed: 11 }).unwrap();
        let b = solve(&m, Solver::Random { seed: 11 }).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rectangular_more_servers_than_apps() {
        let m = matrix(vec![vec![0.1, 0.9, 0.5], vec![0.8, 0.7, 0.2]]);
        let h = solve(&m, Solver::Hungarian).unwrap();
        let e = solve(&m, Solver::Exhaustive).unwrap();
        let l = solve(&m, Solver::Lp).unwrap();
        assert!((h.total - e.total).abs() < 1e-9);
        assert!((l.total - e.total).abs() < 1e-9);
        assert_eq!(e.total, 0.9 + 0.8);
    }

    #[test]
    fn too_many_apps_rejected() {
        let m = matrix(vec![vec![0.1], vec![0.2]]);
        assert!(matches!(
            solve(&m, Solver::Hungarian),
            Err(ClusterError::TooManyApps { .. })
        ));
    }

    #[test]
    fn accessors() {
        let m = matrix(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        let a = solve(&m, Solver::Hungarian).unwrap();
        assert_eq!(a.server_for(0), Some(0));
        assert_eq!(a.app_on(1), Some(1));
        assert_eq!(a.server_for(9), None);
        assert_eq!(a.app_on(9), None);
    }

    #[test]
    fn exact_solvers_match_on_random_matrices() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let n = rng.gen_range(2..=5);
            let mcols = rng.gen_range(n..=6);
            let vals: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..mcols).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let m = matrix(vals);
            let h = solve(&m, Solver::Hungarian).unwrap();
            let e = solve(&m, Solver::Exhaustive).unwrap();
            let l = solve(&m, Solver::Lp).unwrap();
            assert!(
                (h.total - e.total).abs() < 1e-6,
                "hungarian {} != exhaustive {} on {m}",
                h.total,
                e.total
            );
            assert!(
                (l.total - e.total).abs() < 1e-6,
                "lp {} != exhaustive {} on {m}",
                l.total,
                e.total
            );
        }
    }
}

//! Assignment solvers over a [`PerfMatrix`].
//!
//! The paper's cluster manager "uses a LP solver to identify an assignment
//! that maximizes the overall cluster performance" and cites the Hungarian
//! method and randomization as standard alternatives (§IV-B, refs
//! \[28–30\]). All of them are implemented here from scratch, plus the
//! exhaustive search used as the oracle in Fig. 14 and the sparse
//! forward-auction path ([`auction`]) that scales replans to 10k-server
//! fleets.

pub mod auction;
pub mod fairness;
pub mod hungarian;
pub mod search;
pub mod simplex;
pub mod sparse;

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::ClusterError;
use crate::matrix::PerfMatrix;

/// Below these dimensions the auction's pruning/scaling machinery costs
/// more than an exact dense solve, so `Solver::Auction` silently falls
/// back to Hungarian (DESIGN.md §8).
const AUCTION_DENSE_ROWS: usize = 6;
const AUCTION_DENSE_COLS: usize = 8;

/// Which algorithm to use for placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Solver {
    /// Exact O(n³) Kuhn-Munkres.
    Hungarian,
    /// Two-phase dense simplex on the assignment LP (integral at optimum).
    Lp,
    /// Brute-force over all placements — exponential, oracle only.
    Exhaustive,
    /// Uniform random one-BE-per-server placement (the paper's baseline).
    Random {
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// Max-min fair: maximize the worst co-runner's throughput first, then
    /// the total (the fairness objective the paper's POColo trades away).
    MaxMinFair,
    /// Sparse forward auction with ε-scaling: total within ε·rows of the
    /// optimum, scales to 10k-server fleets ([`auction`]).
    Auction {
        /// Per-row optimality tolerance.
        eps: f64,
    },
}

impl std::fmt::Display for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Solver::Hungarian => f.write_str("hungarian"),
            Solver::Lp => f.write_str("lp"),
            Solver::Exhaustive => f.write_str("exhaustive"),
            Solver::Random { seed } => write!(f, "random:{seed}"),
            Solver::MaxMinFair => f.write_str("fair"),
            Solver::Auction { eps } => write!(f, "auction:{eps}"),
        }
    }
}

impl std::str::FromStr for Solver {
    type Err = String;

    /// Parses the [`Display`](Solver#impl-Display-for-Solver) form:
    /// `hungarian`, `lp`, `exhaustive`, `fair`, `random:<seed>`, or
    /// `auction` / `auction:<eps>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hungarian" => Ok(Solver::Hungarian),
            "lp" => Ok(Solver::Lp),
            "exhaustive" => Ok(Solver::Exhaustive),
            "fair" => Ok(Solver::MaxMinFair),
            "auction" => Ok(Solver::Auction {
                eps: auction::DEFAULT_EPS,
            }),
            other => {
                if let Some(seed) = other.strip_prefix("random:") {
                    return seed
                        .parse()
                        .map(|seed| Solver::Random { seed })
                        .map_err(|_| format!("bad random-solver seed {seed:?}"));
                }
                if let Some(eps) = other.strip_prefix("auction:") {
                    return match eps.parse::<f64>() {
                        Ok(e) if e.is_finite() && e > 0.0 => Ok(Solver::Auction { eps: e }),
                        _ => Err(format!(
                            "bad auction eps {eps:?} (want a positive number, e.g. auction:0.001)"
                        )),
                    };
                }
                Err(format!(
                    "unknown solver {other:?} (want hungarian, lp, exhaustive, fair, random:<seed>, or auction:<eps>)"
                ))
            }
        }
    }
}

/// A placement: `pairs[(be_row, server_col)]` plus its total value.
///
/// Built through [`Assignment::new`], which sorts `pairs` by row — the
/// sort order is what makes [`Assignment::server_for`] a binary search.
/// The column index behind [`Assignment::app_on`] is built once on first
/// use; if you mutate `pairs` in place, do it before the first `app_on`
/// call.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// `(row, col)` pairs, sorted by row.
    pub pairs: Vec<(usize, usize)>,
    /// Sum of matrix entries over the pairs.
    pub total: f64,
    /// Lazily-built `(col, row)` pairs sorted by col, for `app_on`.
    col_index: OnceLock<Vec<(usize, usize)>>,
}

impl PartialEq for Assignment {
    fn eq(&self, other: &Self) -> bool {
        self.pairs == other.pairs && self.total == other.total
    }
}

impl Assignment {
    /// Builds an assignment, sorting `pairs` by row.
    pub fn new(mut pairs: Vec<(usize, usize)>, total: f64) -> Self {
        pairs.sort_unstable();
        Assignment {
            pairs,
            total,
            col_index: OnceLock::new(),
        }
    }

    /// The server column assigned to best-effort row `row`, if any.
    /// O(log pairs) — called per-tick in placement hot paths.
    pub fn server_for(&self, row: usize) -> Option<usize> {
        self.pairs
            .binary_search_by_key(&row, |&(r, _)| r)
            .ok()
            .map(|i| self.pairs[i].1)
    }

    /// The best-effort row placed on server `col`, if any. O(log pairs)
    /// after a build-once column index.
    pub fn app_on(&self, col: usize) -> Option<usize> {
        let index = self.col_index.get_or_init(|| {
            let mut by_col: Vec<(usize, usize)> = self.pairs.iter().map(|&(r, c)| (c, r)).collect();
            by_col.sort_unstable();
            by_col
        });
        index
            .binary_search_by_key(&col, |&(c, _)| c)
            .ok()
            .map(|i| index[i].1)
    }
}

/// Solves the placement problem with the chosen algorithm.
///
/// Disabled (faulted-out) columns are handled natively by the auction
/// path and projected out before any dense solver runs, so no solver ever
/// places an app on a server that left the fleet.
///
/// # Errors
///
/// Returns [`ClusterError::TooManyApps`] when rows exceed enabled
/// columns, and solver-specific errors ([`ClusterError::Infeasible`] /
/// [`ClusterError::Unbounded`] from the LP).
pub fn solve(matrix: &PerfMatrix, solver: Solver) -> Result<Assignment, ClusterError> {
    if matrix.rows() > matrix.enabled_cols() {
        return Err(ClusterError::TooManyApps {
            apps: matrix.rows(),
            servers: matrix.enabled_cols(),
        });
    }
    if let Solver::Auction { eps } = solver {
        // Fleet-scale instances take the sparse path; tiny ones fall
        // through to the dense Hungarian fallback below.
        if matrix.rows() > AUCTION_DENSE_ROWS || matrix.cols() > AUCTION_DENSE_COLS {
            return auction::solve(matrix, &auction::AuctionConfig::with_eps(eps))
                .map(|sol| sol.assignment);
        }
    }
    match matrix.compact_enabled()? {
        None => solve_dense(matrix, solver),
        Some((compact, col_map)) => {
            let a = solve_dense(&compact, solver)?;
            let pairs: Vec<(usize, usize)> =
                a.pairs.iter().map(|&(r, c)| (r, col_map[c])).collect();
            Ok(Assignment::new(pairs, a.total))
        }
    }
}

/// Dense dispatch over a fully-enabled matrix.
fn solve_dense(matrix: &PerfMatrix, solver: Solver) -> Result<Assignment, ClusterError> {
    let assignment = match solver {
        Solver::Hungarian => hungarian::solve_max(matrix),
        Solver::Lp => simplex::solve_assignment_lp(matrix)?,
        Solver::Exhaustive => search::exhaustive_max(matrix),
        Solver::MaxMinFair => fairness::solve_max_min_fair(matrix)?,
        // Small-instance fallback: exact, deterministic, cheaper than the
        // auction's scaling schedule at these sizes.
        Solver::Auction { .. } => hungarian::solve_max(matrix),
        Solver::Random { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut cols: Vec<usize> = (0..matrix.cols()).collect();
            cols.shuffle(&mut rng);
            let pairs: Vec<(usize, usize)> = (0..matrix.rows()).map(|r| (r, cols[r])).collect();
            let total = matrix.assignment_value(&pairs);
            Assignment::new(pairs, total)
        }
    };
    Ok(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixDelta;

    fn matrix(values: Vec<Vec<f64>>) -> PerfMatrix {
        let rows = values.len();
        let cols = values[0].len();
        PerfMatrix::new(
            (0..rows).map(|i| format!("be{i}")).collect(),
            (0..cols).map(|j| format!("lc{j}")).collect(),
            values,
        )
        .unwrap()
    }

    #[test]
    fn all_exact_solvers_agree_on_small_instance() {
        let m = matrix(vec![
            vec![0.9, 0.2, 0.3, 0.1],
            vec![0.4, 0.8, 0.2, 0.2],
            vec![0.3, 0.3, 0.7, 0.4],
            vec![0.1, 0.2, 0.4, 0.6],
        ]);
        let h = solve(&m, Solver::Hungarian).unwrap();
        let l = solve(&m, Solver::Lp).unwrap();
        let e = solve(&m, Solver::Exhaustive).unwrap();
        assert!((h.total - e.total).abs() < 1e-9, "hungarian {h:?} vs {e:?}");
        assert!((l.total - e.total).abs() < 1e-9, "lp {l:?} vs {e:?}");
        assert_eq!(e.total, 0.9 + 0.8 + 0.7 + 0.6);
    }

    #[test]
    fn random_is_valid_but_usually_worse() {
        let m = matrix(vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let opt = solve(&m, Solver::Exhaustive).unwrap();
        let mut worse = 0;
        for seed in 0..20 {
            let r = solve(&m, Solver::Random { seed }).unwrap();
            // Valid: one app per server.
            let mut cols: Vec<usize> = r.pairs.iter().map(|&(_, c)| c).collect();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), 3);
            if r.total < opt.total - 1e-9 {
                worse += 1;
            }
        }
        assert!(
            worse > 10,
            "random should usually miss the diagonal optimum"
        );
    }

    #[test]
    fn random_is_reproducible() {
        let m = matrix(vec![vec![0.3, 0.4], vec![0.2, 0.9]]);
        let a = solve(&m, Solver::Random { seed: 11 }).unwrap();
        let b = solve(&m, Solver::Random { seed: 11 }).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rectangular_more_servers_than_apps() {
        let m = matrix(vec![vec![0.1, 0.9, 0.5], vec![0.8, 0.7, 0.2]]);
        let h = solve(&m, Solver::Hungarian).unwrap();
        let e = solve(&m, Solver::Exhaustive).unwrap();
        let l = solve(&m, Solver::Lp).unwrap();
        assert!((h.total - e.total).abs() < 1e-9);
        assert!((l.total - e.total).abs() < 1e-9);
        assert_eq!(e.total, 0.9 + 0.8);
    }

    #[test]
    fn too_many_apps_rejected() {
        let m = matrix(vec![vec![0.1], vec![0.2]]);
        assert!(matches!(
            solve(&m, Solver::Hungarian),
            Err(ClusterError::TooManyApps { .. })
        ));
    }

    #[test]
    fn disabled_columns_excluded_from_dense_solvers() {
        // Column 1 holds the best value for both rows; disabling it must
        // push every solver elsewhere — and count against feasibility.
        let m = matrix(vec![vec![0.1, 0.9, 0.5], vec![0.2, 0.8, 0.3]]);
        let faulted = m.patched(&MatrixDelta::new().disable_column(1)).unwrap();
        for solver in [
            Solver::Hungarian,
            Solver::Lp,
            Solver::Exhaustive,
            Solver::MaxMinFair,
            Solver::Auction {
                eps: auction::DEFAULT_EPS,
            },
        ] {
            let a = solve(&faulted, solver).unwrap();
            assert!(
                a.pairs.iter().all(|&(_, c)| c != 1),
                "{solver} used a disabled column: {a:?}"
            );
            assert_eq!(a.pairs.len(), 2);
        }
        let dead = m
            .patched(&MatrixDelta::new().disable_column(0).disable_column(1))
            .unwrap();
        assert!(matches!(
            solve(&dead, Solver::Hungarian),
            Err(ClusterError::TooManyApps {
                apps: 2,
                servers: 1
            })
        ));
    }

    #[test]
    fn auction_small_instance_falls_back_to_exact() {
        let m = matrix(vec![
            vec![0.9, 0.2, 0.3],
            vec![0.4, 0.8, 0.2],
            vec![0.3, 0.3, 0.7],
        ]);
        let a = solve(
            &m,
            Solver::Auction {
                eps: auction::DEFAULT_EPS,
            },
        )
        .unwrap();
        let e = solve(&m, Solver::Exhaustive).unwrap();
        assert!((a.total - e.total).abs() < 1e-9, "fallback is exact");
    }

    #[test]
    fn accessors() {
        let m = matrix(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        let a = solve(&m, Solver::Hungarian).unwrap();
        assert_eq!(a.server_for(0), Some(0));
        assert_eq!(a.app_on(1), Some(1));
        assert_eq!(a.server_for(9), None);
        assert_eq!(a.app_on(9), None);
    }

    #[test]
    fn indexed_accessors_agree_with_linear_scan() {
        // A sparse rectangular placement exercises the binary search and
        // the built-once column index off the hot path.
        let pairs = vec![(0, 7), (1, 3), (2, 11), (5, 0), (9, 4)];
        let a = Assignment::new(pairs.clone(), 1.0);
        for row in 0..12 {
            let want = pairs.iter().find(|&&(r, _)| r == row).map(|&(_, c)| c);
            assert_eq!(a.server_for(row), want, "server_for({row})");
        }
        for col in 0..12 {
            let want = pairs.iter().find(|&&(_, c)| c == col).map(|&(r, _)| r);
            assert_eq!(a.app_on(col), want, "app_on({col})");
        }
    }

    #[test]
    fn new_sorts_pairs_by_row() {
        let a = Assignment::new(vec![(2, 0), (0, 2), (1, 1)], 3.0);
        assert_eq!(a.pairs, vec![(0, 2), (1, 1), (2, 0)]);
        assert_eq!(a.server_for(2), Some(0));
    }

    #[test]
    fn solver_display_from_str_round_trips() {
        let solvers = [
            Solver::Hungarian,
            Solver::Lp,
            Solver::Exhaustive,
            Solver::MaxMinFair,
            Solver::Random { seed: 42 },
            Solver::Auction { eps: 0.001 },
            Solver::Auction { eps: 0.25 },
        ];
        for s in solvers {
            let text = s.to_string();
            let back: Solver = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, s, "{text} did not round-trip");
        }
        // Bare `auction` means the default ε.
        assert_eq!(
            "auction".parse::<Solver>().unwrap(),
            Solver::Auction {
                eps: auction::DEFAULT_EPS
            }
        );
    }

    #[test]
    fn malformed_solver_strings_fail_fast() {
        for bad in [
            "quantum",
            "auction:",
            "auction:zero",
            "auction:-1",
            "auction:nan",
            "random:x",
        ] {
            let err = bad.parse::<Solver>().unwrap_err();
            assert!(!err.is_empty(), "{bad} should not parse");
            assert!(!err.contains('\n'), "one-line error for {bad}: {err:?}");
        }
        assert!(
            "auction:0".parse::<Solver>().is_err(),
            "eps must be positive"
        );
    }

    #[test]
    fn exact_solvers_match_on_random_matrices() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let n = rng.gen_range(2..=5);
            let mcols = rng.gen_range(n..=6);
            let vals: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..mcols).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let m = matrix(vals);
            let h = solve(&m, Solver::Hungarian).unwrap();
            let e = solve(&m, Solver::Exhaustive).unwrap();
            let l = solve(&m, Solver::Lp).unwrap();
            assert!(
                (h.total - e.total).abs() < 1e-6,
                "hungarian {} != exhaustive {} on {m}",
                h.total,
                e.total
            );
            assert!(
                (l.total - e.total).abs() < 1e-6,
                "lp {} != exhaustive {} on {m}",
                l.total,
                e.total
            );
        }
    }
}

//! A from-scratch two-phase dense simplex solver, plus the assignment-LP
//! wrapper used by the cluster manager (the paper's §IV-B "LP solver").
//!
//! The solver handles the general form
//!
//! ```text
//! maximize c·x   subject to   Aᵢ·x {≤,=,≥} bᵢ ,  x ≥ 0
//! ```
//!
//! with Bland's anti-cycling rule. The assignment relaxation is integral
//! (its constraint matrix is totally unimodular), so the simplex optimum is
//! a permutation and rounding is exact.

use crate::assign::Assignment;
use crate::error::ClusterError;
use crate::matrix::PerfMatrix;

/// Relation of one linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `A·x ≤ b`
    Le,
    /// `A·x = b`
    Eq,
    /// `A·x ≥ b`
    Ge,
}

/// One linear constraint `coeffs·x {≤,=,≥} rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Coefficients over the decision variables.
    pub coeffs: Vec<f64>,
    /// The relation.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program in decision variables `x ≥ 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearProgram {
    /// Objective coefficients (always maximized).
    pub objective: Vec<f64>,
    /// The constraint set.
    pub constraints: Vec<Constraint>,
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal decision-variable values.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
}

const EPS: f64 = 1e-9;

/// Solves the LP by two-phase simplex.
///
/// # Errors
///
/// [`ClusterError::Infeasible`] when no feasible point exists;
/// [`ClusterError::Unbounded`] when the objective is unbounded above;
/// [`ClusterError::InvalidMatrix`] for ragged inputs.
pub fn solve(lp: &LinearProgram) -> Result<LpSolution, ClusterError> {
    let n = lp.objective.len();
    for c in &lp.constraints {
        if c.coeffs.len() != n {
            return Err(ClusterError::InvalidMatrix(format!(
                "constraint has {} coefficients, expected {n}",
                c.coeffs.len()
            )));
        }
    }
    let m = lp.constraints.len();

    // Normalize to b >= 0 and count auxiliary columns.
    let mut rows: Vec<(Vec<f64>, Relation, f64)> = lp
        .constraints
        .iter()
        .map(|c| {
            if c.rhs < 0.0 {
                let flipped = match c.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                (c.coeffs.iter().map(|v| -v).collect(), flipped, -c.rhs)
            } else {
                (c.coeffs.clone(), c.relation, c.rhs)
            }
        })
        .collect();

    let n_slack = rows
        .iter()
        .filter(|(_, r, _)| matches!(r, Relation::Le | Relation::Ge))
        .count();
    let n_art = rows
        .iter()
        .filter(|(_, r, _)| matches!(r, Relation::Eq | Relation::Ge))
        .count();
    let total = n + n_slack + n_art;

    // Tableau: m rows of `total + 1` (last = rhs).
    let mut t = vec![vec![0.0f64; total + 1]; m];
    let mut basis = vec![0usize; m];
    let mut slack_idx = n;
    let mut art_idx = n + n_slack;
    let mut artificial_cols = Vec::new();
    for (i, (coeffs, rel, rhs)) in rows.drain(..).enumerate() {
        t[i][..n].copy_from_slice(&coeffs);
        t[i][total] = rhs;
        match rel {
            Relation::Le => {
                t[i][slack_idx] = 1.0;
                basis[i] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                t[i][slack_idx] = -1.0;
                slack_idx += 1;
                t[i][art_idx] = 1.0;
                basis[i] = art_idx;
                artificial_cols.push(art_idx);
                art_idx += 1;
            }
            Relation::Eq => {
                t[i][art_idx] = 1.0;
                basis[i] = art_idx;
                artificial_cols.push(art_idx);
                art_idx += 1;
            }
        }
    }

    // Phase 1: maximize -(sum of artificials).
    if !artificial_cols.is_empty() {
        let mut obj = vec![0.0f64; total + 1];
        for &a in &artificial_cols {
            obj[a] = -1.0;
        }
        price_out(&mut obj, &t, &basis, total);
        run_simplex(&mut t, &mut obj, &mut basis, total)?;
        // obj[total] carries the *negated* objective value, so a positive
        // residual means Σ artificials > 0 at optimum: infeasible.
        if obj[total] > 1e-7 {
            return Err(ClusterError::Infeasible);
        }
        // Drive any degenerate basic artificial out of the basis.
        for i in 0..m {
            if artificial_cols.contains(&basis[i]) {
                if let Some(col) = (0..n + n_slack).find(|&c| t[i][c].abs() > EPS) {
                    pivot(&mut t, &mut vec![0.0; total + 1], &mut basis, i, col, total);
                }
            }
        }
    }

    // Phase 2: the real objective, with artificial columns frozen at zero.
    let mut obj = vec![0.0f64; total + 1];
    obj[..n].copy_from_slice(&lp.objective);
    for &a in &artificial_cols {
        for row in t.iter_mut() {
            row[a] = 0.0;
        }
        obj[a] = 0.0;
    }
    price_out(&mut obj, &t, &basis, total);
    run_simplex(&mut t, &mut obj, &mut basis, total)?;

    let mut x = vec![0.0f64; n];
    for (i, &b) in basis.iter().enumerate() {
        if b < n {
            x[b] = t[i][total];
        }
    }
    let objective = lp.objective.iter().zip(&x).map(|(c, v)| c * v).sum::<f64>();
    Ok(LpSolution { x, objective })
}

/// Express the objective in terms of non-basic variables (reduced costs).
/// After pricing out, `obj[total]` holds the *negated* current objective.
fn price_out(obj: &mut [f64], t: &[Vec<f64>], basis: &[usize], total: usize) {
    for (i, &b) in basis.iter().enumerate() {
        let coeff = obj[b];
        if coeff.abs() > EPS {
            for c in 0..=total {
                obj[c] -= coeff * t[i][c];
            }
        }
    }
}

/// Primal simplex iterations with Bland's rule on a priced-out objective.
fn run_simplex(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    total: usize,
) -> Result<(), ClusterError> {
    for _ in 0..10_000 {
        // Bland: smallest index with positive reduced cost.
        let Some(entering) = (0..total).find(|&c| obj[c] > EPS) else {
            return Ok(());
        };
        // Ratio test; Bland tie-break on smallest basis index.
        let mut leaving: Option<(usize, f64)> = None;
        for (i, row) in t.iter().enumerate() {
            if row[entering] > EPS {
                let ratio = row[total] / row[entering];
                let better = match leaving {
                    None => true,
                    Some((li, lr)) => {
                        ratio < lr - EPS || (ratio < lr + EPS && basis[i] < basis[li])
                    }
                };
                if better {
                    leaving = Some((i, ratio));
                }
            }
        }
        let Some((pivot_row, _)) = leaving else {
            return Err(ClusterError::Unbounded);
        };
        pivot(t, obj, basis, pivot_row, entering, total);
    }
    // Bland's rule guarantees termination; this is a defensive bound.
    Err(ClusterError::Unbounded)
}

#[allow(clippy::needless_range_loop)] // tableau kernel
fn pivot(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    row: usize,
    col: usize,
    total: usize,
) {
    let pv = t[row][col];
    for c in 0..=total {
        t[row][c] /= pv;
    }
    for i in 0..t.len() {
        if i != row && t[i][col].abs() > EPS {
            let f = t[i][col];
            for c in 0..=total {
                t[i][c] -= f * t[row][c];
            }
        }
    }
    if obj[col].abs() > EPS {
        let f = obj[col];
        for c in 0..=total {
            obj[c] -= f * t[row][c];
        }
    }
    basis[row] = col;
}

/// Solves the assignment problem on `matrix` as a linear program:
/// maximize `Σ vᵢⱼ·xᵢⱼ` with each row placed exactly once and each column
/// used at most once. The relaxation is integral, so thresholding at ½
/// recovers the permutation.
///
/// # Errors
///
/// Propagates LP solver errors (a well-formed matrix is always feasible).
pub fn solve_assignment_lp(matrix: &PerfMatrix) -> Result<Assignment, ClusterError> {
    let rows = matrix.rows();
    let cols = matrix.cols();
    let nvars = rows * cols;
    let var = |r: usize, c: usize| r * cols + c;

    let mut objective = vec![0.0; nvars];
    for r in 0..rows {
        for c in 0..cols {
            objective[var(r, c)] = matrix.value(r, c);
        }
    }
    let mut constraints = Vec::with_capacity(rows + cols);
    for r in 0..rows {
        let mut coeffs = vec![0.0; nvars];
        for c in 0..cols {
            coeffs[var(r, c)] = 1.0;
        }
        constraints.push(Constraint {
            coeffs,
            relation: Relation::Eq,
            rhs: 1.0,
        });
    }
    for c in 0..cols {
        let mut coeffs = vec![0.0; nvars];
        for r in 0..rows {
            coeffs[var(r, c)] = 1.0;
        }
        constraints.push(Constraint {
            coeffs,
            relation: Relation::Le,
            rhs: 1.0,
        });
    }
    let solution = solve(&LinearProgram {
        objective,
        constraints,
    })?;

    let mut pairs = Vec::with_capacity(rows);
    for r in 0..rows {
        let c = (0..cols)
            .max_by(|&a, &b| {
                solution.x[var(r, a)]
                    .partial_cmp(&solution.x[var(r, b)])
                    .expect("lp values are finite")
            })
            .expect("at least one column");
        debug_assert!(
            solution.x[var(r, c)] > 0.5,
            "assignment LP should be integral"
        );
        pairs.push((r, c));
    }
    let total = matrix.assignment_value(&pairs);
    Ok(Assignment::new(pairs, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_maximization() {
        // max 3x + 2y s.t. x + y <= 4, x <= 2 -> x=2, y=2, obj=10.
        let lp = LinearProgram {
            objective: vec![3.0, 2.0],
            constraints: vec![
                Constraint {
                    coeffs: vec![1.0, 1.0],
                    relation: Relation::Le,
                    rhs: 4.0,
                },
                Constraint {
                    coeffs: vec![1.0, 0.0],
                    relation: Relation::Le,
                    rhs: 2.0,
                },
            ],
        };
        let s = solve(&lp).unwrap();
        assert!((s.objective - 10.0).abs() < 1e-7, "{s:?}");
        assert!((s.x[0] - 2.0).abs() < 1e-7);
        assert!((s.x[1] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 3, x <= 1 -> obj = 3 with x<=1.
        let lp = LinearProgram {
            objective: vec![1.0, 1.0],
            constraints: vec![
                Constraint {
                    coeffs: vec![1.0, 1.0],
                    relation: Relation::Eq,
                    rhs: 3.0,
                },
                Constraint {
                    coeffs: vec![1.0, 0.0],
                    relation: Relation::Le,
                    rhs: 1.0,
                },
            ],
        };
        let s = solve(&lp).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-7);
        assert!((s.x[0] + s.x[1] - 3.0).abs() < 1e-7);
        assert!(s.x[0] <= 1.0 + 1e-7);
    }

    #[test]
    fn ge_constraints_and_negative_rhs() {
        // max -x s.t. x >= 2 -> x = 2. Also expressed as -x <= -2.
        let lp = LinearProgram {
            objective: vec![-1.0],
            constraints: vec![Constraint {
                coeffs: vec![-1.0],
                relation: Relation::Le,
                rhs: -2.0,
            }],
        };
        let s = solve(&lp).unwrap();
        assert!((s.x[0] - 2.0).abs() < 1e-7);
        assert!((s.objective + 2.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let lp = LinearProgram {
            objective: vec![1.0],
            constraints: vec![
                Constraint {
                    coeffs: vec![1.0],
                    relation: Relation::Le,
                    rhs: 1.0,
                },
                Constraint {
                    coeffs: vec![1.0],
                    relation: Relation::Ge,
                    rhs: 2.0,
                },
            ],
        };
        assert_eq!(solve(&lp), Err(ClusterError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let lp = LinearProgram {
            objective: vec![1.0],
            constraints: vec![Constraint {
                coeffs: vec![-1.0],
                relation: Relation::Le,
                rhs: 1.0,
            }],
        };
        assert_eq!(solve(&lp), Err(ClusterError::Unbounded));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let lp = LinearProgram {
            objective: vec![1.0, 1.0],
            constraints: vec![
                Constraint {
                    coeffs: vec![1.0, 0.0],
                    relation: Relation::Le,
                    rhs: 1.0,
                },
                Constraint {
                    coeffs: vec![1.0, 0.0],
                    relation: Relation::Le,
                    rhs: 1.0,
                },
                Constraint {
                    coeffs: vec![0.0, 1.0],
                    relation: Relation::Le,
                    rhs: 1.0,
                },
                Constraint {
                    coeffs: vec![1.0, 1.0],
                    relation: Relation::Le,
                    rhs: 2.0,
                },
            ],
        };
        let s = solve(&lp).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-7);
    }

    #[test]
    fn ragged_constraint_rejected() {
        let lp = LinearProgram {
            objective: vec![1.0, 1.0],
            constraints: vec![Constraint {
                coeffs: vec![1.0],
                relation: Relation::Le,
                rhs: 1.0,
            }],
        };
        assert!(matches!(solve(&lp), Err(ClusterError::InvalidMatrix(_))));
    }

    #[test]
    fn assignment_lp_is_integral() {
        let m = PerfMatrix::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec!["x".into(), "y".into(), "z".into()],
            vec![
                vec![0.9, 0.5, 0.1],
                vec![0.6, 0.8, 0.3],
                vec![0.2, 0.4, 0.95],
            ],
        )
        .unwrap();
        let a = solve_assignment_lp(&m).unwrap();
        assert_eq!(a.pairs.len(), 3);
        assert!((a.total - (0.9 + 0.8 + 0.95)).abs() < 1e-7);
    }
}

#[cfg(test)]
mod brute_force_tests {
    use super::*;
    use rand::prelude::*;

    /// Brute-force a 2-variable LP by enumerating constraint-intersection
    /// vertices (plus axis intercepts and the origin).
    fn brute_force_2d(lp: &LinearProgram) -> Option<f64> {
        let mut candidates = vec![(0.0, 0.0)];
        let lines: Vec<(f64, f64, f64)> = lp
            .constraints
            .iter()
            .map(|c| (c.coeffs[0], c.coeffs[1], c.rhs))
            .collect();
        // Pairwise intersections, including the axes x=0 and y=0.
        let mut all = lines.clone();
        all.push((1.0, 0.0, 0.0));
        all.push((0.0, 1.0, 0.0));
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                let (a1, b1, c1) = all[i];
                let (a2, b2, c2) = all[j];
                let det = a1 * b2 - a2 * b1;
                if det.abs() < 1e-12 {
                    continue;
                }
                let x = (c1 * b2 - c2 * b1) / det;
                let y = (a1 * c2 - a2 * c1) / det;
                candidates.push((x, y));
            }
        }
        let feasible = |x: f64, y: f64| {
            x >= -1e-9 && y >= -1e-9 && lines.iter().all(|&(a, b, c)| a * x + b * y <= c + 1e-9)
        };
        candidates
            .into_iter()
            .filter(|&(x, y)| feasible(x, y))
            .map(|(x, y)| lp.objective[0] * x + lp.objective[1] * y)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
    }

    #[test]
    fn simplex_matches_vertex_enumeration_on_random_2d_lps() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut checked = 0;
        for _ in 0..200 {
            let lp = LinearProgram {
                objective: vec![rng.gen_range(0.1..5.0), rng.gen_range(0.1..5.0)],
                constraints: (0..rng.gen_range(1..=4))
                    .map(|_| Constraint {
                        coeffs: vec![rng.gen_range(0.1..3.0), rng.gen_range(0.1..3.0)],
                        relation: Relation::Le,
                        rhs: rng.gen_range(1.0..10.0),
                    })
                    .collect(),
            };
            // Positive coefficients + Le constraints: always feasible (the
            // origin) and bounded.
            let brute = brute_force_2d(&lp).expect("origin is feasible");
            let simplex = solve(&lp).expect("bounded and feasible");
            assert!(
                (simplex.objective - brute).abs() < 1e-6 * brute.max(1.0),
                "simplex {} vs brute force {brute} on {lp:?}",
                simplex.objective
            );
            checked += 1;
        }
        assert_eq!(checked, 200);
    }
}

//! Max-min fair assignment — the counterpoint to POColo's
//! total-throughput objective.
//!
//! The paper notes (§V-D) that POColo "is not designed to consider
//! fairness... it allows poorer performance for some co-locations (e.g. the
//! co-runner of TPCC) while most effectively matching other co-locations."
//! This module quantifies that trade-off: a **bottleneck assignment** that
//! maximizes the *worst* co-runner's throughput first, breaking ties by
//! total throughput.
//!
//! Algorithm: binary search over candidate thresholds (the distinct matrix
//! values); a threshold `v` is feasible iff a perfect matching exists using
//! only entries ≥ `v` (checked with Kuhn's augmenting-path matching). The
//! final assignment maximizes total value among matchings that respect the
//! best threshold, via the Hungarian method with sub-threshold entries
//! forbidden.

use crate::assign::{hungarian, Assignment};
use crate::error::ClusterError;
use crate::matrix::PerfMatrix;

/// Kuhn's augmenting-path bipartite matching: can every row be matched to a
/// distinct column using only admissible edges?
fn has_perfect_matching(admissible: &[Vec<bool>], cols: usize) -> bool {
    let rows = admissible.len();
    let mut col_match: Vec<Option<usize>> = vec![None; cols];

    fn try_row(
        r: usize,
        admissible: &[Vec<bool>],
        visited: &mut [bool],
        col_match: &mut [Option<usize>],
    ) -> bool {
        for c in 0..visited.len() {
            if admissible[r][c] && !visited[c] {
                visited[c] = true;
                if col_match[c].is_none()
                    || try_row(
                        col_match[c].expect("checked above"),
                        admissible,
                        visited,
                        col_match,
                    )
                {
                    col_match[c] = Some(r);
                    return true;
                }
            }
        }
        false
    }

    for r in 0..rows {
        let mut visited = vec![false; cols];
        if !try_row(r, admissible, &mut visited, &mut col_match) {
            return false;
        }
    }
    true
}

/// The largest threshold `v` such that a perfect matching exists using only
/// entries ≥ `v`.
fn best_bottleneck(matrix: &PerfMatrix) -> f64 {
    let mut values: Vec<f64> = matrix
        .values()
        .iter()
        .flat_map(|r| r.iter().copied())
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite throughputs"));
    values.dedup();
    // Binary search the feasibility frontier (feasible at values[0] by
    // assumption rows <= cols; monotone decreasing in v).
    let feasible = |v: f64| {
        let admissible: Vec<Vec<bool>> = matrix
            .values()
            .iter()
            .map(|row| row.iter().map(|&x| x >= v).collect())
            .collect();
        has_perfect_matching(&admissible, matrix.cols())
    };
    let (mut lo, mut hi) = (0usize, values.len() - 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if feasible(values[mid]) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    values[lo]
}

/// Max-min fair assignment: maximize the minimum entry, then the total.
///
/// # Errors
///
/// Returns [`ClusterError::TooManyApps`] when rows exceed columns.
pub fn solve_max_min_fair(matrix: &PerfMatrix) -> Result<Assignment, ClusterError> {
    if matrix.rows() > matrix.cols() {
        return Err(ClusterError::TooManyApps {
            apps: matrix.rows(),
            servers: matrix.cols(),
        });
    }
    let bottleneck = best_bottleneck(matrix);
    // Forbid sub-threshold entries by making them catastrophically
    // expensive in the min-cost transform, then take the best total.
    let peak = matrix
        .values()
        .iter()
        .flat_map(|r| r.iter())
        .cloned()
        .fold(0.0, f64::max);
    let forbidden = peak * 1e6 + 1.0;
    let cost: Vec<Vec<f64>> = matrix
        .values()
        .iter()
        .map(|row| {
            row.iter()
                .map(|&v| if v >= bottleneck { peak - v } else { forbidden })
                .collect()
        })
        .collect();
    let row_to_col = hungarian::hungarian_min(&cost);
    let pairs: Vec<(usize, usize)> = row_to_col.into_iter().enumerate().collect();
    debug_assert!(
        pairs.iter().all(|&(r, c)| matrix.value(r, c) >= bottleneck),
        "bottleneck threshold violated"
    );
    let total = matrix.assignment_value(&pairs);
    Ok(Assignment::new(pairs, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{search, solve, Solver};

    fn matrix(values: Vec<Vec<f64>>) -> PerfMatrix {
        let rows = values.len();
        let cols = values[0].len();
        PerfMatrix::new(
            (0..rows).map(|i| format!("be{i}")).collect(),
            (0..cols).map(|j| format!("lc{j}")).collect(),
            values,
        )
        .unwrap()
    }

    fn min_entry(m: &PerfMatrix, a: &Assignment) -> f64 {
        a.pairs
            .iter()
            .map(|&(r, c)| m.value(r, c))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn fair_solution_beats_total_optimal_on_the_minimum() {
        // Total-optimal: rows 0,1 take the big diagonal and row 2 starves.
        let m = matrix(vec![
            vec![0.9, 0.5, 0.05],
            vec![0.5, 0.9, 0.05],
            vec![0.45, 0.45, 0.05],
        ]);
        let total_opt = solve(&m, Solver::Exhaustive).unwrap();
        let fair = solve_max_min_fair(&m).unwrap();
        assert!(min_entry(&m, &fair) >= min_entry(&m, &total_opt));
        assert!(fair.total <= total_opt.total + 1e-9);
    }

    #[test]
    fn fair_equals_optimal_when_no_conflict() {
        let m = matrix(vec![vec![1.0, 0.1], vec![0.1, 1.0]]);
        let fair = solve_max_min_fair(&m).unwrap();
        let opt = solve(&m, Solver::Exhaustive).unwrap();
        assert_eq!(fair.pairs, opt.pairs);
    }

    #[test]
    fn bottleneck_matches_brute_force() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let n = rng.gen_range(2..=5);
            let vals: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let m = matrix(vals);
            let fair = solve_max_min_fair(&m).unwrap();
            // Brute force the best achievable minimum.
            let best_min = search::enumerate_all(&m)
                .into_iter()
                .map(|(pairs, _)| {
                    pairs
                        .iter()
                        .map(|&(r, c)| m.value(r, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                (min_entry(&m, &fair) - best_min).abs() < 1e-9,
                "fair min {} != brute-force best min {best_min} on {m}",
                min_entry(&m, &fair)
            );
        }
    }

    #[test]
    fn maximizes_total_among_fair_solutions() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..30 {
            let n = rng.gen_range(2..=5);
            let vals: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let m = matrix(vals);
            let fair = solve_max_min_fair(&m).unwrap();
            let bottleneck = min_entry(&m, &fair);
            let best_total_at_bottleneck = search::enumerate_all(&m)
                .into_iter()
                .filter(|(pairs, _)| {
                    pairs
                        .iter()
                        .all(|&(r, c)| m.value(r, c) >= bottleneck - 1e-12)
                })
                .map(|(_, total)| total)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                (fair.total - best_total_at_bottleneck).abs() < 1e-9,
                "fair total {} != best total {best_total_at_bottleneck} at bottleneck {bottleneck}",
                fair.total
            );
        }
    }

    #[test]
    fn rectangular_instances() {
        let m = matrix(vec![vec![0.2, 0.9, 0.5], vec![0.9, 0.2, 0.5]]);
        let fair = solve_max_min_fair(&m).unwrap();
        assert!(min_entry(&m, &fair) >= 0.5);
        assert_eq!(fair.pairs.len(), 2);
    }

    #[test]
    fn too_many_rows_rejected() {
        let m = matrix(vec![vec![1.0], vec![2.0]]);
        assert!(matches!(
            solve_max_min_fair(&m),
            Err(ClusterError::TooManyApps { .. })
        ));
    }
}

//! Admission control: when more best-effort candidates exist than servers,
//! decide *which* to admit — the cluster-management concern the paper's
//! related-work section calls "admittance control and job placement".
//!
//! With `N` candidates and `M < N` servers (one BE slot each), the optimal
//! joint admit+place decision is a rectangular assignment with servers as
//! rows: the Hungarian solve simultaneously picks the best `M`-subset of
//! apps and their placement.

use crate::assign::{hungarian, Assignment};
use crate::error::ClusterError;
use crate::matrix::PerfMatrix;

/// Outcome of admission control.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionDecision {
    /// The placement over admitted apps: `(be_row, server_col)` pairs in
    /// the original matrix's indices.
    pub placement: Assignment,
    /// Rows (BE apps) that were *not* admitted, ascending.
    pub rejected: Vec<usize>,
}

/// Chooses which BE apps to admit and where to place them, maximizing total
/// estimated throughput. Works for any matrix shape:
///
/// - `rows ≤ cols`: everything is admitted (plain assignment).
/// - `rows > cols`: the best `cols`-sized subset is admitted.
///
/// ```
/// use pocolo_cluster::{admit_and_place, PerfMatrix};
/// # fn main() -> Result<(), pocolo_cluster::ClusterError> {
/// // Three candidates for two servers: the weak one is rejected.
/// let matrix = PerfMatrix::new(
///     vec!["graph".into(), "lstm".into(), "pbzip".into()],
///     vec!["sphinx".into(), "img-dnn".into()],
///     vec![vec![0.9, 0.5], vec![0.4, 0.8], vec![0.3, 0.2]],
/// )?;
/// let decision = admit_and_place(&matrix)?;
/// assert_eq!(decision.rejected, vec![2]); // pbzip waits
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates matrix errors (none for well-formed inputs).
pub fn admit_and_place(matrix: &PerfMatrix) -> Result<AdmissionDecision, ClusterError> {
    let rows = matrix.rows();
    let cols = matrix.cols();
    if rows <= cols {
        let placement = hungarian::solve_max(matrix);
        return Ok(AdmissionDecision {
            placement,
            rejected: Vec::new(),
        });
    }
    // Transpose: servers become rows (cols_t = apps >= rows_t = servers),
    // so the Hungarian matching picks one app per server — implicitly the
    // most valuable subset.
    let transposed: Vec<Vec<f64>> = (0..cols)
        .map(|c| (0..rows).map(|r| matrix.value(r, c)).collect())
        .collect();
    let t = PerfMatrix::new(
        matrix.col_labels().to_vec(),
        matrix.row_labels().to_vec(),
        transposed,
    )?;
    let server_to_app = hungarian::solve_max(&t);
    let mut pairs: Vec<(usize, usize)> = server_to_app
        .pairs
        .iter()
        .map(|&(server, app)| (app, server))
        .collect();
    pairs.sort_unstable();
    let admitted: Vec<usize> = pairs.iter().map(|&(r, _)| r).collect();
    let rejected: Vec<usize> = (0..rows).filter(|r| !admitted.contains(r)).collect();
    let total = matrix.assignment_value(&pairs);
    Ok(AdmissionDecision {
        placement: Assignment::new(pairs, total),
        rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(values: Vec<Vec<f64>>) -> PerfMatrix {
        let rows = values.len();
        let cols = values[0].len();
        PerfMatrix::new(
            (0..rows).map(|i| format!("be{i}")).collect(),
            (0..cols).map(|j| format!("lc{j}")).collect(),
            values,
        )
        .unwrap()
    }

    #[test]
    fn square_admits_everyone() {
        let m = matrix(vec![vec![0.9, 0.1], vec![0.1, 0.9]]);
        let d = admit_and_place(&m).unwrap();
        assert!(d.rejected.is_empty());
        assert!((d.placement.total - 1.8).abs() < 1e-9);
    }

    #[test]
    fn oversubscribed_rejects_the_weakest() {
        // Three candidates, two servers: the middling app loses.
        let m = matrix(vec![
            vec![0.9, 0.8],  // strong everywhere
            vec![0.3, 0.2],  // weak everywhere -> rejected
            vec![0.7, 0.95], // strong on server 1
        ]);
        let d = admit_and_place(&m).unwrap();
        assert_eq!(d.rejected, vec![1]);
        assert_eq!(d.placement.pairs, vec![(0, 0), (2, 1)]);
        assert!((d.placement.total - (0.9 + 0.95)).abs() < 1e-9);
    }

    #[test]
    fn subset_choice_is_jointly_optimal() {
        // The jointly best pair is {app0 -> s0, app2 -> s1} = 1.95, beating
        // both {0,1} = 1.90 and the seemingly balanced {1,2} = 1.90.
        let m = matrix(vec![vec![1.00, 0.10], vec![0.95, 0.90], vec![0.90, 0.95]]);
        let d = admit_and_place(&m).unwrap();
        assert_eq!(d.rejected, vec![1]);
        assert!((d.placement.total - 1.95).abs() < 1e-9);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..30 {
            let rows = rng.gen_range(3..=6);
            let cols = rng.gen_range(2..rows);
            let vals: Vec<Vec<f64>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let m = matrix(vals.clone());
            let d = admit_and_place(&m).unwrap();
            // Brute force over subsets × permutations.
            let best = brute_force(&vals, cols);
            assert!(
                (d.placement.total - best).abs() < 1e-9,
                "got {} want {best} for {vals:?}",
                d.placement.total
            );
            assert_eq!(d.rejected.len(), rows - cols);
        }
    }

    fn brute_force(vals: &[Vec<f64>], cols: usize) -> f64 {
        fn rec(
            vals: &[Vec<f64>],
            col_used: &mut [bool],
            row: usize,
            placed: usize,
            cols: usize,
            acc: f64,
            best: &mut f64,
        ) {
            if placed == cols {
                *best = best.max(acc);
                return;
            }
            if row == vals.len() {
                return;
            }
            // Skip this row.
            rec(vals, col_used, row + 1, placed, cols, acc, best);
            // Or place it on any free column.
            for c in 0..cols {
                if !col_used[c] {
                    col_used[c] = true;
                    rec(
                        vals,
                        col_used,
                        row + 1,
                        placed + 1,
                        cols,
                        acc + vals[row][c],
                        best,
                    );
                    col_used[c] = false;
                }
            }
        }
        let mut best = f64::NEG_INFINITY;
        rec(vals, &mut vec![false; cols], 0, 0, cols, 0.0, &mut best);
        best
    }
}

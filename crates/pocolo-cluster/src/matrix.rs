//! The BE×LC performance matrix (Fig. 7-II of the paper) and the sparse
//! delta representation the incremental replan path consumes.

use std::fmt;

use crate::error::ClusterError;

/// A labelled rows×cols matrix of estimated throughputs: entry `(i, j)` is
/// the predicted average throughput of best-effort app `i` when placed on
/// latency-critical server `j`.
///
/// A column may be **disabled** (server faulted out of the fleet): its
/// values read as zero and solvers must not place anything there. Freshly
/// built matrices have every column enabled; disabling happens through
/// [`PerfMatrix::patched`] with a [`MatrixDelta`].
#[derive(Debug, Clone, PartialEq)]
pub struct PerfMatrix {
    row_labels: Vec<String>,
    col_labels: Vec<String>,
    values: Vec<Vec<f64>>,
    /// `disabled[j]` — column `j` is out of the fleet. Empty ⇔ all enabled
    /// (the common case pays no memory).
    disabled: Vec<bool>,
}

impl PerfMatrix {
    /// Builds a matrix from labels and row-major values.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidMatrix`] if empty, ragged, label
    /// counts mismatch, or any value is not finite and non-negative.
    pub fn new(
        row_labels: Vec<String>,
        col_labels: Vec<String>,
        values: Vec<Vec<f64>>,
    ) -> Result<Self, ClusterError> {
        if values.is_empty() || col_labels.is_empty() {
            return Err(ClusterError::InvalidMatrix("matrix is empty".into()));
        }
        if values.len() != row_labels.len() {
            return Err(ClusterError::InvalidMatrix(format!(
                "{} rows but {} row labels",
                values.len(),
                row_labels.len()
            )));
        }
        for row in &values {
            if row.len() != col_labels.len() {
                return Err(ClusterError::InvalidMatrix(format!(
                    "ragged row: {} entries, {} col labels",
                    row.len(),
                    col_labels.len()
                )));
            }
            for &v in row {
                if !v.is_finite() || v < 0.0 {
                    return Err(ClusterError::InvalidMatrix(format!(
                        "throughput {v} must be finite and non-negative"
                    )));
                }
            }
        }
        Ok(PerfMatrix {
            row_labels,
            col_labels,
            values,
            disabled: Vec::new(),
        })
    }

    /// Number of best-effort apps (rows).
    pub fn rows(&self) -> usize {
        self.values.len()
    }

    /// Number of servers (columns), enabled or not.
    pub fn cols(&self) -> usize {
        self.col_labels.len()
    }

    /// Number of columns still in the fleet.
    pub fn enabled_cols(&self) -> usize {
        if self.disabled.is_empty() {
            self.cols()
        } else {
            self.disabled.iter().filter(|&&d| !d).count()
        }
    }

    /// Whether column `j` has been disabled (server faulted out).
    pub fn is_col_disabled(&self, col: usize) -> bool {
        self.disabled.get(col).copied().unwrap_or(false)
    }

    /// Entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.values[row][col]
    }

    /// One row as a slice — candidate scoring iterates rows without
    /// materializing anything.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn row(&self, row: usize) -> &[f64] {
        &self.values[row]
    }

    /// Iterates column `col` top-to-bottom without materializing it —
    /// bucketing and delta diffs walk columns through this.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn col_iter(&self, col: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(col < self.cols(), "column {col} out of range");
        self.values.iter().map(move |r| r[col])
    }

    /// The largest entry over enabled columns (0.0 if everything is
    /// disabled) — the auction's ε-scaling schedule starts here.
    pub fn max_value(&self) -> f64 {
        let mut best = 0.0f64;
        for row in &self.values {
            for (j, &v) in row.iter().enumerate() {
                if !self.is_col_disabled(j) && v > best {
                    best = v;
                }
            }
        }
        best
    }

    /// The raw row-major values.
    pub fn values(&self) -> &[Vec<f64>] {
        &self.values
    }

    /// Row (best-effort app) labels.
    pub fn row_labels(&self) -> &[String] {
        &self.row_labels
    }

    /// Column (server / LC app) labels.
    pub fn col_labels(&self) -> &[String] {
        &self.col_labels
    }

    /// Total value of an assignment given as `pairs[(row, col)]`.
    pub fn assignment_value(&self, pairs: &[(usize, usize)]) -> f64 {
        pairs.iter().map(|&(r, c)| self.values[r][c]).sum()
    }

    /// Applies a [`MatrixDelta`], returning the patched matrix. Disabled
    /// columns have their values zeroed and are excluded from placement.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range columns, wrong-length replacement columns, and
    /// non-finite or negative replacement values.
    pub fn patched(&self, delta: &MatrixDelta) -> Result<PerfMatrix, ClusterError> {
        let mut out = self.clone();
        for (col, edit) in &delta.edits {
            if *col >= out.cols() {
                return Err(ClusterError::InvalidMatrix(format!(
                    "delta column {col} out of range ({} cols)",
                    out.cols()
                )));
            }
            match edit {
                ColumnEdit::Set(values) => {
                    if values.len() != out.rows() {
                        return Err(ClusterError::InvalidMatrix(format!(
                            "delta column {col} has {} entries, matrix has {} rows",
                            values.len(),
                            out.rows()
                        )));
                    }
                    for &v in values {
                        if !v.is_finite() || v < 0.0 {
                            return Err(ClusterError::InvalidMatrix(format!(
                                "delta throughput {v} must be finite and non-negative"
                            )));
                        }
                    }
                    for (row, &v) in out.values.iter_mut().zip(values) {
                        row[*col] = v;
                    }
                    if !out.disabled.is_empty() {
                        out.disabled[*col] = false;
                    }
                }
                ColumnEdit::Disable => {
                    if out.disabled.is_empty() {
                        out.disabled = vec![false; out.cols()];
                    }
                    out.disabled[*col] = true;
                    for row in &mut out.values {
                        row[*col] = 0.0;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Projects out disabled columns: returns the compacted matrix and the
    /// map from compact column index back to the original one. `None` when
    /// nothing is disabled (solvers run on `self` directly).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidMatrix`] when every column is
    /// disabled.
    pub fn compact_enabled(&self) -> Result<Option<(PerfMatrix, Vec<usize>)>, ClusterError> {
        if self.disabled.iter().all(|&d| !d) {
            return Ok(None);
        }
        let keep: Vec<usize> = (0..self.cols())
            .filter(|&j| !self.is_col_disabled(j))
            .collect();
        if keep.is_empty() {
            return Err(ClusterError::InvalidMatrix(
                "every column is disabled".into(),
            ));
        }
        let values: Vec<Vec<f64>> = self
            .values
            .iter()
            .map(|row| keep.iter().map(|&j| row[j]).collect())
            .collect();
        let compact = PerfMatrix::new(
            self.row_labels.clone(),
            keep.iter().map(|&j| self.col_labels[j].clone()).collect(),
            values,
        )?;
        Ok(Some((compact, keep)))
    }
}

/// One column's worth of change in a [`MatrixDelta`].
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnEdit {
    /// The server's estimates changed (cap de-rate, model refit): the new
    /// column values, one per BE row. Re-enables a disabled column.
    Set(Vec<f64>),
    /// The server left the fleet (crash, maintenance): values read as zero
    /// and no BE may be placed there.
    Disable,
}

/// A sparse set of column edits between two replans — what changed since
/// the matrix was last solved, so the incremental solver can repair only
/// the dirtied part instead of re-solving from scratch.
///
/// Edits are column-oriented because every fleet event the replan loop
/// sees (per-server fault, per-server cap de-rate, a server's model refit)
/// dirties whole columns; BE-side changes (new candidate set) rebuild the
/// matrix outright.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatrixDelta {
    /// `(col, edit)`, sorted and unique by column.
    edits: Vec<(usize, ColumnEdit)>,
}

impl MatrixDelta {
    /// An empty delta (nothing changed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records new values for a column (builder style). A later edit for
    /// the same column replaces the earlier one.
    #[must_use]
    pub fn set_column(mut self, col: usize, values: Vec<f64>) -> Self {
        self.insert(col, ColumnEdit::Set(values));
        self
    }

    /// Records a column leaving the fleet (builder style).
    #[must_use]
    pub fn disable_column(mut self, col: usize) -> Self {
        self.insert(col, ColumnEdit::Disable);
        self
    }

    fn insert(&mut self, col: usize, edit: ColumnEdit) {
        match self.edits.binary_search_by_key(&col, |(c, _)| *c) {
            Ok(i) => self.edits[i].1 = edit,
            Err(i) => self.edits.insert(i, (col, edit)),
        }
    }

    /// The delta between two same-shape matrices: every column whose
    /// values or disabled state differ becomes an edit. `old.patched(&d)`
    /// then equals `new` up to the recorded columns.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidMatrix`] on shape or label mismatch.
    pub fn diff(old: &PerfMatrix, new: &PerfMatrix) -> Result<MatrixDelta, ClusterError> {
        if old.rows() != new.rows() || old.cols() != new.cols() {
            return Err(ClusterError::InvalidMatrix(format!(
                "cannot diff a {}x{} matrix against {}x{}",
                old.rows(),
                old.cols(),
                new.rows(),
                new.cols()
            )));
        }
        let mut delta = MatrixDelta::new();
        for col in 0..old.cols() {
            if new.is_col_disabled(col) {
                if !old.is_col_disabled(col) {
                    delta = delta.disable_column(col);
                }
                continue;
            }
            let changed = old.is_col_disabled(col)
                || old
                    .col_iter(col)
                    .zip(new.col_iter(col))
                    .any(|(a, b)| a != b);
            if changed {
                delta = delta.set_column(col, new.col_iter(col).collect());
            }
        }
        Ok(delta)
    }

    /// The edits, sorted by column.
    pub fn edits(&self) -> &[(usize, ColumnEdit)] {
        &self.edits
    }

    /// The dirtied column indices, ascending.
    pub fn dirty_cols(&self) -> impl Iterator<Item = usize> + '_ {
        self.edits.iter().map(|(c, _)| *c)
    }

    /// Number of dirtied columns.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }
}

impl fmt::Display for PerfMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>10}", "")?;
        for c in &self.col_labels {
            write!(f, " {c:>9}")?;
        }
        writeln!(f)?;
        for (r, row) in self.row_labels.iter().zip(&self.values) {
            write!(f, "{r:>10}")?;
            for v in row {
                write!(f, " {v:>9.4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn matrix3() -> PerfMatrix {
        PerfMatrix::new(
            labels(&["a", "b"]),
            labels(&["x", "y", "z"]),
            vec![vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let m = PerfMatrix::new(
            labels(&["lstm", "graph"]),
            labels(&["sphinx", "xapian"]),
            vec![vec![0.5, 0.7], vec![0.9, 0.4]],
        )
        .unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.enabled_cols(), 2);
        assert_eq!(m.value(1, 0), 0.9);
        assert_eq!(m.row(0), &[0.5, 0.7]);
        assert_eq!(m.col_iter(1).collect::<Vec<_>>(), vec![0.7, 0.4]);
        assert_eq!(m.max_value(), 0.9);
        assert_eq!(m.assignment_value(&[(0, 1), (1, 0)]), 0.7 + 0.9);
    }

    #[test]
    fn validation() {
        assert!(PerfMatrix::new(labels(&[]), labels(&["a"]), vec![]).is_err());
        assert!(PerfMatrix::new(labels(&["x"]), labels(&["a", "b"]), vec![vec![1.0]]).is_err());
        assert!(PerfMatrix::new(labels(&["x"]), labels(&["a"]), vec![vec![-1.0]]).is_err());
        assert!(PerfMatrix::new(labels(&["x"]), labels(&["a"]), vec![vec![f64::NAN]]).is_err());
        assert!(PerfMatrix::new(labels(&["x", "y"]), labels(&["a"]), vec![vec![1.0]]).is_err());
    }

    #[test]
    fn display_contains_labels() {
        let m =
            PerfMatrix::new(labels(&["lstm"]), labels(&["sphinx"]), vec![vec![0.1234]]).unwrap();
        let s = m.to_string();
        assert!(s.contains("lstm") && s.contains("sphinx") && s.contains("0.1234"));
    }

    #[test]
    fn patched_set_and_disable() {
        let m = matrix3();
        let delta = MatrixDelta::new()
            .set_column(0, vec![1.0, 2.0])
            .disable_column(2);
        let p = m.patched(&delta).unwrap();
        assert_eq!(p.value(0, 0), 1.0);
        assert_eq!(p.value(1, 0), 2.0);
        assert_eq!(p.value(0, 1), 0.2, "untouched column survives");
        assert!(p.is_col_disabled(2));
        assert_eq!(p.value(0, 2), 0.0, "disabled column reads zero");
        assert_eq!(p.enabled_cols(), 2);
        // Re-enabling by setting fresh values.
        let back = p
            .patched(&MatrixDelta::new().set_column(2, vec![0.3, 0.6]))
            .unwrap();
        assert!(!back.is_col_disabled(2));
        assert_eq!(back.enabled_cols(), 3);
    }

    #[test]
    fn patched_rejects_bad_edits() {
        let m = matrix3();
        assert!(m.patched(&MatrixDelta::new().disable_column(9)).is_err());
        assert!(m
            .patched(&MatrixDelta::new().set_column(0, vec![1.0]))
            .is_err());
        assert!(m
            .patched(&MatrixDelta::new().set_column(0, vec![1.0, f64::NAN]))
            .is_err());
    }

    #[test]
    fn diff_finds_exactly_the_dirty_columns() {
        let m = matrix3();
        let delta = MatrixDelta::new()
            .set_column(1, vec![0.9, 0.8])
            .disable_column(2);
        let p = m.patched(&delta).unwrap();
        let d = MatrixDelta::diff(&m, &p).unwrap();
        assert_eq!(d.dirty_cols().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(d.len(), 2);
        assert!(MatrixDelta::diff(&m, &m).unwrap().is_empty());
        // Applying the recovered delta reproduces the patched matrix.
        assert_eq!(m.patched(&d).unwrap(), p);
    }

    #[test]
    fn compact_projects_out_disabled_columns() {
        let m = matrix3();
        assert!(m.compact_enabled().unwrap().is_none());
        let p = m.patched(&MatrixDelta::new().disable_column(1)).unwrap();
        let (compact, map) = p.compact_enabled().unwrap().unwrap();
        assert_eq!(compact.cols(), 2);
        assert_eq!(map, vec![0, 2]);
        assert_eq!(compact.value(1, 1), 0.6);
        assert_eq!(compact.col_labels(), &["x".to_string(), "z".to_string()]);
        // All-disabled is rejected.
        let dead = p
            .patched(&MatrixDelta::new().disable_column(0).disable_column(2))
            .unwrap();
        assert!(dead.compact_enabled().is_err());
    }

    #[test]
    fn delta_edits_replace_per_column() {
        let d = MatrixDelta::new()
            .disable_column(1)
            .set_column(1, vec![1.0, 2.0]);
        assert_eq!(d.len(), 1);
        assert!(matches!(d.edits()[0], (1, ColumnEdit::Set(_))));
    }
}

//! The BE×LC performance matrix (Fig. 7-II of the paper).

use std::fmt;

use crate::error::ClusterError;

/// A labelled rows×cols matrix of estimated throughputs: entry `(i, j)` is
/// the predicted average throughput of best-effort app `i` when placed on
/// latency-critical server `j`.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfMatrix {
    row_labels: Vec<String>,
    col_labels: Vec<String>,
    values: Vec<Vec<f64>>,
}

impl PerfMatrix {
    /// Builds a matrix from labels and row-major values.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidMatrix`] if empty, ragged, label
    /// counts mismatch, or any value is not finite and non-negative.
    pub fn new(
        row_labels: Vec<String>,
        col_labels: Vec<String>,
        values: Vec<Vec<f64>>,
    ) -> Result<Self, ClusterError> {
        if values.is_empty() || col_labels.is_empty() {
            return Err(ClusterError::InvalidMatrix("matrix is empty".into()));
        }
        if values.len() != row_labels.len() {
            return Err(ClusterError::InvalidMatrix(format!(
                "{} rows but {} row labels",
                values.len(),
                row_labels.len()
            )));
        }
        for row in &values {
            if row.len() != col_labels.len() {
                return Err(ClusterError::InvalidMatrix(format!(
                    "ragged row: {} entries, {} col labels",
                    row.len(),
                    col_labels.len()
                )));
            }
            for &v in row {
                if !v.is_finite() || v < 0.0 {
                    return Err(ClusterError::InvalidMatrix(format!(
                        "throughput {v} must be finite and non-negative"
                    )));
                }
            }
        }
        Ok(PerfMatrix {
            row_labels,
            col_labels,
            values,
        })
    }

    /// Number of best-effort apps (rows).
    pub fn rows(&self) -> usize {
        self.values.len()
    }

    /// Number of servers (columns).
    pub fn cols(&self) -> usize {
        self.col_labels.len()
    }

    /// Entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.values[row][col]
    }

    /// The raw row-major values.
    pub fn values(&self) -> &[Vec<f64>] {
        &self.values
    }

    /// Row (best-effort app) labels.
    pub fn row_labels(&self) -> &[String] {
        &self.row_labels
    }

    /// Column (server / LC app) labels.
    pub fn col_labels(&self) -> &[String] {
        &self.col_labels
    }

    /// Total value of an assignment given as `pairs[(row, col)]`.
    pub fn assignment_value(&self, pairs: &[(usize, usize)]) -> f64 {
        pairs.iter().map(|&(r, c)| self.values[r][c]).sum()
    }
}

impl fmt::Display for PerfMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>10}", "")?;
        for c in &self.col_labels {
            write!(f, " {c:>9}")?;
        }
        writeln!(f)?;
        for (r, row) in self.row_labels.iter().zip(&self.values) {
            write!(f, "{r:>10}")?;
            for v in row {
                write!(f, " {v:>9.4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn construction_and_access() {
        let m = PerfMatrix::new(
            labels(&["lstm", "graph"]),
            labels(&["sphinx", "xapian"]),
            vec![vec![0.5, 0.7], vec![0.9, 0.4]],
        )
        .unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.value(1, 0), 0.9);
        assert_eq!(m.assignment_value(&[(0, 1), (1, 0)]), 0.7 + 0.9);
    }

    #[test]
    fn validation() {
        assert!(PerfMatrix::new(labels(&[]), labels(&["a"]), vec![]).is_err());
        assert!(PerfMatrix::new(labels(&["x"]), labels(&["a", "b"]), vec![vec![1.0]]).is_err());
        assert!(PerfMatrix::new(labels(&["x"]), labels(&["a"]), vec![vec![-1.0]]).is_err());
        assert!(PerfMatrix::new(labels(&["x"]), labels(&["a"]), vec![vec![f64::NAN]]).is_err());
        assert!(PerfMatrix::new(labels(&["x", "y"]), labels(&["a"]), vec![vec![1.0]]).is_err());
    }

    #[test]
    fn display_contains_labels() {
        let m =
            PerfMatrix::new(labels(&["lstm"]), labels(&["sphinx"]), vec![vec![0.1234]]).unwrap();
        let s = m.to_string();
        assert!(s.contains("lstm") && s.contains("sphinx") && s.contains("0.1234"));
    }
}

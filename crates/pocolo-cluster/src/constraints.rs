//! Hard affinity/anti-affinity placement constraints over server classes.
//!
//! Heterogeneous fleets make some colocations inadmissible outright —
//! a BE app that needs the accelerator-like SKU's wide LLC, or one that
//! must never share a DVFS-stepped machine with a latency-critical
//! primary (Sarkar et al.: affinity-aware placement on heterogeneous
//! machines changes *which* colocations exist, not just their score).
//! [`PlacementConstraints`] expresses those rules per (BE row, server
//! class) and the placement pipeline enforces them as hard constraints:
//!
//! - the sparse path prunes forbidden edges at candidate-edge time
//!   (they never enter a row's top-k list, are never spliced back by
//!   certification, and never re-enter through a delta);
//! - the dense path masks forbidden matrix entries to zero so no solver
//!   is ever *paid* to violate a rule;
//! - after any solve, [`PlacementConstraints::verify`] turns a residual
//!   violation (possible only when the constrained instance has no
//!   admissible perfect matching) into
//!   [`ClusterError::ConstraintViolation`] instead of a silent
//!   placement.

use crate::error::ClusterError;
use crate::matrix::{ColumnEdit, MatrixDelta, PerfMatrix};

/// Hard placement rules between BE rows and server classes.
///
/// Semantics per BE row: the row may be placed on class `c` iff `c` is
/// not in the row's forbid list, and — when the row has any `require`
/// entries — `c` is one of them (require = any-of allow-list). Rows
/// without entries are unconstrained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlacementConstraints {
    forbidden: Vec<(usize, usize)>,
    required: Vec<(usize, usize)>,
}

impl PlacementConstraints {
    /// No constraints — every placement is admissible.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forbids placing BE row `row` on server class `class`
    /// (anti-affinity).
    #[must_use]
    pub fn forbid(mut self, row: usize, class: usize) -> Self {
        if !self.forbidden.contains(&(row, class)) {
            self.forbidden.push((row, class));
        }
        self
    }

    /// Restricts BE row `row` to server class `class` (affinity). A row
    /// with several `require` entries may use any of them.
    #[must_use]
    pub fn require(mut self, row: usize, class: usize) -> Self {
        if !self.required.contains(&(row, class)) {
            self.required.push((row, class));
        }
        self
    }

    /// True when no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.forbidden.is_empty() && self.required.is_empty()
    }

    /// Whether BE row `row` may be placed on server class `class`.
    pub fn allows(&self, row: usize, class: usize) -> bool {
        if self.forbidden.contains(&(row, class)) {
            return false;
        }
        let mut has_require = false;
        for &(r, c) in &self.required {
            if r == row {
                if c == class {
                    return true;
                }
                has_require = true;
            }
        }
        !has_require
    }

    /// Returns `matrix` with every inadmissible entry masked to zero
    /// (`classes[col]` gives each column's server class), so dense
    /// solvers are never paid to violate a rule. Intended for freshly
    /// built matrices; column disable state is not carried over.
    ///
    /// # Errors
    ///
    /// Rejects a class list whose length differs from the column count.
    pub fn mask(&self, matrix: &PerfMatrix, classes: &[usize]) -> Result<PerfMatrix, ClusterError> {
        if classes.len() != matrix.cols() {
            return Err(ClusterError::InvalidMatrix(format!(
                "{} column classes for {} columns",
                classes.len(),
                matrix.cols()
            )));
        }
        if self.is_empty() {
            return Ok(matrix.clone());
        }
        let values = (0..matrix.rows())
            .map(|r| {
                (0..matrix.cols())
                    .map(|c| {
                        if self.allows(r, classes[c]) {
                            matrix.value(r, c)
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        PerfMatrix::new(
            matrix.row_labels().to_vec(),
            matrix.col_labels().to_vec(),
            values,
        )
    }

    /// Re-masks the `Set` columns of a freshly estimated [`MatrixDelta`]
    /// so incremental rebuilds (cap de-rates, model refits) cannot
    /// un-mask a forbidden entry. Disables pass through unchanged.
    pub fn mask_delta(&self, delta: MatrixDelta, classes: &[usize]) -> MatrixDelta {
        if self.is_empty() {
            return delta;
        }
        let mut masked = MatrixDelta::new();
        for (col, edit) in delta.edits() {
            masked = match edit {
                ColumnEdit::Disable => masked.disable_column(*col),
                ColumnEdit::Set(values) => {
                    let class = classes[*col];
                    masked.set_column(
                        *col,
                        values
                            .iter()
                            .enumerate()
                            .map(|(r, &v)| if self.allows(r, class) { v } else { 0.0 })
                            .collect(),
                    )
                }
            };
        }
        masked
    }

    /// Checks a solved placement against the rules.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ConstraintViolation`] naming the first
    /// inadmissible `(row, class)` pair — which can only occur when the
    /// constrained instance admits no valid perfect matching, since both
    /// solve paths already avoid forbidden edges whenever possible.
    pub fn verify(&self, pairs: &[(usize, usize)], classes: &[usize]) -> Result<(), ClusterError> {
        for &(row, col) in pairs {
            let class = classes[col];
            if !self.allows(row, class) {
                return Err(ClusterError::ConstraintViolation { row, class });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> PerfMatrix {
        PerfMatrix::new(
            vec!["be0".into(), "be1".into()],
            vec!["lc0".into(), "lc1".into(), "lc2".into()],
            vec![vec![0.9, 0.8, 0.7], vec![0.6, 0.5, 0.4]],
        )
        .unwrap()
    }

    #[test]
    fn empty_constraints_allow_everything() {
        let c = PlacementConstraints::new();
        assert!(c.is_empty());
        assert!(c.allows(0, 0) && c.allows(7, 3));
        let m = matrix();
        assert_eq!(c.mask(&m, &[0, 1, 0]).unwrap(), m);
        assert!(c.verify(&[(0, 0), (1, 2)], &[0, 1, 0]).is_ok());
    }

    #[test]
    fn forbid_blocks_one_pair() {
        let c = PlacementConstraints::new().forbid(0, 1);
        assert!(!c.allows(0, 1));
        assert!(c.allows(0, 0) && c.allows(1, 1));
    }

    #[test]
    fn require_is_an_any_of_allow_list() {
        let c = PlacementConstraints::new().require(0, 1).require(0, 2);
        assert!(c.allows(0, 1) && c.allows(0, 2));
        assert!(!c.allows(0, 0), "unlisted class is out for a required row");
        assert!(c.allows(1, 0), "other rows unconstrained");
        // Forbid beats require.
        let c = c.forbid(0, 2);
        assert!(!c.allows(0, 2));
    }

    #[test]
    fn mask_zeroes_only_forbidden_entries() {
        let c = PlacementConstraints::new().forbid(0, 1);
        // Columns 0 and 2 are class 0; column 1 is class 1.
        let masked = c.mask(&matrix(), &[0, 1, 0]).unwrap();
        assert_eq!(masked.value(0, 1), 0.0);
        assert_eq!(masked.value(0, 0), 0.9);
        assert_eq!(masked.value(1, 1), 0.5, "other rows untouched");
        assert!(c.mask(&matrix(), &[0, 1]).is_err(), "shape checked");
    }

    #[test]
    fn mask_delta_re_masks_set_columns() {
        let c = PlacementConstraints::new().forbid(1, 1);
        let delta = MatrixDelta::new()
            .set_column(1, vec![0.3, 0.7])
            .disable_column(2);
        let masked = c.mask_delta(delta, &[0, 1, 0]);
        let edits = masked.edits();
        assert!(matches!(&edits[0].1, ColumnEdit::Set(v) if v == &vec![0.3, 0.0]));
        assert!(matches!(&edits[1].1, ColumnEdit::Disable));
    }

    #[test]
    fn verify_names_the_violation() {
        let c = PlacementConstraints::new().forbid(1, 0);
        let classes = [0, 1, 0];
        assert!(c.verify(&[(0, 0), (1, 1)], &classes).is_ok());
        let err = c.verify(&[(0, 1), (1, 2)], &classes).unwrap_err();
        assert_eq!(err, ClusterError::ConstraintViolation { row: 1, class: 0 });
        assert!(err.to_string().contains("forbidden server class"));
    }
}

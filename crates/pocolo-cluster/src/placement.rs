//! The cluster manager: performance matrix + assignment solver (Fig. 7,
//! stages II–III).

use pocolo_core::utility::IndirectUtility;

use crate::assign::auction::{self, AuctionConfig, AuctionSolution};
use crate::assign::sparse::SparseCandidates;
use crate::assign::{self, Assignment, Solver};
use crate::constraints::PlacementConstraints;
use crate::error::ClusterError;
use crate::matrix::{MatrixDelta, PerfMatrix};
use crate::perfmatrix::{PerfMatrixBuilder, ServerProfile};

/// The `(be, server)` pairs of `new` that are not already in `old` — the
/// migrations a replan implies. Both pair lists are sorted by row
/// ([`Assignment::new`] guarantees it), so this is a linear merge, not the
/// O(n²) `contains` scan it replaces.
pub fn migration_diff(old: &Assignment, new: &Assignment) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    for &(row, col) in &new.pairs {
        while i < old.pairs.len() && old.pairs[i].0 < row {
            i += 1;
        }
        if i < old.pairs.len() && old.pairs[i] == (row, col) {
            continue;
        }
        out.push((row, col));
    }
    out
}

/// A solved sparse placement plus everything needed to repair it
/// incrementally: the matrix it was solved on, the candidate lists, and
/// the auction's dual prices. Produced by [`ClusterManager::plan_sparse`];
/// replans mutate it in place through [`PlacementPlan::apply_delta`].
#[derive(Debug, Clone)]
pub struct PlacementPlan {
    matrix: PerfMatrix,
    cands: SparseCandidates,
    solution: AuctionSolution,
    eps: f64,
}

impl PlacementPlan {
    /// The current placement.
    pub fn assignment(&self) -> &Assignment {
        &self.solution.assignment
    }

    /// The matrix the current placement was solved on.
    pub fn matrix(&self) -> &PerfMatrix {
        &self.matrix
    }

    /// The full auction solution (prices, certification, op counters).
    pub fn solution(&self) -> &AuctionSolution {
        &self.solution
    }

    /// The auction's dual column prices — the warm-start state a later
    /// solve over the same columns can resume from (e.g. the destination
    /// region of a cross-region migration re-admitting a drained app).
    pub fn prices(&self) -> &[f64] {
        &self.solution.prices
    }

    /// Repairs the plan after a matrix change, re-bidding only the rows
    /// the delta dirties (warm-started from the previous prices). Returns
    /// the migration intents: pairs of the new placement not already in
    /// the old one.
    ///
    /// # Errors
    ///
    /// Propagates patching and solver failures; on error the plan is
    /// unchanged.
    pub fn apply_delta(
        &mut self,
        delta: &MatrixDelta,
    ) -> Result<Vec<(usize, usize)>, ClusterError> {
        let patched = self.matrix.patched(delta)?;
        let cfg = AuctionConfig::with_eps(self.eps);
        let mut cands = self.cands.clone();
        let next = auction::solve_incremental(&patched, &mut cands, &self.solution, delta, &cfg)?;
        let intents = migration_diff(&self.solution.assignment, &next.assignment);
        self.matrix = patched;
        self.cands = cands;
        self.solution = next;
        Ok(intents)
    }
}

/// Solves a row-set over fixed columns, warm-starting from the dual
/// prices of a previous solve on the same columns — the cross-region
/// migration path: when an application drains out of one region and is
/// re-admitted into another, the destination's incremental auction
/// resumes from its standing prices instead of re-converging from zero.
///
/// `prices` is the previous solve's column-price vector; pass `None`
/// (or a vector of the wrong length, e.g. after the region gained
/// slots) to fall back to a cold ε-scaled solve.
///
/// # Errors
///
/// Propagates solver failures ([`ClusterError`]); infeasible inputs
/// (more rows than columns) surface as solver errors, not panics.
pub fn warm_assign(
    matrix: &PerfMatrix,
    prices: Option<&[f64]>,
    eps: f64,
) -> Result<AuctionSolution, ClusterError> {
    let cfg = AuctionConfig::with_eps(eps);
    let mut cands = SparseCandidates::build(matrix, SparseCandidates::default_k(matrix.cols()));
    match prices {
        Some(p) if p.len() == matrix.cols() => auction::solve_warm(matrix, &mut cands, p, &cfg),
        _ => auction::solve_with_candidates(matrix, &mut cands, &cfg),
    }
}

/// Cluster-level placement engine.
///
/// Owns the fitted models of every best-effort candidate and every
/// latency-critical server; produces the performance matrix and solves the
/// placement.
#[derive(Debug, Clone)]
pub struct ClusterManager {
    be_apps: Vec<(String, IndirectUtility)>,
    servers: Vec<ServerProfile>,
    builder: PerfMatrixBuilder,
    /// Expansion-path cache keys per server column: columns sharing a key
    /// share one path and one estimate per BE row. `None` = one key per
    /// column (the legacy homogeneous path).
    profile_keys: Option<Vec<usize>>,
    /// Server class per column, checked against `constraints`. `None` =
    /// unconstrained single-class fleet.
    classes: Option<Vec<usize>>,
    constraints: PlacementConstraints,
}

impl ClusterManager {
    /// Creates a manager over fitted BE apps and LC server profiles, using
    /// the paper's default 10–90 % load range for estimation.
    pub fn new(be_apps: Vec<(String, IndirectUtility)>, servers: Vec<ServerProfile>) -> Self {
        ClusterManager {
            be_apps,
            servers,
            builder: PerfMatrixBuilder::new(),
            profile_keys: None,
            classes: None,
            constraints: PlacementConstraints::new(),
        }
    }

    /// Overrides the load levels used for matrix estimation.
    #[must_use]
    pub fn with_load_levels(mut self, levels: Vec<f64>) -> Self {
        self.builder = self.builder.with_load_levels(levels);
        self
    }

    /// Sets expansion-path cache keys (one per server column): columns
    /// sharing a key are interchangeable profiles — the same (SKU,
    /// primary-app) class — and share one expansion path and one estimate
    /// per BE row ([`PerfMatrixBuilder::build_keyed`]).
    ///
    /// # Panics
    ///
    /// Panics if the key list doesn't cover every server.
    #[must_use]
    pub fn with_profile_keys(mut self, keys: Vec<usize>) -> Self {
        assert_eq!(keys.len(), self.servers.len(), "one cache key per server");
        self.profile_keys = Some(keys);
        self
    }

    /// Sets hard affinity/anti-affinity constraints over server classes:
    /// `classes` labels each server column with its class index, and
    /// `constraints` rules (BE row, class) pairs in or out. Both solve
    /// paths enforce the rules — pruned at candidate-edge time on the
    /// sparse path, masked to zero on the dense path — and every solved
    /// placement is verified, so a violation surfaces as
    /// [`ClusterError::ConstraintViolation`] rather than a silent
    /// placement.
    ///
    /// # Panics
    ///
    /// Panics if the class list doesn't cover every server.
    #[must_use]
    pub fn with_constraints(
        mut self,
        classes: Vec<usize>,
        constraints: PlacementConstraints,
    ) -> Self {
        assert_eq!(
            classes.len(),
            self.servers.len(),
            "one server class per server"
        );
        self.classes = Some(classes);
        self.constraints = constraints;
        self
    }

    /// The active placement constraints (empty when unconstrained).
    pub fn constraints(&self) -> &PlacementConstraints {
        &self.constraints
    }

    /// Builds the matrix for `servers` through the keyed cache and
    /// constraint mask when configured; reduces to the plain builder on
    /// the legacy path.
    fn matrix_for(
        &self,
        servers: &[ServerProfile],
        keys: Option<&[usize]>,
    ) -> Result<PerfMatrix, ClusterError> {
        let matrix = match keys {
            Some(keys) => self.builder.build_keyed(&self.be_apps, servers, keys)?,
            None => self.builder.build(&self.be_apps, servers)?,
        };
        match &self.classes {
            Some(classes) if !self.constraints.is_empty() => {
                self.constraints.mask(&matrix, classes)
            }
            _ => Ok(matrix),
        }
    }

    /// Verifies a solved placement against the constraints (no-op when
    /// unconstrained).
    fn verify_constraints(&self, pairs: &[(usize, usize)]) -> Result<(), ClusterError> {
        match &self.classes {
            Some(classes) if !self.constraints.is_empty() => {
                self.constraints.verify(pairs, classes)
            }
            _ => Ok(()),
        }
    }

    /// The best-effort candidates (label, fitted utility).
    pub fn be_apps(&self) -> &[(String, IndirectUtility)] {
        &self.be_apps
    }

    /// The LC server profiles.
    pub fn servers(&self) -> &[ServerProfile] {
        &self.servers
    }

    /// Builds the BE×LC performance matrix.
    ///
    /// # Errors
    ///
    /// Propagates estimation failures.
    pub fn performance_matrix(&self) -> Result<PerfMatrix, ClusterError> {
        self.matrix_for(&self.servers, self.profile_keys.as_deref())
    }

    /// Builds the matrix and solves the placement with `solver`.
    ///
    /// # Errors
    ///
    /// Propagates matrix and solver failures; returns
    /// [`ClusterError::ConstraintViolation`] when the constrained
    /// instance has no admissible perfect matching.
    pub fn place(&self, solver: Solver) -> Result<Assignment, ClusterError> {
        let matrix = self.performance_matrix()?;
        let assignment = assign::solve(&matrix, solver)?;
        self.verify_constraints(&assignment.pairs)?;
        Ok(assignment)
    }

    /// Re-solves the placement under a shrunk power budget (a brownout or
    /// infrastructure de-rating): every server's cap is scaled by
    /// `cap_factor`, the matrix is rebuilt, and a fresh assignment is
    /// solved — but the `incumbent` placement is kept unless the new one
    /// beats it by more than `hysteresis` (relative, on the *shrunk*
    /// matrix). The hysteresis is what keeps the cluster from thrashing
    /// migrations over marginal gains while the budget flaps.
    ///
    /// Returns the chosen assignment (its `total` is always measured on
    /// the shrunk matrix, for either choice).
    ///
    /// # Errors
    ///
    /// Propagates matrix and solver failures.
    ///
    /// # Panics
    ///
    /// Panics if `cap_factor` is outside `(0, 1]` or `hysteresis` is
    /// negative.
    pub fn replan_under_budget(
        &self,
        cap_factor: f64,
        incumbent: &Assignment,
        hysteresis: f64,
        solver: Solver,
    ) -> Result<Assignment, ClusterError> {
        assert!(
            cap_factor > 0.0 && cap_factor <= 1.0,
            "cap factor must be in (0, 1], got {cap_factor}"
        );
        assert!(
            hysteresis >= 0.0 && hysteresis.is_finite(),
            "hysteresis must be non-negative, got {hysteresis}"
        );
        let shrunk: Vec<ServerProfile> = self
            .servers
            .iter()
            .map(|s| ServerProfile {
                label: s.label.clone(),
                utility: s.utility.clone(),
                power_cap: s.power_cap * cap_factor,
                peak_load: s.peak_load,
            })
            .collect();
        // A uniform factor keeps same-key profiles interchangeable, so
        // the keyed cache stays valid.
        let matrix = self.matrix_for(&shrunk, self.profile_keys.as_deref())?;
        let fresh = assign::solve(&matrix, solver)?;
        let incumbent_total = matrix.assignment_value(&incumbent.pairs);
        if fresh.total > incumbent_total * (1.0 + hysteresis) {
            self.verify_constraints(&fresh.pairs)?;
            Ok(fresh)
        } else {
            Ok(Assignment::new(incumbent.pairs.clone(), incumbent_total))
        }
    }

    /// Class-aware counterpart of [`ClusterManager::replan_under_budget`]
    /// for heterogeneous fleets: each server's cap is scaled by its *own*
    /// factor — the brownout request pushed through each SKU's power
    /// curve, so a step-function class that must shed a whole power plane
    /// replans at the factor it actually holds, not the one the
    /// infrastructure asked for. The same hysteresis rule applies.
    ///
    /// # Errors
    ///
    /// Propagates matrix and solver failures.
    ///
    /// # Panics
    ///
    /// Panics if `cap_factors` doesn't cover every server, any factor is
    /// outside `(0, 1]`, or `hysteresis` is negative.
    pub fn replan_under_budget_classed(
        &self,
        cap_factors: &[f64],
        incumbent: &Assignment,
        hysteresis: f64,
        solver: Solver,
    ) -> Result<Assignment, ClusterError> {
        assert_eq!(
            cap_factors.len(),
            self.servers.len(),
            "one cap factor per server"
        );
        for &f in cap_factors {
            assert!(f > 0.0 && f <= 1.0, "cap factor must be in (0, 1], got {f}");
        }
        assert!(
            hysteresis >= 0.0 && hysteresis.is_finite(),
            "hysteresis must be non-negative, got {hysteresis}"
        );
        let shrunk: Vec<ServerProfile> = self
            .servers
            .iter()
            .zip(cap_factors)
            .map(|(s, &f)| ServerProfile {
                label: s.label.clone(),
                utility: s.utility.clone(),
                power_cap: s.power_cap * f,
                peak_load: s.peak_load,
            })
            .collect();
        // Per-server factors can split a cache class: two columns that
        // shared a key stay interchangeable only if they also share a
        // factor, so re-key on (base key, factor bits).
        let mut seen: Vec<((usize, u64), usize)> = Vec::new();
        let keys: Vec<usize> = cap_factors
            .iter()
            .enumerate()
            .map(|(j, f)| {
                let base = self.profile_keys.as_ref().map_or(j, |k| k[j]);
                let pair = (base, f.to_bits());
                match seen.iter().find(|(p, _)| *p == pair) {
                    Some(&(_, key)) => key,
                    None => {
                        let key = seen.len();
                        seen.push((pair, key));
                        key
                    }
                }
            })
            .collect();
        let matrix = self.matrix_for(&shrunk, Some(&keys))?;
        let fresh = assign::solve(&matrix, solver)?;
        let incumbent_total = matrix.assignment_value(&incumbent.pairs);
        if fresh.total > incumbent_total * (1.0 + hysteresis) {
            self.verify_constraints(&fresh.pairs)?;
            Ok(fresh)
        } else {
            Ok(Assignment::new(incumbent.pairs.clone(), incumbent_total))
        }
    }

    /// The migration intents of a class-aware budget replan: the pairs of
    /// [`ClusterManager::replan_under_budget_classed`]'s chosen assignment
    /// not already in the `incumbent`. Empty when hysteresis keeps the
    /// incumbent.
    ///
    /// # Errors
    ///
    /// Propagates matrix and solver failures.
    ///
    /// # Panics
    ///
    /// As [`ClusterManager::replan_under_budget_classed`].
    pub fn migration_intents_classed(
        &self,
        cap_factors: &[f64],
        incumbent: &Assignment,
        hysteresis: f64,
        solver: Solver,
    ) -> Result<Vec<(usize, usize)>, ClusterError> {
        let replan =
            self.replan_under_budget_classed(cap_factors, incumbent, hysteresis, solver)?;
        Ok(migration_diff(incumbent, &replan))
    }

    /// The migration intents a budget replan implies: the `(be, server)`
    /// pairs of [`ClusterManager::replan_under_budget`]'s chosen
    /// assignment that are *not* already in the `incumbent`, in the
    /// replan's pair order. Empty when hysteresis keeps the incumbent —
    /// the brownout proceeds with no migrations.
    ///
    /// # Errors
    ///
    /// Propagates matrix and solver failures.
    ///
    /// # Panics
    ///
    /// Panics if `cap_factor` is outside `(0, 1]` or `hysteresis` is
    /// negative.
    pub fn migration_intents(
        &self,
        cap_factor: f64,
        incumbent: &Assignment,
        hysteresis: f64,
        solver: Solver,
    ) -> Result<Vec<(usize, usize)>, ClusterError> {
        let replan = self.replan_under_budget(cap_factor, incumbent, hysteresis, solver)?;
        Ok(migration_diff(incumbent, &replan))
    }

    /// Solves the placement through the sparse auction path and returns a
    /// [`PlacementPlan`] that later replans can repair incrementally
    /// instead of re-solving from scratch.
    ///
    /// # Errors
    ///
    /// Propagates matrix and solver failures.
    pub fn plan_sparse(&self, eps: f64) -> Result<PlacementPlan, ClusterError> {
        let matrix = self.performance_matrix()?;
        let k = SparseCandidates::default_k(matrix.cols());
        let mut cands = match &self.classes {
            Some(classes) if !self.constraints.is_empty() => {
                SparseCandidates::build_constrained(&matrix, k, classes, &self.constraints)
            }
            _ => SparseCandidates::build(&matrix, k),
        };
        let cfg = AuctionConfig::with_eps(eps);
        let solution = auction::solve_with_candidates(&matrix, &mut cands, &cfg)?;
        self.verify_constraints(&solution.assignment.pairs)?;
        Ok(PlacementPlan {
            matrix,
            cands,
            solution,
            eps,
        })
    }

    /// Repairs `plan` after per-server faults: the given columns leave the
    /// fleet, their BE tenants are re-bid onto the survivors, every other
    /// pair stays put unless the eviction cascade moves it. Returns the
    /// migration intents.
    ///
    /// # Errors
    ///
    /// Propagates patching and solver failures ([`ClusterError::TooManyApps`]
    /// when the survivors cannot host every BE app).
    pub fn replan_after_faults(
        &self,
        plan: &mut PlacementPlan,
        faulted_cols: &[usize],
    ) -> Result<Vec<(usize, usize)>, ClusterError> {
        let mut delta = MatrixDelta::new();
        for &col in faulted_cols {
            delta = delta.disable_column(col);
        }
        plan.apply_delta(&delta)
    }

    /// Incremental counterpart of [`ClusterManager::replan_under_budget`]:
    /// re-estimates only the columns the cap change actually dirties
    /// (via [`PerfMatrixBuilder::rebuild_columns`]) and repairs the plan's
    /// assignment from its previous prices. The same hysteresis rule
    /// applies: if the repaired placement does not beat the incumbent by
    /// more than `hysteresis` on the patched matrix, the incumbent pairs
    /// are kept and no migrations are emitted.
    ///
    /// # Errors
    ///
    /// Propagates estimation and solver failures.
    ///
    /// # Panics
    ///
    /// Panics if `cap_factor` is outside `(0, 1]` or `hysteresis` is
    /// negative.
    pub fn replan_under_budget_incremental(
        &self,
        plan: &mut PlacementPlan,
        cap_factor: f64,
        hysteresis: f64,
    ) -> Result<Vec<(usize, usize)>, ClusterError> {
        assert!(
            cap_factor > 0.0 && cap_factor <= 1.0,
            "cap factor must be in (0, 1], got {cap_factor}"
        );
        assert!(
            hysteresis >= 0.0 && hysteresis.is_finite(),
            "hysteresis must be non-negative, got {hysteresis}"
        );
        let shrunk: Vec<ServerProfile> = self
            .servers
            .iter()
            .map(|s| ServerProfile {
                label: s.label.clone(),
                utility: s.utility.clone(),
                power_cap: s.power_cap * cap_factor,
                peak_load: s.peak_load,
            })
            .collect();
        let all_cols: Vec<usize> = (0..plan.matrix.cols()).collect();
        let mut delta =
            self.builder
                .rebuild_columns(&self.be_apps, &shrunk, &all_cols, &plan.matrix)?;
        if let Some(classes) = &self.classes {
            // Column rebuilds re-estimate raw values; keep forbidden
            // entries masked so a replan can't un-hide them.
            delta = self.constraints.mask_delta(delta, classes);
        }
        let incumbent = plan.solution.assignment.clone();
        let intents = plan.apply_delta(&delta)?;
        let incumbent_total = plan.matrix.assignment_value(&incumbent.pairs);
        if plan.solution.assignment.total > incumbent_total * (1.0 + hysteresis) {
            Ok(intents)
        } else {
            // Hysteresis keeps the incumbent; the repaired prices stay as
            // warm-start state for the next replan.
            plan.solution.assignment = Assignment::new(incumbent.pairs, incumbent_total);
            Ok(Vec::new())
        }
    }

    /// Adopts a freshly refitted utility model for server `col` and
    /// repairs the plan around it. This is the online-refit hook used by
    /// `pocolo-traffic`: when an [`OnlineFitter`] drifts far enough from
    /// the model a column was planned with, the stale column — and only
    /// that column — is re-estimated under the current power budget
    /// (`cap_factor` of each server's provisioned cap, `1.0` outside a
    /// brownout) and the assignment is repaired from its previous prices.
    ///
    /// Returns the migration intents the repair produced (often empty:
    /// a refit that confirms the incumbent moves nothing).
    ///
    /// [`OnlineFitter`]: pocolo_core::fit::OnlineFitter
    ///
    /// # Errors
    ///
    /// Propagates estimation and solver failures.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range or `cap_factor` is outside
    /// `(0, 1]`.
    pub fn replan_after_refit(
        &mut self,
        plan: &mut PlacementPlan,
        col: usize,
        utility: IndirectUtility,
        cap_factor: f64,
    ) -> Result<Vec<(usize, usize)>, ClusterError> {
        assert!(
            col < self.servers.len(),
            "column {col} out of range for {} servers",
            self.servers.len()
        );
        assert!(
            cap_factor > 0.0 && cap_factor <= 1.0,
            "cap factor must be in (0, 1], got {cap_factor}"
        );
        self.servers[col].utility = utility;
        let scaled: Vec<ServerProfile> = self
            .servers
            .iter()
            .map(|s| ServerProfile {
                label: s.label.clone(),
                utility: s.utility.clone(),
                power_cap: s.power_cap * cap_factor,
                peak_load: s.peak_load,
            })
            .collect();
        let mut delta =
            self.builder
                .rebuild_columns(&self.be_apps, &scaled, &[col], &plan.matrix)?;
        if let Some(classes) = &self.classes {
            delta = self.constraints.mask_delta(delta, classes);
        }
        plan.apply_delta(&delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_core::fit::{fit_indirect_utility, FitOptions};
    use pocolo_simserver::power::PowerDrawModel;
    use pocolo_simserver::MachineSpec;
    use pocolo_workloads::profiler::{profile_be, profile_lc, ProfilerConfig};
    use pocolo_workloads::{BeApp, BeModel, LcApp, LcModel};

    fn manager() -> ClusterManager {
        let machine = MachineSpec::xeon_e5_2650();
        let power = PowerDrawModel::new(machine.clone());
        let space = machine.resource_space();
        let cfg = ProfilerConfig::default();
        let servers = LcApp::ALL
            .iter()
            .map(|&app| {
                let truth = LcModel::for_app(app, machine.clone());
                let samples = profile_lc(&truth, &power, &space, &cfg);
                let fit = fit_indirect_utility(&space, &samples, &FitOptions::default()).unwrap();
                ServerProfile {
                    label: app.name().to_string(),
                    utility: fit.utility,
                    power_cap: truth.provisioned_power(),
                    peak_load: truth.peak_load_rps(),
                }
            })
            .collect();
        let bes = BeApp::ALL
            .iter()
            .map(|&app| {
                let truth = BeModel::for_app(app, machine.clone());
                let samples = profile_be(&truth, &power, &space, &cfg);
                let fit = fit_indirect_utility(&space, &samples, &FitOptions::default()).unwrap();
                (app.name().to_string(), fit.utility)
            })
            .collect();
        ClusterManager::new(bes, servers)
    }

    #[test]
    fn pocolo_reproduces_paper_pairings() {
        // §V-E: "Pocolo chooses to assign Graph to sphinx server ...
        // LSTM is matched to img-dnn, whereas RNN/Pbzip are matched to
        // Xapian or TPCC".
        let mgr = manager();
        let assignment = mgr.place(Solver::Hungarian).unwrap();
        let matrix = mgr.performance_matrix().unwrap();
        let col_of = |name: &str| matrix.col_labels().iter().position(|l| l == name).unwrap();
        let row_of = |name: &str| matrix.row_labels().iter().position(|l| l == name).unwrap();
        assert_eq!(
            assignment.server_for(row_of("graph")),
            Some(col_of("sphinx")),
            "graph should pair with sphinx\n{matrix}"
        );
        assert_eq!(
            assignment.server_for(row_of("lstm")),
            Some(col_of("img-dnn")),
            "lstm should pair with img-dnn\n{matrix}"
        );
        // rnn and pbzip land on xapian/tpcc in either order.
        let rnn = assignment.server_for(row_of("rnn")).unwrap();
        let pbzip = assignment.server_for(row_of("pbzip")).unwrap();
        let xt = [col_of("xapian"), col_of("tpcc")];
        assert!(xt.contains(&rnn) && xt.contains(&pbzip) && rnn != pbzip);
    }

    #[test]
    fn lp_and_hungarian_agree() {
        let mgr = manager();
        let h = mgr.place(Solver::Hungarian).unwrap();
        let l = mgr.place(Solver::Lp).unwrap();
        let e = mgr.place(Solver::Exhaustive).unwrap();
        assert!((h.total - e.total).abs() < 1e-9);
        assert!((l.total - e.total).abs() < 1e-9);
    }

    #[test]
    fn optimal_beats_random_on_average() {
        let mgr = manager();
        let opt = mgr.place(Solver::Hungarian).unwrap();
        let mut rand_total = 0.0;
        let n = 24;
        for seed in 0..n {
            rand_total += mgr.place(Solver::Random { seed }).unwrap().total;
        }
        let avg = rand_total / n as f64;
        assert!(
            opt.total > avg * 1.02,
            "optimal {} should beat random average {avg}",
            opt.total
        );
    }

    #[test]
    fn replan_full_budget_matches_place() {
        let mgr = manager();
        let incumbent = mgr.place(Solver::Hungarian).unwrap();
        let replan = mgr
            .replan_under_budget(1.0, &incumbent, 0.0, Solver::Hungarian)
            .unwrap();
        assert_eq!(replan.pairs, incumbent.pairs);
        assert!((replan.total - incumbent.total).abs() < 1e-9);
    }

    #[test]
    fn replan_high_hysteresis_keeps_incumbent() {
        // Start from a deliberately bad incumbent; with huge hysteresis
        // even a much better fresh solve must not displace it.
        let mgr = manager();
        let bad = mgr.place(Solver::Random { seed: 3 }).unwrap();
        let kept = mgr
            .replan_under_budget(0.7, &bad, 1e6, Solver::Hungarian)
            .unwrap();
        assert_eq!(kept.pairs, bad.pairs);
        // With zero hysteresis the fresh optimum wins (or ties).
        let fresh = mgr
            .replan_under_budget(0.7, &bad, 0.0, Solver::Hungarian)
            .unwrap();
        assert!(fresh.total >= kept.total);
    }

    #[test]
    fn replan_totals_are_on_the_shrunk_matrix() {
        // Shrinking every cap weakly shrinks matrix entries, so the
        // replan's total must not exceed the full-budget optimum.
        let mgr = manager();
        let incumbent = mgr.place(Solver::Hungarian).unwrap();
        let shrunk = mgr
            .replan_under_budget(0.6, &incumbent, 0.05, Solver::Hungarian)
            .unwrap();
        assert!(
            shrunk.total <= incumbent.total + 1e-9,
            "shrunk-budget total {} exceeds full-budget {}",
            shrunk.total,
            incumbent.total
        );
    }

    #[test]
    fn migration_intents_are_the_non_incumbent_replan_pairs() {
        let mgr = manager();
        let incumbent = mgr.place(Solver::Hungarian).unwrap();
        // Keeping the incumbent (full budget, or huge hysteresis) means
        // no migrations.
        let none = mgr
            .migration_intents(1.0, &incumbent, 0.0, Solver::Hungarian)
            .unwrap();
        assert!(none.is_empty());
        let kept = mgr
            .migration_intents(0.6, &incumbent, 1e6, Solver::Hungarian)
            .unwrap();
        assert!(kept.is_empty());
        // From a bad incumbent at zero hysteresis, the intents are
        // exactly the fresh pairs not already placed.
        let bad = mgr.place(Solver::Random { seed: 3 }).unwrap();
        let replan = mgr
            .replan_under_budget(0.6, &bad, 0.0, Solver::Hungarian)
            .unwrap();
        let intents = mgr
            .migration_intents(0.6, &bad, 0.0, Solver::Hungarian)
            .unwrap();
        let expected: Vec<_> = replan
            .pairs
            .iter()
            .filter(|p| !bad.pairs.contains(p))
            .copied()
            .collect();
        assert_eq!(intents, expected);
        for pair in &intents {
            assert!(!bad.pairs.contains(pair));
        }
    }

    #[test]
    fn migration_diff_matches_contains_filter() {
        let old = Assignment::new(vec![(0, 3), (1, 1), (2, 0), (4, 2)], 1.0);
        let new = Assignment::new(vec![(0, 3), (1, 2), (3, 1), (4, 0)], 1.0);
        let expected: Vec<_> = new
            .pairs
            .iter()
            .filter(|p| !old.pairs.contains(p))
            .copied()
            .collect();
        assert_eq!(migration_diff(&old, &new), expected);
        assert!(migration_diff(&old, &old).is_empty());
    }

    #[test]
    fn sparse_plan_matches_exact_placement() {
        let mgr = manager();
        let exact = mgr.place(Solver::Hungarian).unwrap();
        let plan = mgr.plan_sparse(1e-3).unwrap();
        assert!(plan.solution().certified);
        assert!(
            plan.assignment().total >= exact.total - 1e-3 * 4.0 - 1e-9,
            "sparse {} vs exact {}",
            plan.assignment().total,
            exact.total
        );
    }

    #[test]
    fn fault_replan_evicts_only_whats_needed() {
        let mgr = manager();
        let plan = mgr.plan_sparse(1e-3).unwrap();
        let faulted = plan.assignment().server_for(0).unwrap();
        // 4 BE apps on 3 surviving servers is infeasible — and must say so.
        let err = mgr.replan_after_faults(&mut plan.clone(), &[faulted]);
        assert!(matches!(err, Err(ClusterError::TooManyApps { .. })));
        // Drop a BE row first, then the fault is repairable.
        let mut small = ClusterManager::new(mgr.be_apps()[..3].to_vec(), mgr.servers().to_vec());
        small.builder = mgr.builder.clone();
        let mut plan3 = small.plan_sparse(1e-3).unwrap();
        let victim_col = plan3.assignment().server_for(0).unwrap();
        let intents = small
            .replan_after_faults(&mut plan3, &[victim_col])
            .unwrap();
        assert!(plan3.matrix().is_col_disabled(victim_col));
        assert!(plan3
            .assignment()
            .pairs
            .iter()
            .all(|&(_, c)| c != victim_col));
        // Row 0 had to move, so it appears in the intents.
        assert!(intents.iter().any(|&(r, _)| r == 0), "intents: {intents:?}");
        // The repair touched only the dirtied rows.
        assert!(plan3.solution().stats.dirty_rows <= 3);
    }

    #[test]
    fn incremental_budget_replan_agrees_with_dense_path() {
        let mgr = manager();
        let mut plan = mgr.plan_sparse(1e-3).unwrap();
        let incumbent = plan.assignment().clone();
        // Full budget: nothing dirties, nothing migrates.
        let none = mgr
            .replan_under_budget_incremental(&mut plan, 1.0, 0.0)
            .unwrap();
        assert!(none.is_empty());
        assert_eq!(plan.assignment().pairs, incumbent.pairs);
        // Shrunk budget, zero hysteresis: totals match the dense replan
        // within the auction tolerance.
        let dense = mgr
            .replan_under_budget(0.6, &incumbent, 0.0, Solver::Hungarian)
            .unwrap();
        let intents = mgr
            .replan_under_budget_incremental(&mut plan, 0.6, 0.0)
            .unwrap();
        assert!(
            plan.assignment().total >= dense.total - 2.0 * 1e-3 * 4.0 - 1e-9,
            "incremental {} vs dense {}",
            plan.assignment().total,
            dense.total
        );
        assert_eq!(
            intents,
            migration_diff(&incumbent, plan.assignment()),
            "intents are the pair diff"
        );
        // Huge hysteresis keeps the (shrunk-matrix) incumbent: no intents.
        let mut plan2 = mgr.plan_sparse(1e-3).unwrap();
        let kept_pairs = plan2.assignment().pairs.clone();
        let kept = mgr
            .replan_under_budget_incremental(&mut plan2, 0.6, 1e6)
            .unwrap();
        assert!(kept.is_empty());
        assert_eq!(plan2.assignment().pairs, kept_pairs);
    }

    #[test]
    fn refit_replan_swaps_one_column_and_repairs() {
        let mut mgr = manager();
        let mut plan = mgr.plan_sparse(1e-3).unwrap();
        let incumbent = plan.assignment().clone();
        // Re-adopting the same model changes no estimates, so the repair
        // must keep the incumbent and move nothing.
        let same = mgr.servers()[1].utility.clone();
        let none = mgr.replan_after_refit(&mut plan, 1, same, 1.0).unwrap();
        assert!(none.is_empty(), "unchanged model migrated: {none:?}");
        assert_eq!(plan.assignment().pairs, incumbent.pairs);
        // A genuinely different model (another server's fit) dirties only
        // that column; intents, if any, are the pair diff.
        let other = mgr.servers()[2].utility.clone();
        let intents = mgr.replan_after_refit(&mut plan, 1, other, 0.7).unwrap();
        assert_eq!(intents, migration_diff(&incumbent, plan.assignment()));
        assert!(plan.solution().stats.dirty_rows <= mgr.be_apps().len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn refit_replan_rejects_bad_column() {
        let mut mgr = manager();
        let mut plan = mgr.plan_sparse(1e-3).unwrap();
        let u = mgr.servers()[0].utility.clone();
        let _ = mgr.replan_after_refit(&mut plan, 99, u, 1.0);
    }

    #[test]
    #[should_panic(expected = "cap factor must be in (0, 1]")]
    fn replan_rejects_bad_factor() {
        let mgr = manager();
        let incumbent = mgr.place(Solver::Hungarian).unwrap();
        let _ = mgr.replan_under_budget(0.0, &incumbent, 0.0, Solver::Hungarian);
    }

    #[test]
    fn profile_keys_reproduce_the_unkeyed_matrix() {
        // Distinct keys (the homogeneous degenerate case) must be
        // bit-identical to the legacy build.
        let mgr = manager();
        let legacy = mgr.performance_matrix().unwrap();
        let n = mgr.servers().len();
        let keyed_mgr = mgr.clone().with_profile_keys((0..n).collect());
        let keyed = keyed_mgr.performance_matrix().unwrap();
        assert_eq!(keyed, legacy);
        let a = mgr.place(Solver::Hungarian).unwrap();
        let b = keyed_mgr.place(Solver::Hungarian).unwrap();
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.total.to_bits(), b.total.to_bits());
    }

    #[test]
    fn constraints_steer_the_placement() {
        let mgr = manager();
        let free = mgr.place(Solver::Hungarian).unwrap();
        // Forbid row 0's chosen server's class: columns 0/1 are class 0,
        // columns 2/3 are class 1.
        let classes = vec![0, 0, 1, 1];
        let chosen = free.server_for(0).unwrap();
        let banned_class = classes[chosen];
        let constrained = mgr.clone().with_constraints(
            classes.clone(),
            PlacementConstraints::new().forbid(0, banned_class),
        );
        let placed = constrained.place(Solver::Hungarian).unwrap();
        let new_col = placed.server_for(0).unwrap();
        assert_ne!(classes[new_col], banned_class, "row 0 moved off the class");
        // The same rule holds on the sparse path.
        let plan = constrained.plan_sparse(1e-3).unwrap();
        let sparse_col = plan.assignment().server_for(0).unwrap();
        assert_ne!(classes[sparse_col], banned_class);
        // Constraint-respecting placements can only lose utility.
        assert!(placed.total <= free.total + 1e-9);
        // An affinity (require) form works too.
        let required = mgr
            .clone()
            .with_constraints(classes.clone(), PlacementConstraints::new().require(1, 0));
        let r = required.place(Solver::Hungarian).unwrap();
        assert_eq!(classes[r.server_for(1).unwrap()], 0);
    }

    #[test]
    fn infeasible_constraints_error_not_silently_place() {
        let mgr = manager();
        // Every class is forbidden for row 2 — there is no admissible
        // placement, and the solver must say so.
        let constrained = mgr.with_constraints(
            vec![0, 0, 1, 1],
            PlacementConstraints::new().forbid(2, 0).forbid(2, 1),
        );
        let err = constrained.place(Solver::Hungarian).unwrap_err();
        assert!(
            matches!(err, ClusterError::ConstraintViolation { row: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn classed_replan_tracks_per_server_factors() {
        let mgr = manager();
        let incumbent = mgr.place(Solver::Hungarian).unwrap();
        // All factors 1.0 == no change, keeps the incumbent.
        let same = mgr
            .replan_under_budget_classed(&[1.0; 4], &incumbent, 0.0, Solver::Hungarian)
            .unwrap();
        assert_eq!(same.pairs, incumbent.pairs);
        // Uniform factors agree with the scalar path bit-for-bit.
        let scalar = mgr
            .replan_under_budget(0.7, &incumbent, 0.0, Solver::Hungarian)
            .unwrap();
        let vectored = mgr
            .replan_under_budget_classed(&[0.7; 4], &incumbent, 0.0, Solver::Hungarian)
            .unwrap();
        assert_eq!(scalar.pairs, vectored.pairs);
        assert_eq!(scalar.total.to_bits(), vectored.total.to_bits());
        // Non-uniform factors are a genuinely different instance: the
        // deep-derated server's column shrinks more than the others'.
        let uneven = mgr
            .replan_under_budget_classed(
                &[0.95, 0.5, 0.95, 0.95],
                &incumbent,
                0.0,
                Solver::Hungarian,
            )
            .unwrap();
        assert!(uneven.total <= incumbent.total + 1e-9);
        let intents = mgr
            .migration_intents_classed(&[0.95, 0.5, 0.95, 0.95], &incumbent, 0.0, Solver::Hungarian)
            .unwrap();
        assert_eq!(intents, migration_diff(&incumbent, &uneven));
    }

    #[test]
    #[should_panic(expected = "one cap factor per server")]
    fn classed_replan_rejects_short_factor_list() {
        let mgr = manager();
        let incumbent = mgr.place(Solver::Hungarian).unwrap();
        let _ = mgr.replan_under_budget_classed(&[0.9], &incumbent, 0.0, Solver::Hungarian);
    }

    #[test]
    fn custom_load_levels() {
        let mgr = manager().with_load_levels(vec![0.5]);
        let m = mgr.performance_matrix().unwrap();
        assert_eq!(m.rows(), 4);
        assert_eq!(mgr.be_apps().len(), 4);
        assert_eq!(mgr.servers().len(), 4);
    }

    #[test]
    fn warm_assign_resumes_from_prior_prices() {
        // A region with 6 slots and 4 resident apps; one app drains out
        // and a migrant arrives. The re-admission solve warm-starts from
        // the standing prices and must still be optimal within ε·rows.
        let values = |rows: &[usize]| -> Vec<Vec<f64>> {
            rows.iter()
                .map(|&r| {
                    (0..6)
                        .map(|c| 1.0 + ((r * 7 + c * 3) % 11) as f64 / 11.0)
                        .collect()
                })
                .collect()
        };
        let mk = |rows: &[usize]| {
            PerfMatrix::new(
                rows.iter().map(|r| format!("app{r}")).collect(),
                (0..6).map(|c| format!("slot{c}")).collect(),
                values(rows),
            )
            .unwrap()
        };
        let eps = 1e-3;
        let before = mk(&[0, 1, 2, 3]);
        let cold = warm_assign(&before, None, eps).unwrap();
        assert!(cold.certified);

        let after = mk(&[0, 1, 3, 9]); // app2 drained, app9 arrived
        let warm = warm_assign(&after, Some(&cold.prices), eps).unwrap();
        assert!(warm.certified);
        let exact = assign::solve(&after, Solver::Hungarian).unwrap();
        assert!(exact.total - warm.assignment.total <= eps * 4.0 + 1e-9);

        // A stale price vector of the wrong length falls back to cold.
        let fallback = warm_assign(&after, Some(&[0.0; 3]), eps).unwrap();
        assert!(fallback.certified);
    }
}

//! The cluster manager: performance matrix + assignment solver (Fig. 7,
//! stages II–III).

use pocolo_core::utility::IndirectUtility;

use crate::assign::{self, Assignment, Solver};
use crate::error::ClusterError;
use crate::matrix::PerfMatrix;
use crate::perfmatrix::{PerfMatrixBuilder, ServerProfile};

/// Cluster-level placement engine.
///
/// Owns the fitted models of every best-effort candidate and every
/// latency-critical server; produces the performance matrix and solves the
/// placement.
#[derive(Debug, Clone)]
pub struct ClusterManager {
    be_apps: Vec<(String, IndirectUtility)>,
    servers: Vec<ServerProfile>,
    builder: PerfMatrixBuilder,
}

impl ClusterManager {
    /// Creates a manager over fitted BE apps and LC server profiles, using
    /// the paper's default 10–90 % load range for estimation.
    pub fn new(be_apps: Vec<(String, IndirectUtility)>, servers: Vec<ServerProfile>) -> Self {
        ClusterManager {
            be_apps,
            servers,
            builder: PerfMatrixBuilder::new(),
        }
    }

    /// Overrides the load levels used for matrix estimation.
    #[must_use]
    pub fn with_load_levels(mut self, levels: Vec<f64>) -> Self {
        self.builder = self.builder.with_load_levels(levels);
        self
    }

    /// The best-effort candidates (label, fitted utility).
    pub fn be_apps(&self) -> &[(String, IndirectUtility)] {
        &self.be_apps
    }

    /// The LC server profiles.
    pub fn servers(&self) -> &[ServerProfile] {
        &self.servers
    }

    /// Builds the BE×LC performance matrix.
    ///
    /// # Errors
    ///
    /// Propagates estimation failures.
    pub fn performance_matrix(&self) -> Result<PerfMatrix, ClusterError> {
        self.builder.build(&self.be_apps, &self.servers)
    }

    /// Builds the matrix and solves the placement with `solver`.
    ///
    /// # Errors
    ///
    /// Propagates matrix and solver failures.
    pub fn place(&self, solver: Solver) -> Result<Assignment, ClusterError> {
        let matrix = self.performance_matrix()?;
        assign::solve(&matrix, solver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_core::fit::{fit_indirect_utility, FitOptions};
    use pocolo_simserver::power::PowerDrawModel;
    use pocolo_simserver::MachineSpec;
    use pocolo_workloads::profiler::{profile_be, profile_lc, ProfilerConfig};
    use pocolo_workloads::{BeApp, BeModel, LcApp, LcModel};

    fn manager() -> ClusterManager {
        let machine = MachineSpec::xeon_e5_2650();
        let power = PowerDrawModel::new(machine.clone());
        let space = machine.resource_space();
        let cfg = ProfilerConfig::default();
        let servers = LcApp::ALL
            .iter()
            .map(|&app| {
                let truth = LcModel::for_app(app, machine.clone());
                let samples = profile_lc(&truth, &power, &space, &cfg);
                let fit = fit_indirect_utility(&space, &samples, &FitOptions::default()).unwrap();
                ServerProfile {
                    label: app.name().to_string(),
                    utility: fit.utility,
                    power_cap: truth.provisioned_power(),
                    peak_load: truth.peak_load_rps(),
                }
            })
            .collect();
        let bes = BeApp::ALL
            .iter()
            .map(|&app| {
                let truth = BeModel::for_app(app, machine.clone());
                let samples = profile_be(&truth, &power, &space, &cfg);
                let fit = fit_indirect_utility(&space, &samples, &FitOptions::default()).unwrap();
                (app.name().to_string(), fit.utility)
            })
            .collect();
        ClusterManager::new(bes, servers)
    }

    #[test]
    fn pocolo_reproduces_paper_pairings() {
        // §V-E: "Pocolo chooses to assign Graph to sphinx server ...
        // LSTM is matched to img-dnn, whereas RNN/Pbzip are matched to
        // Xapian or TPCC".
        let mgr = manager();
        let assignment = mgr.place(Solver::Hungarian).unwrap();
        let matrix = mgr.performance_matrix().unwrap();
        let col_of = |name: &str| matrix.col_labels().iter().position(|l| l == name).unwrap();
        let row_of = |name: &str| matrix.row_labels().iter().position(|l| l == name).unwrap();
        assert_eq!(
            assignment.server_for(row_of("graph")),
            Some(col_of("sphinx")),
            "graph should pair with sphinx\n{matrix}"
        );
        assert_eq!(
            assignment.server_for(row_of("lstm")),
            Some(col_of("img-dnn")),
            "lstm should pair with img-dnn\n{matrix}"
        );
        // rnn and pbzip land on xapian/tpcc in either order.
        let rnn = assignment.server_for(row_of("rnn")).unwrap();
        let pbzip = assignment.server_for(row_of("pbzip")).unwrap();
        let xt = [col_of("xapian"), col_of("tpcc")];
        assert!(xt.contains(&rnn) && xt.contains(&pbzip) && rnn != pbzip);
    }

    #[test]
    fn lp_and_hungarian_agree() {
        let mgr = manager();
        let h = mgr.place(Solver::Hungarian).unwrap();
        let l = mgr.place(Solver::Lp).unwrap();
        let e = mgr.place(Solver::Exhaustive).unwrap();
        assert!((h.total - e.total).abs() < 1e-9);
        assert!((l.total - e.total).abs() < 1e-9);
    }

    #[test]
    fn optimal_beats_random_on_average() {
        let mgr = manager();
        let opt = mgr.place(Solver::Hungarian).unwrap();
        let mut rand_total = 0.0;
        let n = 24;
        for seed in 0..n {
            rand_total += mgr.place(Solver::Random { seed }).unwrap().total;
        }
        let avg = rand_total / n as f64;
        assert!(
            opt.total > avg * 1.02,
            "optimal {} should beat random average {avg}",
            opt.total
        );
    }

    #[test]
    fn custom_load_levels() {
        let mgr = manager().with_load_levels(vec![0.5]);
        let m = mgr.performance_matrix().unwrap();
        assert_eq!(m.rows(), 4);
        assert_eq!(mgr.be_apps().len(), 4);
        assert_eq!(mgr.servers().len(), 4);
    }
}

//! # pocolo-faults
//!
//! Seeded, deterministic fault injection for Pocolo clusters.
//!
//! The paper assumes the power infrastructure and telemetry are always
//! healthy, but Pocolo's zero-slack provisioning is exactly the regime
//! where brownouts, capper failures, stale telemetry and model drift hurt
//! most. This crate describes *what goes wrong and when* as pure data — a
//! [`FaultPlan`] of timestamped [`FaultEvent`]s — so the simulator can
//! replay the same misfortune bit-identically at any parallelism.
//!
//! Four fault kinds are supported:
//!
//! - **Brownout** — the cluster-wide provisioned power cap drops to a
//!   fraction of itself for a window (a feeder or UPS de-rating).
//! - **Server crash / recovery** — a server goes dark; its primary
//!   migrates away and the best-effort co-runner is evicted.
//! - **Telemetry dropout** — the management plane sees *frozen* load and
//!   p99 readings for a window (a stuck exporter, not a dead server).
//! - **Model drift** — the fitted Cobb-Douglas α's are perturbed mid-run
//!   (the workload changed under the model).
//!
//! Three named [`Scenario`]s (`brownout`, `crash`, `chaos`) generate
//! plans from a seed, and [`FaultSpec`] parses the CLI's
//! `--faults <scenario>[:seed]` syntax. [`ReadmissionBackoff`] and
//! [`eviction_order`] are the small deterministic building blocks the
//! degraded-mode response layers on top of.
//!
//! ```
//! use pocolo_faults::{FaultSpec, Scenario};
//! let spec: FaultSpec = "brownout:7".parse().unwrap();
//! assert_eq!(spec.scenario, Scenario::Brownout);
//! let plan = spec.scenario.plan(spec.seed.unwrap_or(1), 100.0, 4);
//! assert!(!plan.events().is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backoff;
mod plan;
pub mod region;
mod scenario;

pub use backoff::{ReadmissionBackoff, RetryPolicy};
pub use plan::{FaultEvent, FaultKind, FaultPlan};
pub use region::{
    RegionFaultEvent, RegionFaultKind, RegionFaultPlan, RegionFaultSpec, RegionScenario,
};
pub use scenario::{FaultSpec, Scenario};

/// Ascending-value eviction order: indices of `values` sorted so the
/// *lowest*-value entry comes first — the order in which best-effort apps
/// should be sacrificed when the cluster must shed load. Non-finite values
/// sort below every finite value (a BE app whose estimate is broken is the
/// first to go); ties break by index for determinism.
pub fn eviction_order(values: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        let ka = if values[a].is_finite() {
            values[a]
        } else {
            f64::NEG_INFINITY
        };
        let kb = if values[b].is_finite() {
            values[b]
        } else {
            f64::NEG_INFINITY
        };
        ka.total_cmp(&kb).then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_order_is_ascending() {
        let order = eviction_order(&[3.0, 1.0, 2.0]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn eviction_order_puts_non_finite_first() {
        let order = eviction_order(&[1.0, f64::NAN, 0.5, f64::INFINITY]);
        assert_eq!(order[0], 1);
        assert_eq!(order[1], 3);
        assert_eq!(&order[2..], &[2, 0]);
    }

    #[test]
    fn eviction_order_ties_break_by_index() {
        assert_eq!(eviction_order(&[1.0, 1.0, 1.0]), vec![0, 1, 2]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `eviction_order` is always a permutation sorted ascending by
        /// value (non-finite treated as -inf).
        #[test]
        fn eviction_order_is_sorted_permutation(values in proptest::collection::vec(-1e6f64..1e6, 0..24)) {
            let order = eviction_order(&values);
            let mut seen = order.clone();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..values.len()).collect::<Vec<_>>());
            for w in order.windows(2) {
                prop_assert!(values[w[0]] <= values[w[1]]);
            }
        }

        /// Backoff delays are monotonically non-decreasing and clamped at
        /// the configured maximum; reset returns to the base delay.
        #[test]
        fn backoff_is_monotone_and_clamped(
            base in 0.5f64..10.0,
            factor in 1.0f64..4.0,
            max_mult in 1.0f64..50.0,
            draws in 1usize..20,
        ) {
            let max = base * max_mult;
            let mut b = ReadmissionBackoff::new(base, factor, max);
            let mut last = 0.0f64;
            for _ in 0..draws {
                let d = b.next_delay();
                prop_assert!(d >= last, "delay {d} regressed below {last}");
                prop_assert!(d <= max + 1e-9, "delay {d} exceeds max {max}");
                last = d;
            }
            b.reset();
            prop_assert_eq!(b.peek(), base);
        }
    }
}

//! Multi-region fault scenarios for the federation tier.
//!
//! Regional faults live in *tick* time (the federation harness runs a
//! discrete virtual clock, unlike the per-server simulator's continuous
//! seconds) and strike whole regions or the federation control plane
//! itself, not individual servers:
//!
//! - **Regional brownout** — one region's grid feed is derated for a
//!   window, stranding its contracted power unless the federation
//!   reassigns budget and migrates applications out.
//! - **Leader crash** — the federation leader replica dies mid-run and a
//!   follower must be promoted off the replicated log.
//!
//! [`RegionScenario::plan`] is fully determined by
//! `(scenario, seed, ticks, n_regions, n_replicas)`, mirroring
//! [`Scenario::plan`](crate::Scenario::plan), and
//! [`RegionFaultSpec`] parses the CLI's
//! `--faults region-brownout[:seed]` syntax.

use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named, seed-parameterized multi-region scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionScenario {
    /// One region browns out mid-run; cross-region failover is the
    /// expected response.
    RegionBrownout,
    /// The full federation chaos drill: two staggered regional
    /// brownouts *and* a leader crash while the first is in effect.
    RegionChaos,
}

impl RegionScenario {
    /// All named region scenarios, in display order.
    pub const ALL: [RegionScenario; 2] =
        [RegionScenario::RegionBrownout, RegionScenario::RegionChaos];

    /// The scenario's CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            RegionScenario::RegionBrownout => "region-brownout",
            RegionScenario::RegionChaos => "region-chaos",
        }
    }

    /// Generates the scenario's fault timeline for a `ticks`-tick run
    /// over `n_regions` regions with `n_replicas` federation replicas.
    /// Deterministic in all inputs.
    ///
    /// # Panics
    ///
    /// Panics when there are fewer than two regions (nowhere to fail
    /// over to), fewer than two replicas (nobody to promote), or the
    /// run is too short to fit a brownout window.
    pub fn plan(
        self,
        seed: u64,
        ticks: u64,
        n_regions: usize,
        n_replicas: usize,
    ) -> RegionFaultPlan {
        assert!(n_regions >= 2, "regional faults need at least two regions");
        assert!(n_replicas >= 2, "leader faults need at least two replicas");
        assert!(ticks >= 40, "a region scenario needs at least 40 ticks");
        let tag = match self {
            RegionScenario::RegionBrownout => 0xF0u64,
            RegionScenario::RegionChaos => 0xFCu64,
        };
        let mut rng = StdRng::seed_from_u64(seed ^ (tag << 56));
        let mut events = Vec::new();
        let brownout = |rng: &mut StdRng, lo_frac: f64, events: &mut Vec<RegionFaultEvent>| {
            let region = rng.gen_range(0..n_regions);
            let cap_factor = rng.gen_range(0.25..0.45);
            let start = (lo_frac * ticks as f64) as u64;
            let duration = rng.gen_range(ticks / 5..ticks / 3);
            events.push(RegionFaultEvent {
                tick: start,
                kind: RegionFaultKind::RegionBrownoutStart { region, cap_factor },
            });
            events.push(RegionFaultEvent {
                tick: (start + duration).min(ticks - 1),
                kind: RegionFaultKind::RegionBrownoutEnd { region },
            });
            start
        };
        match self {
            RegionScenario::RegionBrownout => {
                brownout(&mut rng, 0.25, &mut events);
            }
            RegionScenario::RegionChaos => {
                let first = brownout(&mut rng, 0.15, &mut events);
                brownout(&mut rng, 0.55, &mut events);
                // The leader dies shortly after the first brownout
                // lands — the control plane fails exactly when it is
                // most needed. Replica 0 boots as leader, so it is the
                // victim.
                events.push(RegionFaultEvent {
                    tick: first + ticks / 20 + 1,
                    kind: RegionFaultKind::LeaderCrash { replica: 0 },
                });
            }
        }
        events.sort_by_key(|e| e.tick);
        RegionFaultPlan { seed, events }
    }
}

impl fmt::Display for RegionScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for RegionScenario {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        RegionScenario::ALL
            .iter()
            .copied()
            .find(|sc| sc.name() == s)
            .ok_or_else(|| {
                format!("unknown region scenario {s:?} (expected region-brownout | region-chaos)")
            })
    }
}

/// A parsed federation `--faults` value: a region scenario plus an
/// optional explicit seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionFaultSpec {
    /// The named scenario.
    pub scenario: RegionScenario,
    /// Explicit fault seed, if the user pinned one with `:seed`.
    pub seed: Option<u64>,
}

impl FromStr for RegionFaultSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once(':') {
            None => Ok(RegionFaultSpec {
                scenario: s.parse()?,
                seed: None,
            }),
            Some((name, seed)) => Ok(RegionFaultSpec {
                scenario: name.parse()?,
                seed: Some(
                    seed.parse()
                        .map_err(|e| format!("bad fault seed {seed:?}: {e}"))?,
                ),
            }),
        }
    }
}

impl fmt::Display for RegionFaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.seed {
            None => write!(f, "{}", self.scenario),
            Some(seed) => write!(f, "{}:{seed}", self.scenario),
        }
    }
}

/// What goes wrong at a region-fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RegionFaultKind {
    /// `region`'s grid feed derates to `cap_factor` of its provisioned
    /// power.
    RegionBrownoutStart {
        /// The browned-out region.
        region: usize,
        /// Fraction of the provisioned feed still delivered.
        cap_factor: f64,
    },
    /// `region`'s grid feed recovers to full power.
    RegionBrownoutEnd {
        /// The recovering region.
        region: usize,
    },
    /// Federation replica `replica` dies; if it is the leader, a
    /// follower must be promoted once the lease expires.
    LeaderCrash {
        /// The dying replica's rank.
        replica: usize,
    },
}

/// One timestamped regional fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionFaultEvent {
    /// Virtual tick the fault strikes at.
    pub tick: u64,
    /// What happens.
    pub kind: RegionFaultKind,
}

/// A deterministic multi-region fault timeline, ascending by tick.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionFaultPlan {
    seed: u64,
    events: Vec<RegionFaultEvent>,
}

impl RegionFaultPlan {
    /// An empty plan (the no-fault baseline).
    pub fn empty(seed: u64) -> Self {
        RegionFaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// The seed the plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The timeline, ascending by tick.
    pub fn events(&self) -> &[RegionFaultEvent] {
        &self.events
    }

    /// Events striking exactly at `tick`.
    pub fn at(&self, tick: u64) -> impl Iterator<Item = &RegionFaultEvent> {
        self.events.iter().filter(move |e| e.tick == tick)
    }

    /// Ticks at which the (initial) leader replica is killed.
    pub fn leader_crashes(&self) -> Vec<(u64, usize)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                RegionFaultKind::LeaderCrash { replica } => Some((e.tick, replica)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for s in ["region-brownout", "region-brownout:9", "region-chaos:3"] {
            let spec: RegionFaultSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
        }
        assert!("meteor".parse::<RegionFaultSpec>().is_err());
        assert!("region-brownout:xyz".parse::<RegionFaultSpec>().is_err());
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        for sc in RegionScenario::ALL {
            let a = sc.plan(11, 240, 4, 3);
            let b = sc.plan(11, 240, 4, 3);
            assert_eq!(a, b, "{sc} not reproducible");
            let c = sc.plan(12, 240, 4, 3);
            assert_ne!(a, c, "{sc} ignores its seed");
        }
    }

    #[test]
    fn brownout_events_are_well_formed() {
        let plan = RegionScenario::RegionBrownout.plan(7, 240, 4, 3);
        assert_eq!(plan.events().len(), 2);
        let (start, end) = (plan.events()[0], plan.events()[1]);
        let RegionFaultKind::RegionBrownoutStart { region, cap_factor } = start.kind else {
            panic!("expected brownout start, got {:?}", start.kind);
        };
        assert!(region < 4);
        assert!((0.25..0.45).contains(&cap_factor));
        assert!(matches!(
            end.kind,
            RegionFaultKind::RegionBrownoutEnd { region: r } if r == region
        ));
        assert!(start.tick < end.tick);
        assert!(end.tick < 240);
    }

    #[test]
    fn chaos_includes_a_leader_crash_during_the_first_brownout() {
        let plan = RegionScenario::RegionChaos.plan(3, 240, 4, 3);
        let crashes = plan.leader_crashes();
        assert_eq!(crashes.len(), 1);
        let first_start = plan
            .events()
            .iter()
            .find(|e| matches!(e.kind, RegionFaultKind::RegionBrownoutStart { .. }))
            .unwrap()
            .tick;
        assert!(crashes[0].0 > first_start);
    }

    #[test]
    #[should_panic(expected = "at least two regions")]
    fn plan_rejects_single_region() {
        let _ = RegionScenario::RegionBrownout.plan(1, 240, 1, 3);
    }
}

//! Exponential re-admission backoff for evicted best-effort apps, and the
//! bounded, jittered retry schedule the wire layer uses for reconnects.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exponential backoff schedule: each eviction of a best-effort app waits
/// longer than the last before re-admission is attempted, up to a cap.
///
/// ```
/// use pocolo_faults::ReadmissionBackoff;
/// let mut b = ReadmissionBackoff::new(4.0, 2.0, 10.0);
/// assert_eq!(b.next_delay(), 4.0);
/// assert_eq!(b.next_delay(), 8.0);
/// assert_eq!(b.next_delay(), 10.0); // clamped
/// b.reset();
/// assert_eq!(b.peek(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReadmissionBackoff {
    base_s: f64,
    factor: f64,
    max_s: f64,
    next_s: f64,
}

impl ReadmissionBackoff {
    /// Creates a backoff starting at `base_s` seconds, multiplying by
    /// `factor` on every draw, clamped to `max_s`.
    ///
    /// # Panics
    ///
    /// Panics if `base_s` is not positive and finite, `factor < 1`, or
    /// `max_s < base_s`.
    pub fn new(base_s: f64, factor: f64, max_s: f64) -> Self {
        assert!(
            base_s.is_finite() && base_s > 0.0,
            "backoff base must be positive, got {base_s}"
        );
        assert!(
            factor.is_finite() && factor >= 1.0,
            "backoff factor must be >= 1, got {factor}"
        );
        assert!(
            max_s.is_finite() && max_s >= base_s,
            "backoff max {max_s} must be >= base {base_s}"
        );
        ReadmissionBackoff {
            base_s,
            factor,
            max_s,
            next_s: base_s,
        }
    }

    /// The delay the next [`ReadmissionBackoff::next_delay`] will return.
    pub fn peek(&self) -> f64 {
        self.next_s
    }

    /// Draws the current delay and advances the schedule.
    pub fn next_delay(&mut self) -> f64 {
        let d = self.next_s;
        self.next_s = (self.next_s * self.factor).min(self.max_s);
        d
    }

    /// Returns to the base delay (a sustained healthy period earns a
    /// clean slate).
    pub fn reset(&mut self) {
        self.next_s = self.base_s;
    }
}

/// Bounded exponential retry with deterministic jitter: the schedule a
/// network client follows when a peer is unreachable.
///
/// Each draw returns the next wait in seconds, growing by `factor` up to
/// `max_s`, with a symmetric relative jitter of up to `jitter_frac` drawn
/// from a seeded RNG — so a fleet of agents restarting together does not
/// reconnect in lockstep, yet every schedule replays bit-identically for
/// a given seed. After `max_attempts` draws the policy is exhausted and
/// [`RetryPolicy::next_delay_s`] returns `None`.
///
/// ```
/// use pocolo_faults::RetryPolicy;
/// let mut r = RetryPolicy::new(0.1, 2.0, 1.0, 3, 0.0, 7);
/// assert_eq!(r.next_delay_s(), Some(0.1));
/// assert_eq!(r.next_delay_s(), Some(0.2));
/// assert_eq!(r.next_delay_s(), Some(0.4));
/// assert_eq!(r.next_delay_s(), None); // exhausted
/// ```
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    backoff: ReadmissionBackoff,
    max_attempts: usize,
    attempts: usize,
    jitter_frac: f64,
    rng: StdRng,
}

impl RetryPolicy {
    /// Creates a retry schedule starting at `base_s` seconds, multiplying
    /// by `factor` per attempt, clamped to `max_s`, allowing at most
    /// `max_attempts` draws, with up to ±`jitter_frac` relative jitter
    /// seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid shapes as [`ReadmissionBackoff::new`],
    /// or if `jitter_frac` is not within `[0, 1)`.
    pub fn new(
        base_s: f64,
        factor: f64,
        max_s: f64,
        max_attempts: usize,
        jitter_frac: f64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&jitter_frac),
            "jitter fraction must be in [0, 1), got {jitter_frac}"
        );
        RetryPolicy {
            backoff: ReadmissionBackoff::new(base_s, factor, max_s),
            max_attempts,
            attempts: 0,
            jitter_frac,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A conservative default for loopback/LAN reconnects: 100 ms base,
    /// doubling to a 2 s ceiling, 8 attempts, 20 % jitter.
    pub fn reconnect(seed: u64) -> Self {
        RetryPolicy::new(0.1, 2.0, 2.0, 8, 0.2, seed)
    }

    /// Attempts drawn so far.
    pub fn attempts(&self) -> usize {
        self.attempts
    }

    /// Draws the next wait in seconds, or `None` once the attempt budget
    /// is spent.
    pub fn next_delay_s(&mut self) -> Option<f64> {
        if self.attempts >= self.max_attempts {
            return None;
        }
        self.attempts += 1;
        let base = self.backoff.next_delay();
        if self.jitter_frac == 0.0 {
            return Some(base);
        }
        let jitter = self.rng.gen_range(-self.jitter_frac..self.jitter_frac);
        Some(base * (1.0 + jitter))
    }

    /// Restores the full attempt budget and the base delay (a successful
    /// exchange earns a clean slate).
    pub fn reset(&mut self) {
        self.attempts = 0;
        self.backoff.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_cap() {
        let mut b = ReadmissionBackoff::new(2.0, 2.0, 7.0);
        assert_eq!(b.next_delay(), 2.0);
        assert_eq!(b.next_delay(), 4.0);
        assert_eq!(b.next_delay(), 7.0);
        assert_eq!(b.next_delay(), 7.0);
    }

    #[test]
    fn factor_one_is_constant() {
        let mut b = ReadmissionBackoff::new(3.0, 1.0, 3.0);
        assert_eq!(b.next_delay(), 3.0);
        assert_eq!(b.next_delay(), 3.0);
    }

    #[test]
    #[should_panic(expected = "base must be positive")]
    fn rejects_zero_base() {
        let _ = ReadmissionBackoff::new(0.0, 2.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn rejects_shrinking_factor() {
        let _ = ReadmissionBackoff::new(1.0, 0.5, 10.0);
    }

    #[test]
    #[should_panic(expected = "must be >= base")]
    fn rejects_max_below_base() {
        let _ = ReadmissionBackoff::new(5.0, 2.0, 1.0);
    }

    #[test]
    fn retry_policy_is_bounded_and_jitter_stays_in_band() {
        let mut r = RetryPolicy::new(1.0, 2.0, 8.0, 5, 0.25, 42);
        let mut expected_base = [1.0, 2.0, 4.0, 8.0, 8.0].into_iter();
        while let Some(d) = r.next_delay_s() {
            let base = expected_base.next().unwrap();
            assert!(
                (d - base).abs() <= 0.25 * base + 1e-12,
                "delay {d} strayed from base {base}"
            );
        }
        assert_eq!(r.attempts(), 5);
        assert_eq!(r.next_delay_s(), None, "budget stays spent");
    }

    #[test]
    fn retry_policy_replays_bit_identically_per_seed() {
        let draw = |seed: u64| {
            let mut r = RetryPolicy::reconnect(seed);
            std::iter::from_fn(|| r.next_delay_s()).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4), "different seeds draw different jitter");
    }

    #[test]
    fn retry_policy_reset_restores_budget() {
        let mut r = RetryPolicy::new(1.0, 2.0, 4.0, 2, 0.0, 1);
        assert_eq!(r.next_delay_s(), Some(1.0));
        assert_eq!(r.next_delay_s(), Some(2.0));
        assert_eq!(r.next_delay_s(), None);
        r.reset();
        assert_eq!(r.next_delay_s(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "jitter fraction")]
    fn retry_policy_rejects_bad_jitter() {
        let _ = RetryPolicy::new(1.0, 2.0, 4.0, 3, 1.0, 1);
    }
}

//! Exponential re-admission backoff for evicted best-effort apps.

/// Exponential backoff schedule: each eviction of a best-effort app waits
/// longer than the last before re-admission is attempted, up to a cap.
///
/// ```
/// use pocolo_faults::ReadmissionBackoff;
/// let mut b = ReadmissionBackoff::new(4.0, 2.0, 10.0);
/// assert_eq!(b.next_delay(), 4.0);
/// assert_eq!(b.next_delay(), 8.0);
/// assert_eq!(b.next_delay(), 10.0); // clamped
/// b.reset();
/// assert_eq!(b.peek(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReadmissionBackoff {
    base_s: f64,
    factor: f64,
    max_s: f64,
    next_s: f64,
}

impl ReadmissionBackoff {
    /// Creates a backoff starting at `base_s` seconds, multiplying by
    /// `factor` on every draw, clamped to `max_s`.
    ///
    /// # Panics
    ///
    /// Panics if `base_s` is not positive and finite, `factor < 1`, or
    /// `max_s < base_s`.
    pub fn new(base_s: f64, factor: f64, max_s: f64) -> Self {
        assert!(
            base_s.is_finite() && base_s > 0.0,
            "backoff base must be positive, got {base_s}"
        );
        assert!(
            factor.is_finite() && factor >= 1.0,
            "backoff factor must be >= 1, got {factor}"
        );
        assert!(
            max_s.is_finite() && max_s >= base_s,
            "backoff max {max_s} must be >= base {base_s}"
        );
        ReadmissionBackoff {
            base_s,
            factor,
            max_s,
            next_s: base_s,
        }
    }

    /// The delay the next [`ReadmissionBackoff::next_delay`] will return.
    pub fn peek(&self) -> f64 {
        self.next_s
    }

    /// Draws the current delay and advances the schedule.
    pub fn next_delay(&mut self) -> f64 {
        let d = self.next_s;
        self.next_s = (self.next_s * self.factor).min(self.max_s);
        d
    }

    /// Returns to the base delay (a sustained healthy period earns a
    /// clean slate).
    pub fn reset(&mut self) {
        self.next_s = self.base_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_cap() {
        let mut b = ReadmissionBackoff::new(2.0, 2.0, 7.0);
        assert_eq!(b.next_delay(), 2.0);
        assert_eq!(b.next_delay(), 4.0);
        assert_eq!(b.next_delay(), 7.0);
        assert_eq!(b.next_delay(), 7.0);
    }

    #[test]
    fn factor_one_is_constant() {
        let mut b = ReadmissionBackoff::new(3.0, 1.0, 3.0);
        assert_eq!(b.next_delay(), 3.0);
        assert_eq!(b.next_delay(), 3.0);
    }

    #[test]
    #[should_panic(expected = "base must be positive")]
    fn rejects_zero_base() {
        let _ = ReadmissionBackoff::new(0.0, 2.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn rejects_shrinking_factor() {
        let _ = ReadmissionBackoff::new(1.0, 0.5, 10.0);
    }

    #[test]
    #[should_panic(expected = "must be >= base")]
    fn rejects_max_below_base() {
        let _ = ReadmissionBackoff::new(5.0, 2.0, 1.0);
    }
}

//! The fault plan: what goes wrong, when, as pure data.

/// One kind of infrastructure or management-plane fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The cluster-wide provisioned cap drops to `cap_factor` of itself.
    BrownoutStart {
        /// Effective-cap multiplier in `(0, 1)`.
        cap_factor: f64,
    },
    /// The brownout ends; caps return to provisioned levels.
    BrownoutEnd,
    /// Server `server` goes dark: primary migrates, BE is evicted.
    ServerCrash {
        /// Index of the crashed server.
        server: usize,
    },
    /// Server `server` comes back and rejoins the cluster.
    ServerRecover {
        /// Index of the recovering server.
        server: usize,
    },
    /// Telemetry freezes: the manager sees the last load/p99 readings
    /// until the dropout ends.
    TelemetryFreezeStart {
        /// Affected server, or `None` for the whole cluster.
        server: Option<usize>,
        /// Absolute end of the dropout, seconds.
        until_s: f64,
    },
    /// Telemetry thaws (paired with the matching freeze).
    TelemetryFreezeEnd {
        /// Affected server, or `None` for the whole cluster.
        server: Option<usize>,
    },
    /// The fitted performance α's are perturbed by up to `rel` relatively
    /// (seeded per server by `salt`), modelling workload drift under a
    /// stale model.
    ModelDrift {
        /// Affected server, or `None` for the whole cluster.
        server: Option<usize>,
        /// Maximum relative perturbation of each α, in `(0, 0.9)`.
        rel: f64,
        /// Deterministic per-event RNG salt.
        salt: u64,
    },
}

/// A fault at an absolute simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires, seconds from simulation start.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, kept sorted by time (stable for
/// coincident events, so insertion order is the tiebreak).
///
/// ```
/// use pocolo_faults::{FaultKind, FaultPlan};
/// let plan = FaultPlan::new(42)
///     .with_brownout(10.0, 20.0, 0.7)
///     .with_crash(1, 40.0, 5.0);
/// assert_eq!(plan.events().len(), 4); // start/end pairs
/// assert!(matches!(plan.events()[0].kind, FaultKind::BrownoutStart { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

fn assert_time(t: f64, what: &str) {
    assert!(
        t.is_finite() && t >= 0.0,
        "{what} must be a finite non-negative time, got {t}"
    );
}

impl FaultPlan {
    /// An empty plan carrying the seed that derived (or will derive) it.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// The seed this plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, sorted by time (stable).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(&mut self, at_s: f64, kind: FaultKind) {
        assert_time(at_s, "fault time");
        self.events.push(FaultEvent { at_s, kind });
        self.events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
    }

    /// Schedules a cluster-wide brownout: caps drop to `cap_factor` of the
    /// provisioned level over `[start_s, start_s + duration_s)`.
    ///
    /// # Panics
    ///
    /// Panics on non-finite times, non-positive `duration_s`, or a
    /// `cap_factor` outside `(0, 1)`.
    #[must_use]
    pub fn with_brownout(mut self, start_s: f64, duration_s: f64, cap_factor: f64) -> Self {
        assert_time(start_s, "brownout start");
        assert!(
            duration_s.is_finite() && duration_s > 0.0,
            "brownout duration must be positive, got {duration_s}"
        );
        assert!(
            cap_factor > 0.0 && cap_factor < 1.0,
            "brownout cap factor must be in (0, 1), got {cap_factor}"
        );
        self.push(start_s, FaultKind::BrownoutStart { cap_factor });
        self.push(start_s + duration_s, FaultKind::BrownoutEnd);
        self
    }

    /// Schedules a crash of `server` at `at_s`, recovering after `down_s`.
    ///
    /// # Panics
    ///
    /// Panics on non-finite times or non-positive `down_s`.
    #[must_use]
    pub fn with_crash(mut self, server: usize, at_s: f64, down_s: f64) -> Self {
        assert_time(at_s, "crash time");
        assert!(
            down_s.is_finite() && down_s > 0.0,
            "crash downtime must be positive, got {down_s}"
        );
        self.push(at_s, FaultKind::ServerCrash { server });
        self.push(at_s + down_s, FaultKind::ServerRecover { server });
        self
    }

    /// Schedules a telemetry dropout on `server` (`None` = cluster-wide)
    /// over `[start_s, start_s + duration_s)`.
    ///
    /// # Panics
    ///
    /// Panics on non-finite times or non-positive `duration_s`.
    #[must_use]
    pub fn with_telemetry_dropout(
        mut self,
        server: Option<usize>,
        start_s: f64,
        duration_s: f64,
    ) -> Self {
        assert_time(start_s, "dropout start");
        assert!(
            duration_s.is_finite() && duration_s > 0.0,
            "dropout duration must be positive, got {duration_s}"
        );
        let until_s = start_s + duration_s;
        self.push(start_s, FaultKind::TelemetryFreezeStart { server, until_s });
        self.push(until_s, FaultKind::TelemetryFreezeEnd { server });
        self
    }

    /// Schedules a model-drift event at `at_s` perturbing the fitted α's
    /// by up to `rel` relatively. The per-event salt is derived from the
    /// plan seed and the number of events already scheduled, so identical
    /// build sequences give identical drift.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite time or `rel` outside `(0, 0.9)`.
    #[must_use]
    pub fn with_model_drift(mut self, server: Option<usize>, at_s: f64, rel: f64) -> Self {
        assert_time(at_s, "drift time");
        assert!(
            rel > 0.0 && rel < 0.9,
            "drift magnitude must be in (0, 0.9), got {rel}"
        );
        let salt = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.events.len() as u64);
        self.push(at_s, FaultKind::ModelDrift { server, rel, salt });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sorted_by_time() {
        let plan = FaultPlan::new(1)
            .with_crash(0, 50.0, 10.0)
            .with_brownout(5.0, 10.0, 0.6);
        let times: Vec<f64> = plan.events().iter().map(|e| e.at_s).collect();
        assert_eq!(times, vec![5.0, 15.0, 50.0, 60.0]);
    }

    #[test]
    fn coincident_events_keep_insertion_order() {
        let plan = FaultPlan::new(1)
            .with_brownout(10.0, 5.0, 0.5)
            .with_telemetry_dropout(None, 10.0, 5.0);
        assert!(matches!(
            plan.events()[0].kind,
            FaultKind::BrownoutStart { .. }
        ));
        assert!(matches!(
            plan.events()[1].kind,
            FaultKind::TelemetryFreezeStart { .. }
        ));
    }

    #[test]
    fn drift_salts_differ_per_event_but_replay_identically() {
        let build = || {
            FaultPlan::new(9)
                .with_model_drift(None, 10.0, 0.2)
                .with_model_drift(Some(1), 20.0, 0.2)
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b);
        let salts: Vec<u64> = a
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::ModelDrift { salt, .. } => Some(salt),
                _ => None,
            })
            .collect();
        assert_eq!(salts.len(), 2);
        assert_ne!(salts[0], salts[1]);
    }

    #[test]
    fn empty_plan() {
        let plan = FaultPlan::new(3);
        assert!(plan.is_empty());
        assert_eq!(plan.seed(), 3);
    }

    #[test]
    #[should_panic(expected = "cap factor must be in (0, 1)")]
    fn rejects_bad_cap_factor() {
        let _ = FaultPlan::new(0).with_brownout(0.0, 1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "finite non-negative time")]
    fn rejects_nan_time() {
        let _ = FaultPlan::new(0).with_crash(0, f64::NAN, 1.0);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn rejects_zero_duration() {
        let _ = FaultPlan::new(0).with_telemetry_dropout(None, 1.0, 0.0);
    }
}

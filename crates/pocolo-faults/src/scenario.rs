//! Named fault scenarios and the CLI `--faults <scenario>[:seed]` syntax.

use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::plan::FaultPlan;

/// A named, seed-parameterized fault scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// A single mid-run cluster-wide brownout window.
    Brownout,
    /// One randomly chosen server crashes mid-run and later recovers.
    Crash,
    /// Everything at once: brownout, a crash, a cluster-wide telemetry
    /// dropout, and model drift.
    Chaos,
    /// Traffic surprise and power fault simultaneously: a mid-run
    /// brownout window timed to overlap a flash-crowd peak (the
    /// `pocolo-traffic` flashcrowd mix ramps around 30 % of the run),
    /// with model drift as the crowd's request profile shifts.
    Surge,
}

impl Scenario {
    /// All named scenarios, in display order.
    pub const ALL: [Scenario; 4] = [
        Scenario::Brownout,
        Scenario::Crash,
        Scenario::Chaos,
        Scenario::Surge,
    ];

    /// The scenario's CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Brownout => "brownout",
            Scenario::Crash => "crash",
            Scenario::Chaos => "chaos",
            Scenario::Surge => "surge",
        }
    }

    /// Generates the scenario's fault plan for a run of `duration_s`
    /// seconds over `n_servers` servers. Fully determined by the inputs:
    /// the same `(scenario, seed, duration, n)` always yields the same
    /// plan.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not positive and finite, or `n_servers`
    /// is zero.
    pub fn plan(self, seed: u64, duration_s: f64, n_servers: usize) -> FaultPlan {
        assert!(
            duration_s.is_finite() && duration_s > 0.0,
            "scenario duration must be positive, got {duration_s}"
        );
        assert!(n_servers > 0, "scenario needs at least one server");
        // Mix the scenario into the stream so `brownout:1` and `crash:1`
        // draw different randomness.
        let tag = match self {
            Scenario::Brownout => 0xB0u64,
            Scenario::Crash => 0xC4,
            Scenario::Chaos => 0xCA,
            Scenario::Surge => 0x5E,
        };
        let mut rng = StdRng::seed_from_u64(seed ^ (tag << 56));
        let d = duration_s;
        match self {
            Scenario::Brownout => {
                let factor = rng.gen_range(0.55..0.72);
                FaultPlan::new(seed).with_brownout(0.25 * d, 0.40 * d, factor)
            }
            Scenario::Crash => {
                let victim = rng.gen_range(0..n_servers);
                FaultPlan::new(seed).with_crash(victim, 0.30 * d, 0.25 * d)
            }
            Scenario::Chaos => {
                let factor = rng.gen_range(0.60..0.78);
                let victim = rng.gen_range(0..n_servers);
                let drift = rng.gen_range(0.10..0.25);
                FaultPlan::new(seed)
                    .with_brownout(0.15 * d, 0.25 * d, factor)
                    .with_crash(victim, 0.45 * d, 0.15 * d)
                    .with_telemetry_dropout(None, 0.65 * d, 0.20 * d)
                    .with_model_drift(None, 0.50 * d, drift)
            }
            Scenario::Surge => {
                // The window sits over the flashcrowd mix's ramp+hold
                // (~30-70 % of the run), so the power shortfall lands
                // while demand is at its peak.
                let factor = rng.gen_range(0.58..0.72);
                let drift = rng.gen_range(0.15..0.30);
                FaultPlan::new(seed)
                    .with_brownout(0.32 * d, 0.38 * d, factor)
                    .with_model_drift(None, 0.32 * d, drift)
            }
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Scenario {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scenario::ALL
            .iter()
            .copied()
            .find(|sc| sc.name() == s)
            .ok_or_else(|| {
                format!("unknown fault scenario {s:?} (expected brownout | crash | chaos | surge)")
            })
    }
}

/// A parsed `--faults` value: a scenario plus an optional explicit seed
/// (when absent, the experiment's own seed is used).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The named scenario.
    pub scenario: Scenario,
    /// Explicit fault seed, if the user pinned one with `:seed`.
    pub seed: Option<u64>,
}

impl FromStr for FaultSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once(':') {
            None => Ok(FaultSpec {
                scenario: s.parse()?,
                seed: None,
            }),
            Some((name, seed)) => Ok(FaultSpec {
                scenario: name.parse()?,
                seed: Some(
                    seed.parse()
                        .map_err(|e| format!("bad fault seed {seed:?}: {e}"))?,
                ),
            }),
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.seed {
            None => write!(f, "{}", self.scenario),
            Some(seed) => write!(f, "{}:{seed}", self.scenario),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultKind;

    #[test]
    fn parse_roundtrip() {
        for s in ["brownout", "crash:12", "chaos:0"] {
            let spec: FaultSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
        }
        assert_eq!(
            "brownout".parse::<FaultSpec>().unwrap(),
            FaultSpec {
                scenario: Scenario::Brownout,
                seed: None
            }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("meteor".parse::<FaultSpec>().is_err());
        assert!("brownout:abc".parse::<FaultSpec>().is_err());
        assert!("".parse::<FaultSpec>().is_err());
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        for sc in Scenario::ALL {
            let a = sc.plan(5, 120.0, 4);
            let b = sc.plan(5, 120.0, 4);
            assert_eq!(a, b, "{sc} not reproducible");
            let c = sc.plan(6, 120.0, 4);
            assert_ne!(a, c, "{sc} ignores its seed");
        }
    }

    #[test]
    fn scenarios_differ_under_same_seed() {
        let b = Scenario::Brownout.plan(1, 100.0, 4);
        let c = Scenario::Chaos.plan(1, 100.0, 4);
        assert_ne!(b, c);
    }

    #[test]
    fn brownout_plan_shape() {
        let plan = Scenario::Brownout.plan(1, 100.0, 4);
        assert_eq!(plan.events().len(), 2);
        match plan.events()[0].kind {
            FaultKind::BrownoutStart { cap_factor } => {
                assert!((0.55..0.72).contains(&cap_factor));
            }
            ref other => panic!("expected brownout start, got {other:?}"),
        }
        assert!(plan.events()[0].at_s < plan.events()[1].at_s);
        assert!(plan.events()[1].at_s < 100.0);
    }

    #[test]
    fn crash_victim_is_in_range() {
        for seed in 0..16 {
            let plan = Scenario::Crash.plan(seed, 80.0, 3);
            match plan.events()[0].kind {
                FaultKind::ServerCrash { server } => assert!(server < 3),
                ref other => panic!("expected crash, got {other:?}"),
            }
        }
    }

    #[test]
    fn chaos_has_all_fault_kinds() {
        let plan = Scenario::Chaos.plan(2, 200.0, 4);
        let has = |pred: fn(&FaultKind) -> bool| plan.events().iter().any(|e| pred(&e.kind));
        assert!(has(|k| matches!(k, FaultKind::BrownoutStart { .. })));
        assert!(has(|k| matches!(k, FaultKind::ServerCrash { .. })));
        assert!(has(|k| matches!(k, FaultKind::TelemetryFreezeStart { .. })));
        assert!(has(|k| matches!(k, FaultKind::ModelDrift { .. })));
    }

    #[test]
    fn surge_overlaps_brownout_with_drift() {
        let plan = Scenario::Surge.plan(7, 100.0, 4);
        let has = |pred: fn(&FaultKind) -> bool| plan.events().iter().any(|e| pred(&e.kind));
        assert!(has(|k| matches!(k, FaultKind::BrownoutStart { .. })));
        assert!(has(|k| matches!(k, FaultKind::BrownoutEnd)));
        assert!(has(|k| matches!(k, FaultKind::ModelDrift { .. })));
        assert!(!has(|k| matches!(k, FaultKind::ServerCrash { .. })));
        // The brownout window covers the flash-crowd hold: starts in
        // [0.32, 0.33) of the run and stretches well past the midpoint.
        let start = plan.events()[0].at_s;
        assert!((31.0..34.0).contains(&start), "start {start}");
        let end = plan
            .events()
            .iter()
            .find(|e| matches!(e.kind, FaultKind::BrownoutEnd))
            .unwrap()
            .at_s;
        assert!(end > 60.0, "end {end}");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn plan_rejects_empty_cluster() {
        let _ = Scenario::Crash.plan(1, 10.0, 0);
    }
}

//! Typed physical units used throughout the Pocolo crates.
//!
//! Newtypes keep watts, joules and gigahertz from being confused with each
//! other or with dimensionless quantities ([C-NEWTYPE]).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Electrical power in watts.
///
/// ```
/// use pocolo_core::units::Watts;
/// let headroom = Watts(132.0) - Watts(64.0);
/// assert_eq!(headroom, Watts(68.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(pub f64);

/// Energy in joules.
///
/// Produced by integrating [`Watts`] over time:
///
/// ```
/// use pocolo_core::units::Watts;
/// let energy = Watts(100.0) * 3.5; // 3.5 seconds at 100 W
/// assert_eq!(energy.0, 350.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(pub f64);

/// CPU core frequency in gigahertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Frequency(pub f64);

impl Watts {
    /// Zero watts.
    pub const ZERO: Watts = Watts(0.0);

    /// Returns the larger of two power values.
    #[must_use]
    pub fn max(self, other: Watts) -> Watts {
        Watts(self.0.max(other.0))
    }

    /// Returns the smaller of two power values.
    #[must_use]
    pub fn min(self, other: Watts) -> Watts {
        Watts(self.0.min(other.0))
    }

    /// Clamps this power into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn clamp(self, lo: Watts, hi: Watts) -> Watts {
        assert!(lo.0 <= hi.0, "clamp bounds inverted: {lo} > {hi}");
        Watts(self.0.clamp(lo.0, hi.0))
    }

    /// True if the value is a finite, non-negative number of watts.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Joules {
    /// Zero joules.
    pub const ZERO: Joules = Joules(0.0);

    /// Converts to kilowatt-hours (the billing unit in the TCO model).
    pub fn to_kwh(self) -> f64 {
        self.0 / 3.6e6
    }
}

impl Frequency {
    /// Frequency expressed in megahertz.
    pub fn as_mhz(self) -> f64 {
        self.0 * 1000.0
    }

    /// Fraction of a maximum frequency, clamped to `[0, 1]`.
    pub fn fraction_of(self, max: Frequency) -> f64 {
        if max.0 <= 0.0 {
            0.0
        } else {
            (self.0 / max.0).clamp(0.0, 1.0)
        }
    }
}

macro_rules! impl_linear_unit {
    ($ty:ident, $unit:literal) => {
        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl SubAssign for $ty {
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }
        impl Neg for $ty {
            type Output = $ty;
            fn neg(self) -> $ty {
                $ty(-self.0)
            }
        }
        impl Mul<f64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl Div<f64> for $ty {
            type Output = $ty;
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl Div for $ty {
            type Output = f64;
            fn div(self, rhs: $ty) -> f64 {
                self.0 / rhs.0
            }
        }
        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                $ty(iter.map(|v| v.0).sum())
            }
        }
        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{:.2} {}", self.0, $unit)
                }
            }
        }
    };
}

impl_linear_unit!(Watts, "W");
impl_linear_unit!(Joules, "J");
impl_linear_unit!(Frequency, "GHz");

/// `Watts * seconds = Joules`.
impl Mul<f64> for &Watts {
    type Output = Joules;
    fn mul(self, seconds: f64) -> Joules {
        Joules(self.0 * seconds)
    }
}

impl Watts {
    /// Integrates this power over a duration in seconds, yielding energy.
    pub fn over_seconds(self, seconds: f64) -> Joules {
        Joules(self.0 * seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_arithmetic() {
        assert_eq!(Watts(3.0) + Watts(4.0), Watts(7.0));
        assert_eq!(Watts(10.0) - Watts(4.0), Watts(6.0));
        assert_eq!(Watts(10.0) * 0.5, Watts(5.0));
        assert_eq!(Watts(10.0) / 2.0, Watts(5.0));
        assert!((Watts(10.0) / Watts(4.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn watts_sum() {
        let total: Watts = [Watts(1.0), Watts(2.0), Watts(3.0)].into_iter().sum();
        assert_eq!(total, Watts(6.0));
    }

    #[test]
    fn watts_min_max_clamp() {
        assert_eq!(Watts(3.0).max(Watts(5.0)), Watts(5.0));
        assert_eq!(Watts(3.0).min(Watts(5.0)), Watts(3.0));
        assert_eq!(Watts(7.0).clamp(Watts(0.0), Watts(5.0)), Watts(5.0));
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn watts_clamp_inverted_panics() {
        let _ = Watts(1.0).clamp(Watts(5.0), Watts(0.0));
    }

    #[test]
    fn watts_validity() {
        assert!(Watts(0.0).is_valid());
        assert!(Watts(132.0).is_valid());
        assert!(!Watts(-1.0).is_valid());
        assert!(!Watts(f64::NAN).is_valid());
        assert!(!Watts(f64::INFINITY).is_valid());
    }

    #[test]
    fn energy_integration() {
        let e = Watts(100.0).over_seconds(36.0);
        assert_eq!(e, Joules(3600.0));
        assert!((Joules(3.6e6).to_kwh() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_fraction() {
        assert!((Frequency(1.2).fraction_of(Frequency(2.4)) - 0.5).abs() < 1e-12);
        assert_eq!(Frequency(3.0).fraction_of(Frequency(2.2)), 1.0);
        assert_eq!(Frequency(1.0).fraction_of(Frequency(0.0)), 0.0);
        assert!((Frequency(2.2).as_mhz() - 2200.0).abs() < 1e-9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Watts(132.456)), "132.46 W");
        assert_eq!(format!("{:.0}", Watts(132.456)), "132 W");
        assert_eq!(format!("{}", Frequency(2.2)), "2.20 GHz");
        assert_eq!(format!("{}", Joules(1.0)), "1.00 J");
    }

    #[test]
    fn negation() {
        assert_eq!(-Watts(5.0), Watts(-5.0));
    }

    #[test]
    fn assign_ops() {
        let mut w = Watts(1.0);
        w += Watts(2.0);
        w -= Watts(0.5);
        assert_eq!(w, Watts(2.5));
    }
}

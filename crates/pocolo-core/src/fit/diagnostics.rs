//! Applicability diagnostics for the Cobb-Douglas framework (§V-G).
//!
//! The paper's method "can be applied for resources that can be substituted
//! within an application... Moreover, this solution expects the resource
//! preferences of the applications to be convex. Otherwise, the allocations
//! will be inefficient." This module checks profiled samples for the two
//! prerequisites:
//!
//! - **diminishing returns** along each resource axis (concave performance
//!   response ⇒ convex preferences), and
//! - **monotonicity** (more of a resource never hurts).
//!
//! Violations flag applications the framework should not manage (e.g. apps
//! with working-set cliffs, where performance jumps discontinuously once
//! the cache allocation crosses the working-set size).

use crate::error::CoreError;
use crate::fit::ProfileSample;
use crate::resources::ResourceSpace;

/// Outcome of the convexity screen for one resource dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisDiagnostics {
    /// Resource name.
    pub resource: String,
    /// Number of (otherwise-identical) sample triples examined.
    pub triples: usize,
    /// Fraction of triples violating diminishing returns (second difference
    /// positive beyond tolerance).
    pub convexity_violations: f64,
    /// Fraction of adjacent pairs where more resource *reduced* performance
    /// beyond tolerance.
    pub monotonicity_violations: f64,
}

/// Aggregate report across all dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexityReport {
    /// Per-dimension diagnostics, in space order.
    pub axes: Vec<AxisDiagnostics>,
    /// Relative tolerance used when comparing performances.
    pub tolerance: f64,
}

impl ConvexityReport {
    /// True if every axis is within `max_violation_frac` on both checks —
    /// the application is a suitable subject for the framework.
    pub fn is_suitable(&self, max_violation_frac: f64) -> bool {
        self.axes.iter().all(|a| {
            a.convexity_violations <= max_violation_frac
                && a.monotonicity_violations <= max_violation_frac
        })
    }
}

/// Screens profiled samples for monotone, diminishing-returns behaviour
/// along each resource axis.
///
/// Samples are grouped by the values of every *other* dimension; within a
/// group, consecutive triples along the axis are tested for concavity of
/// performance in the resource amount, and consecutive pairs for
/// monotonicity. `tolerance` is the relative perf wiggle ignored as noise
/// (e.g. `0.05` with 4 % measurement noise).
///
/// # Errors
///
/// Returns [`CoreError::InsufficientSamples`] if no axis has a group with
/// at least three distinct points.
pub fn check_convexity(
    space: &ResourceSpace,
    samples: &[ProfileSample],
    tolerance: f64,
) -> Result<ConvexityReport, CoreError> {
    let k = space.len();
    let mut axes = Vec::with_capacity(k);
    let mut any_triples = false;
    for j in 0..k {
        // Group samples by the other coordinates (rounded for stability).
        use std::collections::HashMap;
        let mut groups: HashMap<Vec<i64>, Vec<(f64, f64)>> = HashMap::new();
        for s in samples {
            if s.allocation.len() != k {
                return Err(CoreError::DimensionMismatch {
                    expected: k,
                    actual: s.allocation.len(),
                });
            }
            let key: Vec<i64> = s
                .allocation
                .amounts()
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != j)
                .map(|(_, &v)| (v * 1e6).round() as i64)
                .collect();
            groups
                .entry(key)
                .or_default()
                .push((s.allocation.amount(j), s.performance));
        }

        let mut triples = 0usize;
        let mut convex_viol = 0usize;
        let mut pairs = 0usize;
        let mut mono_viol = 0usize;
        for series in groups.values_mut() {
            series.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("amounts are finite"));
            series.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-9);
            for w in series.windows(2) {
                pairs += 1;
                if w[1].1 < w[0].1 * (1.0 - tolerance) {
                    mono_viol += 1;
                }
            }
            for w in series.windows(3) {
                triples += 1;
                // Concavity: the middle point should sit at or above the
                // chord between its neighbours (allowing tolerance).
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                let (x2, y2) = w[2];
                let t = (x1 - x0) / (x2 - x0);
                let chord = y0 + t * (y2 - y0);
                if y1 < chord * (1.0 - tolerance) {
                    convex_viol += 1;
                }
            }
        }
        if triples > 0 {
            any_triples = true;
        }
        axes.push(AxisDiagnostics {
            resource: space.descriptor(j).name().to_string(),
            triples,
            convexity_violations: if triples > 0 {
                convex_viol as f64 / triples as f64
            } else {
                0.0
            },
            monotonicity_violations: if pairs > 0 {
                mono_viol as f64 / pairs as f64
            } else {
                0.0
            },
        });
    }
    if !any_triples {
        return Err(CoreError::InsufficientSamples {
            needed: 3,
            available: samples.len(),
        });
    }
    Ok(ConvexityReport { axes, tolerance })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::xeon_space;
    use crate::units::Watts;

    fn space() -> ResourceSpace {
        xeon_space()
    }

    fn sample(space: &ResourceSpace, c: f64, w: f64, perf: f64) -> ProfileSample {
        ProfileSample::best_effort(space.allocation(vec![c, w]).unwrap(), perf, Watts(100.0))
    }

    fn grid_samples(space: &ResourceSpace, f: impl Fn(f64, f64) -> f64) -> Vec<ProfileSample> {
        let mut out = Vec::new();
        for c in 1..=12 {
            for w in (2..=20).step_by(2) {
                out.push(sample(space, c as f64, w as f64, f(c as f64, w as f64)));
            }
        }
        out
    }

    #[test]
    fn cobb_douglas_surface_passes() {
        let s = space();
        let samples = grid_samples(&s, |c, w| 10.0 * c.powf(0.6) * w.powf(0.3));
        let report = check_convexity(&s, &samples, 0.02).unwrap();
        assert!(report.is_suitable(0.0), "{report:?}");
        assert_eq!(report.axes.len(), 2);
        assert_eq!(report.axes[0].resource, "cores");
        assert!(report.axes[0].triples > 0);
    }

    #[test]
    fn working_set_cliff_fails_convexity() {
        // A cache cliff: performance jumps once ways cross 12 (superlinear
        // = convex response = non-convex preferences).
        let s = space();
        let samples = grid_samples(&s, |c, w| {
            let cache_factor = if w >= 12.0 { 10.0 } else { 1.0 };
            c.powf(0.5) * cache_factor
        });
        let report = check_convexity(&s, &samples, 0.02).unwrap();
        assert!(
            report.axes[1].convexity_violations > 0.1,
            "cliff should violate concavity on the ways axis: {report:?}"
        );
        assert!(!report.is_suitable(0.05));
    }

    #[test]
    fn non_monotone_response_detected() {
        // Performance *drops* with extra cores beyond 6 (e.g. lock
        // contention).
        let s = space();
        let samples = grid_samples(&s, |c, w| {
            let eff = if c <= 6.0 { c } else { 12.0 - c + 1.0 };
            eff * w.powf(0.1)
        });
        let report = check_convexity(&s, &samples, 0.02).unwrap();
        assert!(report.axes[0].monotonicity_violations > 0.2, "{report:?}");
    }

    #[test]
    fn tolerance_absorbs_noise() {
        use rand::prelude::*;
        let s = space();
        let rng = std::cell::RefCell::new(StdRng::seed_from_u64(3));
        let samples = grid_samples(&s, |c, w| {
            let eps = rng.borrow_mut().gen_range(-0.02..0.02);
            10.0 * c.powf(0.6) * w.powf(0.3) * (1.0 + eps)
        });
        let strict = check_convexity(&s, &samples, 0.0).unwrap();
        let tolerant = check_convexity(&s, &samples, 0.10).unwrap();
        assert!(tolerant.axes[0].convexity_violations <= strict.axes[0].convexity_violations);
        assert!(tolerant.is_suitable(0.02), "{tolerant:?}");
    }

    #[test]
    fn too_few_points_rejected() {
        let s = space();
        let samples = vec![sample(&s, 1.0, 2.0, 1.0), sample(&s, 2.0, 4.0, 2.0)];
        assert!(matches!(
            check_convexity(&s, &samples, 0.05),
            Err(CoreError::InsufficientSamples { .. })
        ));
    }
}

//! Online model maintenance: sliding-window refitting for applications
//! whose parameters are "sampled online during execution" (§IV-A).
//!
//! Production workloads drift — a search index grows, a model retrains, a
//! dataset changes phase. An [`OnlineFitter`] keeps a bounded window of the
//! most recent profiling samples, refits the Cobb-Douglas indirect utility
//! on a fixed cadence, and reports how far the application's *preference
//! vector* moved between consecutive fits — the signal a cluster manager
//! uses to decide when a placement is stale.

use std::collections::VecDeque;

use crate::error::CoreError;
use crate::fit::{fit_indirect_utility, FitOptions, FittedModel, ProfileSample};
use crate::resources::ResourceSpace;

/// A sliding-window, fixed-cadence model fitter.
///
/// ```
/// use pocolo_core::fit::{OnlineFitter, FitOptions, ProfileSample};
/// use pocolo_core::{ResourceSpace, Watts};
///
/// # fn main() -> Result<(), pocolo_core::CoreError> {
/// let space = ResourceSpace::cores_and_ways();
/// let mut fitter = OnlineFitter::new(space.clone(), FitOptions::default(), 128, 16);
/// for c in 1..=12 {
///     for w in (2..=20u32).step_by(2) {
///         let perf = (c as f64).powf(0.6) * (w as f64).powf(0.4);
///         let power = Watts(50.0 + 6.0 * c as f64 + 1.5 * w as f64);
///         let alloc = space.allocation(vec![c as f64, w as f64])?;
///         fitter.ingest(ProfileSample::best_effort(alloc, perf, power));
///     }
/// }
/// let model = fitter.model().expect("enough samples have arrived");
/// assert!(model.performance_r2 > 0.999);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OnlineFitter {
    space: ResourceSpace,
    options: FitOptions,
    capacity: usize,
    refit_every: usize,
    window: VecDeque<ProfileSample>,
    since_refit: usize,
    current: Option<FittedModel>,
    last_drift: Option<f64>,
    max_drift: Option<f64>,
}

impl OnlineFitter {
    /// Creates a fitter keeping at most `capacity` samples and refitting
    /// after every `refit_every` ingested samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `refit_every` is zero.
    pub fn new(
        space: ResourceSpace,
        options: FitOptions,
        capacity: usize,
        refit_every: usize,
    ) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        assert!(refit_every > 0, "refit cadence must be positive");
        OnlineFitter {
            space,
            options,
            capacity,
            refit_every,
            window: VecDeque::with_capacity(capacity),
            since_refit: 0,
            current: None,
            last_drift: None,
            max_drift: None,
        }
    }

    /// Number of samples currently in the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// The most recent successful fit, if any.
    pub fn model(&self) -> Option<&FittedModel> {
        self.current.as_ref()
    }

    /// Total-variation distance the preference vector moved at the last
    /// refit (`None` until two fits have happened).
    pub fn last_drift(&self) -> Option<f64> {
        self.last_drift
    }

    /// The largest single-refit drift observed over this fitter's lifetime
    /// — the signal that the workload changed phase at some point.
    pub fn max_drift(&self) -> Option<f64> {
        self.max_drift
    }

    /// Ingests one sample, evicting the oldest beyond capacity, and refits
    /// when the cadence is due. Returns the fresh model if a refit happened
    /// and succeeded (a failed refit — e.g. a temporarily singular window —
    /// keeps the previous model).
    pub fn ingest(&mut self, sample: ProfileSample) -> Option<&FittedModel> {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(sample);
        self.since_refit += 1;
        if self.since_refit >= self.refit_every {
            self.since_refit = 0;
            return match self.refit() {
                Ok(()) => self.current.as_ref(),
                Err(_) => None,
            };
        }
        None
    }

    /// Forces an immediate refit on the current window.
    ///
    /// # Errors
    ///
    /// Propagates fitting errors (insufficient or singular windows); the
    /// previous model is retained on failure.
    pub fn force_refit(&mut self) -> Result<&FittedModel, CoreError> {
        self.refit()?;
        Ok(self.current.as_ref().expect("refit just succeeded"))
    }

    fn refit(&mut self) -> Result<(), CoreError> {
        let samples: Vec<ProfileSample> = self.window.iter().cloned().collect();
        let fresh = fit_indirect_utility(&self.space, &samples, &self.options)?;
        if let Some(prev) = &self.current {
            let drift = prev
                .utility
                .preference_vector()
                .complementarity(&fresh.utility.preference_vector());
            self.last_drift = Some(drift);
            self.max_drift = Some(self.max_drift.map_or(drift, |m| m.max(drift)));
        }
        self.current = Some(fresh);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::xeon_space;
    use crate::units::Watts;

    fn sample(space: &ResourceSpace, c: f64, w: f64, perf: f64, power: f64) -> ProfileSample {
        ProfileSample::best_effort(space.allocation(vec![c, w]).unwrap(), perf, Watts(power))
    }

    /// One full grid of samples from a synthetic app.
    fn grid(space: &ResourceSpace, ac: f64, aw: f64) -> Vec<ProfileSample> {
        let mut out = Vec::new();
        for c in 1..=12 {
            for w in (2..=20u32).step_by(2) {
                let perf = (c as f64).powf(ac) * (w as f64).powf(aw);
                let power = 50.0 + 6.0 * c as f64 + 1.5 * w as f64;
                out.push(sample(space, c as f64, w as f64, perf, power));
            }
        }
        out
    }

    #[test]
    fn refits_on_cadence() {
        let space = xeon_space();
        let mut f = OnlineFitter::new(space.clone(), FitOptions::default(), 256, 30);
        let mut refits = 0;
        for s in grid(&space, 0.6, 0.4) {
            if f.ingest(s).is_some() {
                refits += 1;
            }
        }
        assert_eq!(refits, 4, "120 samples / cadence 30");
        assert!(f.model().is_some());
    }

    #[test]
    fn window_evicts_oldest() {
        let space = xeon_space();
        let mut f = OnlineFitter::new(space.clone(), FitOptions::default(), 50, 10);
        for s in grid(&space, 0.6, 0.4) {
            f.ingest(s);
        }
        assert_eq!(f.window_len(), 50);
    }

    #[test]
    fn tracks_a_drifting_workload() {
        // Phase 1: core-hungry (0.8, 0.1); phase 2: cache-hungry (0.1, 0.8).
        let space = xeon_space();
        let mut f = OnlineFitter::new(space.clone(), FitOptions::default(), 120, 20);
        for s in grid(&space, 0.8, 0.1) {
            f.ingest(s);
        }
        let before = f.model().unwrap().utility.preference_vector().weight(0);
        assert!(before > 0.5, "phase 1 prefers cores: {before}");
        // Phase 2 floods the window (capacity = one full grid).
        for s in grid(&space, 0.1, 0.8) {
            f.ingest(s);
        }
        let after = f.model().unwrap().utility.preference_vector().weight(0);
        assert!(after < 0.3, "phase 2 prefers ways: {after}");
        // The drift signal fired at some refit during the transition.
        assert!(
            f.max_drift().unwrap() > 0.3,
            "max drift {:?} should be large",
            f.max_drift()
        );
    }

    #[test]
    fn stable_workload_reports_no_drift() {
        let space = xeon_space();
        let mut f = OnlineFitter::new(space.clone(), FitOptions::default(), 120, 20);
        for _ in 0..2 {
            for s in grid(&space, 0.6, 0.4) {
                f.ingest(s);
            }
        }
        assert!(f.max_drift().unwrap() < 1e-6);
    }

    #[test]
    fn failed_refit_keeps_previous_model() {
        let space = xeon_space();
        let mut f = OnlineFitter::new(space.clone(), FitOptions::default(), 4, 2);
        // Two good, varied samples are not enough to fit k+1=3 unknowns
        // (and the window is tiny): force_refit fails, model stays None.
        f.ingest(sample(&space, 1.0, 2.0, 1.0, 60.0));
        assert!(f.force_refit().is_err());
        assert!(f.model().is_none());
        // Fill with degenerate (constant-allocation) samples: singular.
        for _ in 0..4 {
            f.ingest(sample(&space, 3.0, 6.0, 2.0, 70.0));
        }
        assert!(f.force_refit().is_err());
        assert!(f.model().is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = OnlineFitter::new(xeon_space(), FitOptions::default(), 0, 1);
    }
}

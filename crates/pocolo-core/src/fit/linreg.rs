//! Ordinary least squares on small dense systems.
//!
//! The paper fits two regressions per application (a log-linear performance
//! model and a linear power model) over at most a handful of predictors, so
//! a normal-equations solver with Gaussian elimination is exact and fast.

use crate::error::CoreError;

/// Result of an ordinary-least-squares fit `y ≈ β₀ + Σⱼ βⱼ·xⱼ`.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// Intercept `β₀`.
    pub intercept: f64,
    /// Slope coefficients `βⱼ`, one per predictor.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination on the training data, in `(-∞, 1]`.
    pub r_squared: f64,
    /// Number of samples used.
    pub n_samples: usize,
}

impl OlsFit {
    /// Predicts `ŷ` for a feature row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the number of fitted coefficients.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coefficients.len(), "feature width mismatch");
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(x)
                .map(|(&b, &v)| b * v)
                .sum::<f64>()
    }
}

/// Fits `y ≈ β₀ + Σ βⱼ xⱼ` by ordinary least squares.
///
/// # Errors
///
/// - [`CoreError::InsufficientSamples`] if there are fewer rows than
///   `p + 1` unknowns.
/// - [`CoreError::DimensionMismatch`] if rows have inconsistent widths or
///   `xs.len() != ys.len()`.
/// - [`CoreError::SingularSystem`] if the normal equations are singular
///   (e.g. a predictor never varies).
/// - [`CoreError::InvalidParameter`] if any value is non-finite.
#[allow(clippy::needless_range_loop)] // index-heavy numeric kernel
pub fn ols(xs: &[Vec<f64>], ys: &[f64]) -> Result<OlsFit, CoreError> {
    if xs.len() != ys.len() {
        return Err(CoreError::DimensionMismatch {
            expected: xs.len(),
            actual: ys.len(),
        });
    }
    let n = xs.len();
    let p = xs.first().map_or(0, Vec::len);
    if n < p + 1 {
        return Err(CoreError::InsufficientSamples {
            needed: p + 1,
            available: n,
        });
    }
    for row in xs {
        if row.len() != p {
            return Err(CoreError::DimensionMismatch {
                expected: p,
                actual: row.len(),
            });
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(CoreError::InvalidParameter(
                "non-finite predictor value".into(),
            ));
        }
    }
    if ys.iter().any(|v| !v.is_finite()) {
        return Err(CoreError::InvalidParameter(
            "non-finite response value".into(),
        ));
    }

    // Build the normal equations (XᵀX) β = Xᵀy with an intercept column.
    let dim = p + 1;
    let mut xtx = vec![vec![0.0; dim]; dim];
    let mut xty = vec![0.0; dim];
    for (row, &y) in xs.iter().zip(ys) {
        // Augmented row: [1, x₁, …, x_p].
        let aug = |i: usize| if i == 0 { 1.0 } else { row[i - 1] };
        for i in 0..dim {
            xty[i] += aug(i) * y;
            for j in 0..dim {
                xtx[i][j] += aug(i) * aug(j);
            }
        }
    }

    let beta = solve_linear_system(&mut xtx, &mut xty)?;

    // R² on the training set.
    let mean_y = ys.iter().sum::<f64>() / n as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (row, &y) in xs.iter().zip(ys) {
        let pred = beta[0]
            + row
                .iter()
                .zip(&beta[1..])
                .map(|(&x, &b)| x * b)
                .sum::<f64>();
        ss_res += (y - pred).powi(2);
        ss_tot += (y - mean_y).powi(2);
    }
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else if ss_res < 1e-12 {
        1.0
    } else {
        0.0
    };

    Ok(OlsFit {
        intercept: beta[0],
        coefficients: beta[1..].to_vec(),
        r_squared,
        n_samples: n,
    })
}

/// Solves `A·x = b` in place by Gaussian elimination with partial pivoting.
///
/// # Errors
///
/// Returns [`CoreError::SingularSystem`] when the pivot falls below
/// a small tolerance relative to the matrix scale.
#[allow(clippy::needless_range_loop)] // index-heavy numeric kernel
pub fn solve_linear_system(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<Vec<f64>, CoreError> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix and vector size mismatch");
    let scale = a
        .iter()
        .flat_map(|row| row.iter())
        .map(|v| v.abs())
        .fold(0.0, f64::max)
        .max(1.0);
    let tol = 1e-12 * scale;

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite entries")
            })
            .expect("non-empty range");
        if a[pivot_row][col].abs() < tol {
            return Err(CoreError::SingularSystem);
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_on_noiseless_data() {
        // y = 2 + 3x₁ - 0.5x₂
        let xs: Vec<Vec<f64>> = vec![
            vec![1.0, 1.0],
            vec![2.0, 1.0],
            vec![1.0, 3.0],
            vec![4.0, 2.0],
            vec![3.0, 5.0],
        ];
        let ys: Vec<f64> = xs.iter().map(|r| 2.0 + 3.0 * r[0] - 0.5 * r[1]).collect();
        let fit = ols(&xs, &ys).unwrap();
        assert!((fit.intercept - 2.0).abs() < 1e-9);
        assert!((fit.coefficients[0] - 3.0).abs() < 1e-9);
        assert!((fit.coefficients[1] + 0.5).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert_eq!(fit.n_samples, 5);
    }

    #[test]
    fn predict_matches_model() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![1.0, 3.0, 5.0, 7.0]; // y = 1 + 2x
        let fit = ols(&xs, &ys).unwrap();
        assert!((fit.predict(&[10.0]) - 21.0).abs() < 1e-9);
    }

    #[test]
    fn r_squared_degrades_with_noise() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let clean: Vec<f64> = xs.iter().map(|r| 1.0 + 2.0 * r[0]).collect();
        // Deterministic "noise".
        let noisy: Vec<f64> = clean
            .iter()
            .enumerate()
            .map(|(i, &y)| y + if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let clean_fit = ols(&xs, &clean).unwrap();
        let noisy_fit = ols(&xs, &noisy).unwrap();
        assert!(clean_fit.r_squared > noisy_fit.r_squared);
        assert!(noisy_fit.r_squared > 0.9); // slope still dominates
    }

    #[test]
    fn insufficient_samples() {
        let xs = vec![vec![1.0, 2.0]];
        let ys = vec![3.0];
        assert!(matches!(
            ols(&xs, &ys),
            Err(CoreError::InsufficientSamples { .. })
        ));
    }

    #[test]
    fn singular_when_predictor_constant() {
        let xs = vec![vec![2.0], vec![2.0], vec![2.0]];
        let ys = vec![1.0, 2.0, 3.0];
        assert!(matches!(ols(&xs, &ys), Err(CoreError::SingularSystem)));
    }

    #[test]
    fn ragged_rows_rejected() {
        let xs = vec![vec![1.0], vec![2.0, 3.0], vec![4.0]];
        let ys = vec![1.0, 2.0, 3.0];
        assert!(matches!(
            ols(&xs, &ys),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        let xs = vec![vec![1.0], vec![2.0]];
        let ys = vec![1.0];
        assert!(matches!(
            ols(&xs, &ys),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let xs = vec![vec![1.0], vec![f64::NAN], vec![2.0]];
        let ys = vec![1.0, 2.0, 3.0];
        assert!(ols(&xs, &ys).is_err());
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![1.0, f64::INFINITY, 3.0];
        assert!(ols(&xs, &ys).is_err());
    }

    #[test]
    fn constant_response_perfect_fit() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![5.0, 5.0, 5.0];
        let fit = ols(&xs, &ys).unwrap();
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert!(fit.coefficients[0].abs() < 1e-9);
    }

    #[test]
    fn solve_linear_system_3x3() {
        let mut a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let mut b = vec![8.0, -11.0, -3.0];
        let x = solve_linear_system(&mut a, &mut b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn solve_singular_system_errors() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut b = vec![1.0, 2.0];
        assert!(matches!(
            solve_linear_system(&mut a, &mut b),
            Err(CoreError::SingularSystem)
        ));
    }
}

//! Fitting Cobb-Douglas indirect utility models from profiled samples
//! (§IV-A of the paper).
//!
//! The pipeline: collect [`ProfileSample`]s (allocation → performance,
//! power, latency slack) from telemetry, filter samples whose tail-latency
//! slack is below a guard threshold, then
//!
//! - fit `log(perf) = log(α₀) + Σ αⱼ·log(rⱼ)` by least squares, and
//! - fit `power = P_static + Σ pⱼ·rⱼ` by least squares.

pub mod diagnostics;
pub mod linreg;
pub mod online;

pub use diagnostics::{check_convexity, ConvexityReport};
pub use linreg::{ols, OlsFit};
pub use online::OnlineFitter;

use crate::error::CoreError;
use crate::resources::{Allocation, ResourceSpace};
use crate::units::Watts;
use crate::utility::{CobbDouglas, IndirectUtility, PowerModel};

/// One profiling observation: an allocation plus the measured performance,
/// power and (for latency-critical apps) SLO latency slack.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSample {
    /// The allocation under which the measurement was taken.
    pub allocation: Allocation,
    /// Measured performance (max sustainable load within SLO for LC apps;
    /// throughput for BE apps).
    pub performance: f64,
    /// Measured server power apportioned to the application.
    pub power: Watts,
    /// Fractional slack in tail latency versus the SLO (`0.25` = latency was
    /// 25 % under target). `None` for throughput-oriented applications.
    pub latency_slack: Option<f64>,
}

impl ProfileSample {
    /// Creates a sample for a best-effort (throughput) application.
    pub fn best_effort(allocation: Allocation, performance: f64, power: Watts) -> Self {
        ProfileSample {
            allocation,
            performance,
            power,
            latency_slack: None,
        }
    }

    /// Creates a sample for a latency-critical application with slack.
    pub fn latency_critical(
        allocation: Allocation,
        performance: f64,
        power: Watts,
        slack: f64,
    ) -> Self {
        ProfileSample {
            allocation,
            performance,
            power,
            latency_slack: Some(slack),
        }
    }
}

/// Options controlling model fitting.
#[derive(Debug, Clone, PartialEq)]
pub struct FitOptions {
    /// Samples from latency-critical apps whose slack is below this fraction
    /// are discarded as a guard against measurements taken near SLO
    /// violation (the paper uses 10 %). Samples without slack are kept.
    pub min_latency_slack: f64,
    /// Drop samples whose performance is not strictly positive (the log
    /// transform requires it).
    pub drop_nonpositive_performance: bool,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            min_latency_slack: 0.10,
            drop_nonpositive_performance: true,
        }
    }
}

/// A fully fitted indirect utility with goodness-of-fit diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedModel {
    /// The fitted indirect utility (performance + power models).
    pub utility: IndirectUtility,
    /// R² of the log-space performance regression.
    pub performance_r2: f64,
    /// R² of the linear power regression.
    pub power_r2: f64,
    /// Samples that survived filtering and were used for the fit.
    pub samples_used: usize,
}

/// Fits the Cobb-Douglas performance model from samples.
///
/// # Errors
///
/// Propagates [`CoreError::InsufficientSamples`] / [`CoreError::SingularSystem`]
/// from the regression, and [`CoreError::InvalidParameter`] if the fitted
/// exponents are pathological (all ≤ 0).
pub fn fit_performance(
    space: &ResourceSpace,
    samples: &[&ProfileSample],
) -> Result<(CobbDouglas, f64), CoreError> {
    let mut xs = Vec::with_capacity(samples.len());
    let mut ys = Vec::with_capacity(samples.len());
    for s in samples {
        if s.allocation.len() != space.len() {
            return Err(CoreError::DimensionMismatch {
                expected: space.len(),
                actual: s.allocation.len(),
            });
        }
        xs.push(s.allocation.amounts().iter().map(|&r| r.ln()).collect());
        ys.push(s.performance.ln());
    }
    let fit = ols(&xs, &ys)?;
    // Negative exponents can appear from noise; clamp them at zero — the
    // resource then simply contributes nothing to modelled performance.
    let alphas: Vec<f64> = fit.coefficients.iter().map(|&a| a.max(0.0)).collect();
    if alphas.iter().all(|&a| a == 0.0) {
        return Err(CoreError::InvalidParameter(
            "fitted performance model has no positive exponents".into(),
        ));
    }
    let model = CobbDouglas::new(fit.intercept.exp(), alphas)?;
    Ok((model, fit.r_squared))
}

/// Fits the linear power model from samples.
///
/// # Errors
///
/// Propagates regression errors; see [`fit_performance`].
pub fn fit_power(
    space: &ResourceSpace,
    samples: &[&ProfileSample],
) -> Result<(PowerModel, f64), CoreError> {
    let mut xs = Vec::with_capacity(samples.len());
    let mut ys = Vec::with_capacity(samples.len());
    for s in samples {
        if s.allocation.len() != space.len() {
            return Err(CoreError::DimensionMismatch {
                expected: space.len(),
                actual: s.allocation.len(),
            });
        }
        xs.push(s.allocation.amounts().to_vec());
        ys.push(s.power.0);
    }
    let fit = ols(&xs, &ys)?;
    let p_static = Watts(fit.intercept.max(0.0));
    let p_dyn: Vec<f64> = fit.coefficients.iter().map(|&p| p.max(0.0)).collect();
    let model = PowerModel::new(p_static, p_dyn)?;
    Ok((model, fit.r_squared))
}

/// Fits a complete [`IndirectUtility`] from profiling samples, applying the
/// slack filter of `options`.
///
/// # Errors
///
/// Returns [`CoreError::InsufficientSamples`] if filtering leaves fewer than
/// `k + 1` samples, plus any regression error.
pub fn fit_indirect_utility(
    space: &ResourceSpace,
    samples: &[ProfileSample],
    options: &FitOptions,
) -> Result<FittedModel, CoreError> {
    let filtered: Vec<&ProfileSample> = samples
        .iter()
        .filter(|s| match s.latency_slack {
            Some(slack) => slack >= options.min_latency_slack,
            None => true,
        })
        .filter(|s| !options.drop_nonpositive_performance || s.performance > 0.0)
        .collect();
    let needed = space.len() + 1;
    if filtered.len() < needed {
        return Err(CoreError::InsufficientSamples {
            needed,
            available: filtered.len(),
        });
    }
    let (perf, performance_r2) = fit_performance(space, &filtered)?;
    let (power, power_r2) = fit_power(space, &filtered)?;
    let utility = IndirectUtility::new(space.clone(), perf, power)?;
    Ok(FittedModel {
        utility,
        performance_r2,
        power_r2,
        samples_used: filtered.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::xeon_space;
    use rand::prelude::*;

    fn synth_samples(noise: f64, seed: u64) -> (ResourceSpace, Vec<ProfileSample>) {
        let space = xeon_space();
        let truth_perf = CobbDouglas::new(120.0, vec![0.55, 0.35]).unwrap();
        let truth_power = PowerModel::new(Watts(50.0), vec![6.0, 1.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::new();
        for c in 1..=12 {
            for w in (2..=20).step_by(2) {
                let a = space.allocation(vec![c as f64, w as f64]).unwrap();
                let perf =
                    truth_perf.evaluate(&a).unwrap() * (1.0 + noise * rng.gen_range(-1.0..1.0));
                let power =
                    truth_power.power_of(&a) + Watts(noise * 20.0 * rng.gen_range(-1.0..1.0));
                samples.push(ProfileSample::latency_critical(
                    a,
                    perf,
                    power,
                    rng.gen_range(0.0..0.5),
                ));
            }
        }
        (space, samples)
    }

    #[test]
    fn recovers_ground_truth_without_noise() {
        let (space, samples) = synth_samples(0.0, 1);
        let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default()).unwrap();
        let alphas = fitted.utility.performance_model().alphas();
        assert!(
            (alphas[0] - 0.55).abs() < 1e-6,
            "alpha_cores = {}",
            alphas[0]
        );
        assert!((alphas[1] - 0.35).abs() < 1e-6);
        assert!((fitted.utility.power_model().p_static().0 - 50.0).abs() < 1e-6);
        assert!((fitted.utility.power_model().p_dynamic()[0] - 6.0).abs() < 1e-6);
        assert!(fitted.performance_r2 > 0.999);
        assert!(fitted.power_r2 > 0.999);
    }

    #[test]
    fn noisy_fit_stays_close_and_r2_in_paper_band() {
        let (space, samples) = synth_samples(0.08, 42);
        let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default()).unwrap();
        let alphas = fitted.utility.performance_model().alphas();
        assert!((alphas[0] - 0.55).abs() < 0.1);
        assert!((alphas[1] - 0.35).abs() < 0.1);
        assert!(
            fitted.performance_r2 > 0.8 && fitted.performance_r2 <= 1.0,
            "r2 = {}",
            fitted.performance_r2
        );
        assert!(fitted.power_r2 > 0.8);
    }

    #[test]
    fn slack_filter_removes_low_slack_samples() {
        let (space, mut samples) = synth_samples(0.0, 3);
        let total = samples.len();
        // Corrupt half the samples and mark them with low slack.
        for (i, s) in samples.iter_mut().enumerate() {
            if i % 2 == 0 {
                s.performance *= 0.2; // saturated measurement
                s.latency_slack = Some(0.01);
            } else {
                s.latency_slack = Some(0.3);
            }
        }
        let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default()).unwrap();
        assert_eq!(fitted.samples_used, total / 2);
        let alphas = fitted.utility.performance_model().alphas();
        assert!((alphas[0] - 0.55).abs() < 1e-6);
    }

    #[test]
    fn slack_filter_disabled_keeps_all() {
        let (space, mut samples) = synth_samples(0.0, 3);
        for s in samples.iter_mut() {
            s.latency_slack = Some(0.0);
        }
        let opts = FitOptions {
            min_latency_slack: 0.0,
            ..FitOptions::default()
        };
        let fitted = fit_indirect_utility(&space, &samples, &opts).unwrap();
        assert_eq!(fitted.samples_used, samples.len());
    }

    #[test]
    fn best_effort_samples_have_no_slack_and_are_kept() {
        let (space, samples) = synth_samples(0.0, 5);
        let be: Vec<ProfileSample> = samples
            .into_iter()
            .map(|mut s| {
                s.latency_slack = None;
                s
            })
            .collect();
        let fitted = fit_indirect_utility(&space, &be, &FitOptions::default()).unwrap();
        assert_eq!(fitted.samples_used, be.len());
    }

    #[test]
    fn insufficient_after_filtering() {
        let (space, mut samples) = synth_samples(0.0, 7);
        for s in samples.iter_mut() {
            s.latency_slack = Some(0.01);
        }
        assert!(matches!(
            fit_indirect_utility(&space, &samples, &FitOptions::default()),
            Err(CoreError::InsufficientSamples { .. })
        ));
    }

    #[test]
    fn nonpositive_performance_dropped() {
        let (space, mut samples) = synth_samples(0.0, 9);
        for s in samples.iter_mut() {
            s.latency_slack = Some(0.3);
        }
        let n = samples.len();
        samples[0].performance = 0.0;
        samples[1].performance = -3.0;
        let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default()).unwrap();
        assert_eq!(fitted.samples_used, n - 2);
    }

    #[test]
    fn fitted_model_predicts_power_well() {
        let (space, samples) = synth_samples(0.05, 11);
        let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default()).unwrap();
        let a = space.allocation(vec![6.0, 10.0]).unwrap();
        let predicted = fitted.utility.power_model().power_of(&a);
        // Truth: 50 + 36 + 15 = 101 W.
        assert!((predicted.0 - 101.0).abs() < 8.0, "predicted {predicted}");
    }

    #[test]
    fn singular_profile_grid_rejected() {
        let space = xeon_space();
        // Only ever vary ways, never cores.
        let truth = CobbDouglas::new(100.0, vec![0.5, 0.5]).unwrap();
        let samples: Vec<ProfileSample> = (2..=20)
            .map(|w| {
                let a = space.allocation(vec![4.0, w as f64]).unwrap();
                let perf = truth.evaluate(&a).unwrap();
                ProfileSample::best_effort(a, perf, Watts(80.0))
            })
            .collect();
        assert!(matches!(
            fit_indirect_utility(&space, &samples, &FitOptions::default()),
            Err(CoreError::SingularSystem)
        ));
    }
}

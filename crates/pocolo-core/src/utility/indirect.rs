//! The Cobb-Douglas **indirect utility**: performance maximized over
//! allocations that fit a power budget.
//!
//! This is the paper's analytical core (§III). Given
//!
//! ```text
//! maximize   α₀ ∏ rⱼ^αⱼ
//! subject to P_static + Σ rⱼ pⱼ ≤ Power,   lⱼ ≤ rⱼ ≤ uⱼ
//! ```
//!
//! the unconstrained-in-bounds optimum is the closed-form demand
//! `rⱼ* = (Power − P_static)/pⱼ · αⱼ/Σα`; box constraints are handled by
//! KKT water-filling (binding a violated bound and re-solving the rest),
//! which terminates in at most `k` rounds. The whole solve is `O(k²)` —
//! the "constant time, less than a millisecond" allocation decision of
//! §IV-C.

use std::cell::Cell;
use std::fmt;

use crate::error::CoreError;
use crate::preference::PreferenceVector;
use crate::resources::{Allocation, ResourceSpace};
use crate::units::Watts;
use crate::utility::{CobbDouglas, PowerModel};

thread_local! {
    static MIN_POWER_SOLVES: Cell<u64> = const { Cell::new(0) };
}

/// Number of [`IndirectUtility::min_power_for`] inversions the current
/// thread has performed since it started.
///
/// Each inversion bisects on dozens of demand solves, making it the single
/// most expensive primitive in the stack; callers that are supposed to
/// amortize it (e.g. the cluster matrix builder's expansion-path cache) can
/// snapshot this counter before and after to assert their solve budget.
pub fn min_power_solves_on_thread() -> u64 {
    MIN_POWER_SOLVES.with(Cell::get)
}

/// Result of a demand solve: the power-optimal allocation plus diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandSolution {
    /// The (continuous) optimal allocation.
    pub allocation: Allocation,
    /// Performance achieved at [`DemandSolution::allocation`].
    pub utility: f64,
    /// Power drawn at the optimal allocation (≤ the requested budget).
    pub power: Watts,
    /// Dimensions whose upper bound binds at the optimum.
    pub saturated: Vec<usize>,
}

/// A performance model and a power model over the same resource space,
/// combined under a power budget.
///
/// See the [crate-level documentation](crate) for a full example.
#[derive(Debug, Clone, PartialEq)]
pub struct IndirectUtility {
    space: ResourceSpace,
    perf: CobbDouglas,
    power: PowerModel,
    // Everything below is derived from the three models above at
    // construction time. `demand_solution` sits inside bisection loops
    // (`min_power_for` calls it ~64×), so the per-solve Vec allocations and
    // the λ-bracket scan are hoisted here and reused on every solve.
    lows: Vec<f64>,
    highs: Vec<f64>,
    /// `α_j / p_j` for resources with positive exponent and cost; the KKT
    /// stationarity demand is `r_j(λ) = (α_j/p_j) / λ`.
    ratios: Vec<f64>,
    min_power: Watts,
    max_power: Watts,
    /// λ range over which some resource is unclamped, or `None` when no
    /// resource responds to the multiplier at all.
    lam_bracket: Option<(f64, f64)>,
}

impl IndirectUtility {
    /// Combines a performance and a power model over `space`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the three parts disagree
    /// on the number of direct resources.
    pub fn new(
        space: ResourceSpace,
        perf: CobbDouglas,
        power: PowerModel,
    ) -> Result<Self, CoreError> {
        if perf.len() != space.len() {
            return Err(CoreError::DimensionMismatch {
                expected: space.len(),
                actual: perf.len(),
            });
        }
        if power.len() != space.len() {
            return Err(CoreError::DimensionMismatch {
                expected: space.len(),
                actual: power.len(),
            });
        }
        let lows: Vec<f64> = space.iter().map(|d| d.min()).collect();
        let highs: Vec<f64> = space.iter().map(|d| d.max()).collect();
        let min_power = power
            .power_of_amounts(&lows)
            .expect("space and power model dimensions agree");
        let max_power = power
            .power_of_amounts(&highs)
            .expect("space and power model dimensions agree");
        let alphas = perf.alphas();
        let costs = power.p_dynamic();
        let ratios: Vec<f64> = alphas
            .iter()
            .zip(costs)
            .map(|(&a, &p)| if p > 0.0 { a / p } else { 0.0 })
            .collect();
        let mut lam_lo = f64::MAX;
        let mut lam_hi = f64::MIN_POSITIVE;
        for j in 0..space.len() {
            if alphas[j] > 0.0 && costs[j] > 0.0 {
                lam_lo = lam_lo.min(ratios[j] / highs[j]);
                lam_hi = lam_hi.max(ratios[j] / lows[j]);
            }
        }
        let lam_bracket = (lam_lo <= lam_hi).then_some((lam_lo, lam_hi));
        Ok(IndirectUtility {
            space,
            perf,
            power,
            lows,
            highs,
            ratios,
            min_power,
            max_power,
            lam_bracket,
        })
    }

    /// The resource space the models are defined over.
    pub fn space(&self) -> &ResourceSpace {
        &self.space
    }

    /// The Cobb-Douglas performance model.
    pub fn performance_model(&self) -> &CobbDouglas {
        &self.perf
    }

    /// The linear power model.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The minimum power at which *any* allocation is feasible
    /// (`P_static + Σ pⱼ lⱼ`).
    pub fn min_feasible_power(&self) -> Watts {
        self.min_power
    }

    /// Power drawn with every resource at its maximum.
    pub fn max_power(&self) -> Watts {
        self.max_power
    }

    /// The scaled preference vector `(αⱼ/pⱼ) / Σᵢ(αᵢ/pᵢ)` — relative
    /// performance-per-watt of each direct resource, independent of load or
    /// budget (§III).
    ///
    /// A resource with zero marginal power cost is treated as having a very
    /// small cost so the ratio stays finite.
    pub fn preference_vector(&self) -> PreferenceVector {
        const EPS: f64 = 1e-9;
        let raw: Vec<f64> = self
            .perf
            .alphas()
            .iter()
            .zip(self.power.p_dynamic())
            .map(|(&a, &p)| a / p.max(EPS))
            .collect();
        PreferenceVector::from_raw(raw)
    }

    /// The *direct* (power-oblivious) preference vector `αⱼ / Σα`.
    pub fn direct_preference_vector(&self) -> PreferenceVector {
        PreferenceVector::from_raw(self.perf.alphas().to_vec())
    }

    /// Solves the demand problem: the allocation maximizing performance
    /// under `budget`, respecting the space's box bounds.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InfeasibleBudget`] if `budget` cannot cover the
    /// minimum allocation of every resource.
    pub fn demand(&self, budget: Watts) -> Result<Allocation, CoreError> {
        Ok(self.demand_solution(budget)?.allocation)
    }

    /// Like [`IndirectUtility::demand`] but returns the full
    /// [`DemandSolution`] with utility, power and saturation diagnostics.
    ///
    /// # Errors
    ///
    /// Same as [`IndirectUtility::demand`].
    pub fn demand_solution(&self, budget: Watts) -> Result<DemandSolution, CoreError> {
        let k = self.space.len();
        if budget < self.min_power {
            return Err(CoreError::InfeasibleBudget {
                budget_watts: budget.0,
                required_watts: self.min_power.0,
            });
        }

        let lows = &self.lows;
        let highs = &self.highs;
        let alphas = self.perf.alphas();
        let costs = self.power.p_dynamic();
        let ratios = &self.ratios;

        // KKT stationarity gives r_j(λ) = (α_j/p_j)/λ, clamped into the box;
        // the spend Σ p_j·r_j(λ) is continuous and non-increasing in λ, so
        // the budget-binding multiplier is found by bisection. Resources
        // with α_j = 0 sit at their minimum; free resources (p_j = 0) at
        // their maximum. The ratios and the λ bracket are precomputed by the
        // constructor.
        let r_at = |lambda: f64, j: usize| -> f64 {
            if alphas[j] == 0.0 {
                lows[j]
            } else if costs[j] == 0.0 {
                highs[j]
            } else {
                (ratios[j] / lambda).clamp(lows[j], highs[j])
            }
        };
        let spend = |lambda: f64| -> f64 {
            self.power.p_static().0 + (0..k).map(|j| costs[j] * r_at(lambda, j)).sum::<f64>()
        };

        let amounts: Vec<f64> = if let Some((bracket_lo, bracket_hi)) = self.lam_bracket {
            let mut lam_lo = bracket_lo * 0.5;
            let mut lam_hi = bracket_hi * 2.0;
            if spend(lam_lo) <= budget.0 {
                // Budget covers everything the model wants: all at max.
                (0..k).map(|j| r_at(lam_lo, j)).collect()
            } else {
                // Geometric bisection on the monotone spend curve; lam_hi
                // stays on the under-budget side of the bracket.
                for _ in 0..128 {
                    if lam_hi / lam_lo < 1.0 + 1e-13 {
                        break;
                    }
                    let mid = (lam_lo * lam_hi).sqrt();
                    if spend(mid) > budget.0 {
                        lam_lo = mid;
                    } else {
                        lam_hi = mid;
                    }
                }
                (0..k).map(|j| r_at(lam_hi, j)).collect()
            }
        } else {
            // No resource responds to λ (all fixed by zero-α / zero-cost).
            (0..k).map(|j| r_at(1.0, j)).collect()
        };
        debug_assert!(
            self.power
                .power_of_amounts(&amounts)
                .expect("dimensions agree")
                .0
                <= budget.0 * (1.0 + 1e-9) + 1e-9,
            "demand overspent the budget"
        );

        let allocation = self.space.allocation_clamped(amounts)?;
        let utility = self.perf.evaluate(&allocation)?;
        let power = self.power.power_of(&allocation);
        let saturated = (0..k)
            .filter(|&j| (allocation.amount(j) - highs[j]).abs() < 1e-9)
            .collect();
        Ok(DemandSolution {
            allocation,
            utility,
            power,
            saturated,
        })
    }

    /// Rounds a continuous demand solution to hardware-allocatable whole
    /// units without exceeding `budget`: floors integral resources, then
    /// greedily spends leftover watts on the unit increment with the best
    /// marginal utility per watt.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IndirectUtility::demand`].
    pub fn demand_integral(&self, budget: Watts) -> Result<Allocation, CoreError> {
        let continuous = self.demand(budget)?;
        let mut current = continuous.floored();
        let costs = self.power.p_dynamic();
        loop {
            let power_now = self.power.power_of(&current);
            let headroom = (budget - power_now).0;
            let mut best: Option<(usize, f64)> = None;
            for j in 0..self.space.len() {
                let d = self.space.descriptor(j);
                if !d.is_integral() {
                    continue;
                }
                let next = current.amount(j) + 1.0;
                if next > d.max() + 1e-9 || costs[j] > headroom + 1e-9 {
                    continue;
                }
                let mut amounts = current.amounts().to_vec();
                amounts[j] = next;
                let gain = self.perf.evaluate_amounts(&amounts)? - self.perf.evaluate(&current)?;
                let per_watt = if costs[j] > 0.0 {
                    gain / costs[j]
                } else {
                    f64::MAX
                };
                if best.is_none_or(|(_, g)| per_watt > g) {
                    best = Some((j, per_watt));
                }
            }
            match best {
                Some((j, _)) => {
                    let mut amounts = current.amounts().to_vec();
                    amounts[j] += 1.0;
                    current = self.space.allocation(amounts)?;
                }
                None => break,
            }
        }
        Ok(current)
    }

    /// The indirect utility *value*: best achievable performance under
    /// `budget`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IndirectUtility::demand`].
    pub fn value(&self, budget: Watts) -> Result<f64, CoreError> {
        Ok(self.demand_solution(budget)?.utility)
    }

    /// Inverts the indirect utility: the least power at which `target`
    /// performance is achievable (the dotted expansion path of Fig. 5).
    ///
    /// Solved by bisection on the monotone map `budget → value(budget)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnreachableTarget`] if even the full server
    /// cannot reach `target`, or [`CoreError::InvalidParameter`] if `target`
    /// is not positive.
    pub fn min_power_for(&self, target: f64) -> Result<Watts, CoreError> {
        MIN_POWER_SOLVES.with(|c| c.set(c.get() + 1));
        if !target.is_finite() || target <= 0.0 {
            return Err(CoreError::InvalidParameter(format!(
                "performance target must be positive and finite, got {target}"
            )));
        }
        let lo0 = self.min_feasible_power();
        let hi0 = self.max_power();
        let best = self.value(hi0)?;
        if target > best * (1.0 + 1e-9) {
            return Err(CoreError::UnreachableTarget {
                target,
                achievable: best,
            });
        }
        if self.value(lo0)? >= target {
            return Ok(lo0);
        }
        let (mut lo, mut hi) = (lo0.0, hi0.0);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.value(Watts(mid))? >= target {
                hi = mid;
            } else {
                lo = mid;
            }
            if hi - lo < 1e-9 {
                break;
            }
        }
        Ok(Watts(hi))
    }
}

impl fmt::Display for IndirectUtility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "max {} s.t. {} ≤ budget", self.perf, self.power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceDescriptor;
    use crate::testing::xeon_space;

    fn utility() -> IndirectUtility {
        let space = xeon_space();
        let perf = CobbDouglas::new(100.0, vec![0.6, 0.4]).unwrap();
        let power = PowerModel::new(Watts(50.0), vec![6.0, 1.5]).unwrap();
        IndirectUtility::new(space, perf, power).unwrap()
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let space = xeon_space();
        let perf = CobbDouglas::new(1.0, vec![0.5]).unwrap();
        let power = PowerModel::new(Watts(10.0), vec![1.0, 1.0]).unwrap();
        assert!(IndirectUtility::new(space.clone(), perf, power.clone()).is_err());
        let perf2 = CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap();
        let power1 = PowerModel::new(Watts(10.0), vec![1.0]).unwrap();
        assert!(IndirectUtility::new(space, perf2, power1).is_err());
    }

    #[test]
    fn demand_matches_closed_form_in_interior() {
        let u = utility();
        // Pick a budget so the closed-form lands strictly inside bounds.
        // dyn = 40 W; r_cores = 40*0.6/6 = 4, r_ways = 40*0.4/1.5 = 10.67.
        let d = u.demand(Watts(90.0)).unwrap();
        assert!((d.amount(0) - 4.0).abs() < 1e-9);
        assert!((d.amount(1) - 40.0 * 0.4 / 1.5).abs() < 1e-9);
    }

    #[test]
    fn demand_spends_full_budget_in_interior() {
        let u = utility();
        let sol = u.demand_solution(Watts(90.0)).unwrap();
        assert!((sol.power.0 - 90.0).abs() < 1e-9);
        assert!(sol.saturated.is_empty());
    }

    #[test]
    fn demand_saturates_upper_bounds_for_large_budget() {
        let u = utility();
        let sol = u.demand_solution(Watts(1000.0)).unwrap();
        assert_eq!(sol.allocation.amounts(), &[12.0, 20.0]);
        assert_eq!(sol.saturated, vec![0, 1]);
        assert!(sol.power < Watts(1000.0));
    }

    #[test]
    fn demand_respects_lower_bounds_for_tight_budget() {
        let u = utility();
        // Just above the minimum feasible power of 50 + 6 + 1.5 = 57.5 W.
        let sol = u.demand_solution(Watts(58.0)).unwrap();
        for j in 0..2 {
            assert!(sol.allocation.amount(j) >= u.space().descriptor(j).min() - 1e-9);
        }
        assert!(sol.power <= Watts(58.0 + 1e-9));
    }

    #[test]
    fn demand_rejects_infeasible_budget() {
        let u = utility();
        assert!(matches!(
            u.demand(Watts(40.0)),
            Err(CoreError::InfeasibleBudget { .. })
        ));
    }

    #[test]
    fn demand_beats_random_feasible_points() {
        use rand::prelude::*;
        let u = utility();
        let budget = Watts(100.0);
        let opt = u.value(budget).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let c = rng.gen_range(1.0..=12.0);
            let w = rng.gen_range(1.0..=20.0);
            if u.power_model().power_of_amounts(&[c, w]).unwrap() > budget {
                continue;
            }
            let perf = u.performance_model().evaluate_amounts(&[c, w]).unwrap();
            assert!(
                perf <= opt * (1.0 + 1e-9),
                "random point ({c},{w}) perf {perf} beats optimum {opt}"
            );
        }
    }

    #[test]
    fn value_is_monotone_in_budget() {
        let u = utility();
        let mut prev = 0.0;
        for b in [60, 70, 80, 90, 100, 120, 150, 200] {
            let v = u.value(Watts(b as f64)).unwrap();
            assert!(v >= prev, "value must be non-decreasing in budget");
            prev = v;
        }
    }

    #[test]
    fn min_power_inverts_value() {
        let u = utility();
        let v = u.value(Watts(100.0)).unwrap();
        let p = u.min_power_for(v).unwrap();
        assert!((p.0 - 100.0).abs() < 1e-5, "got {p}");
    }

    #[test]
    fn min_power_unreachable_target() {
        let u = utility();
        let best = u.value(u.max_power()).unwrap();
        assert!(matches!(
            u.min_power_for(best * 2.0),
            Err(CoreError::UnreachableTarget { .. })
        ));
        assert!(u.min_power_for(-1.0).is_err());
    }

    #[test]
    fn min_power_for_trivially_low_target() {
        let u = utility();
        let p = u.min_power_for(1e-6).unwrap();
        assert_eq!(p, u.min_feasible_power());
    }

    #[test]
    fn preference_vector_matches_alpha_over_p() {
        let u = utility();
        let pv = u.preference_vector();
        // alpha/p = [0.1, 0.2667] -> normalized [0.2727, 0.7273]
        let raw0 = 0.6 / 6.0;
        let raw1 = 0.4 / 1.5;
        let total = raw0 + raw1;
        assert!((pv.weight(0) - raw0 / total).abs() < 1e-9);
        assert!((pv.weight(1) - raw1 / total).abs() < 1e-9);
    }

    #[test]
    fn direct_preference_is_power_oblivious() {
        let u = utility();
        let dv = u.direct_preference_vector();
        assert!((dv.weight(0) - 0.6).abs() < 1e-9);
        assert!((dv.weight(1) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn zero_alpha_resource_gets_minimum() {
        let space = xeon_space();
        let perf = CobbDouglas::new(10.0, vec![1.0, 0.0]).unwrap();
        let power = PowerModel::new(Watts(50.0), vec![6.0, 1.5]).unwrap();
        let u = IndirectUtility::new(space, perf, power).unwrap();
        let d = u.demand(Watts(120.0)).unwrap();
        assert_eq!(d.amount(1), 1.0);
    }

    #[test]
    fn free_resource_gets_maximum() {
        let space = xeon_space();
        let perf = CobbDouglas::new(10.0, vec![0.5, 0.5]).unwrap();
        let power = PowerModel::new(Watts(50.0), vec![6.0, 0.0]).unwrap();
        let u = IndirectUtility::new(space, perf, power).unwrap();
        let d = u.demand(Watts(80.0)).unwrap();
        assert_eq!(d.amount(1), 20.0);
    }

    #[test]
    fn demand_integral_is_whole_units_within_budget() {
        let u = utility();
        let budget = Watts(97.0);
        let a = u.demand_integral(budget).unwrap();
        for j in 0..2 {
            assert!((a.amount(j) - a.amount(j).round()).abs() < 1e-9);
        }
        assert!(u.power_model().power_of(&a) <= budget);
    }

    #[test]
    fn demand_integral_uses_leftover_budget() {
        let u = utility();
        let budget = Watts(97.0);
        let a = u.demand_integral(budget).unwrap();
        let leftover = (budget - u.power_model().power_of(&a)).0;
        // No single unit increment should still fit.
        let min_cost = u
            .power_model()
            .p_dynamic()
            .iter()
            .cloned()
            .fold(f64::MAX, f64::min);
        let at_max = (0..2).all(|j| a.amount(j) >= u.space().descriptor(j).max() - 1e-9);
        assert!(at_max || leftover < min_cost + 1e-9);
    }

    #[test]
    fn three_resource_demand() {
        let space = ResourceSpace::builder()
            .resource(ResourceDescriptor::integral("cores", 1.0, 12.0))
            .resource(ResourceDescriptor::integral("ways", 1.0, 20.0))
            .resource(ResourceDescriptor::continuous("membw", 1.0, 10.0))
            .build()
            .unwrap();
        let perf = CobbDouglas::new(10.0, vec![0.5, 0.3, 0.2]).unwrap();
        let power = PowerModel::new(Watts(40.0), vec![6.0, 1.5, 2.0]).unwrap();
        let u = IndirectUtility::new(space, perf, power).unwrap();
        let sol = u.demand_solution(Watts(120.0)).unwrap();
        assert!(sol.power <= Watts(120.0 + 1e-9));
        // Interior optimum: shares proportional to alpha.
        let spend: Vec<f64> = (0..3)
            .map(|j| sol.allocation.amount(j) * u.power_model().p_dynamic()[j])
            .collect();
        let total: f64 = spend.iter().sum();
        assert!((spend[0] / total - 0.5).abs() < 1e-6);
        assert!((spend[2] / total - 0.2).abs() < 1e-6);
    }

    #[test]
    fn solve_counter_counts_inversions_on_this_thread() {
        let u = utility();
        let before = min_power_solves_on_thread();
        u.min_power_for(50.0).unwrap();
        let best = u.value(u.max_power()).unwrap();
        u.min_power_for(best * 2.0).unwrap_err(); // failures are solves too
        assert_eq!(min_power_solves_on_thread() - before, 2);
    }

    #[test]
    fn display_mentions_budget() {
        assert!(format!("{}", utility()).contains("budget"));
    }
}

//! Marginal rates of substitution and the tangency condition.
//!
//! Consumer theory's optimality condition — the geometric heart of Fig. 5:
//! at a power-efficient allocation the indifference curve is *tangent* to
//! the budget line, i.e. the marginal rate of substitution between any two
//! resources equals their marginal power-cost ratio:
//!
//! ```text
//! MRS_ij = (∂U/∂r_i)/(∂U/∂r_j) = p_i / p_j
//! ```
//!
//! The [`tangency_gap`] diagnostic measures how far an allocation is from
//! that condition — near zero for the analytic demand's interior solutions,
//! large for power-oblivious (e.g. random indifference-curve) allocations.

use crate::error::CoreError;
use crate::resources::Allocation;
use crate::utility::IndirectUtility;

/// The marginal rate of substitution of resource `i` for resource `j` at
/// `allocation`: how many units of `j` the application would trade for one
/// more unit of `i` at equal performance.
///
/// For Cobb-Douglas this is `(αᵢ/αⱼ)·(rⱼ/rᵢ)`.
///
/// # Errors
///
/// Returns [`CoreError::DimensionMismatch`] for out-of-range indices and
/// [`CoreError::InvalidParameter`] if `αⱼ = 0` (resource `j` has no
/// marginal value, so the rate is undefined).
pub fn mrs(
    utility: &IndirectUtility,
    allocation: &Allocation,
    i: usize,
    j: usize,
) -> Result<f64, CoreError> {
    let alphas = utility.performance_model().alphas();
    if i >= alphas.len() || j >= alphas.len() {
        return Err(CoreError::DimensionMismatch {
            expected: alphas.len(),
            actual: i.max(j),
        });
    }
    if alphas[j] == 0.0 {
        return Err(CoreError::InvalidParameter(
            "resource j has zero marginal utility; MRS undefined".into(),
        ));
    }
    let mi = utility.performance_model().marginal(allocation, i)?;
    let mj = utility.performance_model().marginal(allocation, j)?;
    Ok(mi / mj)
}

/// How far `allocation` deviates from the tangency condition, as the
/// maximum over resource pairs of `|ln(MRS_ij · pⱼ/pᵢ)|` — zero exactly at
/// an interior power-efficient allocation, and symmetric in over-/under-
/// provisioning. Pairs involving a zero exponent or zero cost are skipped.
///
/// # Errors
///
/// Propagates evaluation errors from the underlying models.
pub fn tangency_gap(utility: &IndirectUtility, allocation: &Allocation) -> Result<f64, CoreError> {
    let alphas = utility.performance_model().alphas();
    let costs = utility.power_model().p_dynamic();
    let k = alphas.len();
    let mut worst: f64 = 0.0;
    for i in 0..k {
        for j in (i + 1)..k {
            if alphas[i] == 0.0 || alphas[j] == 0.0 || costs[i] == 0.0 || costs[j] == 0.0 {
                continue;
            }
            let rate = mrs(utility, allocation, i, j)?;
            let price_ratio = costs[i] / costs[j];
            worst = worst.max((rate / price_ratio).ln().abs());
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::xeon_space;
    use crate::units::Watts;
    use crate::utility::{CobbDouglas, PowerModel};

    fn utility() -> IndirectUtility {
        IndirectUtility::new(
            xeon_space(),
            CobbDouglas::new(100.0, vec![0.6, 0.4]).unwrap(),
            PowerModel::new(Watts(50.0), vec![6.0, 1.5]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn mrs_closed_form() {
        // Cobb-Douglas: MRS_01 = (α0/α1)·(r1/r0) = (0.6/0.4)·(10/4) = 3.75.
        let u = utility();
        let a = u.space().allocation(vec![4.0, 10.0]).unwrap();
        let rate = mrs(&u, &a, 0, 1).unwrap();
        assert!((rate - 3.75).abs() < 1e-9);
        // Antisymmetry: MRS_10 = 1/MRS_01.
        let inv = mrs(&u, &a, 1, 0).unwrap();
        assert!((rate * inv - 1.0).abs() < 1e-9);
    }

    #[test]
    fn demand_solutions_satisfy_tangency() {
        let u = utility();
        // Interior demand (budget well inside the box).
        let d = u.demand(Watts(95.0)).unwrap();
        let gap = tangency_gap(&u, &d).unwrap();
        assert!(gap < 1e-6, "interior optimum must be tangent, gap {gap}");
    }

    #[test]
    fn saturated_demand_may_break_tangency() {
        // With a huge budget the upper bounds bind; the KKT condition
        // becomes an inequality and the tangency gap is legitimately
        // non-zero.
        let u = utility();
        let d = u.demand(Watts(1000.0)).unwrap();
        assert_eq!(d.amounts(), &[12.0, 20.0]);
        let gap = tangency_gap(&u, &d).unwrap();
        assert!(gap.is_finite());
    }

    #[test]
    fn power_oblivious_allocations_have_large_gaps() {
        // Points on the same indifference curve as the optimum, chosen
        // without regard to power, violate tangency.
        let u = utility();
        let opt = u.demand(Watts(95.0)).unwrap();
        let target = u.performance_model().evaluate(&opt).unwrap();
        let opt_gap = tangency_gap(&u, &opt).unwrap();
        for cores in [2.0, 8.0, 11.0] {
            let ways = u
                .performance_model()
                .solve_for_resource(&[cores, 0.0], 1, target)
                .unwrap();
            if !(1.0..=20.0).contains(&ways) {
                continue;
            }
            let point = u.space().allocation(vec![cores, ways]).unwrap();
            let gap = tangency_gap(&u, &point).unwrap();
            assert!(
                gap > opt_gap + 0.1,
                "iso-perf point ({cores},{ways}) should be far from tangency: {gap}"
            );
        }
    }

    #[test]
    fn gap_grows_with_distance_from_optimum() {
        let u = utility();
        let opt = u.demand(Watts(95.0)).unwrap();
        let target = u.performance_model().evaluate(&opt).unwrap();
        let gap_at = |cores: f64| {
            let ways = u
                .performance_model()
                .solve_for_resource(&[cores, 0.0], 1, target)
                .unwrap();
            let p = u.space().allocation(vec![cores, ways]).unwrap();
            tangency_gap(&u, &p).unwrap()
        };
        let near = gap_at(opt.amount(0) * 1.1);
        let far = gap_at(opt.amount(0) * 2.0);
        assert!(far > near);
    }

    #[test]
    fn error_paths() {
        let u = utility();
        let a = u.space().allocation(vec![4.0, 10.0]).unwrap();
        assert!(mrs(&u, &a, 0, 7).is_err());
        let flat = IndirectUtility::new(
            xeon_space(),
            CobbDouglas::new(10.0, vec![1.0, 0.0]).unwrap(),
            PowerModel::new(Watts(10.0), vec![1.0, 1.0]).unwrap(),
        )
        .unwrap();
        assert!(mrs(&flat, &a, 0, 1).is_err());
        // Zero-exponent pairs are skipped in the gap (no panic, finite).
        assert!(tangency_gap(&flat, &a).unwrap().abs() < 1e-12);
    }
}

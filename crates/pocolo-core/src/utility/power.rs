//! The linear power model: power as a function of direct-resource
//! allocations.

use std::fmt;

use crate::error::CoreError;
use crate::resources::Allocation;
use crate::units::Watts;

/// Additive power model `P(r) = P_static + Σⱼ rⱼ·pⱼ`.
///
/// `pⱼ` is the marginal power cost (watts per unit) of direct resource `j`;
/// `P_static` covers leakage and platform power that is drawn regardless of
/// allocation. This is the budget-line of the paper's indirect utility
/// formulation (Eq. 2).
///
/// ```
/// use pocolo_core::{PowerModel, ResourceSpace, Watts};
/// # fn main() -> Result<(), pocolo_core::CoreError> {
/// let space = ResourceSpace::cores_and_ways();
/// let model = PowerModel::new(Watts(50.0), vec![6.0, 1.5])?;
/// let a = space.allocation(vec![4.0, 10.0])?;
/// assert_eq!(model.power_of(&a), Watts(50.0 + 24.0 + 15.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    p_static: Watts,
    p_dynamic: Vec<f64>,
}

impl PowerModel {
    /// Creates a power model from static power and per-resource marginal
    /// costs (watts per unit of each resource).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if static power is negative or
    /// non-finite, if the cost vector is empty, or if any cost is negative
    /// or non-finite.
    pub fn new(p_static: Watts, p_dynamic: Vec<f64>) -> Result<Self, CoreError> {
        if !p_static.is_valid() {
            return Err(CoreError::InvalidParameter(format!(
                "static power must be finite and non-negative, got {}",
                p_static.0
            )));
        }
        if p_dynamic.is_empty() {
            return Err(CoreError::InvalidParameter(
                "at least one marginal power cost is required".into(),
            ));
        }
        for (j, &p) in p_dynamic.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                return Err(CoreError::InvalidParameter(format!(
                    "marginal power p[{j}] must be non-negative and finite, got {p}"
                )));
            }
        }
        Ok(PowerModel {
            p_static,
            p_dynamic,
        })
    }

    /// Static (allocation-independent) power.
    pub fn p_static(&self) -> Watts {
        self.p_static
    }

    /// Marginal power costs per resource unit.
    pub fn p_dynamic(&self) -> &[f64] {
        &self.p_dynamic
    }

    /// Number of direct resources, `k`.
    pub fn len(&self) -> usize {
        self.p_dynamic.len()
    }

    /// True if the model covers no resources (never for constructed models).
    pub fn is_empty(&self) -> bool {
        self.p_dynamic.is_empty()
    }

    /// Power drawn at an allocation.
    pub fn power_of(&self, allocation: &Allocation) -> Watts {
        self.power_of_amounts(allocation.amounts())
            .expect("allocation built from a space has consistent dimensionality")
    }

    /// Power drawn at raw resource amounts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] on length mismatch.
    pub fn power_of_amounts(&self, amounts: &[f64]) -> Result<Watts, CoreError> {
        if amounts.len() != self.p_dynamic.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.p_dynamic.len(),
                actual: amounts.len(),
            });
        }
        let dynamic: f64 = self
            .p_dynamic
            .iter()
            .zip(amounts)
            .map(|(&p, &r)| p * r)
            .sum();
        Ok(self.p_static + Watts(dynamic))
    }

    /// The dynamic budget left after static power: `budget - P_static`.
    ///
    /// Returns zero watts (not a negative value) when the budget does not
    /// even cover static power.
    pub fn dynamic_budget(&self, budget: Watts) -> Watts {
        (budget - self.p_static).max(Watts::ZERO)
    }
}

impl fmt::Display for PowerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} W", self.p_static.0)?;
        for (j, p) in self.p_dynamic.iter().enumerate() {
            write!(f, " + {:.2}·r{}", p, j)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::xeon_space;

    #[test]
    fn rejects_bad_parameters() {
        assert!(PowerModel::new(Watts(-1.0), vec![1.0]).is_err());
        assert!(PowerModel::new(Watts(f64::NAN), vec![1.0]).is_err());
        assert!(PowerModel::new(Watts(50.0), vec![]).is_err());
        assert!(PowerModel::new(Watts(50.0), vec![-0.5]).is_err());
        assert!(PowerModel::new(Watts(50.0), vec![f64::INFINITY]).is_err());
        assert!(PowerModel::new(Watts(0.0), vec![0.0]).is_ok());
    }

    #[test]
    fn power_is_additive() {
        let m = PowerModel::new(Watts(50.0), vec![6.0, 1.5]).unwrap();
        let space = xeon_space();
        let a = space.allocation(vec![12.0, 20.0]).unwrap();
        assert_eq!(m.power_of(&a), Watts(50.0 + 72.0 + 30.0));
        let b = space.min_allocation();
        assert_eq!(m.power_of(&b), Watts(50.0 + 6.0 + 1.5));
    }

    #[test]
    fn power_dimension_mismatch() {
        let m = PowerModel::new(Watts(50.0), vec![6.0, 1.5]).unwrap();
        assert!(matches!(
            m.power_of_amounts(&[1.0]),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn dynamic_budget_floors_at_zero() {
        let m = PowerModel::new(Watts(50.0), vec![6.0]).unwrap();
        assert_eq!(m.dynamic_budget(Watts(110.0)), Watts(60.0));
        assert_eq!(m.dynamic_budget(Watts(30.0)), Watts::ZERO);
    }

    #[test]
    fn display_shows_parameters() {
        let m = PowerModel::new(Watts(50.0), vec![6.0, 1.5]).unwrap();
        let s = format!("{m}");
        assert!(s.contains("50.00 W"));
        assert!(s.contains("6.00·r0"));
    }
}

//! The Cobb-Douglas direct utility (performance) function.

use std::fmt;

use crate::error::CoreError;
use crate::resources::Allocation;

/// Cobb-Douglas performance model `U(r) = α₀ · ∏ⱼ rⱼ^αⱼ`.
///
/// The exponents `αⱼ ≥ 0` capture the relative impact of each direct
/// resource on performance; `α₀ > 0` is a scale constant. Prior work (REF
/// \[8\] in the paper) showed this form captures applications that need more
/// than one resource type and reproduces the *resource indifference* effect:
/// many (cores, ways) combinations yield the same performance.
///
/// ```
/// use pocolo_core::{CobbDouglas, ResourceSpace};
/// # fn main() -> Result<(), pocolo_core::CoreError> {
/// let space = ResourceSpace::cores_and_ways();
/// let model = CobbDouglas::new(100.0, vec![0.6, 0.4])?;
/// let a = space.allocation(vec![4.0, 10.0])?;
/// let b = space.allocation(vec![8.0, 10.0])?;
/// assert!(model.evaluate(&a)? < model.evaluate(&b)?); // more cores → more perf
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CobbDouglas {
    alpha0: f64,
    alphas: Vec<f64>,
    // Hoisted out of the evaluation hot path: `ln α₀` shows up in every
    // log-space evaluation and `Σα` in every returns-to-scale query, so both
    // are computed once here instead of per call.
    ln_alpha0: f64,
    alpha_sum: f64,
}

impl CobbDouglas {
    /// Creates a model from the scale constant `α₀` and exponents `αⱼ`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `α₀` is not a positive
    /// finite number, if any exponent is negative or non-finite, or if all
    /// exponents are zero (performance would be resource-independent).
    pub fn new(alpha0: f64, alphas: Vec<f64>) -> Result<Self, CoreError> {
        if !alpha0.is_finite() || alpha0 <= 0.0 {
            return Err(CoreError::InvalidParameter(format!(
                "alpha0 must be positive and finite, got {alpha0}"
            )));
        }
        if alphas.is_empty() {
            return Err(CoreError::InvalidParameter(
                "at least one exponent is required".into(),
            ));
        }
        for (j, &a) in alphas.iter().enumerate() {
            if !a.is_finite() || a < 0.0 {
                return Err(CoreError::InvalidParameter(format!(
                    "alpha[{j}] must be non-negative and finite, got {a}"
                )));
            }
        }
        if alphas.iter().all(|&a| a == 0.0) {
            return Err(CoreError::InvalidParameter(
                "all exponents are zero; performance would not depend on any resource".into(),
            ));
        }
        let ln_alpha0 = alpha0.ln();
        let alpha_sum = alphas.iter().sum();
        Ok(CobbDouglas {
            alpha0,
            alphas,
            ln_alpha0,
            alpha_sum,
        })
    }

    /// The scale constant `α₀`.
    pub fn alpha0(&self) -> f64 {
        self.alpha0
    }

    /// The exponent vector `αⱼ`.
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Number of direct resources, `k`.
    pub fn len(&self) -> usize {
        self.alphas.len()
    }

    /// True if the model has no resource dimensions (never for constructed
    /// models).
    pub fn is_empty(&self) -> bool {
        self.alphas.is_empty()
    }

    /// Sum of the exponents, `Σαⱼ` — the model's returns-to-scale.
    pub fn returns_to_scale(&self) -> f64 {
        self.alpha_sum
    }

    /// Evaluates performance at an allocation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the allocation's
    /// dimensionality differs from the model's.
    pub fn evaluate(&self, allocation: &Allocation) -> Result<f64, CoreError> {
        self.evaluate_amounts(allocation.amounts())
    }

    /// Evaluates performance at raw resource amounts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] on length mismatch and
    /// [`CoreError::InvalidAllocation`] if an amount with a positive exponent
    /// is not strictly positive.
    pub fn evaluate_amounts(&self, amounts: &[f64]) -> Result<f64, CoreError> {
        Ok(self.log_evaluate_amounts(amounts)?.exp())
    }

    /// Evaluates `ln U(r)` — the form used for least-squares fitting.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CobbDouglas::evaluate_amounts`].
    pub fn log_evaluate_amounts(&self, amounts: &[f64]) -> Result<f64, CoreError> {
        if amounts.len() != self.alphas.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.alphas.len(),
                actual: amounts.len(),
            });
        }
        let mut log_u = self.ln_alpha0;
        for (j, (&a, &r)) in self.alphas.iter().zip(amounts).enumerate() {
            if a == 0.0 {
                continue;
            }
            if r <= 0.0 {
                return Err(CoreError::InvalidAllocation(format!(
                    "resource {j} amount {r} must be > 0 for a positive exponent"
                )));
            }
            log_u += a * r.ln();
        }
        Ok(log_u)
    }

    /// Marginal utility `∂U/∂rⱼ` at an allocation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CobbDouglas::evaluate`]; additionally `j` must be
    /// in range or a [`CoreError::DimensionMismatch`] is returned.
    pub fn marginal(&self, allocation: &Allocation, j: usize) -> Result<f64, CoreError> {
        if j >= self.alphas.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.alphas.len(),
                actual: j,
            });
        }
        let u = self.evaluate(allocation)?;
        Ok(self.alphas[j] * u / allocation.amount(j))
    }

    /// Solves for the amount of resource `j` that achieves `target`
    /// performance when every *other* amount is fixed as in `amounts`
    /// (the entry at `j` is ignored).
    ///
    /// This is the workhorse for tracing indifference curves.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `αⱼ = 0` (resource `j`
    /// cannot move performance) or if `target` is not positive.
    pub fn solve_for_resource(
        &self,
        amounts: &[f64],
        j: usize,
        target: f64,
    ) -> Result<f64, CoreError> {
        if j >= self.alphas.len() || amounts.len() != self.alphas.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.alphas.len(),
                actual: amounts.len().max(j),
            });
        }
        if self.alphas[j] == 0.0 {
            return Err(CoreError::InvalidParameter(format!(
                "resource {j} has zero exponent; cannot solve for it"
            )));
        }
        if target.is_nan() || target <= 0.0 {
            return Err(CoreError::InvalidParameter(format!(
                "target performance must be positive, got {target}"
            )));
        }
        let mut log_rest = self.ln_alpha0;
        for (i, (&a, &r)) in self.alphas.iter().zip(amounts).enumerate() {
            if i == j || a == 0.0 {
                continue;
            }
            if r <= 0.0 {
                return Err(CoreError::InvalidAllocation(format!(
                    "resource {i} amount {r} must be > 0"
                )));
            }
            log_rest += a * r.ln();
        }
        // target = exp(log_rest) * r_j^alpha_j  =>  r_j = exp((ln target - log_rest)/alpha_j)
        Ok(((target.ln() - log_rest) / self.alphas[j]).exp())
    }
}

impl fmt::Display for CobbDouglas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.alpha0)?;
        for (j, a) in self.alphas.iter().enumerate() {
            write!(f, "·r{}^{:.3}", j, a)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::xeon_space;

    fn model() -> CobbDouglas {
        CobbDouglas::new(100.0, vec![0.6, 0.4]).unwrap()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(CobbDouglas::new(0.0, vec![0.5]).is_err());
        assert!(CobbDouglas::new(-1.0, vec![0.5]).is_err());
        assert!(CobbDouglas::new(f64::NAN, vec![0.5]).is_err());
        assert!(CobbDouglas::new(1.0, vec![]).is_err());
        assert!(CobbDouglas::new(1.0, vec![-0.1]).is_err());
        assert!(CobbDouglas::new(1.0, vec![0.0, 0.0]).is_err());
        assert!(CobbDouglas::new(1.0, vec![0.0, 0.5]).is_ok());
    }

    #[test]
    fn evaluate_known_value() {
        let m = model();
        // 100 * 4^0.6 * 16^0.4
        let expected = 100.0 * 4f64.powf(0.6) * 16f64.powf(0.4);
        let got = m.evaluate_amounts(&[4.0, 16.0]).unwrap();
        assert!((got - expected).abs() < 1e-9);
    }

    #[test]
    fn evaluate_is_monotone_in_each_resource() {
        let m = model();
        let space = xeon_space();
        let base = m
            .evaluate(&space.allocation(vec![4.0, 10.0]).unwrap())
            .unwrap();
        let more_cores = m
            .evaluate(&space.allocation(vec![5.0, 10.0]).unwrap())
            .unwrap();
        let more_ways = m
            .evaluate(&space.allocation(vec![4.0, 11.0]).unwrap())
            .unwrap();
        assert!(more_cores > base);
        assert!(more_ways > base);
    }

    #[test]
    fn zero_exponent_ignores_resource() {
        let m = CobbDouglas::new(10.0, vec![1.0, 0.0]).unwrap();
        let a = m.evaluate_amounts(&[2.0, 5.0]).unwrap();
        let b = m.evaluate_amounts(&[2.0, 50.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
        // Zero amount allowed where the exponent is zero.
        assert!(m.evaluate_amounts(&[2.0, 0.0]).is_ok());
    }

    #[test]
    fn rejects_nonpositive_amount_with_positive_exponent() {
        let m = model();
        assert!(matches!(
            m.evaluate_amounts(&[0.0, 4.0]),
            Err(CoreError::InvalidAllocation(_))
        ));
        assert!(matches!(
            m.evaluate_amounts(&[-1.0, 4.0]),
            Err(CoreError::InvalidAllocation(_))
        ));
    }

    #[test]
    fn dimension_mismatch() {
        let m = model();
        assert!(matches!(
            m.evaluate_amounts(&[1.0]),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn marginal_matches_finite_difference() {
        let m = model();
        let space = xeon_space();
        let a = space.allocation(vec![4.0, 10.0]).unwrap();
        let analytic = m.marginal(&a, 0).unwrap();
        let eps = 1e-6;
        let hi = m.evaluate_amounts(&[4.0 + eps, 10.0]).unwrap();
        let lo = m.evaluate_amounts(&[4.0 - eps, 10.0]).unwrap();
        let numeric = (hi - lo) / (2.0 * eps);
        assert!((analytic - numeric).abs() / numeric < 1e-6);
    }

    #[test]
    fn solve_for_resource_round_trips() {
        let m = model();
        let target = m.evaluate_amounts(&[4.0, 10.0]).unwrap();
        // Fix ways at 10, solve for cores achieving the same target.
        let c = m.solve_for_resource(&[0.0, 10.0], 0, target).unwrap();
        assert!((c - 4.0).abs() < 1e-9);
        // Fix cores at 4, solve for ways.
        let w = m.solve_for_resource(&[4.0, 0.0], 1, target).unwrap();
        assert!((w - 10.0).abs() < 1e-9);
    }

    #[test]
    fn solve_for_resource_errors() {
        let m = CobbDouglas::new(10.0, vec![1.0, 0.0]).unwrap();
        assert!(m.solve_for_resource(&[1.0, 1.0], 1, 5.0).is_err());
        let m = model();
        assert!(m.solve_for_resource(&[1.0, 1.0], 0, -5.0).is_err());
        assert!(m.solve_for_resource(&[1.0, 1.0], 7, 5.0).is_err());
    }

    #[test]
    fn returns_to_scale() {
        assert!((model().returns_to_scale() - 1.0).abs() < 1e-12);
        let m = CobbDouglas::new(1.0, vec![0.3, 0.3]).unwrap();
        assert!((m.returns_to_scale() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn display_shows_parameters() {
        let s = format!("{}", model());
        assert!(s.contains("100.000"));
        assert!(s.contains("r0^0.600"));
    }
}

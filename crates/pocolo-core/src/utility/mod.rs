//! Utility functions: Cobb-Douglas performance models, linear power models,
//! and the indirect utility that combines them under a power budget.

mod cobb_douglas;
mod indirect;
mod power;
pub mod substitution;

pub use cobb_douglas::CobbDouglas;
pub use indirect::{min_power_solves_on_thread, DemandSolution, IndirectUtility};
pub use power::PowerModel;
pub use substitution::{mrs, tangency_gap};

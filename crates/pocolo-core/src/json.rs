//! JSON conversions for the core model types.
//!
//! Serialization goes through [`pocolo_json::ToJson`]; deserialization
//! ([`pocolo_json::FromJson`]) rebuilds models through their public
//! constructors, so parsed values are re-validated on the way in.

use crate::fit::diagnostics::{AxisDiagnostics, ConvexityReport};
use crate::resources::{ResourceDescriptor, ResourceSpace};
use crate::units::{Joules, Watts};
use crate::utility::{CobbDouglas, IndirectUtility, PowerModel};
use pocolo_json::{FromJson, ToJson, Value};

impl ToJson for Watts {
    fn to_json(&self) -> Value {
        Value::Number(self.0)
    }
}

impl FromJson for Watts {
    fn from_json(value: &Value) -> Option<Self> {
        value.as_f64().map(Watts)
    }
}

impl ToJson for Joules {
    fn to_json(&self) -> Value {
        Value::Number(self.0)
    }
}

impl FromJson for Joules {
    fn from_json(value: &Value) -> Option<Self> {
        value.as_f64().map(Joules)
    }
}

impl ToJson for ResourceDescriptor {
    fn to_json(&self) -> Value {
        pocolo_json::json!({
            "name": self.name(),
            "min": self.min(),
            "max": self.max(),
            "integral": self.is_integral(),
        })
    }
}

impl FromJson for ResourceDescriptor {
    fn from_json(value: &Value) -> Option<Self> {
        let name = value["name"].as_str()?;
        let min = value["min"].as_f64()?;
        let max = value["max"].as_f64()?;
        Some(if value["integral"].as_bool()? {
            ResourceDescriptor::integral(name, min, max)
        } else {
            ResourceDescriptor::continuous(name, min, max)
        })
    }
}

impl ToJson for ResourceSpace {
    fn to_json(&self) -> Value {
        let descriptors: Vec<&ResourceDescriptor> =
            (0..self.len()).map(|j| self.descriptor(j)).collect();
        pocolo_json::json!({ "descriptors": descriptors })
    }
}

impl FromJson for ResourceSpace {
    fn from_json(value: &Value) -> Option<Self> {
        let descriptors: Vec<ResourceDescriptor> = FromJson::from_json(&value["descriptors"])?;
        descriptors
            .into_iter()
            .fold(ResourceSpace::builder(), |b, d| b.resource(d))
            .build()
            .ok()
    }
}

impl ToJson for CobbDouglas {
    fn to_json(&self) -> Value {
        pocolo_json::json!({
            "alpha0": self.alpha0(),
            "alphas": self.alphas(),
        })
    }
}

impl FromJson for CobbDouglas {
    fn from_json(value: &Value) -> Option<Self> {
        CobbDouglas::new(
            value["alpha0"].as_f64()?,
            FromJson::from_json(&value["alphas"])?,
        )
        .ok()
    }
}

impl ToJson for PowerModel {
    fn to_json(&self) -> Value {
        pocolo_json::json!({
            "p_static": self.p_static(),
            "p_dynamic": self.p_dynamic(),
        })
    }
}

impl FromJson for PowerModel {
    fn from_json(value: &Value) -> Option<Self> {
        PowerModel::new(
            Watts::from_json(&value["p_static"])?,
            FromJson::from_json(&value["p_dynamic"])?,
        )
        .ok()
    }
}

impl ToJson for IndirectUtility {
    fn to_json(&self) -> Value {
        pocolo_json::json!({
            "space": self.space(),
            "perf": self.performance_model(),
            "power": self.power_model(),
        })
    }
}

impl FromJson for IndirectUtility {
    fn from_json(value: &Value) -> Option<Self> {
        IndirectUtility::new(
            ResourceSpace::from_json(&value["space"])?,
            CobbDouglas::from_json(&value["perf"])?,
            PowerModel::from_json(&value["power"])?,
        )
        .ok()
    }
}

pocolo_json::impl_to_json!(AxisDiagnostics {
    resource,
    triples,
    convexity_violations,
    monotonicity_violations,
});

pocolo_json::impl_to_json!(ConvexityReport { axes, tolerance });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::xeon_space;

    #[test]
    fn utility_round_trips() {
        let space = xeon_space();
        let perf = CobbDouglas::new(2.0, vec![0.6, 0.3]).unwrap();
        let power = PowerModel::new(Watts(55.0), vec![6.0, 0.5]).unwrap();
        let utility = IndirectUtility::new(space, perf, power).unwrap();
        let text = pocolo_json::to_string(&utility);
        let back: IndirectUtility = pocolo_json::typed_from_str(&text).unwrap();
        assert_eq!(utility, back);
    }

    #[test]
    fn malformed_utility_is_rejected() {
        assert!(pocolo_json::typed_from_str::<IndirectUtility>("{}").is_none());
        // Mismatched dimensions fail IndirectUtility::new's validation.
        let text = r#"{
            "space": {"descriptors": [{"name": "cores", "min": 1, "max": 12, "integral": true}]},
            "perf": {"alpha0": 2.0, "alphas": [0.6, 0.3]},
            "power": {"p_static": 55.0, "p_dynamic": [6.0]}
        }"#;
        assert!(pocolo_json::typed_from_str::<IndirectUtility>(text).is_none());
    }
}

//! Resource preference vectors and complementarity scoring.
//!
//! The paper's placement insight (§III): co-locate applications whose
//! *indirect* preference vectors `(αⱼ/pⱼ)` are **complementary** — they
//! derive performance-per-watt from different resources, so neither starves
//! the other under a shared power cap.

use std::fmt;

/// A normalized resource-preference vector: non-negative weights summing
/// to 1, one per direct resource.
///
/// ```
/// use pocolo_core::PreferenceVector;
/// let sphinx = PreferenceVector::from_raw(vec![0.2, 0.8]);
/// let graph  = PreferenceVector::from_raw(vec![0.8, 0.2]);
/// let lstm   = PreferenceVector::from_raw(vec![0.13, 0.87]);
/// // Graph complements sphinx better than LSTM does.
/// assert!(sphinx.complementarity(&graph) > sphinx.complementarity(&lstm));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PreferenceVector {
    weights: Vec<f64>,
}

impl PreferenceVector {
    /// Normalizes raw (non-negative) scores into a preference vector.
    ///
    /// Negative or non-finite entries are treated as zero. If every entry is
    /// zero the result is uniform (total indifference).
    pub fn from_raw(raw: Vec<f64>) -> Self {
        assert!(!raw.is_empty(), "preference vector needs >= 1 dimension");
        let cleaned: Vec<f64> = raw
            .into_iter()
            .map(|v| if v.is_finite() && v > 0.0 { v } else { 0.0 })
            .collect();
        let total: f64 = cleaned.iter().sum();
        let weights = if total > 0.0 {
            cleaned.into_iter().map(|v| v / total).collect()
        } else {
            let n = cleaned.len();
            vec![1.0 / n as f64; n]
        };
        PreferenceVector { weights }
    }

    /// The normalized weights (sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Weight of resource `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn weight(&self, j: usize) -> f64 {
        self.weights[j]
    }

    /// Number of resource dimensions.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Always false for constructed vectors.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The resource this application most prefers.
    pub fn dominant_resource(&self) -> usize {
        self.weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
            .map(|(j, _)| j)
            .expect("non-empty by construction")
    }

    /// Complementarity with another preference vector in `[0, 1]`:
    /// the total-variation distance `½ Σ |aⱼ − bⱼ|`.
    ///
    /// `1` means the two applications want entirely different resources
    /// (perfect co-runners under a power cap); `0` means identical
    /// preferences (maximal power contention).
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn complementarity(&self, other: &PreferenceVector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "preference vectors must have equal dimensionality"
        );
        0.5 * self
            .weights
            .iter()
            .zip(&other.weights)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    }

    /// Similarity, `1 − complementarity`.
    pub fn similarity(&self, other: &PreferenceVector) -> f64 {
        1.0 - self.complementarity(other)
    }
}

impl fmt::Display for PreferenceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, w) in self.weights.iter().enumerate() {
            if i > 0 {
                write!(f, ":")?;
            }
            write!(f, "{w:.2}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        let pv = PreferenceVector::from_raw(vec![2.0, 6.0]);
        assert!((pv.weight(0) - 0.25).abs() < 1e-12);
        assert!((pv.weight(1) - 0.75).abs() < 1e-12);
        assert!((pv.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_become_uniform() {
        let pv = PreferenceVector::from_raw(vec![0.0, 0.0]);
        assert_eq!(pv.weights(), &[0.5, 0.5]);
        let pv = PreferenceVector::from_raw(vec![f64::NAN, -3.0, 0.0]);
        assert!((pv.weight(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn negative_entries_dropped() {
        let pv = PreferenceVector::from_raw(vec![-1.0, 1.0]);
        assert_eq!(pv.weights(), &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = ">= 1 dimension")]
    fn empty_raw_panics() {
        let _ = PreferenceVector::from_raw(vec![]);
    }

    #[test]
    fn dominant_resource() {
        let pv = PreferenceVector::from_raw(vec![0.2, 0.8]);
        assert_eq!(pv.dominant_resource(), 1);
        let pv = PreferenceVector::from_raw(vec![0.9, 0.1]);
        assert_eq!(pv.dominant_resource(), 0);
    }

    #[test]
    fn complementarity_bounds() {
        let a = PreferenceVector::from_raw(vec![1.0, 0.0]);
        let b = PreferenceVector::from_raw(vec![0.0, 1.0]);
        assert!((a.complementarity(&b) - 1.0).abs() < 1e-12);
        assert!((a.complementarity(&a) - 0.0).abs() < 1e-12);
        assert!((a.similarity(&b) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn complementarity_is_symmetric() {
        let a = PreferenceVector::from_raw(vec![0.3, 0.7]);
        let b = PreferenceVector::from_raw(vec![0.6, 0.4]);
        assert!((a.complementarity(&b) - b.complementarity(&a)).abs() < 1e-12);
    }

    #[test]
    fn paper_example_sphinx_pairs_with_graph() {
        // §III: sphinx α/p = 0.28:0.72; LSTM 0.13:0.87; Graph 0.8:0.2.
        let sphinx = PreferenceVector::from_raw(vec![0.28, 0.72]);
        let lstm = PreferenceVector::from_raw(vec![0.13, 0.87]);
        let graph = PreferenceVector::from_raw(vec![0.8, 0.2]);
        assert!(sphinx.complementarity(&graph) > sphinx.complementarity(&lstm));
    }

    #[test]
    #[should_panic(expected = "equal dimensionality")]
    fn mismatched_lengths_panic() {
        let a = PreferenceVector::from_raw(vec![1.0]);
        let b = PreferenceVector::from_raw(vec![0.5, 0.5]);
        let _ = a.complementarity(&b);
    }

    #[test]
    fn display_format() {
        let pv = PreferenceVector::from_raw(vec![0.2, 0.8]);
        assert_eq!(format!("{pv}"), "(0.20:0.80)");
    }
}

//! # pocolo-core
//!
//! Economics-based framework for reasoning about resource demand in
//! power-constrained servers, reproducing the analytical core of
//! *"Pocolo: Power Optimized Colocation in Power Constrained Environments"*
//! (IISWC 2020).
//!
//! The central abstraction is the **Cobb-Douglas indirect utility function**:
//! application performance is modelled as
//!
//! ```text
//! Performance = α₀ · ∏ⱼ rⱼ^αⱼ    subject to    P_static + Σⱼ rⱼ·pⱼ ≤ Power
//! ```
//!
//! where `rⱼ` are allocations of *direct* resources (cores, LLC ways, …) and
//! power is the *indirect* resource consumed as a consequence of consuming
//! the direct ones. From this model the crate derives:
//!
//! - the analytic **demand function** — the power-optimal allocation for any
//!   budget in `O(k)` ([`IndirectUtility::demand`]);
//! - the **preference vector** `(αⱼ/pⱼ)` ranking resources by
//!   performance-per-watt ([`IndirectUtility::preference_vector`]);
//! - **indifference curves** and least-power **expansion paths**
//!   ([`curves::indifference`]);
//! - the **Edgeworth box** analysis of spare capacity for a co-runner
//!   ([`curves::edgeworth`]);
//! - **model fitting** from profiled samples via log-space least squares
//!   ([`fit`]).
//!
//! # Example
//!
//! ```
//! use pocolo_core::resources::{ResourceSpace, ResourceDescriptor};
//! use pocolo_core::utility::{CobbDouglas, PowerModel, IndirectUtility};
//! use pocolo_core::units::Watts;
//!
//! # fn main() -> Result<(), pocolo_core::CoreError> {
//! // A server with 12 cores and 20 LLC ways.
//! let space = ResourceSpace::builder()
//!     .resource(ResourceDescriptor::integral("cores", 1.0, 12.0))
//!     .resource(ResourceDescriptor::integral("llc_ways", 1.0, 20.0))
//!     .build()?;
//!
//! // Performance ~ 100 · c^0.6 · w^0.4 ; power = 50 + 6c + 1.5w.
//! let perf = CobbDouglas::new(100.0, vec![0.6, 0.4])?;
//! let power = PowerModel::new(Watts(50.0), vec![6.0, 1.5])?;
//! let utility = IndirectUtility::new(space, perf, power)?;
//!
//! // Power-optimal allocation under a 110 W budget.
//! let demand = utility.demand(Watts(110.0))?;
//! assert!(utility.power_model().power_of(&demand).0 <= 110.0 + 1e-9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod curves;
pub mod error;
pub mod federation;
pub mod fit;
pub mod fleet;
mod json;
pub mod preference;
pub mod resources;
pub mod testing;
pub mod units;
pub mod utility;

pub use error::CoreError;
pub use fleet::{FleetSpec, PowerCurve, ServerClass};
pub use preference::PreferenceVector;
pub use resources::{Allocation, ResourceDescriptor, ResourceSpace};
pub use units::{Frequency, Joules, Watts};
pub use utility::{CobbDouglas, IndirectUtility, PowerModel};

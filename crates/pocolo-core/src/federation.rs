//! Federation state types shared by the wire protocol and the
//! federation tier.
//!
//! The geo-federated control plane (crate `pocolo-federation`) follows
//! the same decide/actuate split as the per-server controller: a pure
//! `RegionController` consumes a [`FederationInput`] snapshot and emits
//! a [`FederationDecision`] — per-region power-budget splits plus scored
//! whole-application migration intents. Decisions are committed to a
//! versioned replicated log ([`FedLogEntry`]) whose compaction point is
//! a [`FedSnapshot`]; both travel over the `pocolo-net` wire protocol,
//! which is why the types (and their JSON codecs) live here rather than
//! in the federation crate — `pocolo-net` must encode them without
//! depending on the federation tier.
//!
//! All codecs are hand-rolled against `pocolo_json::Value`, mirroring
//! the wire-message style: `to_json` emits compact deterministic
//! objects, `from_json` returns `Err(String)` on any malformed field so
//! transport layers can wrap the cause in their own typed errors.

use pocolo_json::{json, Value};

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not an unsigned integer"))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
    Ok(u64_field(v, key)? as usize)
}

fn f64_list(v: &Value, key: &str) -> Result<Vec<f64>, String> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| format!("field {key:?} is not an array"))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("{key:?} holds a non-number"))
        })
        .collect()
}

fn usize_list(v: &Value, key: &str) -> Result<Vec<usize>, String> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| format!("field {key:?} is not an array"))?
        .iter()
        .map(|x| {
            x.as_u64()
                .map(|u| u as usize)
                .ok_or_else(|| format!("{key:?} holds a non-integer"))
        })
        .collect()
}

/// One region's slice of the federation telemetry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionStatus {
    /// Region index.
    pub region: usize,
    /// Current wholesale power price (relative units; 1.0 = nominal).
    pub power_price: f64,
    /// Grid derate in effect: 1.0 = healthy, < 1 during a regional
    /// brownout.
    pub cap_factor: f64,
    /// Provisioned grid feed, watts, before the derate.
    pub grid_w: f64,
    /// Server slots the region owns.
    pub slots: usize,
    /// Summed draw of the applications currently resident and serving.
    pub resident_power_w: f64,
}

impl RegionStatus {
    /// Power the grid will actually deliver right now.
    pub fn available_w(&self) -> f64 {
        self.grid_w * self.cap_factor
    }

    /// Compact JSON encoding.
    pub fn to_json(&self) -> Value {
        json!({
            "region": self.region as u64,
            "power_price": self.power_price,
            "cap_factor": self.cap_factor,
            "grid_w": self.grid_w,
            "slots": self.slots as u64,
            "resident_power_w": self.resident_power_w,
        })
    }

    /// Decodes, reporting the first malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        Ok(RegionStatus {
            region: usize_field(v, "region")?,
            power_price: f64_field(v, "power_price")?,
            cap_factor: f64_field(v, "cap_factor")?,
            grid_w: f64_field(v, "grid_w")?,
            slots: usize_field(v, "slots")?,
            resident_power_w: f64_field(v, "resident_power_w")?,
        })
    }
}

/// One best-effort application's slice of the federation snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct AppStatus {
    /// Application id (stable across migrations).
    pub app: usize,
    /// Region the application is currently resident in.
    pub region: usize,
    /// Whole-application draw when serving, watts.
    pub power_w: f64,
    /// Utility rate per region — the application's throughput value if
    /// it were resident there (interference/affinity-aware scoring).
    pub rates: Vec<f64>,
    /// True while the application is mid-migration (draining or warming)
    /// and must not be moved again.
    pub migrating: bool,
}

impl AppStatus {
    /// Compact JSON encoding.
    pub fn to_json(&self) -> Value {
        json!({
            "app": self.app as u64,
            "region": self.region as u64,
            "power_w": self.power_w,
            "rates": self.rates,
            "migrating": self.migrating,
        })
    }

    /// Decodes, reporting the first malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        Ok(AppStatus {
            app: usize_field(v, "app")?,
            region: usize_field(v, "region")?,
            power_w: f64_field(v, "power_w")?,
            rates: f64_list(v, "rates")?,
            migrating: field(v, "migrating")?
                .as_bool()
                .ok_or_else(|| "field \"migrating\" is not a boolean".to_string())?,
        })
    }
}

/// The full telemetry snapshot a `RegionController` decides from: the
/// federation-wide contracted power plus every region's and every
/// application's current state.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationInput {
    /// Virtual tick the snapshot was taken at.
    pub tick: u64,
    /// Total power the federation has contracted across all regions,
    /// watts. Typically less than the summed grid feeds — the whole
    /// point of splitting it adaptively.
    pub contracted_w: f64,
    /// Per-region status, indexed by region id.
    pub regions: Vec<RegionStatus>,
    /// Per-application status, indexed by app id.
    pub apps: Vec<AppStatus>,
}

/// One scored whole-application migration the controller wants.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationIntent {
    /// Application to move.
    pub app: usize,
    /// Source region.
    pub from: usize,
    /// Destination region.
    pub to: usize,
    /// Expected per-tick score gain that justified the move (already net
    /// of the hysteresis threshold).
    pub gain: f64,
}

impl MigrationIntent {
    /// Compact JSON encoding.
    pub fn to_json(&self) -> Value {
        json!({
            "app": self.app as u64,
            "from": self.from as u64,
            "to": self.to as u64,
            "gain": self.gain,
        })
    }

    /// Decodes, reporting the first malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        Ok(MigrationIntent {
            app: usize_field(v, "app")?,
            from: usize_field(v, "from")?,
            to: usize_field(v, "to")?,
            gain: f64_field(v, "gain")?,
        })
    }
}

/// What the federation controller decided at one epoch: how the
/// contracted power splits across regions, and which applications move.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationDecision {
    /// Tick the decision was made at.
    pub tick: u64,
    /// Power budget granted to each region, watts, indexed by region id.
    /// Always `split[r] <= grid_w[r] * cap_factor[r]` and
    /// `sum(split) <= contracted_w`.
    pub budget_w: Vec<f64>,
    /// Migrations to start this epoch, highest gain first.
    pub migrations: Vec<MigrationIntent>,
}

impl FederationDecision {
    /// Compact JSON encoding.
    pub fn to_json(&self) -> Value {
        json!({
            "tick": self.tick,
            "budget_w": self.budget_w,
            "migrations": self.migrations.iter().map(|m| m.to_json()).collect::<Vec<_>>(),
        })
    }

    /// Decodes, reporting the first malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let migrations = field(v, "migrations")?
            .as_array()
            .ok_or_else(|| "field \"migrations\" is not an array".to_string())?
            .iter()
            .map(MigrationIntent::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FederationDecision {
            tick: u64_field(v, "tick")?,
            budget_w: f64_list(v, "budget_w")?,
            migrations,
        })
    }
}

/// One committed entry of the replicated federation log.
#[derive(Debug, Clone, PartialEq)]
pub struct FedLogEntry {
    /// Monotonic log version (1-based; version 0 is the empty state).
    pub version: u64,
    /// The decision committed at this version.
    pub decision: FederationDecision,
}

impl FedLogEntry {
    /// Compact JSON encoding.
    pub fn to_json(&self) -> Value {
        json!({
            "version": self.version,
            "decision": self.decision.to_json(),
        })
    }

    /// Decodes, reporting the first malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        Ok(FedLogEntry {
            version: u64_field(v, "version")?,
            decision: FederationDecision::from_json(field(v, "decision")?)?,
        })
    }
}

/// An in-flight migration as recorded in replicated state: the
/// application already belongs to `to`, but serves nothing until
/// `until_tick` (drain + warm-start downtime).
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// Application in flight.
    pub app: usize,
    /// Destination region.
    pub to: usize,
    /// First tick the application serves from the destination.
    pub until_tick: u64,
}

impl MigrationRecord {
    /// Compact JSON encoding.
    pub fn to_json(&self) -> Value {
        json!({
            "app": self.app as u64,
            "to": self.to as u64,
            "until_tick": self.until_tick,
        })
    }

    /// Decodes, reporting the first malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        Ok(MigrationRecord {
            app: usize_field(v, "app")?,
            to: usize_field(v, "to")?,
            until_tick: u64_field(v, "until_tick")?,
        })
    }
}

/// A versioned snapshot of the replicated federation state — the log's
/// compaction point. A follower that is too far behind receives a
/// snapshot plus the suffix of the log instead of the full history.
#[derive(Debug, Clone, PartialEq)]
pub struct FedSnapshot {
    /// Log version the snapshot reflects.
    pub version: u64,
    /// Tick of the last applied decision.
    pub tick: u64,
    /// Region each application is resident in, indexed by app id.
    pub app_region: Vec<usize>,
    /// Current per-region budget split, watts.
    pub budget_w: Vec<f64>,
    /// Migrations still in flight, ascending by app id.
    pub migrating: Vec<MigrationRecord>,
}

impl FedSnapshot {
    /// Compact JSON encoding.
    pub fn to_json(&self) -> Value {
        json!({
            "version": self.version,
            "tick": self.tick,
            "app_region": self.app_region.iter().map(|&r| r as u64).collect::<Vec<_>>(),
            "budget_w": self.budget_w,
            "migrating": self.migrating.iter().map(|m| m.to_json()).collect::<Vec<_>>(),
        })
    }

    /// Decodes, reporting the first malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let migrating = field(v, "migrating")?
            .as_array()
            .ok_or_else(|| "field \"migrating\" is not an array".to_string())?
            .iter()
            .map(MigrationRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FedSnapshot {
            version: u64_field(v, "version")?,
            tick: u64_field(v, "tick")?,
            app_region: usize_list(v, "app_region")?,
            budget_w: f64_list(v, "budget_w")?,
            migrating,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision() -> FederationDecision {
        FederationDecision {
            tick: 40,
            budget_w: vec![480.0, 360.5, 512.25],
            migrations: vec![MigrationIntent {
                app: 7,
                from: 1,
                to: 2,
                gain: 0.375,
            }],
        }
    }

    #[test]
    fn decision_round_trips() {
        let d = decision();
        assert_eq!(FederationDecision::from_json(&d.to_json()).unwrap(), d);
    }

    #[test]
    fn log_entry_round_trips() {
        let e = FedLogEntry {
            version: 9,
            decision: decision(),
        };
        assert_eq!(FedLogEntry::from_json(&e.to_json()).unwrap(), e);
    }

    #[test]
    fn snapshot_round_trips() {
        let s = FedSnapshot {
            version: 12,
            tick: 120,
            app_region: vec![0, 2, 1, 1],
            budget_w: vec![500.0, 250.0, 250.0],
            migrating: vec![MigrationRecord {
                app: 2,
                to: 1,
                until_tick: 124,
            }],
        };
        assert_eq!(FedSnapshot::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn malformed_fields_report_their_key() {
        let bad = json!({
            "version": 1u64,
            "tick": "later",
            "app_region": Value::Array(Vec::new()),
            "budget_w": Value::Array(Vec::new()),
            "migrating": Value::Array(Vec::new()),
        });
        let err = FedSnapshot::from_json(&bad).unwrap_err();
        assert!(err.contains("tick"), "error names the field: {err}");
    }

    #[test]
    fn status_types_round_trip() {
        let r = RegionStatus {
            region: 3,
            power_price: 1.25,
            cap_factor: 0.6,
            grid_w: 900.0,
            slots: 8,
            resident_power_w: 512.0,
        };
        assert_eq!(RegionStatus::from_json(&r.to_json()).unwrap(), r);
        assert!((r.available_w() - 540.0).abs() < 1e-12);
        let a = AppStatus {
            app: 5,
            region: 3,
            power_w: 90.0,
            rates: vec![1.0, 0.875, 1.125],
            migrating: true,
        };
        assert_eq!(AppStatus::from_json(&a.to_json()).unwrap(), a);
    }
}

//! Heterogeneous fleet catalog: per-SKU server classes, pluggable power
//! curves, and seeded mixed-fleet composition.
//!
//! Everything above this module — matrix building, placement, simulation,
//! fault physics — is defined per *server*; this module supplies the
//! per-SKU facts those layers consume: geometry (cores, LLC ways),
//! frequency range, idle/peak watts, and how the SKU's power delivery
//! responds when a brownout asks it to shed load ([`PowerCurve`]).
//!
//! A [`FleetSpec`] composes classes into a fleet and deterministically
//! assigns a class to every server slot from a seed, so mixed-fleet
//! experiments replay bit-identically. A fleet of one class degenerates to
//! the legacy single-SKU behavior exactly: the xeon preset reproduces the
//! paper's Table I machine, and its [`PowerCurve::Linear`] curve is the
//! identity on cap factors.

use std::fmt;
use std::str::FromStr;

use crate::resources::{ResourceDescriptor, ResourceSpace};
use crate::units::{Frequency, Watts};

/// How a SKU's power delivery quantizes a requested cap reduction.
///
/// During a brownout the infrastructure asks every server to run at a
/// fraction `f ∈ (0, 1]` of its provisioned cap. Real hardware cannot
/// always hold an arbitrary fraction: DVFS exposes discrete P-states, and
/// accelerator-like parts gate whole power planes. The curve maps the
/// *requested* factor to the *effective* factor the SKU actually holds.
///
/// Invariants, relied on throughout the stack:
///
/// - `effective_cap_factor(f) <= f` — the cap stays a hard guarantee (a
///   SKU may derate deeper than asked, never shallower);
/// - `effective_cap_factor(1.0) == 1.0` — no derate outside a brownout,
///   so a single-class fleet replays legacy runs bit-identically;
/// - monotone non-decreasing in `f`.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerCurve {
    /// Continuous additive power: the SKU holds any requested fraction
    /// exactly (the legacy model — the identity map).
    Linear,
    /// Cubic DVFS: the SKU exposes `levels` discrete frequency states
    /// between `floor_frac` and 1.0 of max frequency, and power scales as
    /// frequency cubed. The effective factor is the largest state power
    /// at or below the request; requests below the floor state fall back
    /// to duty-cycling at the requested factor.
    CubicDvfs {
        /// Lowest P-state frequency as a fraction of max, in `(0, 1)`.
        floor_frac: f64,
        /// Number of discrete P-states, at least 2.
        levels: usize,
    },
    /// Accelerator-like step function: the SKU can only hold the listed
    /// power fractions (ascending, ending at 1.0 — whole power planes
    /// gate on and off). The effective factor is the largest state at or
    /// below the request; below the lowest state it duty-cycles at the
    /// requested factor.
    Stepped {
        /// Holdable power fractions, ascending, each in `(0, 1]`, last
        /// exactly 1.0.
        states: Vec<f64>,
    },
}

impl PowerCurve {
    /// Short display name of the curve family.
    pub fn name(&self) -> &'static str {
        match self {
            PowerCurve::Linear => "linear",
            PowerCurve::CubicDvfs { .. } => "cubic",
            PowerCurve::Stepped { .. } => "stepped",
        }
    }

    /// Validates the curve's parameters; the error is a one-line message.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            PowerCurve::Linear => Ok(()),
            PowerCurve::CubicDvfs { floor_frac, levels } => {
                if !(*floor_frac > 0.0 && *floor_frac < 1.0) {
                    return Err(format!(
                        "cubic curve floor fraction must be in (0, 1), got {floor_frac}"
                    ));
                }
                if *levels < 2 {
                    return Err(format!(
                        "cubic curve needs at least 2 P-states, got {levels}"
                    ));
                }
                Ok(())
            }
            PowerCurve::Stepped { states } => {
                if states.is_empty() {
                    return Err("stepped curve has no states".to_string());
                }
                if states.windows(2).any(|w| w[0] >= w[1]) {
                    return Err("stepped curve states must be strictly ascending".to_string());
                }
                if states.iter().any(|&s| !(s > 0.0 && s <= 1.0)) {
                    return Err("stepped curve states must lie in (0, 1]".to_string());
                }
                if (states[states.len() - 1] - 1.0).abs() > 1e-12 {
                    return Err("stepped curve must end at 1.0 (full power)".to_string());
                }
                Ok(())
            }
        }
    }

    /// Maps a requested cap factor to the factor this SKU actually holds.
    /// Always `<= f`, and exactly `f` when `f == 1.0` (see the type-level
    /// invariants).
    pub fn effective_cap_factor(&self, f: f64) -> f64 {
        debug_assert!(f > 0.0 && f <= 1.0, "cap factor must be in (0, 1], got {f}");
        match self {
            PowerCurve::Linear => f,
            PowerCurve::CubicDvfs { floor_frac, levels } => {
                // State i holds frequency fraction φᵢ and power fraction φᵢ³.
                let n = *levels;
                let mut best = None;
                for i in (0..n).rev() {
                    let phi = floor_frac + (1.0 - floor_frac) * i as f64 / (n - 1) as f64;
                    let p = phi * phi * phi;
                    if p <= f {
                        best = Some(p);
                        break;
                    }
                }
                // Below the floor state the SKU duty-cycles: it can hold
                // the request on average, so no quantization applies.
                best.unwrap_or(f).min(f)
            }
            PowerCurve::Stepped { states } => states
                .iter()
                .rev()
                .find(|&&s| s <= f)
                .copied()
                .unwrap_or(f)
                .min(f),
        }
    }
}

impl fmt::Display for PowerCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One SKU: the static facts the whole stack needs about a server class.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerClass {
    name: String,
    cores: u32,
    llc_ways: u32,
    freq_min: Frequency,
    freq_max: Frequency,
    idle_w: Watts,
    peak_w: Watts,
    curve: PowerCurve,
}

impl ServerClass {
    /// Builds and validates a class. Errors are one-line messages naming
    /// the offending field (the CLI surfaces them verbatim).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        cores: u32,
        llc_ways: u32,
        freq_min: Frequency,
        freq_max: Frequency,
        idle_w: Watts,
        peak_w: Watts,
        curve: PowerCurve,
    ) -> Result<Self, String> {
        let name = name.into();
        if name.is_empty() {
            return Err("server class has an empty name".to_string());
        }
        if cores == 0 {
            return Err(format!("server class {name:?} has zero cores"));
        }
        if cores > 64 {
            return Err(format!("server class {name:?} has {cores} cores (max 64)"));
        }
        if llc_ways == 0 {
            return Err(format!("server class {name:?} has zero LLC ways"));
        }
        if llc_ways > 32 {
            return Err(format!(
                "server class {name:?} has {llc_ways} LLC ways (max 32)"
            ));
        }
        if !freq_min.0.is_finite()
            || !freq_max.0.is_finite()
            || freq_min.0 <= 0.0
            || freq_min > freq_max
        {
            return Err(format!(
                "server class {name:?} frequency range [{}, {}] is invalid",
                freq_min.0, freq_max.0
            ));
        }
        if !idle_w.is_valid() || !peak_w.is_valid() || idle_w > peak_w || peak_w.0 <= 0.0 {
            return Err(format!(
                "server class {name:?} power range [{}, {}] is invalid",
                idle_w.0, peak_w.0
            ));
        }
        curve
            .validate()
            .map_err(|e| format!("server class {name:?}: {e}"))?;
        Ok(ServerClass {
            name,
            cores,
            llc_ways,
            freq_min,
            freq_max,
            idle_w,
            peak_w,
            curve,
        })
    }

    /// The paper's Table I machine as a class: 12 cores, 20 ways,
    /// 1.2–2.2 GHz, 50/135 W, continuous power. A fleet of only this
    /// class reproduces every legacy run bit-identically.
    pub fn xeon_e5_2650() -> Self {
        ServerClass::new(
            "xeon",
            12,
            20,
            Frequency(1.2),
            Frequency(2.2),
            Watts(50.0),
            Watts(135.0),
            PowerCurve::Linear,
        )
        .expect("preset is valid")
    }

    /// A dense high-frequency SKU with cubic DVFS: 16 cores, 16 ways,
    /// 1.6–3.0 GHz, 60/180 W, 8 P-states down to half frequency.
    pub fn turbo() -> Self {
        ServerClass::new(
            "turbo",
            16,
            16,
            Frequency(1.6),
            Frequency(3.0),
            Watts(60.0),
            Watts(180.0),
            PowerCurve::CubicDvfs {
                floor_frac: 0.5,
                levels: 8,
            },
        )
        .expect("preset is valid")
    }

    /// An accelerator-like SKU whose power planes gate in steps: 8 fat
    /// cores, 24 ways, 1.0–1.8 GHz, 45/150 W, holdable only at quarter
    /// fractions of its cap.
    pub fn stepcell() -> Self {
        ServerClass::new(
            "stepcell",
            8,
            24,
            Frequency(1.0),
            Frequency(1.8),
            Watts(45.0),
            Watts(150.0),
            PowerCurve::Stepped {
                states: vec![0.25, 0.5, 0.75, 1.0],
            },
        )
        .expect("preset is valid")
    }

    /// Names of the cataloged classes, in display order.
    pub const CATALOG: [&'static str; 3] = ["xeon", "turbo", "stepcell"];

    /// Looks a cataloged class up by name.
    pub fn named(name: &str) -> Option<Self> {
        match name {
            "xeon" => Some(Self::xeon_e5_2650()),
            "turbo" => Some(Self::turbo()),
            "stepcell" => Some(Self::stepcell()),
            _ => None,
        }
    }

    /// A copy of this class with overridden geometry (the `name/cores/ways`
    /// spec syntax); power and frequency carry over. The derived class is
    /// re-validated, so a zero-core override errors like any other
    /// malformed class.
    pub fn with_geometry(&self, cores: u32, llc_ways: u32) -> Result<Self, String> {
        ServerClass::new(
            format!("{}/{}/{}", self.name, cores, llc_ways),
            cores,
            llc_ways,
            self.freq_min,
            self.freq_max,
            self.idle_w,
            self.peak_w,
            self.curve.clone(),
        )
    }

    /// The class name (also the spec token that parses back to it).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Physical core count.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// LLC ways available to partitioning.
    pub fn llc_ways(&self) -> u32 {
        self.llc_ways
    }

    /// Minimum DVFS frequency.
    pub fn freq_min(&self) -> Frequency {
        self.freq_min
    }

    /// Maximum DVFS frequency.
    pub fn freq_max(&self) -> Frequency {
        self.freq_max
    }

    /// Idle (all cores parked) power draw.
    pub fn idle_watts(&self) -> Watts {
        self.idle_w
    }

    /// Peak (all resources busy at max frequency) power draw.
    pub fn peak_watts(&self) -> Watts {
        self.peak_w
    }

    /// The SKU's cap-response curve.
    pub fn curve(&self) -> &PowerCurve {
        &self.curve
    }

    /// The direct-resource space this class exposes to the economics
    /// framework: `cores ∈ [1, n]`, `llc_ways ∈ [1, w]`.
    pub fn space(&self) -> ResourceSpace {
        ResourceSpace::builder()
            .resource(ResourceDescriptor::integral(
                "cores",
                1.0,
                self.cores as f64,
            ))
            .resource(ResourceDescriptor::integral(
                "llc_ways",
                1.0,
                self.llc_ways as f64,
            ))
            .build()
            .expect("class geometry validated at construction")
    }
}

/// SplitMix64 step — `pocolo-core` carries no RNG dependency, and fleet
/// assignment only needs a tiny, stable, well-mixed stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A weighted mix of server classes, independent of fleet size.
///
/// The spec is declarative — "2 parts xeon, 1 part turbo" — and
/// [`FleetSpec::assign`] projects it onto any number of server slots
/// deterministically: largest-remainder apportionment of the weights,
/// then a seeded shuffle so class runs don't correlate with slot index.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    entries: Vec<(ServerClass, usize)>,
}

impl FleetSpec {
    /// Builds a fleet from `(class, weight)` entries. Errors (one-line)
    /// on an empty list, a zero weight, or duplicate class names.
    pub fn new(entries: Vec<(ServerClass, usize)>) -> Result<Self, String> {
        if entries.is_empty() {
            return Err("empty fleet spec (need at least one server class)".to_string());
        }
        for (class, weight) in &entries {
            if *weight == 0 {
                return Err(format!(
                    "server class {:?} has zero weight in fleet spec",
                    class.name()
                ));
            }
        }
        for i in 1..entries.len() {
            if entries[..i]
                .iter()
                .any(|(c, _)| c.name() == entries[i].0.name())
            {
                return Err(format!(
                    "server class {:?} appears twice in fleet spec",
                    entries[i].0.name()
                ));
            }
        }
        Ok(FleetSpec { entries })
    }

    /// A fleet of exactly one class.
    pub fn homogeneous(class: ServerClass) -> Self {
        FleetSpec {
            entries: vec![(class, 1)],
        }
    }

    /// Looks a named fleet preset up: every cataloged class name is a
    /// homogeneous preset, and `mixed3` is the seeded three-SKU mix
    /// (xeon + turbo + stepcell, equal weights).
    pub fn preset(name: &str) -> Option<Self> {
        if name == "mixed3" {
            return Some(FleetSpec {
                entries: vec![
                    (ServerClass::xeon_e5_2650(), 1),
                    (ServerClass::turbo(), 1),
                    (ServerClass::stepcell(), 1),
                ],
            });
        }
        ServerClass::named(name).map(FleetSpec::homogeneous)
    }

    /// Number of distinct classes in the fleet.
    pub fn n_classes(&self) -> usize {
        self.entries.len()
    }

    /// The class at `idx` (the class index [`FleetSpec::assign`] emits).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn class(&self, idx: usize) -> &ServerClass {
        &self.entries[idx].0
    }

    /// The `(class, weight)` entries, in spec order.
    pub fn entries(&self) -> &[(ServerClass, usize)] {
        &self.entries
    }

    /// True when the fleet has a single class (the legacy degenerate case).
    pub fn is_homogeneous(&self) -> bool {
        self.entries.len() == 1
    }

    /// Assigns a class index to each of `n_slots` server slots:
    /// largest-remainder apportionment of the weights, then a
    /// SplitMix64-seeded Fisher–Yates shuffle. Pure in `(self, n_slots,
    /// seed)`, so fleet runs replay bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if `n_slots` is zero.
    pub fn assign(&self, n_slots: usize, seed: u64) -> Vec<usize> {
        assert!(n_slots > 0, "fleet needs at least one server slot");
        if self.entries.len() == 1 {
            return vec![0; n_slots];
        }
        let total: usize = self.entries.iter().map(|(_, w)| w).sum();
        // Largest-remainder apportionment: floors first, then one extra
        // slot per largest fractional share (ties broken by entry order).
        let mut counts: Vec<usize> = Vec::with_capacity(self.entries.len());
        let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(self.entries.len());
        let mut used = 0usize;
        for (i, (_, w)) in self.entries.iter().enumerate() {
            let exact = n_slots as f64 * *w as f64 / total as f64;
            let floor = exact.floor() as usize;
            counts.push(floor);
            used += floor;
            fracs.push((i, exact - floor as f64));
        }
        fracs.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite shares")
                .then(a.0.cmp(&b.0))
        });
        for &(i, _) in fracs.iter().take(n_slots - used) {
            counts[i] += 1;
        }
        let mut slots: Vec<usize> = Vec::with_capacity(n_slots);
        for (i, &c) in counts.iter().enumerate() {
            slots.extend(std::iter::repeat_n(i, c));
        }
        // Seeded Fisher–Yates so class runs don't correlate with slot index.
        let mut state = seed ^ 0xF1EE_7000_0000_0000;
        for i in (1..slots.len()).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            slots.swap(i, j);
        }
        slots
    }
}

impl fmt::Display for FleetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (class, weight)) in self.entries.iter().enumerate() {
            if i > 0 {
                f.write_str("+")?;
            }
            if *weight == 1 {
                write!(f, "{}", class.name())?;
            } else {
                write!(f, "{}*{}", class.name(), weight)?;
            }
        }
        Ok(())
    }
}

impl FromStr for FleetSpec {
    type Err = String;

    /// Parses `preset` or `term[+term...]` where `term` is
    /// `class[/cores/ways][*weight]` and `class` is a catalog name.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err("empty fleet spec (need at least one server class)".to_string());
        }
        if let Some(preset) = FleetSpec::preset(s) {
            return Ok(preset);
        }
        let mut entries = Vec::new();
        for term in s.split('+') {
            if term.is_empty() {
                return Err(format!("empty term in fleet spec {s:?}"));
            }
            let (class_expr, weight) = match term.split_once('*') {
                None => (term, 1usize),
                Some((c, w)) => {
                    let weight: usize = w
                        .parse()
                        .map_err(|_| format!("bad class weight {w:?} in fleet spec"))?;
                    (c, weight)
                }
            };
            let class = match class_expr.split_once('/') {
                None => ServerClass::named(class_expr).ok_or_else(|| {
                    format!(
                        "unknown server class {class_expr:?} (expected {} or preset mixed3)",
                        ServerClass::CATALOG.join(" | ")
                    )
                })?,
                Some((name, geometry)) => {
                    let base = ServerClass::named(name).ok_or_else(|| {
                        format!(
                            "unknown server class {name:?} (expected {} or preset mixed3)",
                            ServerClass::CATALOG.join(" | ")
                        )
                    })?;
                    let (cores, ways) = geometry.split_once('/').ok_or_else(|| {
                        format!("bad geometry override {term:?} (expected class/cores/ways)")
                    })?;
                    let cores: u32 = cores
                        .parse()
                        .map_err(|_| format!("bad core count {cores:?} in fleet spec"))?;
                    let ways: u32 = ways
                        .parse()
                        .map_err(|_| format!("bad way count {ways:?} in fleet spec"))?;
                    base.with_geometry(cores, ways)?
                }
            };
            entries.push((class, weight));
        }
        FleetSpec::new(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_class_matches_table_one() {
        let c = ServerClass::xeon_e5_2650();
        assert_eq!(c.cores(), 12);
        assert_eq!(c.llc_ways(), 20);
        assert_eq!(c.freq_min(), Frequency(1.2));
        assert_eq!(c.freq_max(), Frequency(2.2));
        assert_eq!(c.idle_watts(), Watts(50.0));
        assert_eq!(c.peak_watts(), Watts(135.0));
        assert_eq!(c.curve(), &PowerCurve::Linear);
        let space = c.space();
        assert_eq!(space.descriptor(0).max(), 12.0);
        assert_eq!(space.descriptor(1).max(), 20.0);
    }

    #[test]
    fn class_space_matches_legacy_fixture() {
        // A homogeneous xeon fleet must expose exactly the space every
        // legacy test and golden run was built on.
        assert_eq!(
            ServerClass::xeon_e5_2650().space(),
            ResourceSpace::cores_and_ways()
        );
    }

    #[test]
    fn class_validation_is_one_line() {
        for bad in [
            ServerClass::new(
                "z",
                0,
                8,
                Frequency(1.0),
                Frequency(2.0),
                Watts(10.0),
                Watts(50.0),
                PowerCurve::Linear,
            ),
            ServerClass::new(
                "z",
                4,
                0,
                Frequency(1.0),
                Frequency(2.0),
                Watts(10.0),
                Watts(50.0),
                PowerCurve::Linear,
            ),
            ServerClass::new(
                "z",
                4,
                8,
                Frequency(2.0),
                Frequency(1.0),
                Watts(10.0),
                Watts(50.0),
                PowerCurve::Linear,
            ),
            ServerClass::new(
                "z",
                4,
                8,
                Frequency(1.0),
                Frequency(2.0),
                Watts(60.0),
                Watts(50.0),
                PowerCurve::Linear,
            ),
            ServerClass::new(
                "z",
                4,
                8,
                Frequency(1.0),
                Frequency(2.0),
                Watts(10.0),
                Watts(50.0),
                PowerCurve::Stepped { states: vec![] },
            ),
        ] {
            let err = bad.unwrap_err();
            assert!(!err.contains('\n'), "multi-line error: {err}");
        }
        let zero = ServerClass::new(
            "dud",
            0,
            8,
            Frequency(1.0),
            Frequency(2.0),
            Watts(10.0),
            Watts(50.0),
            PowerCurve::Linear,
        )
        .unwrap_err();
        assert!(
            zero.contains("dud") && zero.contains("zero cores"),
            "{zero}"
        );
    }

    #[test]
    fn curves_never_exceed_the_request() {
        let curves = [
            PowerCurve::Linear,
            PowerCurve::CubicDvfs {
                floor_frac: 0.5,
                levels: 8,
            },
            PowerCurve::Stepped {
                states: vec![0.25, 0.5, 0.75, 1.0],
            },
        ];
        for curve in &curves {
            curve.validate().unwrap();
            for i in 1..=100 {
                let f = i as f64 / 100.0;
                let eff = curve.effective_cap_factor(f);
                assert!(eff <= f + 1e-15, "{curve}: eff {eff} > requested {f}");
                assert!(eff > 0.0, "{curve}: eff {eff} not positive at {f}");
            }
            // No derate at full power — the bit-identity invariant.
            assert_eq!(curve.effective_cap_factor(1.0), 1.0, "{curve}");
        }
    }

    #[test]
    fn curves_are_monotone() {
        let curves = [
            PowerCurve::CubicDvfs {
                floor_frac: 0.4,
                levels: 6,
            },
            PowerCurve::Stepped {
                states: vec![0.3, 0.6, 1.0],
            },
        ];
        for curve in &curves {
            let mut last = 0.0;
            for i in 1..=100 {
                let eff = curve.effective_cap_factor(i as f64 / 100.0);
                assert!(eff >= last - 1e-15, "{curve} not monotone at {i}");
                last = eff;
            }
        }
    }

    #[test]
    fn stepped_curve_derates_deeper_than_asked() {
        let c = PowerCurve::Stepped {
            states: vec![0.25, 0.5, 0.75, 1.0],
        };
        assert!((c.effective_cap_factor(0.65) - 0.5).abs() < 1e-12);
        assert!((c.effective_cap_factor(0.75) - 0.75).abs() < 1e-12);
        // Below the lowest state: duty-cycle at the request.
        assert!((c.effective_cap_factor(0.1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn cubic_curve_quantizes_to_p_states() {
        let c = PowerCurve::CubicDvfs {
            floor_frac: 0.5,
            levels: 8,
        };
        // At a 0.65 request the chosen state power is strictly below it
        // (frequency quantization), but above the previous state.
        let eff = c.effective_cap_factor(0.65);
        assert!(eff < 0.65 && eff > 0.4, "eff {eff}");
        // Below the floor state's power (0.125), duty-cycling holds f.
        assert!((c.effective_cap_factor(0.1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn invalid_curves_rejected() {
        assert!(PowerCurve::CubicDvfs {
            floor_frac: 0.0,
            levels: 4
        }
        .validate()
        .is_err());
        assert!(PowerCurve::CubicDvfs {
            floor_frac: 0.5,
            levels: 1
        }
        .validate()
        .is_err());
        assert!(PowerCurve::Stepped {
            states: vec![0.5, 0.25, 1.0]
        }
        .validate()
        .is_err());
        assert!(PowerCurve::Stepped {
            states: vec![0.25, 0.5]
        }
        .validate()
        .is_err());
    }

    #[test]
    fn fleet_spec_parse_roundtrip() {
        for s in ["xeon", "xeon*2+turbo", "xeon+turbo+stepcell", "stepcell*3"] {
            let spec: FleetSpec = s.parse().unwrap();
            if s == "xeon" {
                assert!(spec.is_homogeneous());
            }
            assert_eq!(spec.to_string(), s);
        }
        let mixed = FleetSpec::preset("mixed3").unwrap();
        assert_eq!(mixed.n_classes(), 3);
        assert_eq!("mixed3".parse::<FleetSpec>().unwrap(), mixed);
    }

    #[test]
    fn fleet_spec_errors_are_one_line_and_name_the_token() {
        let unknown = "xeon+warp9".parse::<FleetSpec>().unwrap_err();
        assert!(unknown.contains("warp9"), "{unknown}");
        assert!(!unknown.contains('\n'));
        let zero_core = "xeon/0/8".parse::<FleetSpec>().unwrap_err();
        assert!(zero_core.contains("zero cores"), "{zero_core}");
        assert!(!zero_core.contains('\n'));
        let empty = "".parse::<FleetSpec>().unwrap_err();
        assert!(empty.contains("empty fleet"), "{empty}");
        assert!(!empty.contains('\n'));
        let bad_weight = "xeon*zero".parse::<FleetSpec>().unwrap_err();
        assert!(bad_weight.contains("zero"), "{bad_weight}");
        assert!(!bad_weight.contains('\n'));
        let dup = "xeon+xeon".parse::<FleetSpec>().unwrap_err();
        assert!(dup.contains("twice"), "{dup}");
    }

    #[test]
    fn geometry_override_parses() {
        let spec: FleetSpec = "xeon/8/10*2+turbo".parse().unwrap();
        assert_eq!(spec.n_classes(), 2);
        assert_eq!(spec.class(0).cores(), 8);
        assert_eq!(spec.class(0).llc_ways(), 10);
        assert_eq!(spec.class(0).name(), "xeon/8/10");
        assert_eq!(spec.entries()[0].1, 2);
    }

    #[test]
    fn assignment_is_proportional_and_deterministic() {
        let spec: FleetSpec = "xeon*2+turbo+stepcell".parse().unwrap();
        let a = spec.assign(100, 7);
        let b = spec.assign(100, 7);
        assert_eq!(a, b, "same seed replays");
        let c = spec.assign(100, 8);
        assert_ne!(a, c, "different seed shuffles differently");
        let count = |v: &[usize], k: usize| v.iter().filter(|&&x| x == k).count();
        assert_eq!(count(&a, 0), 50);
        assert_eq!(count(&a, 1), 25);
        assert_eq!(count(&a, 2), 25);
        // Different seeds preserve the apportionment exactly.
        assert_eq!(count(&c, 0), 50);
    }

    #[test]
    fn homogeneous_assignment_is_all_zero() {
        let spec = FleetSpec::homogeneous(ServerClass::xeon_e5_2650());
        assert_eq!(spec.assign(4, 123), vec![0; 4]);
        assert_eq!(spec.assign(4, 999), vec![0; 4]);
    }

    #[test]
    fn small_fleet_apportionment_covers_every_slot() {
        let spec = FleetSpec::preset("mixed3").unwrap();
        for seed in 0..8 {
            let slots = spec.assign(4, seed);
            assert_eq!(slots.len(), 4);
            assert!(slots.iter().all(|&c| c < 3));
            // Equal thirds over 4 slots: one class gets 2, the others 1.
            let mut counts = [0usize; 3];
            for &c in &slots {
                counts[c] += 1;
            }
            assert_eq!(counts.iter().sum::<usize>(), 4);
            assert!(counts.iter().all(|&n| n >= 1), "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one server slot")]
    fn assign_rejects_zero_slots() {
        let _ = FleetSpec::preset("mixed3").unwrap().assign(0, 1);
    }
}

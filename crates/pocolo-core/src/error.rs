//! Error types for the core framework.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the economics framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Two quantities that must agree on the number of direct resources did
    /// not (e.g. an allocation with 3 entries against a 2-resource space).
    DimensionMismatch {
        /// Number of dimensions that was expected.
        expected: usize,
        /// Number of dimensions that was provided.
        actual: usize,
    },
    /// A resource descriptor or space was internally inconsistent
    /// (e.g. `min > max`, or no resources at all).
    InvalidSpace(String),
    /// An allocation fell outside the bounds of its resource space.
    InvalidAllocation(String),
    /// A model parameter was invalid (non-finite, non-positive where
    /// positivity is required, …).
    InvalidParameter(String),
    /// Too few profiling samples to fit the requested model.
    InsufficientSamples {
        /// Samples required for the fit to be determined.
        needed: usize,
        /// Samples actually available after filtering.
        available: usize,
    },
    /// The least-squares normal equations were singular (e.g. a resource was
    /// never varied during profiling).
    SingularSystem,
    /// A power budget was too small to cover static power plus the minimum
    /// allocation of every resource.
    InfeasibleBudget {
        /// The budget that was requested.
        budget_watts: f64,
        /// The minimum power required for a feasible allocation.
        required_watts: f64,
    },
    /// A requested performance target is unreachable even with every
    /// resource at its maximum.
    UnreachableTarget {
        /// The performance that was requested.
        target: f64,
        /// The best achievable performance.
        achievable: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected} resources, got {actual}")
            }
            CoreError::InvalidSpace(msg) => write!(f, "invalid resource space: {msg}"),
            CoreError::InvalidAllocation(msg) => write!(f, "invalid allocation: {msg}"),
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            CoreError::InsufficientSamples { needed, available } => write!(
                f,
                "insufficient samples: need at least {needed}, have {available}"
            ),
            CoreError::SingularSystem => {
                write!(f, "singular least-squares system (a resource may never vary)")
            }
            CoreError::InfeasibleBudget {
                budget_watts,
                required_watts,
            } => write!(
                f,
                "power budget {budget_watts:.2} W below the {required_watts:.2} W required for minimum allocations"
            ),
            CoreError::UnreachableTarget { target, achievable } => write!(
                f,
                "performance target {target:.3} exceeds best achievable {achievable:.3}"
            ),
        }
    }
}

impl StdError for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(CoreError, &str)> = vec![
            (
                CoreError::DimensionMismatch {
                    expected: 2,
                    actual: 3,
                },
                "dimension mismatch",
            ),
            (
                CoreError::InvalidSpace("empty".into()),
                "invalid resource space",
            ),
            (CoreError::SingularSystem, "singular"),
            (
                CoreError::InsufficientSamples {
                    needed: 4,
                    available: 1,
                },
                "insufficient samples",
            ),
            (
                CoreError::InfeasibleBudget {
                    budget_watts: 10.0,
                    required_watts: 60.0,
                },
                "power budget",
            ),
            (
                CoreError::UnreachableTarget {
                    target: 10.0,
                    achievable: 5.0,
                },
                "performance target",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
            assert!(!msg.is_empty());
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: StdError + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }
}

//! Shared test fixtures for class-parameterized tests.
//!
//! Test suites across the workspace used to copy-paste server geometry
//! (`ResourceSpace::cores_and_ways()` and hand-built small spaces) into
//! every fixture. With heterogeneous fleets those fixtures must vary by
//! [`ServerClass`], so the geometry lives here once. The module is
//! ordinary (always-compiled) code so downstream crates' `#[cfg(test)]`
//! modules and integration tests can both reach it, but nothing in it is
//! meant for production paths.

use crate::fleet::ServerClass;
use crate::resources::{ResourceDescriptor, ResourceSpace};

/// The standard 12-core / 20-way Xeon space every legacy test was built
/// on. Identical to [`ResourceSpace::cores_and_ways`].
pub fn xeon_space() -> ResourceSpace {
    ResourceSpace::cores_and_ways()
}

/// A small integral `cores × llc_ways` space with custom bounds, for
/// tests that want a cheaper grid than the full Xeon geometry.
///
/// # Panics
///
/// Panics if either bound is zero (invalid geometry).
pub fn small_space(cores: u32, llc_ways: u32) -> ResourceSpace {
    ResourceSpace::builder()
        .resource(ResourceDescriptor::integral("cores", 1.0, cores as f64))
        .resource(ResourceDescriptor::integral(
            "llc_ways",
            1.0,
            llc_ways as f64,
        ))
        .build()
        .expect("test geometry must be valid")
}

/// The direct-resource space of a [`ServerClass`] — convenience alias
/// for [`ServerClass::space`] so fixtures read uniformly.
pub fn space_for(class: &ServerClass) -> ResourceSpace {
    class.space()
}

/// The three cataloged classes in catalog order, for tests that sweep
/// SKUs.
pub fn test_classes() -> Vec<ServerClass> {
    ServerClass::CATALOG
        .iter()
        .map(|name| ServerClass::named(name).expect("catalog names resolve"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_space_is_the_legacy_fixture() {
        assert_eq!(xeon_space(), ResourceSpace::cores_and_ways());
    }

    #[test]
    fn small_space_has_requested_bounds() {
        let s = small_space(4, 8);
        assert_eq!(s.descriptor(0).max(), 4.0);
        assert_eq!(s.descriptor(1).max(), 8.0);
        assert_eq!(s.index_of("llc_ways"), Some(1));
    }

    #[test]
    fn test_classes_cover_the_catalog() {
        let classes = test_classes();
        assert_eq!(classes.len(), ServerClass::CATALOG.len());
        for (class, name) in classes.iter().zip(ServerClass::CATALOG) {
            assert_eq!(class.name(), name);
            assert_eq!(space_for(class), class.space());
        }
    }
}

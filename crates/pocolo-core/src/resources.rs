//! Direct-resource descriptions and allocations.
//!
//! Pocolo reasons about *k* types of **direct resources** (CPU cores, LLC
//! cache ways, memory bandwidth, …) plus the single **indirect resource**,
//! power. A [`ResourceSpace`] describes the direct resources a server
//! exposes; an [`Allocation`] is a point in that space.

use std::fmt;
use std::sync::Arc;

use crate::error::CoreError;

/// Description of one direct resource dimension.
///
/// ```
/// use pocolo_core::resources::ResourceDescriptor;
/// let cores = ResourceDescriptor::integral("cores", 1.0, 12.0);
/// assert_eq!(cores.name(), "cores");
/// assert!(cores.is_integral());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceDescriptor {
    name: String,
    min: f64,
    max: f64,
    integral: bool,
}

impl ResourceDescriptor {
    /// A resource allocated in whole units (cores, cache ways).
    pub fn integral(name: impl Into<String>, min: f64, max: f64) -> Self {
        ResourceDescriptor {
            name: name.into(),
            min,
            max,
            integral: true,
        }
    }

    /// A resource allocated continuously (bandwidth shares, frequency).
    pub fn continuous(name: impl Into<String>, min: f64, max: f64) -> Self {
        ResourceDescriptor {
            name: name.into(),
            min,
            max,
            integral: false,
        }
    }

    /// The resource's name (e.g. `"cores"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Minimum allocatable amount (must be > 0 for Cobb-Douglas models).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum allocatable amount (the server's capacity in this dimension).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Whether allocations are restricted to whole units.
    pub fn is_integral(&self) -> bool {
        self.integral
    }

    fn validate(&self) -> Result<(), CoreError> {
        if self.name.is_empty() {
            return Err(CoreError::InvalidSpace("resource name is empty".into()));
        }
        if !self.min.is_finite() || !self.max.is_finite() {
            return Err(CoreError::InvalidSpace(format!(
                "resource {:?} has non-finite bounds",
                self.name
            )));
        }
        if self.min <= 0.0 {
            return Err(CoreError::InvalidSpace(format!(
                "resource {:?} must have min > 0 (Cobb-Douglas utility is zero at zero allocation)",
                self.name
            )));
        }
        if self.min > self.max {
            return Err(CoreError::InvalidSpace(format!(
                "resource {:?} has min {} > max {}",
                self.name, self.min, self.max
            )));
        }
        Ok(())
    }
}

/// The set of direct resources a server exposes for allocation.
///
/// Spaces are cheap to clone (internally reference-counted) and are shared by
/// every model and allocation that refers to them.
///
/// ```
/// use pocolo_core::resources::{ResourceSpace, ResourceDescriptor};
/// # fn main() -> Result<(), pocolo_core::CoreError> {
/// let space = ResourceSpace::builder()
///     .resource(ResourceDescriptor::integral("cores", 1.0, 12.0))
///     .resource(ResourceDescriptor::integral("llc_ways", 1.0, 20.0))
///     .build()?;
/// assert_eq!(space.len(), 2);
/// assert_eq!(space.index_of("llc_ways"), Some(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceSpace {
    descriptors: Arc<Vec<ResourceDescriptor>>,
}

impl ResourceSpace {
    /// Starts building a resource space.
    pub fn builder() -> ResourceSpaceBuilder {
        ResourceSpaceBuilder {
            descriptors: Vec::new(),
        }
    }

    /// The standard two-resource space of the paper's prototype: CPU cores
    /// and LLC cache ways on a Xeon E5-2650 (12 cores, 20 ways).
    pub fn cores_and_ways() -> Self {
        ResourceSpace::builder()
            .resource(ResourceDescriptor::integral("cores", 1.0, 12.0))
            .resource(ResourceDescriptor::integral("llc_ways", 1.0, 20.0))
            .build()
            .expect("static descriptor set is valid")
    }

    /// Number of direct resource dimensions, `k`.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// True if the space has no resources (never true for built spaces).
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Descriptor for dimension `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.len()`.
    pub fn descriptor(&self, j: usize) -> &ResourceDescriptor {
        &self.descriptors[j]
    }

    /// Iterates over all descriptors in dimension order.
    pub fn iter(&self) -> impl Iterator<Item = &ResourceDescriptor> {
        self.descriptors.iter()
    }

    /// Index of the resource named `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.descriptors.iter().position(|d| d.name() == name)
    }

    /// The allocation with every resource at its minimum.
    pub fn min_allocation(&self) -> Allocation {
        Allocation {
            space: self.clone(),
            amounts: self.descriptors.iter().map(|d| d.min()).collect(),
        }
    }

    /// The allocation with every resource at its maximum (full server).
    pub fn max_allocation(&self) -> Allocation {
        Allocation {
            space: self.clone(),
            amounts: self.descriptors.iter().map(|d| d.max()).collect(),
        }
    }

    /// Creates a validated allocation from raw amounts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `amounts.len() != k`, and
    /// [`CoreError::InvalidAllocation`] if any amount is non-finite or
    /// outside its descriptor's bounds.
    pub fn allocation(&self, amounts: Vec<f64>) -> Result<Allocation, CoreError> {
        if amounts.len() != self.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.len(),
                actual: amounts.len(),
            });
        }
        for (d, &a) in self.descriptors.iter().zip(&amounts) {
            if !a.is_finite() {
                return Err(CoreError::InvalidAllocation(format!(
                    "{} amount is not finite",
                    d.name()
                )));
            }
            if a < d.min() - 1e-9 || a > d.max() + 1e-9 {
                return Err(CoreError::InvalidAllocation(format!(
                    "{} = {} outside [{}, {}]",
                    d.name(),
                    a,
                    d.min(),
                    d.max()
                )));
            }
        }
        Ok(Allocation {
            space: self.clone(),
            amounts,
        })
    }

    /// Creates an allocation, clamping each amount into its bounds instead of
    /// rejecting out-of-range values.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `amounts.len() != k`.
    pub fn allocation_clamped(&self, amounts: Vec<f64>) -> Result<Allocation, CoreError> {
        if amounts.len() != self.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.len(),
                actual: amounts.len(),
            });
        }
        let amounts = self
            .descriptors
            .iter()
            .zip(amounts)
            .map(|(d, a)| {
                if a.is_finite() {
                    a.clamp(d.min(), d.max())
                } else {
                    d.min()
                }
            })
            .collect();
        Ok(Allocation {
            space: self.clone(),
            amounts,
        })
    }

    /// Enumerates every integral allocation on a grid with the given strides.
    ///
    /// Used by profilers and exhaustive searches. Continuous resources are
    /// sampled at `stride` spacing as well.
    pub fn grid(&self, strides: &[f64]) -> Vec<Allocation> {
        assert_eq!(
            strides.len(),
            self.len(),
            "one stride per resource dimension"
        );
        let axes: Vec<Vec<f64>> = self
            .descriptors
            .iter()
            .zip(strides)
            .map(|(d, &s)| {
                let mut axis = Vec::new();
                let mut v = d.min();
                while v <= d.max() + 1e-9 {
                    axis.push(v.min(d.max()));
                    v += s.max(1e-9);
                }
                if let Some(last) = axis.last() {
                    if (last - d.max()).abs() > 1e-9 {
                        axis.push(d.max());
                    }
                }
                axis
            })
            .collect();
        let mut out = vec![Vec::new()];
        for axis in &axes {
            let mut next = Vec::with_capacity(out.len() * axis.len());
            for prefix in &out {
                for &v in axis {
                    let mut p = prefix.clone();
                    p.push(v);
                    next.push(p);
                }
            }
            out = next;
        }
        out.into_iter()
            .map(|amounts| Allocation {
                space: self.clone(),
                amounts,
            })
            .collect()
    }
}

impl fmt::Display for ResourceSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ResourceSpace(")?;
        for (i, d) in self.descriptors.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}∈[{},{}]", d.name(), d.min(), d.max())?;
        }
        write!(f, ")")
    }
}

/// Builder for [`ResourceSpace`].
#[derive(Debug)]
pub struct ResourceSpaceBuilder {
    descriptors: Vec<ResourceDescriptor>,
}

impl ResourceSpaceBuilder {
    /// Adds a resource dimension.
    pub fn resource(mut self, descriptor: ResourceDescriptor) -> Self {
        self.descriptors.push(descriptor);
        self
    }

    /// Finishes the space.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpace`] if no resources were added, if any
    /// descriptor is invalid, or if two resources share a name.
    pub fn build(self) -> Result<ResourceSpace, CoreError> {
        if self.descriptors.is_empty() {
            return Err(CoreError::InvalidSpace("no resources defined".into()));
        }
        for d in &self.descriptors {
            d.validate()?;
        }
        for (i, d) in self.descriptors.iter().enumerate() {
            if self.descriptors[..i].iter().any(|e| e.name() == d.name()) {
                return Err(CoreError::InvalidSpace(format!(
                    "duplicate resource name {:?}",
                    d.name()
                )));
            }
        }
        Ok(ResourceSpace {
            descriptors: Arc::new(self.descriptors),
        })
    }
}

/// A point in a [`ResourceSpace`]: how much of each direct resource an
/// application holds.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    space: ResourceSpace,
    amounts: Vec<f64>,
}

impl Allocation {
    /// The space this allocation lives in.
    pub fn space(&self) -> &ResourceSpace {
        &self.space
    }

    /// Amount of resource `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn amount(&self, j: usize) -> f64 {
        self.amounts[j]
    }

    /// Amount of the resource named `name`, if it exists.
    pub fn amount_of(&self, name: &str) -> Option<f64> {
        self.space.index_of(name).map(|j| self.amounts[j])
    }

    /// All amounts in dimension order.
    pub fn amounts(&self) -> &[f64] {
        &self.amounts
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.amounts.len()
    }

    /// True if the allocation has no dimensions (cannot happen for
    /// allocations built from a valid space).
    pub fn is_empty(&self) -> bool {
        self.amounts.is_empty()
    }

    /// Rounds every integral resource to the nearest whole unit, keeping the
    /// result within bounds.
    #[must_use]
    pub fn rounded(&self) -> Allocation {
        let amounts = self
            .space
            .iter()
            .zip(&self.amounts)
            .map(|(d, &a)| {
                if d.is_integral() {
                    a.round().clamp(d.min(), d.max())
                } else {
                    a
                }
            })
            .collect();
        Allocation {
            space: self.space.clone(),
            amounts,
        }
    }

    /// Rounds every integral resource *down*, keeping within bounds.
    ///
    /// Used when converting a continuous demand solution into a hardware
    /// allocation that must not exceed the budget.
    #[must_use]
    pub fn floored(&self) -> Allocation {
        let amounts = self
            .space
            .iter()
            .zip(&self.amounts)
            .map(|(d, &a)| {
                if d.is_integral() {
                    a.floor().clamp(d.min(), d.max())
                } else {
                    a
                }
            })
            .collect();
        Allocation {
            space: self.space.clone(),
            amounts,
        }
    }

    /// The complementary allocation: what remains of the server when this
    /// allocation is reserved (the other side of the Edgeworth box).
    ///
    /// Each dimension is `max_j - amount_j`, clamped below at zero. Note the
    /// complement can fall below a descriptor's `min` — a co-runner may be
    /// left with nothing.
    pub fn complement(&self) -> Vec<f64> {
        self.space
            .iter()
            .zip(&self.amounts)
            .map(|(d, &a)| (d.max() - a).max(0.0))
            .collect()
    }

    /// Element-wise distance `max_j |a_j - b_j|` between two allocations.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the allocations live in
    /// spaces of different dimensionality.
    pub fn chebyshev_distance(&self, other: &Allocation) -> Result<f64, CoreError> {
        if self.len() != other.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(self
            .amounts
            .iter()
            .zip(&other.amounts)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }
}

impl fmt::Display for Allocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (d, a)) in self.space.iter().zip(&self.amounts).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {:.2}", d.name(), a)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::xeon_space;

    fn space() -> ResourceSpace {
        xeon_space()
    }

    #[test]
    fn builder_rejects_empty() {
        assert!(matches!(
            ResourceSpace::builder().build(),
            Err(CoreError::InvalidSpace(_))
        ));
    }

    #[test]
    fn builder_rejects_duplicate_names() {
        let err = ResourceSpace::builder()
            .resource(ResourceDescriptor::integral("cores", 1.0, 4.0))
            .resource(ResourceDescriptor::integral("cores", 1.0, 8.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidSpace(_)));
    }

    #[test]
    fn builder_rejects_zero_min() {
        let err = ResourceSpace::builder()
            .resource(ResourceDescriptor::integral("cores", 0.0, 4.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidSpace(_)));
    }

    #[test]
    fn builder_rejects_inverted_bounds() {
        let err = ResourceSpace::builder()
            .resource(ResourceDescriptor::integral("cores", 5.0, 4.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidSpace(_)));
    }

    #[test]
    fn standard_space_shape() {
        let s = space();
        assert_eq!(s.len(), 2);
        assert_eq!(s.descriptor(0).name(), "cores");
        assert_eq!(s.descriptor(1).max(), 20.0);
        assert_eq!(s.index_of("cores"), Some(0));
        assert_eq!(s.index_of("gpu"), None);
        assert!(!s.is_empty());
    }

    #[test]
    fn allocation_validation() {
        let s = space();
        assert!(s.allocation(vec![4.0, 10.0]).is_ok());
        assert!(matches!(
            s.allocation(vec![4.0]),
            Err(CoreError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            s.allocation(vec![0.0, 10.0]),
            Err(CoreError::InvalidAllocation(_))
        ));
        assert!(matches!(
            s.allocation(vec![13.0, 10.0]),
            Err(CoreError::InvalidAllocation(_))
        ));
        assert!(matches!(
            s.allocation(vec![f64::NAN, 10.0]),
            Err(CoreError::InvalidAllocation(_))
        ));
    }

    #[test]
    fn allocation_clamping() {
        let s = space();
        let a = s.allocation_clamped(vec![50.0, -3.0]).unwrap();
        assert_eq!(a.amounts(), &[12.0, 1.0]);
        let b = s.allocation_clamped(vec![f64::NAN, 5.0]).unwrap();
        assert_eq!(b.amount(0), 1.0);
    }

    #[test]
    fn min_max_allocations() {
        let s = space();
        assert_eq!(s.min_allocation().amounts(), &[1.0, 1.0]);
        assert_eq!(s.max_allocation().amounts(), &[12.0, 20.0]);
    }

    #[test]
    fn rounding() {
        let s = space();
        let a = s.allocation(vec![3.6, 10.4]).unwrap();
        assert_eq!(a.rounded().amounts(), &[4.0, 10.0]);
        assert_eq!(a.floored().amounts(), &[3.0, 10.0]);
    }

    #[test]
    fn rounding_respects_bounds() {
        let s = space();
        let a = s.allocation(vec![1.2, 1.4]).unwrap();
        assert_eq!(a.floored().amounts(), &[1.0, 1.0]);
    }

    #[test]
    fn complement_is_remaining_capacity() {
        let s = space();
        let a = s.allocation(vec![4.0, 15.0]).unwrap();
        assert_eq!(a.complement(), vec![8.0, 5.0]);
        let full = s.max_allocation();
        assert_eq!(full.complement(), vec![0.0, 0.0]);
    }

    #[test]
    fn amount_of_by_name() {
        let s = space();
        let a = s.allocation(vec![4.0, 15.0]).unwrap();
        assert_eq!(a.amount_of("llc_ways"), Some(15.0));
        assert_eq!(a.amount_of("gpu"), None);
    }

    #[test]
    fn chebyshev_distance() {
        let s = space();
        let a = s.allocation(vec![4.0, 15.0]).unwrap();
        let b = s.allocation(vec![6.0, 10.0]).unwrap();
        assert_eq!(a.chebyshev_distance(&b).unwrap(), 5.0);
        assert_eq!(a.chebyshev_distance(&a).unwrap(), 0.0);
    }

    #[test]
    fn grid_enumerates_all_points() {
        let s = ResourceSpace::builder()
            .resource(ResourceDescriptor::integral("a", 1.0, 3.0))
            .resource(ResourceDescriptor::integral("b", 1.0, 2.0))
            .build()
            .unwrap();
        let g = s.grid(&[1.0, 1.0]);
        assert_eq!(g.len(), 6);
        assert!(g.iter().any(|p| p.amounts() == [3.0, 2.0]));
        assert!(g.iter().any(|p| p.amounts() == [1.0, 1.0]));
    }

    #[test]
    fn grid_includes_max_with_uneven_stride() {
        let s = ResourceSpace::builder()
            .resource(ResourceDescriptor::integral("a", 1.0, 10.0))
            .build()
            .unwrap();
        let g = s.grid(&[4.0]);
        let last = g.last().unwrap();
        assert_eq!(last.amount(0), 10.0);
    }

    #[test]
    fn display_formats() {
        let s = space();
        let a = s.allocation(vec![4.0, 15.0]).unwrap();
        assert_eq!(format!("{a}"), "{cores: 4.00, llc_ways: 15.00}");
        assert!(format!("{s}").contains("cores∈[1,12]"));
    }
}

//! Indifference curves and the least-power expansion path (Fig. 5).
//!
//! An application is *indifferent* between any two allocations on the same
//! iso-performance curve — they all sustain the given load within the SLO.
//! In a power-constrained server the interesting allocation on each curve is
//! the one drawing the **least power**; connecting those across load levels
//! yields the expansion path the server manager walks as load changes.

use crate::error::CoreError;
use crate::resources::Allocation;
use crate::units::Watts;
use crate::utility::{CobbDouglas, IndirectUtility};

/// One point on a least-power expansion path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPoint {
    /// The performance (load) level this point sustains.
    pub target: f64,
    /// The least-power allocation achieving `target`.
    pub allocation: Allocation,
    /// Power drawn at that allocation.
    pub power: Watts,
}

/// Traces the iso-performance (indifference) curve of a two-of-`k` slice of
/// a Cobb-Douglas model.
///
/// Sweeps resource `dim_x` over `n_points` evenly spaced values within its
/// bounds, holding every other resource at the amounts in `base` and solving
/// resource `dim_y` for `target` performance. Points whose solved `dim_y`
/// falls outside its bounds are omitted, so the returned curve may be
/// shorter than `n_points` (or empty if the target is unreachable on this
/// slice).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `dim_x == dim_y`, either
/// dimension is out of range, either exponent is zero, or `target ≤ 0`;
/// [`CoreError::DimensionMismatch`] if `base` does not match the model.
pub fn indifference_curve(
    perf: &CobbDouglas,
    base: &Allocation,
    dim_x: usize,
    dim_y: usize,
    target: f64,
    n_points: usize,
) -> Result<Vec<(f64, f64)>, CoreError> {
    let space = base.space();
    let k = space.len();
    if dim_x >= k || dim_y >= k {
        return Err(CoreError::DimensionMismatch {
            expected: k,
            actual: dim_x.max(dim_y),
        });
    }
    if dim_x == dim_y {
        return Err(CoreError::InvalidParameter(
            "dim_x and dim_y must differ".into(),
        ));
    }
    if n_points < 2 {
        return Err(CoreError::InvalidParameter(
            "need at least 2 points to trace a curve".into(),
        ));
    }
    let dx = space.descriptor(dim_x);
    let dy = space.descriptor(dim_y);
    let mut curve = Vec::with_capacity(n_points);
    for i in 0..n_points {
        let x = dx.min() + (dx.max() - dx.min()) * (i as f64) / ((n_points - 1) as f64);
        let mut amounts = base.amounts().to_vec();
        amounts[dim_x] = x;
        let y = perf.solve_for_resource(&amounts, dim_y, target)?;
        if y >= dy.min() - 1e-9 && y <= dy.max() + 1e-9 {
            curve.push((x, y.clamp(dy.min(), dy.max())));
        }
    }
    Ok(curve)
}

/// The least-power allocation sustaining `target` performance
/// (allocation-A/B of Fig. 5): inverts the indirect utility for the minimum
/// budget, then takes the demand at that budget.
///
/// # Errors
///
/// Propagates [`CoreError::UnreachableTarget`] and budget errors from
/// [`IndirectUtility::min_power_for`].
pub fn least_power_allocation(
    utility: &IndirectUtility,
    target: f64,
) -> Result<PathPoint, CoreError> {
    let power = utility.min_power_for(target)?;
    let allocation = utility.demand(power)?;
    let actual = utility.power_model().power_of(&allocation);
    Ok(PathPoint {
        target,
        allocation,
        power: actual,
    })
}

/// Traces the least-power expansion path across several performance targets
/// (the dotted curve of Fig. 5).
///
/// Unreachable targets are skipped, so the result may be shorter than
/// `targets`.
///
/// # Errors
///
/// Propagates any error other than [`CoreError::UnreachableTarget`].
pub fn expansion_path(
    utility: &IndirectUtility,
    targets: &[f64],
) -> Result<Vec<PathPoint>, CoreError> {
    let mut path = Vec::with_capacity(targets.len());
    for &t in targets {
        match least_power_allocation(utility, t) {
            Ok(p) => path.push(p),
            Err(CoreError::UnreachableTarget { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::xeon_space;
    use crate::utility::PowerModel;

    fn utility() -> IndirectUtility {
        let space = xeon_space();
        let perf = CobbDouglas::new(100.0, vec![0.6, 0.4]).unwrap();
        let power = PowerModel::new(Watts(50.0), vec![6.0, 1.5]).unwrap();
        IndirectUtility::new(space, perf, power).unwrap()
    }

    #[test]
    fn curve_points_hit_the_target() {
        let u = utility();
        let base = u.space().min_allocation();
        let target = 300.0;
        let curve = indifference_curve(u.performance_model(), &base, 0, 1, target, 24).unwrap();
        assert!(!curve.is_empty());
        for &(x, y) in &curve {
            let perf = u.performance_model().evaluate_amounts(&[x, y]).unwrap();
            assert!(
                (perf - target).abs() / target < 1e-6,
                "({x},{y}) -> {perf} != {target}"
            );
        }
    }

    #[test]
    fn curve_is_downward_sloping() {
        let u = utility();
        let base = u.space().min_allocation();
        let curve = indifference_curve(u.performance_model(), &base, 0, 1, 300.0, 24).unwrap();
        for pair in curve.windows(2) {
            assert!(pair[1].0 > pair[0].0);
            assert!(
                pair[1].1 < pair[0].1,
                "more cores should need fewer ways at iso-perf"
            );
        }
    }

    #[test]
    fn higher_targets_shift_curves_outward() {
        let u = utility();
        let base = u.space().min_allocation();
        let lo = indifference_curve(u.performance_model(), &base, 0, 1, 250.0, 24).unwrap();
        let hi = indifference_curve(u.performance_model(), &base, 0, 1, 400.0, 24).unwrap();
        // For any shared x the higher-load curve needs more of y.
        for &(x_lo, y_lo) in &lo {
            if let Some(&(_, y_hi)) = hi.iter().find(|&&(x_hi, _)| (x_hi - x_lo).abs() < 1e-9) {
                assert!(y_hi > y_lo);
            }
        }
    }

    #[test]
    fn unreachable_target_gives_empty_curve() {
        let u = utility();
        let base = u.space().min_allocation();
        let curve = indifference_curve(u.performance_model(), &base, 0, 1, 1e9, 10).unwrap();
        assert!(curve.is_empty());
    }

    #[test]
    fn curve_argument_validation() {
        let u = utility();
        let base = u.space().min_allocation();
        let m = u.performance_model();
        assert!(indifference_curve(m, &base, 0, 0, 100.0, 10).is_err());
        assert!(indifference_curve(m, &base, 0, 5, 100.0, 10).is_err());
        assert!(indifference_curve(m, &base, 0, 1, 100.0, 1).is_err());
        assert!(indifference_curve(m, &base, 0, 1, -5.0, 10).is_err());
    }

    #[test]
    fn least_power_point_achieves_target() {
        let u = utility();
        let target = u.value(Watts(100.0)).unwrap();
        let p = least_power_allocation(&u, target).unwrap();
        let perf = u.performance_model().evaluate(&p.allocation).unwrap();
        assert!(perf >= target * (1.0 - 1e-6));
        assert!((p.power.0 - 100.0).abs() < 1e-3, "power {}", p.power);
    }

    #[test]
    fn least_power_beats_other_iso_perf_allocations() {
        let u = utility();
        let target = u.value(Watts(100.0)).unwrap();
        let opt = least_power_allocation(&u, target).unwrap();
        // Any other allocation achieving >= target must draw >= power.
        let base = u.space().min_allocation();
        let curve = indifference_curve(u.performance_model(), &base, 0, 1, target, 40).unwrap();
        for &(x, y) in &curve {
            let p = u.power_model().power_of_amounts(&[x, y]).unwrap();
            assert!(
                p >= opt.power - Watts(1e-6),
                "({x},{y}) draws {p} < optimum {}",
                opt.power
            );
        }
    }

    #[test]
    fn expansion_path_is_monotone_in_power() {
        let u = utility();
        let max_perf = u.value(u.max_power()).unwrap();
        let targets: Vec<f64> = (1..=8).map(|i| max_perf * (i as f64) / 10.0).collect();
        let path = expansion_path(&u, &targets).unwrap();
        assert_eq!(path.len(), targets.len());
        for pair in path.windows(2) {
            assert!(pair[1].power >= pair[0].power);
            assert!(pair[1].target > pair[0].target);
        }
    }

    #[test]
    fn expansion_path_skips_unreachable() {
        let u = utility();
        let max_perf = u.value(u.max_power()).unwrap();
        let targets = vec![max_perf * 0.5, max_perf * 10.0, max_perf * 0.7];
        let path = expansion_path(&u, &targets).unwrap();
        assert_eq!(path.len(), 2);
    }
}

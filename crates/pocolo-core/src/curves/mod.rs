//! Geometric analyses from consumer theory: indifference curves, least-power
//! expansion paths, and the Edgeworth box (Figs. 5 and 6 of the paper).

pub mod edgeworth;
pub mod indifference;

pub use edgeworth::{EdgeworthBox, SpareCapacity};
pub use indifference::{expansion_path, indifference_curve, least_power_allocation, PathPoint};

//! The Edgeworth box (Fig. 6): how the primary application's power-efficient
//! allocation determines the spare capacity available to a co-runner.
//!
//! The box's lower-left origin is the primary application; the upper-right
//! origin is the secondary. Any allocation to the primary leaves its
//! *complement* (server capacity minus the allocation, in every dimension,
//! plus the remaining power headroom) for the secondary.

use crate::error::CoreError;
use crate::resources::{Allocation, ResourceSpace};
use crate::units::Watts;
use crate::utility::IndirectUtility;

/// Spare capacity left for a secondary application once the primary's
/// allocation is reserved.
#[derive(Debug, Clone, PartialEq)]
pub struct SpareCapacity {
    /// Load/performance level of the primary that produced this point.
    pub primary_target: f64,
    /// The primary's (least-power) allocation.
    pub primary_allocation: Allocation,
    /// Spare amount of each direct resource (server max − primary use).
    pub spare_amounts: Vec<f64>,
    /// Power headroom under the provisioned cap once the primary's draw is
    /// subtracted. The secondary's *dynamic* power (and any additional
    /// static draw) must fit in this.
    pub power_headroom: Watts,
}

impl SpareCapacity {
    /// True if the spare amounts admit a co-runner at all: every dimension
    /// has at least `min_amounts[j]` available and power headroom is
    /// positive.
    pub fn admits(&self, min_amounts: &[f64]) -> bool {
        self.power_headroom > Watts::ZERO
            && self
                .spare_amounts
                .iter()
                .zip(min_amounts)
                .all(|(&have, &need)| have + 1e-9 >= need)
    }
}

/// Edgeworth-box analysis over a server's resource space with a provisioned
/// power cap.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeworthBox {
    space: ResourceSpace,
    power_cap: Watts,
}

impl EdgeworthBox {
    /// Creates a box for `space` under a provisioned `power_cap`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the cap is not a valid
    /// positive power.
    pub fn new(space: ResourceSpace, power_cap: Watts) -> Result<Self, CoreError> {
        if !power_cap.is_valid() || power_cap == Watts::ZERO {
            return Err(CoreError::InvalidParameter(format!(
                "power cap must be positive, got {}",
                power_cap.0
            )));
        }
        Ok(EdgeworthBox { space, power_cap })
    }

    /// The resource space of the box.
    pub fn space(&self) -> &ResourceSpace {
        &self.space
    }

    /// The provisioned power cap.
    pub fn power_cap(&self) -> Watts {
        self.power_cap
    }

    /// Spare capacity when the primary runs at `primary_allocation`, drawing
    /// `primary_power`.
    pub fn spare_for(
        &self,
        primary_target: f64,
        primary_allocation: Allocation,
        primary_power: Watts,
    ) -> SpareCapacity {
        let spare_amounts = primary_allocation.complement();
        let power_headroom = (self.power_cap - primary_power).max(Watts::ZERO);
        SpareCapacity {
            primary_target,
            primary_allocation,
            spare_amounts,
            power_headroom,
        }
    }

    /// Traces spare capacity along the primary's least-power expansion path
    /// for the given load targets (the striped feasible region of Fig. 6).
    ///
    /// Targets the primary cannot reach are skipped.
    ///
    /// # Errors
    ///
    /// Propagates model errors other than unreachable targets.
    pub fn spare_along_path(
        &self,
        primary: &IndirectUtility,
        targets: &[f64],
    ) -> Result<Vec<SpareCapacity>, CoreError> {
        let path = crate::curves::indifference::expansion_path(primary, targets)?;
        Ok(path
            .into_iter()
            .map(|p| self.spare_for(p.target, p.allocation, p.power))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::xeon_space;
    use crate::utility::{CobbDouglas, PowerModel};

    fn primary() -> IndirectUtility {
        let space = xeon_space();
        // Cache-hungry sphinx-like primary.
        let perf = CobbDouglas::new(2.0, vec![0.3, 0.7]).unwrap();
        let power = PowerModel::new(Watts(50.0), vec![6.0, 1.5]).unwrap();
        IndirectUtility::new(space, perf, power).unwrap()
    }

    #[test]
    fn rejects_invalid_cap() {
        let space = xeon_space();
        assert!(EdgeworthBox::new(space.clone(), Watts(0.0)).is_err());
        assert!(EdgeworthBox::new(space.clone(), Watts(-5.0)).is_err());
        assert!(EdgeworthBox::new(space, Watts(132.0)).is_ok());
    }

    #[test]
    fn spare_is_complement() {
        let space = xeon_space();
        let boxy = EdgeworthBox::new(space.clone(), Watts(132.0)).unwrap();
        let alloc = space.allocation(vec![1.0, 5.0]).unwrap();
        let spare = boxy.spare_for(0.2, alloc, Watts(64.0));
        assert_eq!(spare.spare_amounts, vec![11.0, 15.0]);
        assert_eq!(spare.power_headroom, Watts(68.0));
    }

    #[test]
    fn headroom_floors_at_zero() {
        let space = xeon_space();
        let boxy = EdgeworthBox::new(space.clone(), Watts(132.0)).unwrap();
        let alloc = space.max_allocation();
        let spare = boxy.spare_for(1.0, alloc, Watts(150.0));
        assert_eq!(spare.power_headroom, Watts::ZERO);
        assert!(!spare.admits(&[1.0, 1.0]));
    }

    #[test]
    fn admits_checks_every_dimension() {
        let space = xeon_space();
        let boxy = EdgeworthBox::new(space.clone(), Watts(132.0)).unwrap();
        let alloc = space.allocation(vec![12.0, 5.0]).unwrap();
        let spare = boxy.spare_for(0.5, alloc, Watts(100.0));
        // Spare cores = 0 -> cannot admit a corunner needing 1 core.
        assert!(!spare.admits(&[1.0, 1.0]));
        assert!(spare.admits(&[0.0, 1.0]));
    }

    #[test]
    fn spare_shrinks_as_primary_load_grows() {
        let u = primary();
        let boxy = EdgeworthBox::new(u.space().clone(), Watts(132.0)).unwrap();
        let max_perf = u.value(u.max_power()).unwrap();
        let targets: Vec<f64> = (1..=9).map(|i| max_perf * (i as f64) / 10.0).collect();
        let spares = boxy.spare_along_path(&u, &targets).unwrap();
        assert_eq!(spares.len(), targets.len());
        for pair in spares.windows(2) {
            assert!(pair[1].power_headroom <= pair[0].power_headroom + Watts(1e-9));
            // Total spare resource never grows with load.
            let total0: f64 = pair[0].spare_amounts.iter().sum();
            let total1: f64 = pair[1].spare_amounts.iter().sum();
            assert!(total1 <= total0 + 1e-9);
        }
    }

    #[test]
    fn cache_hungry_primary_leaves_cores() {
        // A primary that prefers caches (per watt) leaves cores for the
        // co-runner — the paper's key geometric insight.
        let u = primary();
        let boxy = EdgeworthBox::new(u.space().clone(), Watts(132.0)).unwrap();
        let max_perf = u.value(u.max_power()).unwrap();
        let spares = boxy.spare_along_path(&u, &[max_perf * 0.5]).unwrap();
        let s = &spares[0];
        let frac_cores_spare = s.spare_amounts[0] / 12.0;
        let frac_ways_spare = s.spare_amounts[1] / 20.0;
        assert!(
            frac_cores_spare > frac_ways_spare,
            "cache-hungry primary should leave proportionally more cores: {s:?}"
        );
    }
}

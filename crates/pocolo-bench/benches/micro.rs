//! Criterion micro-benchmarks for the paper's systems claims:
//!
//! - §IV-C: the analytic allocation decision is "a constant time operation
//!   (less than a millisecond)" — `demand_solver`.
//! - §IV-A: model fitting is cheap enough to run online — `model_fitting`.
//! - §IV-B: assignment solving (LP vs Hungarian vs exhaustive) —
//!   `assignment`.
//! - §IV-C: the 100 ms capper actuation loop — `capper_step`.
//! - §IV-B: matrix construction with the shared expansion-path cache vs
//!   per-pair recomputation — `perfmatrix_build`.
//! - §V-D: the three-policy load sweep, serial vs thread-scope fan-out —
//!   `policy_sweep`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pocolo::prelude::*;
use pocolo_cluster::assign;
use pocolo_core::fit::{fit_indirect_utility, FitOptions};
use pocolo_simserver::power::PowerDrawModel;
use pocolo_simserver::SimServer;
use pocolo_workloads::profiler::profile_lc;
use std::hint::black_box;

fn demand_solver(c: &mut Criterion) {
    let machine = MachineSpec::xeon_e5_2650();
    let power = PowerDrawModel::new(machine.clone());
    let space = machine.resource_space();
    let truth = LcModel::for_app(LcApp::Sphinx, machine);
    let samples = profile_lc(&truth, &power, &space, &ProfilerConfig::default());
    let utility = fit_indirect_utility(&space, &samples, &FitOptions::default())
        .unwrap()
        .utility;
    c.bench_function("demand_solver/analytic", |b| {
        b.iter(|| utility.demand(black_box(Watts(120.0))).unwrap())
    });
    c.bench_function("demand_solver/integral", |b| {
        b.iter(|| utility.demand_integral(black_box(Watts(120.0))).unwrap())
    });
    c.bench_function("demand_solver/min_power_for", |b| {
        b.iter(|| utility.min_power_for(black_box(5.0)).unwrap())
    });
}

fn model_fitting(c: &mut Criterion) {
    let machine = MachineSpec::xeon_e5_2650();
    let power = PowerDrawModel::new(machine.clone());
    let space = machine.resource_space();
    let truth = LcModel::for_app(LcApp::Xapian, machine);
    let mut group = c.benchmark_group("model_fitting");
    for stride in [1u32, 2, 3] {
        let cfg = ProfilerConfig {
            core_stride: stride,
            ..ProfilerConfig::default()
        };
        let samples = profile_lc(&truth, &power, &space, &cfg);
        group.bench_with_input(
            BenchmarkId::from_parameter(samples.len()),
            &samples,
            |b, samples| {
                b.iter(|| {
                    fit_indirect_utility(&space, black_box(samples), &FitOptions::default())
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn assignment(c: &mut Criterion) {
    use rand::prelude::*;
    let mut group = c.benchmark_group("assignment");
    for n in [4usize, 8, 16, 32] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let values: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let matrix = PerfMatrix::new(
            (0..n).map(|i| format!("be{i}")).collect(),
            (0..n).map(|j| format!("lc{j}")).collect(),
            values,
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("hungarian", n), &matrix, |b, m| {
            b.iter(|| assign::solve(black_box(m), Solver::Hungarian).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lp_simplex", n), &matrix, |b, m| {
            b.iter(|| assign::solve(black_box(m), Solver::Lp).unwrap())
        });
        if n <= 8 {
            group.bench_with_input(BenchmarkId::new("exhaustive", n), &matrix, |b, m| {
                b.iter(|| assign::solve(black_box(m), Solver::Exhaustive).unwrap())
            });
        }
    }
    group.finish();
}

fn perfmatrix_build(c: &mut Criterion) {
    use pocolo_cluster::{estimate_on_path, estimate_pair_throughput, ExpansionPath};
    let fitted = FittedCluster::fit(&ProfilerConfig::default());
    let bes = fitted.be_profiles();
    let servers = fitted.server_profiles();
    let levels: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let mut group = c.benchmark_group("perfmatrix_build");
    // Uncached reference: every (BE, server) pair re-walks the server's
    // expansion path, i.e. O(B·S·L) min_power_for bisections.
    group.bench_function("uncached", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for (_, be) in &bes {
                for server in &servers {
                    total += estimate_pair_throughput(be, server, &levels).unwrap();
                }
            }
            total
        })
    });
    // Cached: one ExpansionPath per server, shared across all BE rows —
    // what PerfMatrixBuilder::build does internally.
    group.bench_function("cached", |b| {
        b.iter(|| {
            let paths: Vec<ExpansionPath> = servers
                .iter()
                .map(|s| ExpansionPath::compute(s, &levels).unwrap())
                .collect();
            let mut total = 0.0;
            for (_, be) in &bes {
                for path in &paths {
                    total += estimate_on_path(be, path).unwrap();
                }
            }
            total
        })
    });
    group.bench_function("builder", |b| {
        b.iter(|| {
            PerfMatrixBuilder::new()
                .build(black_box(&bes), black_box(&servers))
                .unwrap()
        })
    });
    group.finish();
}

fn policy_sweep(c: &mut Criterion) {
    let fitted = FittedCluster::fit(&ProfilerConfig::default());
    let policies = [
        Policy::Random { seed: 7 },
        Policy::Pom { seed: 7 },
        Policy::Pocolo {
            solver: Solver::Hungarian,
        },
    ];
    let levels = [0.2, 0.5, 0.8];
    let config = |parallelism| ExperimentConfig {
        dwell_s: 4.0,
        parallelism,
        ..ExperimentConfig::default()
    };
    let mut group = c.benchmark_group("policy_sweep");
    group.bench_function("serial", |b| {
        let cfg = config(Parallelism::Serial);
        b.iter(|| run_policy_sweeps(black_box(&policies), &cfg, &fitted, &levels))
    });
    group.bench_function("auto", |b| {
        let cfg = config(Parallelism::Auto);
        b.iter(|| run_policy_sweeps(black_box(&policies), &cfg, &fitted, &levels))
    });
    group.finish();
}

fn capper_step(c: &mut Criterion) {
    let machine = MachineSpec::xeon_e5_2650();
    let mut server = SimServer::new(machine.clone(), Watts(154.0));
    server
        .install(
            TenantRole::Secondary,
            TenantAllocation::new(CoreSet::range(4, 8), WayMask::range(8, 12), Frequency(2.2)),
        )
        .unwrap();
    let capper = PowerCapper::default();
    c.bench_function("capper_step", |b| {
        b.iter(|| capper.step(&mut server, black_box(Watts(150.0))).unwrap())
    });
}

fn streaming_percentile(c: &mut Criterion) {
    use pocolo_simserver::p2::P2Quantile;
    c.bench_function("p2_quantile_observe", |b| {
        let mut est = P2Quantile::new(0.99);
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x * 1.000_1 + 0.37) % 100.0;
            est.observe(black_box(x));
        })
    });
}

fn be_queue(c: &mut Criterion) {
    use pocolo_manager::queue::{BeJob, BeQueue, QueueDiscipline};
    c.bench_function("be_queue_advance_sjf", |b| {
        b.iter_with_setup(
            || {
                let mut q = BeQueue::new(QueueDiscipline::Sjf);
                for i in 0..32 {
                    q.submit(BeJob::new(i, "job", 1.0 + i as f64, 0.0));
                }
                q
            },
            |mut q| {
                let _ = q.advance(black_box(0.8), 0.1, 0.1);
                q
            },
        )
    });
}

criterion_group!(
    benches,
    demand_solver,
    model_fitting,
    assignment,
    perfmatrix_build,
    policy_sweep,
    capper_step,
    streaming_percentile,
    be_queue
);
criterion_main!(benches);

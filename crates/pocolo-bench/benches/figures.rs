//! `cargo bench` target that regenerates every table and figure.
fn main() {
    pocolo_bench::figures::run_all();
}

//! Criterion harness over sharded traffic generation: one flash-crowd
//! peak tick at 250k → 4M users, 1 vs 8 shards. The JSON baseline comes
//! from the `traffic_throughput` *binary* (the criterion shim has no
//! programmatic median export); this harness exists for interactive
//! `cargo bench` runs and to keep the scenarios compiling under
//! `cargo bench --no-run`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pocolo_bench::traffic_scale::{generator, STANDARD_USERS};
use pocolo_sim::parallel::Parallelism;
use std::hint::black_box;

fn traffic_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("traffic_throughput");
    for &users in &STANDARD_USERS {
        let gen = generator(users, 0xF1_0C5);
        for (label, shards, par) in [
            ("serial", 1usize, Parallelism::Serial),
            ("sharded8", 8usize, Parallelism::Auto),
        ] {
            group.bench_with_input(BenchmarkId::new(label, users), &gen, |b, gen| {
                b.iter(|| black_box(gen).tick(8, shards, par))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, traffic_throughput);
criterion_main!(benches);

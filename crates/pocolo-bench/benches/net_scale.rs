//! Criterion harness over the reactor's hot paths. The standing JSON
//! baseline (`BENCH_net.json`) comes from the `net_scale` *binary*,
//! which measures whole fleets against a live daemon; this harness
//! covers the per-operation costs those fleets are made of — frame
//! reassembly off a fragmented byte stream and a full small-fleet
//! register/heartbeat/complete pass — and keeps the scenarios compiling
//! under `cargo bench --no-run`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pocolo::net::frame::encode_frame_str;
use pocolo::net::swarm::{run_swarm, SwarmConfig};
use pocolo::net::{ClusterConfig, Clusterd, FrameBuffer, RunSpec};
use std::hint::black_box;
use std::time::Duration;

/// A wire-realistic telemetry batch: 256 frames, concatenated as they
/// would arrive on one socket.
fn telemetry_stream() -> Vec<u8> {
    let mut bytes = Vec::new();
    for epoch in 0..256u64 {
        let body = format!(
            "{{\"v\":1,\"type\":\"telemetry\",\"server\":7,\"epoch\":{epoch},\
             \"power_w\":83.25,\"slack\":0.125,\"be_throughput\":0.5}}"
        );
        bytes.extend_from_slice(&encode_frame_str(&body).expect("frame encodes"));
    }
    bytes
}

fn frame_reassembly(c: &mut Criterion) {
    let stream = telemetry_stream();
    let mut group = c.benchmark_group("frame_reassembly");
    // The reactor pops raw payloads; chunked extends model fragmented
    // reads off a nonblocking socket.
    for &chunk in &[stream.len(), 1024, 64] {
        group.bench_with_input(BenchmarkId::new("next_raw", chunk), &stream, |b, stream| {
            b.iter(|| {
                let mut buf = FrameBuffer::new();
                let mut frames = 0usize;
                for piece in stream.chunks(chunk) {
                    buf.extend(piece);
                    while let Some(payload) = buf.next_raw().expect("valid stream") {
                        frames += black_box(payload).len().min(1);
                    }
                }
                assert_eq!(frames, 256);
                frames
            })
        });
    }
    group.finish();
}

fn swarm_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("swarm_pass");
    // One full fleet lifecycle against a live reactor daemon: connect,
    // register, three closed-loop heartbeats, complete, drain.
    group.bench_function("reactor_32_agents", |b| {
        b.iter(|| {
            let n = 32;
            let seed = 0xBE9C;
            let config = ClusterConfig::new(
                "127.0.0.1:0".parse().expect("loopback literal"),
                Duration::from_secs(30),
                RunSpec::scale(n, seed),
            );
            let clusterd = Clusterd::spawn(config).expect("clusterd spawn");
            let swarm = SwarmConfig::new(clusterd.local_addr(), n, 3, seed);
            let report = run_swarm(&swarm).expect("swarm pass");
            assert!(clusterd.wait_done(Duration::from_secs(30)));
            black_box(report.rtts_us.len())
        })
    });
    group.finish();
}

criterion_group!(benches, frame_reassembly, swarm_pass);
criterion_main!(benches);

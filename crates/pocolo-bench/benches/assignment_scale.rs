//! Criterion harness over the fleet-scale assignment scenarios: cold
//! ε-scaled auction, warm-started replan, and single-fault incremental
//! repair at 1k×100 through 10k×500. The JSON baseline comes from the
//! `assignment_scale` *binary* (the criterion shim has no programmatic
//! median export); this harness exists for interactive `cargo bench` runs
//! and to keep the scenarios compiling under `cargo bench --no-run`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pocolo_bench::assignment_scale::{fault_delta, synthetic_matrix, STANDARD_SIZES};
use pocolo_cluster::assign::auction::{self, AuctionConfig};
use pocolo_cluster::assign::sparse::SparseCandidates;
use std::hint::black_box;

fn assignment_scale(c: &mut Criterion) {
    let cfg = AuctionConfig::default();
    let mut group = c.benchmark_group("assignment_scale");
    for &(m, n) in &STANDARD_SIZES {
        let matrix = synthetic_matrix(m, n, 0xBE_EC5);
        let mut cands = SparseCandidates::build(&matrix, SparseCandidates::default_k(n));
        let prev =
            auction::solve_with_candidates(&matrix, &mut cands, &cfg).expect("reference solve");
        let delta = fault_delta(&prev);
        let patched = matrix.patched(&delta).expect("patched matrix");
        let size = format!("{n}x{m}");

        group.bench_with_input(BenchmarkId::new("cold", &size), &matrix, |b, matrix| {
            b.iter(|| auction::solve(black_box(matrix), &cfg).expect("cold solve"))
        });
        group.bench_with_input(BenchmarkId::new("warm", &size), &matrix, |b, matrix| {
            b.iter(|| {
                let mut c = cands.clone();
                auction::solve_warm(black_box(matrix), &mut c, &prev.prices, &cfg)
                    .expect("warm solve")
            })
        });
        group.bench_with_input(
            BenchmarkId::new("incremental", &size),
            &patched,
            |b, patched| {
                b.iter(|| {
                    let mut c = cands.clone();
                    auction::solve_incremental(black_box(patched), &mut c, &prev, &delta, &cfg)
                        .expect("incremental repair")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, assignment_scale);
criterion_main!(benches);

//! Reactor scale baseline: what one clusterd event loop sustains.
//!
//! Three figures of merit per (backend, fleet size), landed in
//! `BENCH_net.json` next to the crate's other standing baselines:
//!
//! - **connections/s** — a cold fleet registering: paced connect storm
//!   until every agent holds a welcome (the welcome carries the full
//!   `RunSpec`, so this is also a serialization-throughput number);
//! - **heartbeat RTT p50/p99** — closed-loop telemetry echo, the
//!   round-trip a heartbeat sees under full request pressure;
//! - **broadcast fan-out** — a `cap_factor` directive flipped once the
//!   whole fleet is registered; the time until the *last* agent
//!   observes it through its telemetry ack at a 1 s heartbeat cadence.
//!
//! The thread-per-connection backend runs the smaller fleets for the
//! threads-vs-reactor comparison in `EXPERIMENTS.md`; 5000 blocking
//! threads on the CI box is exactly the failure mode the reactor
//! removes, so the threads column stops at 2000.
//!
//! The CI gate ([`smoke`]) is the `demo-net --agents 1000` run driven by
//! the workflow (wall-clock budget, timing-independent parity); this
//! module's own smoke keeps a small fleet end-to-end and asserts the
//! parity contract, never wall-clock.

use std::time::{Duration, Instant};

use pocolo::net::swarm::{run_swarm, scale_reference, SwarmConfig};
use pocolo::net::{ClusterConfig, Clusterd, NetBackend, RunSpec};

/// Fleet sizes the standard report sweeps on the reactor backend.
pub const REACTOR_FLEETS: [usize; 3] = [500, 2000, 5000];

/// Fleet sizes the thread-per-connection backend is asked to hold.
pub const THREADS_FLEETS: [usize; 2] = [500, 2000];

/// Heartbeats per agent in the closed-loop RTT phase.
pub const RTT_HEARTBEATS: u64 = 10;

/// Heartbeats per agent in the paced fan-out phase.
pub const FANOUT_HEARTBEATS: u64 = 10;

/// Heartbeat cadence of the fan-out phase.
pub const FANOUT_CADENCE: Duration = Duration::from_secs(1);

/// One `BENCH_net.json` row.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Transport backend under test (`reactor` or `threads`).
    pub backend: String,
    /// Fleet size (agents = slots = connections).
    pub agents: u64,
    /// Register storm wall-clock, seconds (connect → last welcome).
    pub connect_wall_s: f64,
    /// Accepted-and-welcomed connections per second.
    pub connections_per_s: f64,
    /// Closed-loop telemetry round-trips per second.
    pub rpc_per_s: f64,
    /// Median heartbeat round-trip, microseconds.
    pub rtt_p50_us: u64,
    /// 99th-percentile heartbeat round-trip, microseconds.
    pub rtt_p99_us: u64,
    /// Directive broadcast fan-out: seconds from `set_cap_factor` to the
    /// last agent observing it at a 1 s heartbeat cadence.
    pub fanout_s: f64,
    /// Agents that observed the directive (must be the whole fleet).
    pub fanout_observers: u64,
}

pocolo_json::impl_to_json!(BenchRow {
    backend,
    agents,
    connect_wall_s,
    connections_per_s,
    rpc_per_s,
    rtt_p50_us,
    rtt_p99_us,
    fanout_s,
    fanout_observers,
});

/// The standing baseline written to `BENCH_net.json`.
#[derive(Debug, Clone)]
pub struct NetScaleReport {
    /// Heartbeats per agent in the closed-loop phase.
    pub rtt_heartbeats: u64,
    /// Fan-out phase cadence, seconds.
    pub fanout_cadence_s: f64,
    /// One row per (backend, fleet size).
    pub rows: Vec<BenchRow>,
}

pocolo_json::impl_to_json!(NetScaleReport {
    rtt_heartbeats,
    fanout_cadence_s,
    rows
});

fn spawn_daemon(n: usize, backend: NetBackend, seed: u64) -> Clusterd {
    let mut config = ClusterConfig::new(
        "127.0.0.1:0".parse().expect("loopback literal"),
        // Generous lease: the bench measures the transport, not expiry.
        Duration::from_secs(60),
        RunSpec::scale(n, seed),
    );
    config.backend = backend;
    Clusterd::spawn(config).expect("clusterd spawn")
}

/// Phase A: closed-loop heartbeats. Returns (connect wall, rpc/s, RTT
/// samples).
fn rtt_phase(n: usize, backend: NetBackend) -> (Duration, f64, Vec<u64>) {
    let seed = 0x5CA1E;
    let clusterd = spawn_daemon(n, backend, seed);
    let mut swarm = SwarmConfig::new(clusterd.local_addr(), n, RTT_HEARTBEATS, seed);
    swarm.deadline = Duration::from_secs(600);
    let report = run_swarm(&swarm).expect("closed-loop swarm pass");
    assert!(
        clusterd.wait_done(Duration::from_secs(60)),
        "daemon assembled all metrics"
    );
    let wire = clusterd.result().expect("full results");
    assert_eq!(
        wire,
        scale_reference(&RunSpec::scale(n, seed), RTT_HEARTBEATS),
        "scale run diverged from the timing-independent reference"
    );
    let heartbeat_wall = report
        .total_wall
        .saturating_sub(report.connect_wall)
        .max(Duration::from_millis(1));
    let rpc_per_s = report.rtts_us.len() as f64 / heartbeat_wall.as_secs_f64();
    (report.connect_wall, rpc_per_s, report.rtts_us)
}

/// Phase B: paced heartbeats; flip the budget directive once the whole
/// fleet is registered, measure time-to-last-observation.
fn fanout_phase(n: usize, backend: NetBackend) -> (f64, u64) {
    let seed = 0xFA_007;
    let clusterd = spawn_daemon(n, backend, seed);
    let mut swarm = SwarmConfig::new(clusterd.local_addr(), n, FANOUT_HEARTBEATS, seed);
    swarm.heartbeat_every = FANOUT_CADENCE;
    swarm.deadline = Duration::from_secs(600);

    // The directive flips from a helper thread the moment every agent
    // is connected. On the reactor the signal is the connection registry
    // hitting the fleet size; the threads backend does not track open
    // connections, so there the signal is every slot having left Idle.
    let fully_registered = |daemon: &Clusterd| match daemon.open_connections() {
        Some(open) => open == n,
        None => {
            use pocolo::net::SlotState;
            daemon
                .slot_states()
                .iter()
                .all(|s| !matches!(s, SlotState::Vacant))
        }
    };
    let (report, set_at) = std::thread::scope(|scope| {
        let probe = &clusterd;
        let handle = scope.spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(300);
            while !fully_registered(probe) {
                assert!(Instant::now() < deadline, "fleet never fully registered");
                std::thread::sleep(Duration::from_millis(2));
            }
            let set_at = Instant::now();
            probe.set_cap_factor(0.8);
            set_at
        });
        let report = run_swarm(&swarm).expect("paced swarm pass");
        (report, handle.join().expect("cap-setter thread"))
    });

    let observed: Vec<Instant> = report
        .agents
        .iter()
        .filter(|a| a.cap_seen == 0.8)
        .filter_map(|a| a.cap_changed_at)
        .collect();
    let last = observed
        .iter()
        .max()
        .copied()
        .expect("at least one agent observed the directive");
    drop(clusterd);
    (
        last.saturating_duration_since(set_at).as_secs_f64(),
        observed.len() as u64,
    )
}

/// Measures one (backend, fleet) configuration: both phases.
pub fn run_case(backend: NetBackend, n: usize) -> BenchRow {
    let (connect_wall, rpc_per_s, mut rtts) = rtt_phase(n, backend);
    let (fanout_s, fanout_observers) = fanout_phase(n, backend);
    rtts.sort_unstable();
    let q = |p: f64| rtts[((rtts.len() - 1) as f64 * p).round() as usize];
    BenchRow {
        backend: backend.to_string(),
        agents: n as u64,
        connect_wall_s: connect_wall.as_secs_f64(),
        connections_per_s: n as f64 / connect_wall.as_secs_f64().max(1e-9),
        rpc_per_s,
        rtt_p50_us: q(0.50),
        rtt_p99_us: q(0.99),
        fanout_s,
        fanout_observers,
    }
}

/// Runs the standard sweep (reactor at 500/2000/5000, threads at
/// 500/2000) and returns the baseline report.
pub fn run_standard() -> NetScaleReport {
    let mut rows = Vec::new();
    for (backend, fleets) in [
        (NetBackend::Reactor, &REACTOR_FLEETS[..]),
        (NetBackend::Threads, &THREADS_FLEETS[..]),
    ] {
        for &n in fleets {
            println!("net_scale: {n} agents over {backend}...");
            let row = run_case(backend, n);
            println!(
                "  connect {:>7.2}s ({:>6.0} conn/s), rpc {:>7.0}/s, \
                 rtt p50 {:>7} us p99 {:>8} us, fanout {:>6.3}s ({}/{} observed)",
                row.connect_wall_s,
                row.connections_per_s,
                row.rpc_per_s,
                row.rtt_p50_us,
                row.rtt_p99_us,
                row.fanout_s,
                row.fanout_observers,
                n,
            );
            rows.push(row);
        }
    }
    NetScaleReport {
        rtt_heartbeats: RTT_HEARTBEATS,
        fanout_cadence_s: FANOUT_CADENCE.as_secs_f64(),
        rows,
    }
}

/// A timing-independent end-to-end pass at a small fleet: the parity
/// contract on both backends, suitable for `cargo test`.
///
/// # Panics
///
/// Panics when either backend's assembled result diverges from the
/// reference.
pub fn smoke() {
    for backend in [NetBackend::Reactor, NetBackend::Threads] {
        let seed = 0x00E7;
        let n = 48;
        let clusterd = spawn_daemon(n, backend, seed);
        let swarm = SwarmConfig::new(clusterd.local_addr(), n, 3, seed);
        run_swarm(&swarm).expect("smoke swarm pass");
        assert!(clusterd.wait_done(Duration::from_secs(60)));
        assert_eq!(
            clusterd.result().expect("full results"),
            scale_reference(&RunSpec::scale(n, seed), 3),
            "{backend}: smoke fleet diverged from the reference"
        );
        println!("net-scale smoke over {backend}: PASS");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_gate_passes() {
        smoke();
    }
}

//! Regenerates Fig. 12 (policy throughput comparison).
fn main() {
    let runs = pocolo_bench::figures::evaluation::run_policies();
    pocolo_bench::figures::evaluation::fig12(&runs);
}

//! Traffic-generation throughput driver.
//!
//! - `--smoke`: the CI gate — shard/merge digests equal at 1/3/8 shards
//!   and volume within 6σ of the analytic rate, timing-independent.
//! - default: sweeps 250k → 4M users at 1/4/8 shards and writes
//!   `BENCH_traffic.json` (users, shards, requests, median ns, req/s),
//!   asserting million-user generation sustains ≥ 10M requests/s.
//!
//! `--iters <N>` overrides the samples per configuration (default 5).

use pocolo_bench::traffic_scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        traffic_scale::smoke();
        return;
    }
    let iters = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--iters wants a positive integer"))
        .unwrap_or(5);
    let report = traffic_scale::run_standard(iters);
    let path = "BENCH_traffic.json";
    std::fs::write(path, pocolo_json::to_string_pretty(&report))
        .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
    println!("wrote {path} ({} rows)", report.rows.len());
}

//! Regenerates Fig. 6 (Edgeworth-box spare capacity).
fn main() {
    pocolo_bench::figures::analysis::fig06(&pocolo_bench::common::Bench::new());
}

//! Reactor scale driver: one clusterd event loop versus a swarm fleet.
//!
//! - `--smoke`: the CI gate — a small fleet end-to-end on both backends
//!   with the bit-exact parity contract, timing-independent.
//! - default: sweeps the reactor at 500/2000/5000 agents and the
//!   thread-per-connection backend at 500/2000, then writes
//!   `BENCH_net.json` (connections/s accepted, heartbeat RTT p50/p99,
//!   broadcast fan-out latency at a 1 s heartbeat cadence).

use pocolo_bench::net_scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        net_scale::smoke();
        return;
    }
    let report = net_scale::run_standard();
    let path = "BENCH_net.json";
    std::fs::write(path, pocolo_json::to_string_pretty(&report))
        .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
    println!("wrote {path} ({} rows)", report.rows.len());
}

//! Regenerates Fig. 2 (uncapped colocation power overshoot).
fn main() {
    pocolo_bench::figures::motivation::fig02(&pocolo_bench::common::Bench::new());
}

//! Regenerates Table II (LC application characteristics).
fn main() {
    pocolo_bench::figures::tables::table2(&pocolo_bench::common::Bench::new());
}

//! Prints Fig. 7 (the system architecture pipeline, annotated with this
//! repository's entry points).
fn main() {
    pocolo_bench::figures::tables::fig07();
}

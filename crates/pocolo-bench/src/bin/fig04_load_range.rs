//! Regenerates Fig. 4 (lstm vs rnn across the xapian load range).
fn main() {
    pocolo_bench::figures::motivation::fig04(&pocolo_bench::common::Bench::new());
}

//! Regenerates Fig. 3 (BE throughput under a 70 W budget).
fn main() {
    pocolo_bench::figures::motivation::fig03(&pocolo_bench::common::Bench::new());
}

//! Regenerates Table I (server configuration).
fn main() {
    pocolo_bench::figures::tables::table1();
}

//! Fleet-scale assignment baseline driver.
//!
//! - `--smoke`: the CI gate — 1k×100 cold solve + single-fault repair,
//!   correctness asserted via the certified gap and operation counters.
//! - default: sweeps the standard sizes (1k×100 → 10k×500) and writes
//!   `BENCH_assignment.json` (solver, n, m, median ns), the standing perf
//!   baseline recorded in EXPERIMENTS.md §Micro-benchmarks.
//!
//! `--iters <N>` overrides the samples per scenario (default 5).

use pocolo_bench::assignment_scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        assignment_scale::smoke();
        return;
    }
    let iters = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--iters wants a positive integer"))
        .unwrap_or(5);
    let report = assignment_scale::run_standard(iters);
    let path = "BENCH_assignment.json";
    std::fs::write(path, pocolo_json::to_string_pretty(&report))
        .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
    println!("wrote {path} ({} rows)", report.rows.len());
}

//! Regenerates the §I headline numbers.
fn main() {
    let runs = pocolo_bench::figures::evaluation::run_policies();
    pocolo_bench::figures::evaluation::headline(&runs);
}

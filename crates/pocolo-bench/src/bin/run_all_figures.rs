//! Regenerates every table and figure in paper order.
fn main() {
    pocolo_bench::figures::run_all();
}

//! Runs the three ablation studies (DESIGN.md §5).
fn main() {
    let bench = pocolo_bench::common::Bench::new();
    pocolo_bench::figures::ablations::slack_filter(&bench);
    pocolo_bench::figures::ablations::myopic_placement(&bench);
    pocolo_bench::figures::ablations::solver_choice(&bench);
    pocolo_bench::figures::ablations::fairness(&bench);
    pocolo_bench::figures::ablations::consolidation(0.66);
    pocolo_bench::figures::ablations::sharing(&bench);
    pocolo_bench::figures::ablations::rebalance(&bench);
}

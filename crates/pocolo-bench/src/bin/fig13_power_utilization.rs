//! Regenerates Fig. 13 (policy power-utilization comparison).
fn main() {
    let runs = pocolo_bench::figures::evaluation::run_policies();
    pocolo_bench::figures::evaluation::fig13(&runs);
}

//! Regenerates Fig. 1 (diurnal colocation motivation).
fn main() {
    pocolo_bench::figures::motivation::fig01(&pocolo_bench::common::Bench::new());
}

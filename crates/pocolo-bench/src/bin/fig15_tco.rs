//! Regenerates Fig. 15 (amortized monthly TCO).
fn main() {
    let runs = pocolo_bench::figures::evaluation::run_policies();
    pocolo_bench::figures::tco::fig15(&runs);
}

//! Regenerates Figs. 9–11 (direct/indirect preference vectors).
fn main() {
    pocolo_bench::figures::analysis::fig09_11(&pocolo_bench::common::Bench::new());
}

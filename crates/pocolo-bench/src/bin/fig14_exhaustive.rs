//! Regenerates Fig. 14 (POColo vs exhaustive placement).
fn main() {
    pocolo_bench::figures::evaluation::fig14(&pocolo_bench::common::Bench::new());
}

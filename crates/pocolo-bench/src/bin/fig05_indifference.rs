//! Regenerates Fig. 5 (sphinx indifference curves + least-power path).
fn main() {
    pocolo_bench::figures::analysis::fig05(&pocolo_bench::common::Bench::new());
}

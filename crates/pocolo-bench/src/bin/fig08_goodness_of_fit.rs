//! Regenerates Fig. 8 (R² of the Cobb-Douglas fits).
fn main() {
    pocolo_bench::figures::analysis::fig08(&pocolo_bench::common::Bench::new());
}

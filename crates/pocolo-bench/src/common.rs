//! Shared setup and formatting helpers for the figure generators.

use pocolo::prelude::*;
use pocolo_simserver::power::PowerDrawModel;

/// Everything a figure generator typically needs: the machine, its power
/// model, the resource space, ground truths and fitted models.
#[derive(Debug)]
pub struct Bench {
    /// The Table-I machine.
    pub machine: MachineSpec,
    /// Ground-truth power simulation.
    pub power: PowerDrawModel,
    /// The machine's direct-resource space.
    pub space: pocolo_core::ResourceSpace,
    /// Profiled-and-fitted models for all eight applications.
    pub fitted: FittedCluster,
}

impl Bench {
    /// Profiles and fits everything with the default profiler settings.
    pub fn new() -> Self {
        let machine = MachineSpec::xeon_e5_2650();
        Bench {
            power: PowerDrawModel::new(machine.clone()),
            space: machine.resource_space(),
            fitted: FittedCluster::fit(&ProfilerConfig::default()),
            machine,
        }
    }

    /// Ground truth for one LC app.
    pub fn lc_truth(&self, app: LcApp) -> &LcModel {
        &self
            .fitted
            .lc()
            .iter()
            .find(|(a, _, _)| *a == app)
            .expect("all LC apps fitted")
            .1
    }

    /// Fitted utility for one LC app.
    pub fn lc_fitted(&self, app: LcApp) -> &IndirectUtility {
        &self
            .fitted
            .lc()
            .iter()
            .find(|(a, _, _)| *a == app)
            .expect("all LC apps fitted")
            .2
    }

    /// Ground truth for one BE app.
    pub fn be_truth(&self, app: BeApp) -> &BeModel {
        &self
            .fitted
            .be()
            .iter()
            .find(|(a, _, _)| *a == app)
            .expect("all BE apps fitted")
            .1
    }

    /// Fitted utility for one BE app.
    pub fn be_fitted(&self, app: BeApp) -> &IndirectUtility {
        &self
            .fitted
            .be()
            .iter()
            .find(|(a, _, _)| *a == app)
            .expect("all BE apps fitted")
            .2
    }

    /// A full-machine allocation at max frequency.
    pub fn full_alloc(&self) -> TenantAllocation {
        TenantAllocation::new(
            CoreSet::first_n(self.machine.cores()),
            WayMask::first_n(self.machine.llc_ways()),
            self.machine.freq_max(),
        )
    }

    /// An allocation of the first `c` cores and `w` ways at frequency `f`.
    pub fn alloc(&self, c: u32, w: u32, f: f64) -> TenantAllocation {
        TenantAllocation::new(
            CoreSet::first_n(c),
            WayMask::first_n(w),
            pocolo_core::Frequency(f),
        )
    }
}

impl Default for Bench {
    fn default() -> Self {
        Bench::new()
    }
}

/// Writes a figure's structured data as pretty JSON into
/// `$POCOLO_FIGURE_DIR/<name>.json` when that environment variable is set
/// (reproducibility tooling); otherwise does nothing.
pub fn save_json<T: pocolo_json::ToJson>(name: &str, data: &T) {
    let Ok(dir) = std::env::var("POCOLO_FIGURE_DIR") else {
        return;
    };
    let path = std::path::Path::new(&dir).join(format!("{name}.json"));
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|_| std::fs::write(&path, pocolo_json::to_string_pretty(data)))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Prints a titled section header.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Prints one table row: a label plus formatted columns.
pub fn row(label: &str, cols: &[String]) {
    print!("{label:>14}");
    for c in cols {
        print!(" {c:>10}");
    }
    println!();
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

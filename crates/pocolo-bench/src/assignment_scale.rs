//! Fleet-scale assignment benchmark (§IV-B systems claim).
//!
//! The dense solvers stop being viable long before fleet scale, so the
//! sparse auction path ([`pocolo_cluster::assign::auction`]) carries the
//! 10k-server claim. This module generates synthetic fleets whose columns
//! have *class structure* — servers come in a handful of SKUs, exactly the
//! geometry the candidate-pruning LSH exploits — and measures three
//! scenarios per size:
//!
//! - **cold**: candidate build + ε-scaled auction from zero prices;
//! - **warm**: one bidding phase from the previous replan's prices
//!   (the steady-state replan);
//! - **incremental**: [`auction::solve_incremental`] after a single-server
//!   fault ([`MatrixDelta`] disabling one assigned column).
//!
//! Timings are self-measured medians (the vendored criterion shim has no
//! programmatic median export) and land in `BENCH_assignment.json`, the
//! repo's first standing perf baseline. The `--smoke` entry point
//! ([`smoke`]) is the CI gate: it asserts the certified optimality gap
//! against dense Hungarian and the O(k · dirtied rows) incremental
//! operation bound, so the gate stays timing-independent.

use std::hint::black_box;
use std::time::Instant;

use pocolo_cluster::assign::auction::{self, AuctionConfig, AuctionSolution, DEFAULT_EPS};
use pocolo_cluster::assign::sparse::SparseCandidates;
use pocolo_cluster::assign::{self, hungarian};
use pocolo_cluster::matrix::{MatrixDelta, PerfMatrix};
use pocolo_core::fleet::FleetSpec;
use rand::prelude::*;

/// Server SKU classes in the synthetic fleet. Real fleets have a handful
/// of hardware generations; the pruning buckets key on exactly this.
pub const CLASSES: usize = 12;

/// Resource archetypes spanning the preference geometry (compute-bound,
/// cache-bound, bandwidth-bound, balanced).
const ARCHETYPES: usize = 4;

/// Columns above this are out of reach for the dense Hungarian baseline
/// in a benchmark loop (O(rows²·cols) with rows = BE apps).
pub const DENSE_LIMIT: usize = 2_000;

/// The `(be_rows, servers)` sizes the standard report sweeps.
pub const STANDARD_SIZES: [(usize, usize); 3] = [(100, 1_000), (200, 2_000), (500, 10_000)];

/// Builds a synthetic BE×server matrix with clustered column geometry:
/// each server belongs to one of [`CLASSES`] SKUs, each SKU has a profile
/// over `ARCHETYPES` resource archetypes, and a BE row's throughput on a
/// server is its archetype affinity dotted with the SKU profile, scaled by
/// a small per-server jitter (wear, thermal headroom). Deterministic in
/// `seed`.
pub fn synthetic_matrix(be_rows: usize, servers: usize, seed: u64) -> PerfMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let profiles: Vec<Vec<f64>> = (0..CLASSES)
        .map(|_| (0..ARCHETYPES).map(|_| rng.gen_range(0.1..1.0)).collect())
        .collect();
    let col_class: Vec<usize> = (0..servers).map(|_| rng.gen_range(0..CLASSES)).collect();
    let col_jitter: Vec<f64> = (0..servers).map(|_| rng.gen_range(0.9..1.1)).collect();
    let affinity: Vec<Vec<f64>> = (0..be_rows)
        .map(|_| (0..ARCHETYPES).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let values: Vec<Vec<f64>> = affinity
        .iter()
        .map(|aff| {
            (0..servers)
                .map(|j| {
                    let dot: f64 = aff
                        .iter()
                        .zip(&profiles[col_class[j]])
                        .map(|(a, p)| a * p)
                        .sum();
                    dot * col_jitter[j]
                })
                .collect()
        })
        .collect();
    PerfMatrix::new(
        (0..be_rows).map(|i| format!("be{i}")).collect(),
        (0..servers).map(|j| format!("lc{j}")).collect(),
        values,
    )
    .expect("synthetic matrix is well-formed")
}

/// Builds a BE×server matrix over a *real* heterogeneous fleet: column
/// SKUs come from a [`FleetSpec`] (largest-remainder apportionment via
/// [`FleetSpec::assign`]) rather than the synthetic [`CLASSES`] draw, and
/// each SKU's archetype profile is derived from its hardware geometry —
/// compute from cores × peak frequency, cache from LLC ways, efficiency
/// from peak-power headroom, plus a balanced blend. Rows keep the random
/// archetype affinities of [`synthetic_matrix`], so the two generators
/// differ only in where the column clusters come from. Deterministic in
/// `seed`.
pub fn synthetic_fleet_matrix(
    be_rows: usize,
    servers: usize,
    spec: &FleetSpec,
    seed: u64,
) -> PerfMatrix {
    let col_class = spec.assign(servers, seed);
    // Raw per-SKU capability axes, normalized below so the largest SKU
    // scores 1.0 on each axis (profiles stay in the synthetic range).
    let raw: Vec<[f64; 3]> = (0..spec.n_classes())
        .map(|c| {
            let class = spec.class(c);
            [
                f64::from(class.cores()) * class.freq_max().0,
                f64::from(class.llc_ways()),
                (class.peak_watts().0 - class.idle_watts().0).max(1.0),
            ]
        })
        .collect();
    let axis_max: Vec<f64> = (0..3)
        .map(|axis| raw.iter().map(|r| r[axis]).fold(1e-12, f64::max))
        .collect();
    let profiles: Vec<Vec<f64>> = raw
        .iter()
        .map(|r| {
            let scaled: Vec<f64> = r
                .iter()
                .zip(&axis_max)
                .map(|(v, m)| 0.1 + 0.9 * v / m)
                .collect();
            let balanced = scaled.iter().sum::<f64>() / scaled.len() as f64;
            let mut p = scaled;
            p.push(balanced);
            debug_assert_eq!(p.len(), ARCHETYPES);
            p
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let col_jitter: Vec<f64> = (0..servers).map(|_| rng.gen_range(0.9..1.1)).collect();
    let values: Vec<Vec<f64>> = (0..be_rows)
        .map(|_| {
            let aff: Vec<f64> = (0..ARCHETYPES).map(|_| rng.gen_range(0.0..1.0)).collect();
            (0..servers)
                .map(|j| {
                    let dot: f64 = aff
                        .iter()
                        .zip(&profiles[col_class[j]])
                        .map(|(a, p)| a * p)
                        .sum();
                    dot * col_jitter[j]
                })
                .collect()
        })
        .collect();
    PerfMatrix::new(
        (0..be_rows).map(|i| format!("be{i}")).collect(),
        (0..servers).map(|j| format!("lc{j}")).collect(),
        values,
    )
    .expect("fleet matrix is well-formed")
}

/// Median wall-clock nanoseconds of `iters` runs of `f`.
pub fn median_ns<T>(iters: usize, mut f: impl FnMut() -> T) -> u64 {
    let mut samples: Vec<u64> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The single-server-fault delta: the first assigned column goes dark.
pub fn fault_delta(prev: &AuctionSolution) -> MatrixDelta {
    let victim = prev
        .assignment
        .pairs
        .first()
        .expect("non-empty placement")
        .1;
    MatrixDelta::new().disable_column(victim)
}

/// One `BENCH_assignment.json` row.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Scenario label: `auction_cold` / `auction_warm` /
    /// `auction_incremental` / `hungarian`.
    pub solver: String,
    /// Servers (matrix columns).
    pub n: usize,
    /// BE applications (matrix rows).
    pub m: usize,
    /// Median wall-clock nanoseconds over [`ScaleReport::iters`] runs.
    pub median_ns: u64,
}

pocolo_json::impl_to_json!(BenchRow {
    solver,
    n,
    m,
    median_ns
});

/// The standing perf baseline written to `BENCH_assignment.json`.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Auction ε (absolute, same unit as matrix throughput).
    pub eps: f64,
    /// Samples per scenario; rows carry the median.
    pub iters: usize,
    /// One row per (scenario, size).
    pub rows: Vec<BenchRow>,
}

pocolo_json::impl_to_json!(ScaleReport { eps, iters, rows });

/// Measures one fleet size and appends cold/warm/incremental (and, when
/// `servers ≤` [`DENSE_LIMIT`], Hungarian) rows. Returns the certified
/// optimality gap vs. Hungarian when the dense baseline ran.
pub fn run_case(
    be_rows: usize,
    servers: usize,
    eps: f64,
    iters: usize,
    rows: &mut Vec<BenchRow>,
) -> Option<f64> {
    let matrix = synthetic_matrix(be_rows, servers, size_seed(be_rows, servers));
    let prev = measure_auction(&matrix, "", eps, iters, rows);

    if servers <= DENSE_LIMIT {
        let mut exact_total = 0.0;
        let dense_ns = median_ns(iters, || {
            exact_total = hungarian::solve_max(&matrix).total;
        });
        rows.push(BenchRow {
            solver: "hungarian".into(),
            n: servers,
            m: be_rows,
            median_ns: dense_ns,
        });
        return Some(exact_total - prev.assignment.total);
    }
    None
}

/// Measures the cold/warm/incremental auction scenarios on `matrix`,
/// appending rows whose solver labels carry `suffix` (`""` for the
/// synthetic fleet, `"_mixed3"` for the heterogeneous variant). Returns
/// the certified reference solution so callers can baseline against it.
fn measure_auction(
    matrix: &PerfMatrix,
    suffix: &str,
    eps: f64,
    iters: usize,
    rows: &mut Vec<BenchRow>,
) -> AuctionSolution {
    let cfg = AuctionConfig::with_eps(eps);
    let (be_rows, servers) = (matrix.rows(), matrix.cols());
    let mut push = |solver: String, ns: u64| {
        rows.push(BenchRow {
            solver,
            n: servers,
            m: be_rows,
            median_ns: ns,
        });
    };

    let cold_ns = median_ns(iters, || auction::solve(matrix, &cfg).expect("cold solve"));
    push(format!("auction_cold{suffix}"), cold_ns);

    // Reference solve whose candidates + prices seed the replan scenarios.
    let mut cands = SparseCandidates::build(matrix, SparseCandidates::default_k(servers));
    let prev = auction::solve_with_candidates(matrix, &mut cands, &cfg).expect("reference solve");
    assert!(prev.certified, "reference solve must certify");

    let warm_ns = median_ns(iters, || {
        let mut c = cands.clone();
        auction::solve_warm(matrix, &mut c, &prev.prices, &cfg).expect("warm solve")
    });
    push(format!("auction_warm{suffix}"), warm_ns);

    let delta = fault_delta(&prev);
    let patched = matrix.patched(&delta).expect("patched matrix");
    let inc_ns = median_ns(iters, || {
        let mut c = cands.clone();
        auction::solve_incremental(&patched, &mut c, &prev, &delta, &cfg).expect("incremental")
    });
    push(format!("auction_incremental{suffix}"), inc_ns);
    prev
}

/// The heterogeneous-fleet variant of [`run_case`]: same scenarios, but
/// the columns are apportioned across a real [`FleetSpec`]'s SKUs via
/// [`synthetic_fleet_matrix`]. Rows are tagged `_<tag>` so the report
/// keeps both fleets side by side at the same size.
pub fn run_fleet_case(
    be_rows: usize,
    servers: usize,
    spec: &FleetSpec,
    tag: &str,
    eps: f64,
    iters: usize,
    rows: &mut Vec<BenchRow>,
) {
    let matrix = synthetic_fleet_matrix(be_rows, servers, spec, size_seed(be_rows, servers));
    measure_auction(&matrix, &format!("_{tag}"), eps, iters, rows);
}

/// Runs [`STANDARD_SIZES`] at [`DEFAULT_EPS`] and returns the baseline
/// report, printing per-size lines (and the gap where Hungarian ran).
pub fn run_standard(iters: usize) -> ScaleReport {
    let mut rows = Vec::new();
    for &(m, n) in &STANDARD_SIZES {
        println!("assignment_scale: {n} servers x {m} BE apps ({iters} samples)...");
        let before = rows.len();
        let gap = run_case(m, n, DEFAULT_EPS, iters, &mut rows);
        for row in &rows[before..] {
            println!("  {:<22} median {:>12} ns", row.solver, row.median_ns);
        }
        if let Some(gap) = gap {
            println!(
                "  optimality gap vs hungarian: {gap:.6} (bound eps*m = {:.6})",
                DEFAULT_EPS * m as f64
            );
        }
    }
    // Heterogeneous variant at fleet scale only: the sparse 10k-server
    // path is the one whose pruning must survive a mixed-SKU geometry.
    let spec = FleetSpec::preset("mixed3").expect("mixed3 preset exists");
    let (m, n) = *STANDARD_SIZES.last().expect("at least one size");
    println!("assignment_scale: {n} servers x {m} BE apps, mixed3 fleet ({iters} samples)...");
    let before = rows.len();
    run_fleet_case(m, n, &spec, "mixed3", DEFAULT_EPS, iters, &mut rows);
    for row in &rows[before..] {
        println!("  {:<28} median {:>12} ns", row.solver, row.median_ns);
    }
    ScaleReport {
        eps: DEFAULT_EPS,
        iters,
        rows,
    }
}

/// The CI gate: a 1k×100 cold auction solve plus a single-server-fault
/// incremental repair, with correctness asserted via the certified dual
/// gap and operation counters — no wall-clock thresholds.
///
/// # Panics
///
/// Panics (failing the CI step) if the solve does not certify, the gap
/// vs. dense Hungarian exceeds ε·rows, or the incremental repair
/// examines more than O(k · dirtied rows) candidate edges.
pub fn smoke() {
    let (be_rows, servers) = (100usize, 1_000usize);
    let cfg = AuctionConfig::with_eps(DEFAULT_EPS);
    let matrix = synthetic_matrix(be_rows, servers, size_seed(be_rows, servers));
    let tol = 1e-9 * (1.0 + matrix.max_value()) * be_rows as f64;

    let start = Instant::now();
    let mut cands = SparseCandidates::build(&matrix, SparseCandidates::default_k(servers));
    let sol = auction::solve_with_candidates(&matrix, &mut cands, &cfg).expect("cold solve");
    let cold = start.elapsed();
    assert!(sol.certified, "cold solve must certify optimality");

    let exact = hungarian::solve_max(&matrix);
    let gap = exact.total - sol.assignment.total;
    let bound = cfg.eps * be_rows as f64 + tol;
    assert!(
        gap <= bound,
        "optimality gap {gap} exceeds eps*rows bound {bound}"
    );

    let delta = fault_delta(&sol);
    let patched = matrix.patched(&delta).expect("patched matrix");
    let start = Instant::now();
    let repaired = auction::solve_incremental(&patched, &mut cands, &sol, &delta, &cfg)
        .expect("incremental repair");
    let inc = start.elapsed();
    assert!(repaired.certified, "incremental repair must certify");

    // O(k · dirtied rows) candidate edges, with headroom for the
    // certification repair loop — mirrors the PR 1 solve-counter pattern.
    let budget = ((cands.k() + 8) * repaired.stats.dirty_rows.max(1) * 16) as u64;
    assert!(
        repaired.stats.bid_edges <= budget,
        "incremental repair scanned {} edges, budget {budget} (k={}, dirty_rows={})",
        repaired.stats.bid_edges,
        cands.k(),
        repaired.stats.dirty_rows
    );

    // Through the dispatcher so the disabled column is projected out.
    let exact_patched = assign::solve(&patched, assign::Solver::Hungarian).expect("exact solve");
    let inc_gap = exact_patched.total - repaired.assignment.total;
    assert!(
        inc_gap <= bound,
        "incremental gap {inc_gap} exceeds eps*rows bound {bound}"
    );

    println!("assignment-scale smoke: PASS");
    println!(
        "  cold  {servers}x{be_rows}: total {:.4}, gap {gap:.6} <= {bound:.6}, {} ms",
        sol.assignment.total,
        cold.as_millis()
    );
    println!(
        "  fault repair: dirty_rows {}, bid_edges {} <= {budget}, gap {inc_gap:.6}, {} ms",
        repaired.stats.dirty_rows,
        repaired.stats.bid_edges,
        inc.as_millis()
    );
}

/// Per-size generator seed, so every scenario at a size shares a fleet.
fn size_seed(be_rows: usize, servers: usize) -> u64 {
    0x5CA1_E000 ^ ((servers as u64) << 20) ^ be_rows as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_matrix_is_deterministic_and_clustered() {
        let a = synthetic_matrix(8, 40, 7);
        let b = synthetic_matrix(8, 40, 7);
        assert_eq!(a.values(), b.values());
        // Class structure: the LSH finds far fewer buckets than columns.
        let cands = SparseCandidates::build(&a, 4);
        assert!(cands.buckets().bucket_count() < 40);
    }

    #[test]
    fn small_case_reports_all_scenarios_and_small_gap() {
        let mut rows = Vec::new();
        let gap = run_case(12, 60, DEFAULT_EPS, 3, &mut rows).expect("dense baseline in range");
        let solvers: Vec<&str> = rows.iter().map(|r| r.solver.as_str()).collect();
        assert_eq!(
            solvers,
            [
                "auction_cold",
                "auction_warm",
                "auction_incremental",
                "hungarian"
            ]
        );
        assert!(gap <= DEFAULT_EPS * 12.0 + 1e-6, "gap {gap} too large");
    }

    #[test]
    fn fleet_matrix_is_deterministic_and_keeps_sku_clusters() {
        let spec = FleetSpec::preset("mixed3").expect("mixed3 preset");
        let a = synthetic_fleet_matrix(8, 60, &spec, 7);
        let b = synthetic_fleet_matrix(8, 60, &spec, 7);
        assert_eq!(a.values(), b.values());
        // Three SKUs, not sixty geometries: the LSH buckets stay few.
        let cands = SparseCandidates::build(&a, 4);
        assert!(cands.buckets().bucket_count() < 60);
    }

    #[test]
    fn fleet_case_reports_tagged_scenarios_that_certify() {
        let spec = FleetSpec::preset("mixed3").expect("mixed3 preset");
        let mut rows = Vec::new();
        run_fleet_case(12, 60, &spec, "mixed3", DEFAULT_EPS, 3, &mut rows);
        let solvers: Vec<&str> = rows.iter().map(|r| r.solver.as_str()).collect();
        assert_eq!(
            solvers,
            [
                "auction_cold_mixed3",
                "auction_warm_mixed3",
                "auction_incremental_mixed3"
            ]
        );
        // The dense baseline still certifies the mixed geometry.
        let matrix = synthetic_fleet_matrix(12, 60, &spec, size_seed(12, 60));
        let sol = auction::solve(&matrix, &AuctionConfig::with_eps(DEFAULT_EPS)).expect("solve");
        let exact = hungarian::solve_max(&matrix);
        assert!(sol.certified);
        assert!(exact.total - sol.assignment.total <= DEFAULT_EPS * 12.0 + 1e-6);
    }
}

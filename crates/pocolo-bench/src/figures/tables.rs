//! Tables I and II: platform and application characteristics.

use pocolo::prelude::*;

use crate::common::{row, section, Bench};

/// Table I: the server configuration.
pub fn table1() {
    section("Table I — server configuration");
    let m = MachineSpec::xeon_e5_2650();
    row("processor", &[m.name().to_string()]);
    row("cores", &[m.cores().to_string()]);
    row(
        "frequency",
        &[format!("{} to {}", m.freq_min(), m.freq_max())],
    );
    row(
        "llc",
        &[format!("{:.0}M, {} ways", m.llc_mb(), m.llc_ways())],
    );
    row("memory", &[format!("{}GB DDR4", m.memory_gb())]);
    row(
        "power",
        &[format!(
            "idle {:.0}, active {:.0}",
            m.idle_power().0,
            m.active_power().0
        )],
    );
}

/// Table II data: per-LC-app characteristics.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// `(app, peak_load_rps, p99_slo_ms, peak_power_watts)`.
    pub rows: Vec<(String, f64, f64, f64)>,
}

/// Table II: latency-critical application characteristics.
pub fn table2(bench: &Bench) -> Table2 {
    section("Table II — latency-critical applications");
    let mut rows = Vec::new();
    row(
        "app",
        &[
            "peak load/s".into(),
            "p99 SLO ms".into(),
            "peak power W".into(),
        ],
    );
    for app in LcApp::ALL {
        let m = bench.lc_truth(app);
        let peak_power = m.provisioned_power();
        row(
            app.name(),
            &[
                format!("{:.0}", m.peak_load_rps()),
                format!("{:.2}", m.slo_p99_ms()),
                format!("{:.0}", peak_power.0),
            ],
        );
        rows.push((
            app.name().to_string(),
            m.peak_load_rps(),
            m.slo_p99_ms(),
            peak_power.0,
        ));
    }
    Table2 { rows }
}

/// Fig. 7: the four-stage system architecture, annotated with the concrete
/// types implementing each stage (the paper's figure is a schematic; this
/// renders the same pipeline with this repository's entry points).
pub fn fig07() {
    section("Fig 7 — system architecture (stage -> implementation)");
    println!(
        "\
  I.   Fit indirect utility models on profiled data
         profile_lc/profile_be -> pocolo_core::fit::fit_indirect_utility
         (log-space OLS + 10% latency-slack guard)
           |
  II.  Estimate the BE x LC performance matrix
         pocolo_cluster::PerfMatrixBuilder
         (least-power expansion path -> spare box + headroom -> BE demand)
           |
  III. Solve the placement
         pocolo_cluster::assign::{{hungarian, simplex LP, max-min fair}}
           |
  IV.  Manage each server power-efficiently
         pocolo_manager::ServerManager   (1 s: analytic demand + feedback)
         pocolo_manager::PowerCapper     (100 ms: DVFS -> CPU quota)"
    );
}

//! One generator per table/figure of the paper's evaluation, plus the
//! ablation studies called out in DESIGN.md §5.

pub mod ablations;
pub mod analysis;
pub mod evaluation;
pub mod motivation;
pub mod tables;
pub mod tco;

/// Runs every generator in paper order (the `cargo bench` figures target).
pub fn run_all() {
    let bench = crate::common::Bench::new();
    tables::table1();
    tables::table2(&bench);
    motivation::fig01(&bench);
    motivation::fig02(&bench);
    motivation::fig03(&bench);
    motivation::fig04(&bench);
    analysis::fig05(&bench);
    analysis::fig06(&bench);
    analysis::fig08(&bench);
    analysis::fig09_11(&bench);
    tables::fig07();
    let eval = evaluation::run_policies();
    evaluation::fig12(&eval);
    evaluation::fig12_by_level();
    evaluation::fig13(&eval);
    evaluation::fig14(&bench);
    tco::fig15(&eval);
    evaluation::headline(&eval);
    ablations::slack_filter(&bench);
    ablations::myopic_placement(&bench);
    ablations::solver_choice(&bench);
    ablations::fairness(&bench);
    ablations::consolidation(eval.pocolo.summary.avg_be_throughput);
    ablations::sharing(&bench);
    ablations::rebalance(&bench);
}

//! Fig. 15: the total-cost-of-ownership analysis (§V-F).

use pocolo::prelude::*;

use crate::common::{row, section};
use crate::figures::evaluation::PolicyRuns;

/// Fig. 15 data: amortized monthly TCO per policy.
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// `(policy, servers, power_infra, energy, total)` in dollars/month.
    pub costs: Vec<(String, f64, f64, f64, f64)>,
}

/// Builds the paper's four TCO scenarios from the policy runs and prints
/// the amortized monthly breakdown.
///
/// Scenarios are compared at **iso-throughput** (total useful work = LC
/// load served + BE throughput): better policies need fewer servers.
/// `Random(NoCap)` provisions every server at 185 W (the max peak across
/// the four primaries) instead of right-sizing.
pub fn fig15(runs: &PolicyRuns) -> Fig15 {
    section("Fig 15 — amortized monthly TCO (millions of dollars)");
    let model = TcoModel::default();

    // Average provisioned capacity across the cluster's four server types.
    let avg_cap = |r: &ExperimentResult| {
        Watts(r.pairs.iter().map(|p| p.metrics.power_cap.0).sum::<f64>() / r.pairs.len() as f64)
    };
    let avg_power = |r: &ExperimentResult| {
        Watts(r.pairs.iter().map(|p| p.metrics.avg_power().0).sum::<f64>() / r.pairs.len() as f64)
    };
    // Useful work: the LC apps all serve the same sweep (mean 50 % load),
    // plus the policy-dependent BE throughput.
    let work = |r: &ExperimentResult| 0.5 + r.summary.avg_be_throughput;
    let base_work = work(&runs.random);

    let scenarios = vec![
        Scenario {
            name: "Random(NoCap)".into(),
            provisioned_per_server: Watts(185.0),
            avg_power_per_server: avg_power(&runs.random),
            relative_throughput: 1.0,
        },
        Scenario {
            name: "Random".into(),
            provisioned_per_server: avg_cap(&runs.random),
            avg_power_per_server: avg_power(&runs.random),
            relative_throughput: 1.0,
        },
        Scenario {
            name: "POM".into(),
            provisioned_per_server: avg_cap(&runs.pom),
            avg_power_per_server: avg_power(&runs.pom),
            relative_throughput: work(&runs.pom) / base_work,
        },
        Scenario {
            name: "POColo".into(),
            provisioned_per_server: avg_cap(&runs.pocolo),
            avg_power_per_server: avg_power(&runs.pocolo),
            relative_throughput: work(&runs.pocolo) / base_work,
        },
    ];

    let costs = model.compare(&scenarios);
    let mut out = Vec::new();
    row(
        "policy",
        &[
            "servers".into(),
            "pwr infra".into(),
            "energy".into(),
            "total".into(),
        ],
    );
    let m = 1e6;
    for c in &costs {
        row(
            &c.name,
            &[
                format!("{:.2}", c.server_usd / m),
                format!("{:.2}", c.power_infra_usd / m),
                format!("{:.2}", c.energy_usd / m),
                format!("{:.2}", c.total() / m),
            ],
        );
        out.push((
            c.name.clone(),
            c.server_usd,
            c.power_infra_usd,
            c.energy_usd,
            c.total(),
        ));
    }
    let total_of = |name: &str| {
        out.iter()
            .find(|(n, ..)| n == name)
            .map(|(_, _, _, _, t)| *t)
            .expect("scenario present")
    };
    let pocolo = total_of("POColo");
    println!(
        "POColo vs Random(NoCap): {:.1}% | vs Random: {:.1}% | vs POM: {:.1}%  (paper: -12% / -16% / -8%)",
        100.0 * (pocolo / total_of("Random(NoCap)") - 1.0),
        100.0 * (pocolo / total_of("Random") - 1.0),
        100.0 * (pocolo / total_of("POM") - 1.0),
    );
    Fig15 { costs: out }
}

//! Figures 12–14 and the headline summary: the end-to-end evaluation
//! (§V-D, §V-E).

use pocolo::prelude::*;
use pocolo_cluster::assign::search::enumerate_all;

use crate::common::{f3, pct, row, save_json, section, Bench};

/// The three policies' full experiment results, shared by Figs. 12/13/15.
#[derive(Debug, Clone)]
pub struct PolicyRuns {
    /// Result under random placement + power-oblivious management.
    pub random: ExperimentResult,
    /// Result under random placement + power-optimized management.
    pub pom: ExperimentResult,
    /// Result under full Pocolo.
    pub pocolo: ExperimentResult,
}

pocolo_json::impl_to_json!(PolicyRuns {
    random,
    pom,
    pocolo
});

/// Runs all three policies over the uniform 10–90 % sweep with shared fits.
pub fn run_policies() -> PolicyRuns {
    let config = ExperimentConfig::default();
    let fitted = FittedCluster::fit(&config.profiler);
    let runs = PolicyRuns {
        random: run_experiment_with(Policy::Random { seed: 1 }, &config, &fitted),
        pom: run_experiment_with(Policy::Pom { seed: 1 }, &config, &fitted),
        pocolo: run_experiment_with(Policy::Pocolo { solver: Solver::Lp }, &config, &fitted),
    };
    save_json("fig12_13_policy_runs", &runs);
    runs
}

/// Fig. 12: best-effort throughput per LC server under each policy.
pub fn fig12(runs: &PolicyRuns) {
    section("Fig 12 — BE throughput per server (higher is better)");
    row(
        "lc server",
        &[
            "Random".into(),
            "POM".into(),
            "POColo".into(),
            "pocolo pairs".into(),
        ],
    );
    for i in 0..runs.random.pairs.len() {
        row(
            &runs.random.pairs[i].lc,
            &[
                f3(runs.random.pairs[i].metrics.be_throughput_avg),
                f3(runs.pom.pairs[i].metrics.be_throughput_avg),
                f3(runs.pocolo.pairs[i].metrics.be_throughput_avg),
                runs.pocolo.pairs[i].be.clone(),
            ],
        );
    }
    row(
        "average",
        &[
            f3(runs.random.summary.avg_be_throughput),
            f3(runs.pom.summary.avg_be_throughput),
            f3(runs.pocolo.summary.avg_be_throughput),
            String::new(),
        ],
    );
}

/// Fig. 12 appendix: BE throughput at each load level (the data behind the
/// averaged bars), POColo vs Random.
pub fn fig12_by_level() {
    section("Fig 12 (appendix) — BE throughput by load level");
    let config = ExperimentConfig {
        dwell_s: 10.0,
        ..ExperimentConfig::default()
    };
    let fitted = FittedCluster::fit(&config.profiler);
    let levels: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let random = pocolo_sim::experiment::run_level_sweep(
        Policy::Random { seed: 1 },
        &config,
        &fitted,
        &levels,
    );
    let pocolo = pocolo_sim::experiment::run_level_sweep(
        Policy::Pocolo { solver: Solver::Lp },
        &config,
        &fitted,
        &levels,
    );
    row("load", &["Random".into(), "POColo".into()]);
    for ((level, r), (_, p)) in random.iter().zip(&pocolo) {
        row(
            &pct(*level),
            &[f3(r.avg_be_throughput), f3(p.avg_be_throughput)],
        );
    }
}

/// Fig. 13: server power utilization (avg power / provisioned cap).
pub fn fig13(runs: &PolicyRuns) {
    section("Fig 13 — power utilization vs provisioned capacity (lower is better)");
    row(
        "lc server",
        &["Random".into(), "POM".into(), "POColo".into()],
    );
    for i in 0..runs.random.pairs.len() {
        row(
            &runs.random.pairs[i].lc,
            &[
                pct(runs.random.pairs[i].metrics.power_utilization()),
                pct(runs.pom.pairs[i].metrics.power_utilization()),
                pct(runs.pocolo.pairs[i].metrics.power_utilization()),
            ],
        );
    }
    row(
        "average",
        &[
            pct(runs.random.summary.avg_power_utilization),
            pct(runs.pom.summary.avg_power_utilization),
            pct(runs.pocolo.summary.avg_power_utilization),
        ],
    );
    row(
        "capping freq",
        &[
            pct(runs.random.summary.avg_capping_frac),
            pct(runs.pom.summary.avg_capping_frac),
            pct(runs.pocolo.summary.avg_capping_frac),
        ],
    );
}

/// Fig. 14 data: total server throughput for every placement combination.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// `(be, lc, total_normalized_throughput)` for all 16 pairs.
    pub pairs: Vec<(String, String, f64)>,
    /// The POColo assignment `(be, lc)` pairs.
    pub chosen: Vec<(String, String)>,
    /// POColo's total vs the exhaustive-search optimum.
    pub pocolo_total: f64,
    /// The exhaustive optimum total.
    pub best_total: f64,
}

pocolo_json::impl_to_json!(Fig14 {
    pairs,
    chosen,
    pocolo_total,
    best_total
});

/// Fig. 14: POColo's choice against the exhaustive 4×4 placement search,
/// evaluated by *simulating* every pair through the load sweep.
pub fn fig14(bench: &Bench) -> Fig14 {
    section("Fig 14 — POColo vs exhaustive placement (simulated totals)");
    // Simulate each (be, lc) pair at the paper's load levels and record the
    // total (LC load served + BE throughput), averaged across levels.
    let mut totals = vec![vec![0.0f64; LcApp::ALL.len()]; BeApp::ALL.len()];
    for (bi, be_app) in BeApp::ALL.iter().enumerate() {
        for (li, lc_app) in LcApp::ALL.iter().enumerate() {
            let mut total = 0.0;
            let levels = [0.1, 0.3, 0.5, 0.7, 0.9];
            for &level in &levels {
                let mut sim = pocolo_sim::ServerSim::new(
                    bench.lc_truth(*lc_app).clone(),
                    bench.lc_fitted(*lc_app).clone(),
                    Some(bench.be_truth(*be_app).clone()),
                    LcPolicy::PowerOptimized,
                    LoadTrace::Constant(level),
                    bench.lc_truth(*lc_app).provisioned_power(),
                    0.0,
                    13,
                )
                .with_proactive_be(bench.be_fitted(*be_app).clone());
                for s in 0..10 {
                    sim.on_manager_tick(s as f64);
                    for _ in 0..10 {
                        sim.on_capper_tick(0.1);
                    }
                }
                total += level + sim.be_throughput();
            }
            totals[bi][li] = total / levels.len() as f64;
        }
    }
    let matrix = PerfMatrix::new(
        BeApp::ALL.iter().map(|a| a.name().to_string()).collect(),
        LcApp::ALL.iter().map(|a| a.name().to_string()).collect(),
        totals.clone(),
    )
    .expect("simulated totals are valid");
    println!("{matrix}");

    // POColo's model-predicted placement vs the simulated-oracle optimum.
    let pocolo_assignment = pocolo_cluster::ClusterManager::new(
        bench.fitted.be_profiles(),
        bench.fitted.server_profiles(),
    )
    .place(Solver::Hungarian)
    .expect("placement solvable");
    let pocolo_total: f64 = pocolo_assignment
        .pairs
        .iter()
        .map(|&(r, c)| totals[r][c])
        .sum();
    let all = enumerate_all(&matrix);
    let best_total = all
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::NEG_INFINITY, f64::max);
    let chosen: Vec<(String, String)> = pocolo_assignment
        .pairs
        .iter()
        .map(|&(r, c)| {
            (
                BeApp::ALL[r].name().to_string(),
                LcApp::ALL[c].name().to_string(),
            )
        })
        .collect();
    println!(
        "POColo placement {:?} total {:.4}; exhaustive optimum {:.4} ({:.1}% of optimal)",
        chosen,
        pocolo_total,
        best_total,
        100.0 * pocolo_total / best_total
    );
    Fig14 {
        pairs: BeApp::ALL
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| {
                let row = &totals[bi];
                LcApp::ALL
                    .iter()
                    .enumerate()
                    .map(|(li, l)| (b.name().to_string(), l.name().to_string(), row[li]))
                    .collect::<Vec<_>>()
            })
            .collect(),
        chosen,
        pocolo_total,
        best_total,
    }
}

/// The §I headline numbers: improvements of POM and POColo over Random.
pub fn headline(runs: &PolicyRuns) {
    section("Headline (§I) — improvements over the Random baseline");
    let base = &runs.random.summary;
    let rel = |v: f64, b: f64| (v - b) / b;
    row(
        "metric",
        &[
            "POM".into(),
            "POColo".into(),
            "paper POM".into(),
            "paper POColo".into(),
        ],
    );
    row(
        "throughput",
        &[
            pct(rel(
                runs.pom.summary.avg_be_throughput,
                base.avg_be_throughput,
            )),
            pct(rel(
                runs.pocolo.summary.avg_be_throughput,
                base.avg_be_throughput,
            )),
            "+8%".into(),
            "+18%".into(),
        ],
    );
    row(
        "power",
        &[
            pct(rel(
                runs.pom.summary.avg_power_utilization,
                base.avg_power_utilization,
            )),
            pct(rel(
                runs.pocolo.summary.avg_power_utilization,
                base.avg_power_utilization,
            )),
            "-7%".into(),
            "-8%".into(),
        ],
    );
    row(
        "energy/work",
        &[
            pct(rel(
                runs.pom.summary.energy_per_throughput,
                base.energy_per_throughput,
            )),
            pct(rel(
                runs.pocolo.summary.energy_per_throughput,
                base.energy_per_throughput,
            )),
            "-16%".into(),
            "-27%".into(),
        ],
    );
}

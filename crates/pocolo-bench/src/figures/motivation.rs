//! Figures 1–4: the motivation experiments (§I–§II).

use pocolo::prelude::*;
use pocolo_manager::PowerCapper;
use pocolo_simserver::SimServer;

use crate::common::{f3, pct, row, save_json, section, Bench};

/// Fig. 1 data: one diurnal day of a web-search server with a naive
/// co-runner — resource utilization stays under the solo peak while power
/// overshoots the provisioned capacity.
#[derive(Debug, Clone)]
pub struct Fig01 {
    /// `(hour, lc_load_frac, cpu_util_frac, power_watts)` samples.
    pub hourly: Vec<(u32, f64, f64, f64)>,
    /// The provisioned (solo-peak) power capacity.
    pub provisioned: f64,
    /// Hours in which colocated power exceeded the provisioned capacity.
    pub overshoot_hours: usize,
}

pocolo_json::impl_to_json!(Fig01 {
    hourly,
    provisioned,
    overshoot_hours
});

/// Fig. 1: harvesting spare resources naively overshoots the power budget.
pub fn fig01(bench: &Bench) -> Fig01 {
    section("Fig 1 — diurnal colocation: utilization fits, power overshoots");
    let lc = bench.lc_truth(LcApp::Xapian);
    let be = bench.be_truth(BeApp::Rnn);
    let provisioned = lc.provisioned_power();
    let trace = LoadTrace::diurnal(0.15, 0.95, 24.0 * 3600.0);
    let mut hourly = Vec::new();
    let mut overshoot_hours = 0;
    row(
        "hour",
        &[
            "load".into(),
            "cpu util".into(),
            "power W".into(),
            "cap W".into(),
        ],
    );
    for hour in 0..24u32 {
        let load = trace.load_at(hour as f64 * 3600.0);
        // The LC app sizes itself power-efficiently for the load; the BE
        // co-runner takes everything left, uncapped (the naive setup).
        let target = load * lc.peak_load_rps();
        let budget = bench
            .lc_fitted(LcApp::Xapian)
            .min_power_for(target * 1.1)
            .unwrap_or_else(|_| bench.lc_fitted(LcApp::Xapian).max_power());
        let lc_alloc_cont = bench
            .lc_fitted(LcApp::Xapian)
            .demand_integral(budget)
            .expect("budget is feasible");
        let (c, w) = (
            lc_alloc_cont.amount(0).round() as u32,
            lc_alloc_cont.amount(1).round() as u32,
        );
        let (lc_alloc, be_alloc) = pocolo_manager::partition(
            &bench.machine,
            c,
            w,
            bench.machine.freq_max(),
            bench.machine.freq_max(),
        );
        let mut draws = vec![lc.power_draw(target, &lc_alloc, &bench.power)];
        let mut cpu = lc_alloc.cores.count() as f64 * lc.utilization(target, &lc_alloc).min(1.0);
        if let Some(ba) = be_alloc {
            draws.push(be.power_draw(&ba, &bench.power));
            cpu += ba.cores.count() as f64;
        }
        let power = bench.power.server_power(draws);
        let cpu_util = cpu / bench.machine.cores() as f64;
        if power > provisioned {
            overshoot_hours += 1;
        }
        row(
            &format!("{hour:02}:00"),
            &[pct(load), pct(cpu_util), f3(power.0), f3(provisioned.0)],
        );
        hourly.push((hour, load, cpu_util, power.0));
    }
    println!("overshoot in {overshoot_hours}/24 hours (provisioned {provisioned})");
    let data = Fig01 {
        hourly,
        provisioned: provisioned.0,
        overshoot_hours,
    };
    save_json("fig01_motivation", &data);
    data
}

/// Fig. 2 data: server power with each BE app beside 10 %-load xapian.
#[derive(Debug, Clone)]
pub struct Fig02 {
    /// `(be_app, server_power_watts)`.
    pub rows: Vec<(String, f64)>,
    /// xapian's provisioned capacity (Table II).
    pub provisioned: f64,
    /// The solo (no co-runner) baseline power.
    pub solo: f64,
}

pocolo_json::impl_to_json!(Fig02 {
    rows,
    provisioned,
    solo
});

/// Fig. 2: uncapped colocation pushes the server past its provisioned power.
pub fn fig02(bench: &Bench) -> Fig02 {
    section("Fig 2 — power draw beside xapian @10% load (uncapped)");
    let lc = bench.lc_truth(LcApp::Xapian);
    let load = 0.1 * lc.peak_load_rps();
    // xapian at 10 % load needs ~1 core / 2 ways (§II-C).
    let lc_alloc = bench.alloc(1, 2, 2.2);
    let lc_draw = lc.power_draw(load, &lc_alloc, &bench.power);
    let solo = bench.power.server_power([lc_draw]);
    let provisioned = lc.provisioned_power();
    let spare = TenantAllocation::new(
        CoreSet::range(1, 11),
        WayMask::range(2, 18),
        bench.machine.freq_max(),
    );
    let mut rows = Vec::new();
    row("co-runner", &["power W".into(), "vs cap".into()]);
    row("(solo)", &[f3(solo.0), pct(solo / provisioned - 1.0)]);
    for app in BeApp::ALL {
        let be = bench.be_truth(app);
        let total = bench
            .power
            .server_power([lc_draw, be.power_draw(&spare, &bench.power)]);
        row(app.name(), &[f3(total.0), pct(total / provisioned - 1.0)]);
        rows.push((app.name().to_string(), total.0));
    }
    println!("provisioned capacity: {provisioned}");
    let data = Fig02 {
        rows,
        provisioned: provisioned.0,
        solo: solo.0,
    };
    save_json("fig02_power_overshoot", &data);
    data
}

/// Fig. 3 data: BE throughput with and without the 70 W budget.
#[derive(Debug, Clone)]
pub struct Fig03 {
    /// `(be_app, uncapped_throughput, capped_throughput, drop_frac)`.
    pub rows: Vec<(String, f64, f64, f64)>,
}

pocolo_json::impl_to_json!(Fig03 { rows });

/// Fig. 3: identical resources, different throughput once power is capped.
pub fn fig03(bench: &Bench) -> Fig03 {
    section("Fig 3 — BE throughput on 11c/18w, free vs 70 W budget");
    let budget = Watts(70.0);
    let mut rows = Vec::new();
    row("be app", &["free".into(), "capped".into(), "drop".into()]);
    for app in BeApp::ALL {
        let be = bench.be_truth(app);
        let spare = TenantAllocation::new(
            CoreSet::range(1, 11),
            WayMask::range(2, 18),
            bench.machine.freq_max(),
        );
        let uncapped = be.throughput(&spare);
        // Drive the capper against the BE's own (apportioned) draw until it
        // settles within the budget.
        let mut server = SimServer::new(bench.machine.clone(), budget);
        server
            .install(TenantRole::Secondary, spare)
            .expect("spare allocation is valid");
        let capper = PowerCapper::default();
        for _ in 0..100 {
            let alloc = *server
                .allocation(TenantRole::Secondary)
                .expect("installed above");
            let draw = be.power_draw(&alloc, &bench.power);
            capper
                .step_with_cap(&mut server, draw, budget)
                .expect("capper steps are in-range");
        }
        let settled = *server
            .allocation(TenantRole::Secondary)
            .expect("still installed");
        let capped = be.throughput(&settled);
        let drop = 1.0 - capped / uncapped;
        row(app.name(), &[f3(uncapped), f3(capped), pct(drop)]);
        rows.push((app.name().to_string(), uncapped, capped, drop));
    }
    let data = Fig03 { rows };
    save_json("fig03_capped_throughput", &data);
    data
}

/// Fig. 4 data: throughput of two BE candidates across the LC load range.
#[derive(Debug, Clone)]
pub struct Fig04 {
    /// `(load_frac, lstm_throughput, rnn_throughput)`.
    pub levels: Vec<(f64, f64, f64)>,
}

pocolo_json::impl_to_json!(Fig04 { levels });

/// Fig. 4: the whole load spectrum matters — RNN beats LSTM beside xapian
/// at every load even though both look fine at 10 %.
pub fn fig04(bench: &Bench) -> Fig04 {
    section("Fig 4 — lstm vs rnn beside xapian across the load range");
    let mut levels = Vec::new();
    row("load", &["lstm".into(), "rnn".into()]);
    for level in 1..=9 {
        let load = level as f64 / 10.0;
        let mut thpt = [0.0f64; 2];
        for (slot, be_app) in [BeApp::Lstm, BeApp::Rnn].into_iter().enumerate() {
            let mut sim = pocolo_sim::ServerSim::new(
                bench.lc_truth(LcApp::Xapian).clone(),
                bench.lc_fitted(LcApp::Xapian).clone(),
                Some(bench.be_truth(be_app).clone()),
                LcPolicy::PowerOptimized,
                LoadTrace::Constant(load),
                bench.lc_truth(LcApp::Xapian).provisioned_power(),
                0.0,
                11,
            );
            // Settle: a few manager epochs with capper ticks between.
            for s in 0..12 {
                sim.on_manager_tick(s as f64);
                for _ in 0..10 {
                    sim.on_capper_tick(0.1);
                }
            }
            thpt[slot] = sim.be_throughput();
        }
        row(&pct(load), &[f3(thpt[0]), f3(thpt[1])]);
        levels.push((load, thpt[0], thpt[1]));
    }
    let data = Fig04 { levels };
    save_json("fig04_load_range", &data);
    data
}

//! Ablation studies for the design choices called out in DESIGN.md §5.

use pocolo::prelude::*;
use pocolo_cluster::PerfMatrixBuilder;
use pocolo_core::fit::{fit_indirect_utility, FitOptions};
use pocolo_workloads::profiler::profile_lc;

use crate::common::{f3, row, section, Bench};

/// Slack-filter ablation data.
#[derive(Debug, Clone)]
pub struct SlackAblation {
    /// `(min_slack, samples_used, perf_r2)`.
    pub rows: Vec<(f64, usize, f64)>,
}

/// Ablation: the minimum-latency-slack guard on fitting samples (§IV-A).
/// Near-saturation samples are biased; dropping them improves the fit.
pub fn slack_filter(bench: &Bench) -> SlackAblation {
    section("Ablation — fit-sample slack filter (sphinx)");
    // Include near- and over-saturation operating points.
    let cfg = ProfilerConfig {
        operating_points: vec![0.6, 0.8, 1.0, 1.05],
        ..ProfilerConfig::default()
    };
    let samples = profile_lc(
        bench.lc_truth(LcApp::Sphinx),
        &bench.power,
        &bench.space,
        &cfg,
    );
    let mut rows = Vec::new();
    row("min slack", &["samples".into(), "perf R²".into()]);
    for min_slack in [-10.0, 0.0, 0.10, 0.20] {
        let fit = fit_indirect_utility(
            &bench.space,
            &samples,
            &FitOptions {
                min_latency_slack: min_slack,
                ..FitOptions::default()
            },
        )
        .expect("enough samples at all thresholds");
        row(
            &format!("{min_slack:>5.2}"),
            &[fit.samples_used.to_string(), f3(fit.performance_r2)],
        );
        rows.push((min_slack, fit.samples_used, fit.performance_r2));
    }
    SlackAblation { rows }
}

/// Myopic-placement ablation data.
#[derive(Debug, Clone)]
pub struct MyopicAblation {
    /// Full-range placement value evaluated over the full range.
    pub range_aware_total: f64,
    /// Single-operating-point (10 % load) placement value evaluated over
    /// the full range.
    pub myopic_total: f64,
}

/// Ablation: placing for one operating point vs the whole load range
/// (the Fig. 4 insight made quantitative).
pub fn myopic_placement(bench: &Bench) -> MyopicAblation {
    section("Ablation — myopic (10%-load) vs range-aware placement");
    let bes = bench.fitted.be_profiles();
    let servers = bench.fitted.server_profiles();
    let full_matrix = PerfMatrixBuilder::new()
        .build(&bes, &servers)
        .expect("matrix builds");
    let myopic_matrix = PerfMatrixBuilder::new()
        .with_load_levels(vec![0.1])
        .build(&bes, &servers)
        .expect("matrix builds");
    let range_aware =
        pocolo_cluster::assign::solve(&full_matrix, Solver::Hungarian).expect("solvable");
    let myopic =
        pocolo_cluster::assign::solve(&myopic_matrix, Solver::Hungarian).expect("solvable");
    // Evaluate BOTH placements on the full-range matrix.
    let range_aware_total = full_matrix.assignment_value(&range_aware.pairs);
    let myopic_total = full_matrix.assignment_value(&myopic.pairs);
    row("policy", &["placement value (full range)".into()]);
    row("range-aware", &[f3(range_aware_total)]);
    row("myopic @10%", &[f3(myopic_total)]);
    println!(
        "range-aware placement is {:+.1}% better across the load spectrum",
        100.0 * (range_aware_total / myopic_total - 1.0)
    );
    MyopicAblation {
        range_aware_total,
        myopic_total,
    }
}

/// Solver-choice ablation data.
#[derive(Debug, Clone)]
pub struct SolverAblation {
    /// `(solver, total, optimal_ratio)`.
    pub rows: Vec<(String, f64, f64)>,
}

/// Ablation: assignment-solver choice (LP vs Hungarian vs exhaustive vs
/// random). The exact solvers tie; random pays a real penalty.
pub fn solver_choice(bench: &Bench) -> SolverAblation {
    section("Ablation — assignment solver choice");
    let matrix = PerfMatrixBuilder::new()
        .build(&bench.fitted.be_profiles(), &bench.fitted.server_profiles())
        .expect("matrix builds");
    let optimum = pocolo_cluster::assign::solve(&matrix, Solver::Exhaustive)
        .expect("solvable")
        .total;
    let mut rows = Vec::new();
    row("solver", &["total".into(), "vs optimal".into()]);
    for (name, solver) in [
        ("exhaustive", Solver::Exhaustive),
        ("hungarian", Solver::Hungarian),
        ("lp-simplex", Solver::Lp),
        ("random(avg)", Solver::Random { seed: 0 }),
    ] {
        let total = if name == "random(avg)" {
            let n = 32;
            (0..n)
                .map(|seed| {
                    pocolo_cluster::assign::solve(&matrix, Solver::Random { seed })
                        .expect("solvable")
                        .total
                })
                .sum::<f64>()
                / n as f64
        } else {
            pocolo_cluster::assign::solve(&matrix, solver)
                .expect("solvable")
                .total
        };
        row(name, &[f3(total), f3(total / optimum)]);
        rows.push((name.to_string(), total, total / optimum));
    }
    SolverAblation { rows }
}

/// Fairness ablation data.
#[derive(Debug, Clone)]
pub struct FairnessAblation {
    /// POColo (total-throughput) assignment: (total, min entry).
    pub total_objective: (f64, f64),
    /// Max-min fair assignment: (total, min entry).
    pub fair_objective: (f64, f64),
}

/// Ablation: total-throughput vs max-min-fair placement. The paper notes
/// POColo "is not designed to consider fairness... it allows poorer
/// performance for some co-locations"; this quantifies what fairness
/// would cost.
pub fn fairness(bench: &Bench) -> FairnessAblation {
    section("Ablation — total-throughput vs max-min fair placement");
    let matrix = PerfMatrixBuilder::new()
        .build(&bench.fitted.be_profiles(), &bench.fitted.server_profiles())
        .expect("matrix builds");
    let min_of = |a: &pocolo_cluster::Assignment| {
        a.pairs
            .iter()
            .map(|&(r, c)| matrix.value(r, c))
            .fold(f64::INFINITY, f64::min)
    };
    let total = pocolo_cluster::assign::solve(&matrix, Solver::Hungarian).expect("solvable");
    let fair = pocolo_cluster::assign::solve(&matrix, Solver::MaxMinFair).expect("solvable");
    row("objective", &["total".into(), "worst pair".into()]);
    row("max total", &[f3(total.total), f3(min_of(&total))]);
    row("max-min fair", &[f3(fair.total), f3(min_of(&fair))]);
    println!(
        "fairness lifts the worst co-runner by {:+.1}% at a total cost of {:+.1}%",
        100.0 * (min_of(&fair) / min_of(&total) - 1.0),
        100.0 * (fair.total / total.total - 1.0)
    );
    FairnessAblation {
        total_objective: (total.total, min_of(&total)),
        fair_objective: (fair.total, min_of(&fair)),
    }
}

/// Consolidation-vs-colocation data (§II-B).
#[derive(Debug, Clone)]
pub struct ConsolidationAblation {
    /// `(strategy, monthly $, $/work)` rows.
    pub rows: Vec<(String, f64, f64)>,
}

/// Ablation: the §II-B argument — consolidation saves energy but strands
/// capital; colocation converts the stranded capital into work.
pub fn consolidation(runs_be_throughput: f64) -> ConsolidationAblation {
    use pocolo_tco::consolidation::{compare_strategies, DiurnalCluster};
    section("Ablation — consolidation vs colocation (§II-B)");
    let model = TcoModel::default();
    let cluster = DiurnalCluster {
        mean_load: 0.5,
        provisioned: Watts(150.5),
        idle: Watts(50.0),
        busy: Watts(150.5),
        colocated_be_throughput: runs_be_throughput,
        colocated_power: Watts(141.0),
        consolidation_margin: 0.25,
    };
    let costs = compare_strategies(&model, &cluster);
    let mut rows = Vec::new();
    row("strategy", &["monthly $M".into(), "$/work".into()]);
    for c in &costs {
        row(
            &c.name,
            &[
                format!("{:.2}", c.monthly_usd / 1e6),
                format!("{:.2}", c.usd_per_work),
            ],
        );
        rows.push((c.name.clone(), c.monthly_usd, c.usd_per_work));
    }
    ConsolidationAblation { rows }
}

/// Spatial vs temporal sharing data.
#[derive(Debug, Clone)]
pub struct SharingAblation {
    /// Total BE throughput when graph+lstm spatially share beside sphinx.
    pub spatial_total: f64,
    /// Total when the two time-share the single secondary slot (each gets
    /// the whole box half the time).
    pub temporal_total: f64,
}

/// Ablation: spatial vs temporal sharing of two co-runners (§V-G).
/// Complementary apps keep their preferred resource full-time under a
/// spatial split, beating a 50/50 time slice.
pub fn sharing(bench: &Bench) -> SharingAblation {
    use pocolo_manager::LcPolicy;
    use pocolo_sim::{ServerSim, SpatialServerSim, SpatialTenant};
    section("Ablation — spatial vs temporal sharing (graph+lstm beside sphinx)");
    let lc_truth = bench.lc_truth(LcApp::Sphinx).clone();
    let lc_fit = bench.lc_fitted(LcApp::Sphinx).clone();
    let cap = lc_truth.provisioned_power();
    let load = LoadTrace::Constant(0.4);

    // Spatial: both run concurrently on a preference-based split.
    let tenants = [BeApp::Graph, BeApp::Lstm]
        .iter()
        .map(|&a| SpatialTenant {
            truth: bench.be_truth(a).clone(),
            fitted: bench.be_fitted(a).clone(),
        })
        .collect();
    let mut spatial = SpatialServerSim::new(
        lc_truth.clone(),
        lc_fit.clone(),
        tenants,
        LcPolicy::PowerOptimized,
        load.clone(),
        cap,
        0.0,
        3,
    );
    for s in 0..25 {
        spatial.on_manager_tick(s as f64);
        for _ in 0..10 {
            spatial.on_capper_tick(0.1);
        }
    }
    let spatial_total = spatial.metrics().be_throughput_avg;

    // Temporal: each app alone with the whole box, half the time.
    let mut temporal_total = 0.0;
    for app in [BeApp::Graph, BeApp::Lstm] {
        let mut sim = ServerSim::new(
            lc_truth.clone(),
            lc_fit.clone(),
            Some(bench.be_truth(app).clone()),
            LcPolicy::PowerOptimized,
            load.clone(),
            cap,
            0.0,
            3,
        );
        for s in 0..25 {
            sim.on_manager_tick(s as f64);
            for _ in 0..10 {
                sim.on_capper_tick(0.1);
            }
        }
        temporal_total += 0.5 * sim.metrics().be_throughput_avg;
    }
    row("strategy", &["total BE throughput".into()]);
    row("spatial", &[f3(spatial_total)]);
    row("temporal", &[f3(temporal_total)]);
    println!(
        "spatial sharing is {:+.1}% vs a 50/50 time slice",
        100.0 * (spatial_total / temporal_total - 1.0)
    );
    SharingAblation {
        spatial_total,
        temporal_total,
    }
}

/// Rebalancing ablation data.
#[derive(Debug, Clone)]
pub struct RebalanceAblation {
    /// `(label, be_throughput, migrations)` rows.
    pub rows: Vec<(String, f64, usize)>,
}

/// Ablation: static whole-range placement vs periodic myopic re-placement
/// under phase-shifted diurnal loads, at several migration costs (§I's
/// "moving applications incurs high overheads" argument).
pub fn rebalance(bench: &Bench) -> RebalanceAblation {
    use pocolo_sim::rebalance::{run_rebalancing, RebalanceConfig};
    section("Ablation — static vs periodic re-placement (phase-shifted diurnal)");
    let config = ExperimentConfig::default();
    let mut rows = Vec::new();
    row("strategy", &["BE thpt".into(), "migrations".into()]);
    for (label, period, pause) in [
        ("static", None, 0.0),
        ("rebalance free", Some(30.0), 0.0),
        ("rebalance 10s", Some(30.0), 10.0),
        ("rebalance 25s", Some(30.0), 25.0),
    ] {
        let r = run_rebalancing(
            &config,
            &RebalanceConfig {
                period_s: period,
                migration_pause_s: pause,
                phase_shift_s: 45.0,
                day_s: 180.0,
            },
            &bench.fitted,
            180.0,
        );
        row(
            label,
            &[f3(r.summary.avg_be_throughput), r.migrations.to_string()],
        );
        rows.push((label.to_string(), r.summary.avg_be_throughput, r.migrations));
    }
    RebalanceAblation { rows }
}
